"""Sparse right-hand-side reordering for triangular solves (Section IV).

For one subdomain of a partitioned cavity matrix, compares the three
column orderings of the interface block E^ — natural, e-tree postorder,
and row-net hypergraph — showing (a) the padded-zero fraction and the
actual blocked-solve cost as the block size B grows, and (b) the
speedup of hypergraph partitioning setup from removing quasi-dense rows.

Run:  python examples/rhs_reordering.py
"""

from repro.experiments import (
    format_quasidense,
    prepare_triangular_study,
    run_fig4,
    run_fig5,
    run_quasidense,
)
from repro.matrices import generate


def main() -> None:
    gm = generate("tdr190k", "tiny")
    print(f"matrix {gm.name}: n={gm.n}; extracting 8 subdomains (NGD+MD)...")
    subs = prepare_triangular_study(gm, k=8, seed=0)
    m = subs[0].E_factored.shape[1]
    print(f"subdomain 0: dim={subs[0].interfaces.dim}, "
          f"interface columns={m}\n")

    print("-- padded-zero fraction vs block size (avg over subdomains) --")
    pts = run_fig4(subs=subs, block_sizes=(8, 16, 32, 64), seed=0)
    by = {(p.ordering, p.block_size): p.frac_avg for p in pts}
    print(f"{'B':>4} {'natural':>9} {'postorder':>10} {'hypergraph':>11}")
    for B in (8, 16, 32, 64):
        print(f"{B:>4} {by[('natural', B)]:>9.3f} "
              f"{by[('postorder', B)]:>10.3f} {by[('hypergraph', B)]:>11.3f}")

    print("\n-- blocked triangular solve time (avg seconds) --")
    pts5 = run_fig5(subs=subs, block_sizes=(8, 32, 64), seed=0)
    by5 = {(p.ordering, p.block_size): p.time_avg for p in pts5}
    print(f"{'B':>4} {'natural':>9} {'postorder':>10} {'hypergraph':>11}")
    for B in (8, 32, 64):
        print(f"{B:>4} {by5[('natural', B)]:>9.4f} "
              f"{by5[('postorder', B)]:>10.4f} {by5[('hypergraph', B)]:>11.4f}")

    print("\n-- quasi-dense row removal (Section V-B(c)) --")
    print(format_quasidense(run_quasidense(subs=subs, block_size=32,
                                           taus=(None, 0.4, 0.1), seed=0)))


if __name__ == "__main__":
    main()
