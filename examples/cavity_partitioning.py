"""Partitioning study on an accelerator-cavity matrix (paper Section III).

Compares the RHB algorithm (all three cut metrics, single- and
multi-constraint dynamic weights) against the nested-graph-dissection
baseline, reporting the paper's Fig. 3 quantities: per-subdomain balance
ratios, separator size, and end-to-end solver time.

Run:  python examples/cavity_partitioning.py [tiny|small|medium]
"""

import sys

from repro.experiments import format_fig3, run_fig3
from repro.experiments.ablation import format_ablation, run_weight_ablation


def main(scale: str = "tiny") -> None:
    print(f"== RHB vs NGD on the cavity matrix (scale={scale}) ==\n")
    for constraint in ("single", "multi"):
        rows = run_fig3("tdr190k", scale, k=8, constraint=constraint,
                        include_solve=True, seed=0)
        print(format_fig3(rows, title=f"Fig. 3 panel — k=8, {constraint}-constraint"))
        best = min((r for r in rows if r.label != "PT-SCOTCH"),
                   key=lambda r: r.time_normalized)
        print(f"-> best RHB metric: {best.label} at "
              f"{best.time_normalized:.2f}x the NGD time\n")

    print("== why dynamic weights matter (weight-scheme ablation) ==\n")
    rows = run_weight_ablation("tdr190k", scale, k=8, seed=0)
    print(format_ablation(rows, title="soed metric, varying weight scheme"))
    print("\n'unit' is a standard static partitioner; 'w1' re-derives the")
    print("weights from the current submatrix at every bisection — the")
    print("paper's key idea.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
