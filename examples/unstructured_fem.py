"""Unstructured FEM workflow: mesh -> assemble -> partition -> solve.

Generates a P1 finite-element operator on a Delaunay-triangulated
annulus (non-convex geometry with a hole — the kind of domain where
partitioners genuinely differ), compares three partitioning strategies
(RHB, NGD with multilevel FM, NGD with spectral bisection) and solves
the system with the hybrid solver using the element incidence as RHB's
structural factor.

Run:  python examples/unstructured_fem.py
"""

import numpy as np

from repro import PDSLin, PDSLinConfig
from repro.core import build_dbbd, rhb_partition
from repro.graphs import nested_dissection_partition
from repro.matrices import unstructured_matrix


def main() -> None:
    gm = unstructured_matrix(2500, domain="annulus", seed=0)
    print(f"{gm.description}")
    print(f"n={gm.n}, nnz/row={gm.nnz_per_row:.1f}\n")

    print("-- partitioner comparison (k=8) --")
    rows = []
    r = rhb_partition(gm.A, 8, M=gm.M, metric="soed", scheme="w1", seed=0)
    rows.append(("RHB-soed/w1", build_dbbd(gm.A, r.col_part, 8)))
    for bisector, label in (("fm", "NGD (multilevel FM)"),
                            ("spectral", "NGD (spectral)")):
        ng = nested_dissection_partition(gm.A, 8, seed=0, bisector=bisector)
        rows.append((label, build_dbbd(gm.A, ng.part, 8)))
    print(f"{'method':<22} {'n_S':>5} {'dim(D)':>7} {'nnz(D)':>7} "
          f"{'col(E)':>7}")
    for label, dbbd in rows:
        q = dbbd.quality()
        print(f"{label:<22} {q.separator_size:>5} {q.dim_ratio:>7.2f} "
              f"{q.nnz_D_ratio:>7.2f} {q.ncol_E_ratio:>7.2f}")

    print("\n-- hybrid solve with the RHB partition --")
    rng = np.random.default_rng(1)
    b = rng.standard_normal(gm.n)
    cfg = PDSLinConfig(k=8, partitioner="rhb", seed=0,
                       drop_interface=1e-4, drop_schur=1e-6,
                       rhs_ordering="hypergraph", block_size=48)
    res = PDSLin(gm.A, cfg, M=gm.M).solve(b)
    print(f"converged={res.converged} iters={res.iterations} "
          f"residual={res.residual_norm:.1e} n_S={res.schur_size}")


if __name__ == "__main__":
    main()
