"""Chaos engineering for the hybrid solver: solve through injected
faults and numerical breakdowns, and read the recovery report.

Three scenarios on the same accelerator-cavity system:

1. a seeded :class:`FaultPlan` — one permanent subdomain-LU fault (the
   work fails over to the root process) plus one transient Schur-LU
   fault (retried in place), with stragglers inflating the simulated
   makespan;
2. a singular subdomain block — the pivoting ladder escalates from
   threshold pivoting through full pivoting to static pivot
   perturbation and reports how many pivots it had to nudge;
3. an over-dropped Schur preconditioner — GMRES runs out of its
   iteration budget, the solver rebuilds S~ without dropping and
   retries once, warm-started.

Run:  python examples/chaos_solve.py [seed]
"""

import sys

import numpy as np

from repro import FaultPlan, FaultSpec, PDSLin, PDSLinConfig, generate
from repro.solver import RuntimeOptions


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    gm = generate("tdr190k", scale="tiny")
    print(f"matrix {gm.name}: n={gm.n}, nnz/row={gm.nnz_per_row:.1f}")
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(gm.n)
    cfg = PDSLinConfig(k=4, block_size=32, seed=seed)

    # -- scenario 1: injected process faults ------------------------------
    banner("scenario 1: injected faults")
    plan = FaultPlan([
        FaultSpec(stage="LU(D)", process=1, kind="permanent"),
        FaultSpec(stage="LU(S)", process=None, kind="transient"),
        FaultSpec(stage="Comp(S)", process=2, kind="straggler",
                  delay_s=0.25),
    ], seed=seed)
    solver = PDSLin(gm.A, cfg, runtime=RuntimeOptions(fault_plan=plan))
    result = solver.solve(b)
    print(f"converged={result.converged} degraded={result.degraded} "
          f"residual={result.residual_norm:.2e}")
    print(result.recovery.summary())
    print("fired faults:", plan.fired_summary())
    print("stage breakdown (simulated):")
    for stage, seconds in sorted(result.breakdown().items()):
        print(f"  {stage:<10} {seconds:.4f}s")

    # -- scenario 2: singular subdomain pivot ------------------------------
    banner("scenario 2: singular subdomain -> static pivoting")
    # make one interior equation lose its subdomain coupling: the
    # subdomain block turns singular while the global system stays
    # solvable through the separator. The numerics layer's max-product
    # matching would proactively permute the bad pivot away, so we
    # disable it here to watch the *reactive* ladder (threshold ->
    # full -> static perturbation) do its work.
    cfg2 = PDSLinConfig(k=4, block_size=32, seed=seed,
                        static_pivot_matching=False)
    probe = PDSLin(gm.A, cfg2)
    probe.setup()
    part = probe.partition.part
    sepv = set(probe.partition.separator_vertices.tolist())
    Acsr = gm.A.tocsr()
    victim = next(
        v for v in range(gm.n)
        if v not in sepv and part[v] == 0 and any(
            int(w) in sepv
            for w in Acsr.indices[Acsr.indptr[v]:Acsr.indptr[v + 1]]
            if w != v))
    A2 = gm.A.tolil()
    for w in Acsr.indices[Acsr.indptr[victim]:Acsr.indptr[victim + 1]]:
        if int(w) not in sepv:
            A2[victim, int(w)] = 0.0
    A2 = A2.tocsr()
    A2.eliminate_zeros()
    solver2 = PDSLin(A2, cfg2)
    result2 = solver2.solve(b)
    print(f"converged={result2.converged} degraded={result2.degraded} "
          f"perturbed pivots={result2.recovery.perturbed_pivots}")
    print(result2.recovery.summary())
    # same system with matching on: the bad pivot never reaches LU
    solver2b = PDSLin(A2, cfg)
    result2b = solver2b.solve(b)
    print(f"with matching: converged={result2b.converged} "
          f"perturbed pivots={result2b.recovery.perturbed_pivots} "
          f"(proactive static pivoting)")

    # -- scenario 3: weakened preconditioner -> refresh ---------------------
    banner("scenario 3: GMRES stall -> preconditioner refresh")
    cfg3 = PDSLinConfig(k=4, block_size=32, seed=seed, drop_schur=0.5,
                        gmres_maxiter=4, gmres_restart=4)
    solver3 = PDSLin(gm.A, cfg3)
    result3 = solver3.solve(b)
    print(f"converged={result3.converged} degraded={result3.degraded} "
          f"residual={result3.residual_norm:.2e}")
    print(f"final preconditioner: {result3.recovery.preconditioner_mode}")
    print(result3.recovery.summary())

    ok = result.converged and result2.converged and result3.converged
    print(f"\nall scenarios recovered: {ok}")
    raise SystemExit(0 if ok else 1)


if __name__ == "__main__":
    main()
