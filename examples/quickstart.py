"""Quickstart: solve a linear system with the PDSLin-style hybrid solver.

Builds a synthetic accelerator-cavity matrix (indefinite, symmetric —
the regime the paper targets), partitions it with RHB, solves, and
prints the simulated parallel stage breakdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PDSLin, PDSLinConfig, generate


def main() -> None:
    # 1. a test system from the paper's Table-I suite (synthetic analogue)
    gm = generate("tdr190k", scale="tiny")
    print(f"matrix {gm.name}: n={gm.n}, nnz/row={gm.nnz_per_row:.1f}")
    print(f"  ({gm.description})")

    rng = np.random.default_rng(0)
    b = rng.standard_normal(gm.n)

    # 2. configure the hybrid solver: 8 subdomains, RHB partitioning with
    #    the paper's best settings (soed metric, dynamic w1 weights)
    config = PDSLinConfig(
        k=8,
        partitioner="rhb",
        metric="soed",
        scheme="w1",
        block_size=32,           # RHS block size for triangular solves
        rhs_ordering="postorder",
        seed=0,
    )
    solver = PDSLin(gm.A, config, M=gm.M)  # M: FEM element incidence

    # 3. solve
    result = solver.solve(b)
    print(f"\nconverged:      {result.converged}")
    print(f"GMRES iters:    {result.iterations}")
    print(f"residual:       {result.residual_norm:.2e}")
    print(f"Schur size n_S: {result.schur_size}")

    # 4. simulated parallel accounting (one process per subdomain)
    print("\nstage breakdown (simulated parallel time):")
    for stage, seconds in sorted(result.breakdown().items()):
        print(f"  {stage:<10} {seconds:.4f}s")
    print(f"\nLU(D) balance (max/min over processes): "
          f"{solver.machine.balance_ratio('LU(D)'):.2f}")


if __name__ == "__main__":
    main()
