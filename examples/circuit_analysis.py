"""Circuit-simulation workload (paper Table II's biggest win).

ASIC-style circuit matrices are extremely sparse but contain quasi-dense
hub rows (power/clock rails). The paper reports RHB shrinking the
separator of ASIC_680ks by ~8x vs nested dissection, turning a 34.3 s
solve into a 4.0 s one. This example reproduces the effect on the
synthetic analogue and then solves both an ASIC-like and an SPD
G3_circuit-like system end to end.

Run:  python examples/circuit_analysis.py
"""

import numpy as np

from repro import PDSLin, PDSLinConfig
from repro.experiments import run_partitioner
from repro.matrices import asic_like_matrix, g3_like_matrix
from repro.sparse import density_of_rows


def main() -> None:
    gm = asic_like_matrix(3000, n_hubs=4, hub_fraction=0.08, seed=0)
    dens = density_of_rows(gm.A)
    print(f"ASIC-like circuit: n={gm.n}, nnz/row={gm.nnz_per_row:.1f}")
    print(f"quasi-dense rows (density > 5%): {(dens > 0.05).sum()}")

    print("\n-- separator size: NGD vs RHB --")
    for method in ("ngd", "rhb"):
        pr = run_partitioner(gm, 8, method=method, seed=0)
        q = pr.quality
        print(f"{pr.label:<14} n_S={q.separator_size:<5} "
              f"nnz(D) balance={q.nnz_D_ratio:.2f} "
              f"col(E) balance={q.ncol_E_ratio:.2f}")

    print("\n-- end-to-end solves --")
    rng = np.random.default_rng(1)
    for name, system in (("ASIC-like", gm),
                         ("G3-like (SPD)", g3_like_matrix(55, 55, seed=0))):
        b = rng.standard_normal(system.n)
        cfg = PDSLinConfig(k=8, partitioner="rhb", seed=0,
                           drop_interface=1e-3, drop_schur=1e-5)
        res = PDSLin(system.A, cfg, M=system.M).solve(b)
        print(f"{name:<14} n={system.n:<6} iters={res.iterations:<3} "
              f"residual={res.residual_norm:.1e} n_S={res.schur_size}")


if __name__ == "__main__":
    main()
