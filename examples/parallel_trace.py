"""Inspecting a simulated parallel run: reports and Chrome traces.

Runs the hybrid solver, exports (a) a JSON run report with partition
quality, stage times, balance ratios and padding statistics, and (b) a
Chrome-trace timeline (open chrome://tracing or https://ui.perfetto.dev
and load the file) showing per-subdomain stage bars — the simulated
equivalent of profiling the real PDSLin with an MPI tracer.

Run:  python examples/parallel_trace.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import PDSLin, PDSLinConfig, generate
from repro.parallel import TwoLevelModel, export_chrome_trace
from repro.solver import format_report, run_report, save_report


def main(out_dir: str = ".") -> None:
    out = Path(out_dir)
    gm = generate("tdr455k", "tiny")
    rng = np.random.default_rng(0)
    solver = PDSLin(gm.A, PDSLinConfig(k=8, partitioner="rhb", seed=0),
                    M=gm.M)
    result = solver.solve(rng.standard_normal(gm.n))

    report = run_report(solver, result)
    print(format_report(report))
    save_report(report, out / "pdslin_report.json")
    export_chrome_trace(solver.machine, out / "pdslin_trace.json")
    print(f"\nwrote {out / 'pdslin_report.json'} and "
          f"{out / 'pdslin_trace.json'}")

    # project the measured one-level run onto larger machines
    model = TwoLevelModel(k=8)
    print("\ntwo-level projection (total simulated seconds):")
    for cores in (8, 32, 128, 512):
        proj = model.project(solver.machine, cores)
        interesting = {s: proj[s] for s in ("LU(D)", "Comp(S)", "LU(S)",
                                            "Solve") if s in proj}
        total = sum(interesting.values())
        bar = "#" * max(1, int(total * 400))
        print(f"  P={cores:<5} {total:.4f}s  {bar}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
