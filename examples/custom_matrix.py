"""Using the library with your own matrix.

Shows the lower-level public API on a user-supplied scipy sparse matrix:
build a DBBD partition directly, inspect blocks, persist the matrix in
Matrix Market format, and run the solver with a custom configuration.

Run:  python examples/custom_matrix.py
"""

import io

import numpy as np
import scipy.sparse as sp

from repro import PDSLin, PDSLinConfig, rhb_partition
from repro.sparse import (
    edge_incidence_factor,
    read_matrix_market,
    symmetry_info,
    verify_structural_factor,
    write_matrix_market,
)


def my_matrix(n_side: int = 20) -> sp.csr_matrix:
    """Any square scipy sparse matrix works; here, a 2-D anisotropic
    diffusion operator."""
    def lap1(n, w):
        return sp.diags([-w * np.ones(n - 1), 2 * w * np.ones(n),
                         -w * np.ones(n - 1)], [-1, 0, 1])
    Ix = sp.eye(n_side)
    A = sp.kron(Ix, lap1(n_side, 1.0)) + sp.kron(lap1(n_side, 25.0), Ix)
    return (A + 0.1 * sp.eye(n_side * n_side)).tocsr()


def main() -> None:
    A = my_matrix()
    print("matrix diagnostics:", symmetry_info(A).table_row())

    # structural factor: computed automatically when you don't have one
    M = edge_incidence_factor(A)
    print("edge-incidence factor valid:", verify_structural_factor(A, M),
          f"({M.shape[0]} rows)")

    # direct access to the partitioner, without the solver
    r = rhb_partition(A, 4, metric="soed", scheme="w1", seed=0)
    dbbd = r.to_dbbd(A)
    print(f"\nRHB with k=4: separator={dbbd.separator_size}, "
          f"subdomain sizes={dbbd.subdomain_sizes().tolist()}")
    print("block D_0 shape:", dbbd.D(0).shape, " E_0 nnz:", dbbd.E(0).nnz)

    # persist / reload in Matrix Market format
    buf = io.StringIO()
    write_matrix_market(buf, A, comment="anisotropic diffusion demo")
    buf.seek(0)
    A2 = read_matrix_market(buf)
    print("\nMatrixMarket roundtrip max error:", abs(A - A2).max())

    # full solve with custom knobs
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.shape[0])
    cfg = PDSLinConfig(k=4, partitioner="rhb", rhs_ordering="hypergraph",
                       block_size=24, drop_interface=1e-4, drop_schur=1e-6,
                       seed=0)
    res = PDSLin(A, cfg).solve(b)
    print(f"solve: converged={res.converged} iters={res.iterations} "
          f"residual={res.residual_norm:.1e}")


if __name__ == "__main__":
    main()
