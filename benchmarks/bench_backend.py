"""Bench: execution-backend speedup (serial vs process pool).

Runs the Table-I suite through ``PDSLin`` on the serial backend and on
the process backend at 1/2/4 workers, always asserting bit parity with
serial, and reports the end-to-end speedup of the parallelizable setup
phase. The ``>= 1.5x at 4 workers`` acceptance gate only applies on
machines that actually have 4 cores; on smaller CI runners the numbers
are still published but not asserted.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import publish
from repro.matrices.suite import generate, suite_names
from repro.parallel.exec import ProcessBackend
from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_GATE = 1.5           # required at 4 workers...
GATE_MIN_CPUS = 4            # ...but only on a machine with >= 4 cores


def _solve(A, M, backend, *, k, seed=0):
    b = np.random.default_rng(seed).standard_normal(A.shape[0])
    solver = PDSLin(A, PDSLinConfig(k=k, seed=seed), M=M,
                    runtime=RuntimeOptions(backend=backend))
    t0 = time.perf_counter()
    res = solver.solve(b)
    return res, time.perf_counter() - t0


def test_backend_speedup(scale, results_dir):
    k = 8 if scale != "tiny" else 4
    systems = [generate(name, scale) for name in suite_names()]
    backends = {w: ProcessBackend(workers=w) for w in WORKER_COUNTS}
    try:
        # warm the pools so fork cost is not billed to the first matrix
        for b in backends.values():
            b.map(_noop, range(b.workers))
        rows, total = [], {0: 0.0, **{w: 0.0 for w in WORKER_COUNTS}}
        for gm in systems:
            ref, t_serial = _solve(gm.A, gm.M, "serial", k=k)
            total[0] += t_serial
            walls = {}
            for w, backend in backends.items():
                par, t_par = _solve(gm.A, gm.M, backend, k=k)
                assert par.x.tobytes() == ref.x.tobytes(), \
                    f"parity broken on {gm.name} at {w} workers"
                walls[w] = t_par
                total[w] += t_par
            rows.append((gm.name, gm.A.shape[0], t_serial, walls))
        lines = [f"Execution-backend speedup ({scale} scale, k={k}, "
                 f"{os.cpu_count()} cpus)",
                 f"{'matrix':<12} {'n':>7} {'serial':>9} "
                 + " ".join(f"{f'proc:{w}':>9}" for w in WORKER_COUNTS)
                 + " " + " ".join(f"{f'x{w}':>6}" for w in WORKER_COUNTS)]
        for name, n, t_serial, walls in rows:
            lines.append(
                f"{name:<12} {n:>7} {t_serial:>8.3f}s "
                + " ".join(f"{walls[w]:>8.3f}s" for w in WORKER_COUNTS)
                + " " + " ".join(f"{t_serial / walls[w]:>6.2f}"
                                 for w in WORKER_COUNTS))
        speedups = {w: total[0] / total[w] for w in WORKER_COUNTS}
        lines.append(
            f"{'TOTAL':<12} {'':>7} {total[0]:>8.3f}s "
            + " ".join(f"{total[w]:>8.3f}s" for w in WORKER_COUNTS)
            + " " + " ".join(f"{speedups[w]:>6.2f}"
                             for w in WORKER_COUNTS))
        publish(results_dir, "backend_speedup", "\n".join(lines))
        cpus = os.cpu_count() or 1
        if cpus >= GATE_MIN_CPUS:
            assert speedups[4] >= SPEEDUP_GATE, (
                f"process backend at 4 workers reached only "
                f"{speedups[4]:.2f}x over serial (gate {SPEEDUP_GATE}x)")
        else:
            print(f"\nspeedup gate skipped: only {cpus} cpus "
                  f"(needs >= {GATE_MIN_CPUS})")
    finally:
        for b in backends.values():
            b.close()


def _noop(_):
    return None
