"""Bench: regenerate Fig. 3 — load balance and normalized solution time
for RHB (con1/cnet/soed x single/multi constraint) vs NGD, k in {8, 32}.

Four panels like the paper: (a) single k=8, (b) multi k=8,
(c) single k=32, (d) multi k=32.
"""

import pytest

from benchmarks.conftest import publish
from repro.experiments import format_fig3, run_fig3

PANELS = [
    ("a", 8, "single"),
    ("b", 8, "multi"),
    ("c", 32, "single"),
    ("d", 32, "multi"),
]


@pytest.mark.parametrize("panel,k,constraint", PANELS,
                         ids=[p[0] for p in PANELS])
def test_fig3_panel(benchmark, scale, results_dir, panel, k, constraint):
    # k=32 needs enough vertices per part to be meaningful; escalate the
    # matrix scale when a sanity run asks for "tiny"
    if k == 32 and scale == "tiny":
        scale = "small"
    rows = benchmark.pedantic(
        lambda: run_fig3("tdr190k", scale, k=k, constraint=constraint,
                         include_solve=True, seed=0),
        rounds=1, iterations=1)
    title = f"Fig. 3({panel}) — {constraint}-constraint, k={k}"
    publish(results_dir, f"fig3_{panel}", format_fig3(rows, title=title))

    ngd = next(r for r in rows if r.label == "PT-SCOTCH")
    rhb = [r for r in rows if r.label != "PT-SCOTCH"]
    # the paper's headline: some RHB metric beats NGD on solution time,
    # and RHB's nnz(D) balance is no worse than NGD's (generous margin:
    # single-shot wall-clock at bench scale is noisy)
    assert min(r.time_normalized for r in rhb) <= 1.15
    assert min(r.nnz_D_ratio for r in rhb) <= ngd.nnz_D_ratio * 1.1
    # the separator may grow only modestly (paper: "modest increase")
    assert min(r.separator_size for r in rhb) <= 1.35 * ngd.separator_size
