"""Bench: regenerate Fig. 1 — PDSLin stage breakdown vs core count,
RHB-soed vs PT-Scotch-style NGD, k = 8 subdomains, two-level projection."""

from benchmarks.conftest import publish
from repro.experiments import format_fig1, run_fig1


def test_fig1(benchmark, scale, results_dir):
    points = benchmark.pedantic(
        lambda: run_fig1("tdr455k", scale, k=8,
                         cores=(8, 32, 128, 512, 1024), seed=0),
        rounds=1, iterations=1)
    publish(results_dir, "fig1", format_fig1(points))

    # shape checks mirroring the paper's figure:
    by = {(p.partitioner, p.cores): p for p in points}
    for label in ("RHB,soed", "PT-Scotch"):
        # total time decreases with more cores
        assert by[(label, 8)].total >= by[(label, 1024)].total
        # LU(D) keeps shrinking; Solve flattens (separator-bound)
        assert by[(label, 8)].stage_times["LU(D)"] > \
            by[(label, 1024)].stage_times["LU(D)"]
    # RHB reduces Comp(S) relative to NGD without blowing up LU(D)
    assert by[("RHB,soed", 8)].stage_times["Comp(S)"] <= \
        1.6 * by[("PT-Scotch", 8)].stage_times["Comp(S)"]
