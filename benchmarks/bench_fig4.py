"""Bench: regenerate Fig. 4 — fraction of padded zeros vs block size B
for natural / postorder / hypergraph RHS orderings (four panels, one per
matrix family)."""

import pytest

from benchmarks.conftest import publish
from repro.experiments import format_fig4, prepare_triangular_study, run_fig4
from repro.matrices import generate

PANELS = ["tdr190k", "dds.quad", "dds.linear", "matrix211"]
BLOCK_SIZES = (8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def studies(scale):
    return {m: prepare_triangular_study(generate(m, scale), k=8, seed=0)
            for m in PANELS}


@pytest.mark.parametrize("matrix", PANELS)
def test_fig4_panel(benchmark, scale, results_dir, studies, matrix):
    subs = studies[matrix]
    points = benchmark.pedantic(
        lambda: run_fig4(subs=subs, block_sizes=BLOCK_SIZES, tau=0.4, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, f"fig4_{matrix.replace('.', '_')}",
            format_fig4(points, title=f"Fig. 4 — {matrix}"))

    avg = {(p.ordering, p.block_size): p.frac_avg for p in points}
    # fraction grows with B for every ordering (paper's main shape)
    for o in ("natural", "postorder", "hypergraph"):
        assert avg[(o, BLOCK_SIZES[0])] <= avg[(o, BLOCK_SIZES[-1])] + 0.02
    # the reorderings beat the natural ordering somewhere in the sweep
    gains = [avg[("natural", B)] - min(avg[("postorder", B)],
                                       avg[("hypergraph", B)])
             for B in BLOCK_SIZES]
    assert max(gains) >= -0.01
