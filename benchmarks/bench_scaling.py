"""Bench: two-level vs one-level parallelism (the paper's Section I
hierarchical-design argument)."""

from benchmarks.conftest import publish
from repro.experiments import format_scaling, run_twolevel_vs_onelevel


def test_twolevel_vs_onelevel(benchmark, scale, results_dir):
    cores = (8, 16, 32)
    points = benchmark.pedantic(
        lambda: run_twolevel_vs_onelevel("tdr190k", scale, cores=cores,
                                         k_two_level=8, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, "scaling", format_scaling(points))

    two = {p.cores: p for p in points if p.mode.startswith("two")}
    one = {p.cores: p for p in points if p.mode.startswith("one")}
    # the Schur complement grows with the subdomain count (the paper's
    # reason for keeping k small)
    assert one[32].schur_size > one[8].schur_size
    assert two[32].schur_size == two[8].schur_size
    # two-level time keeps improving with cores
    assert two[32].total_time < two[8].total_time
