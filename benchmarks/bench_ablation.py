"""Bench: ablations on the RHB design choices called out in DESIGN.md —
weight schemes (dynamic vs static) and FM refinement strength."""

from benchmarks.conftest import publish
from repro.experiments import (
    format_ablation,
    run_fm_ablation,
    run_weight_ablation,
)


def test_weight_scheme_ablation(benchmark, scale, results_dir):
    rows = benchmark.pedantic(
        lambda: run_weight_ablation("tdr190k", scale, k=8, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, "ablation_weights",
            format_ablation(rows, title="RHB weight schemes (soed metric)"))
    by = {r.label: r for r in rows}
    # the paper's claim, stated against the baseline it uses: RHB with
    # the dynamic single-constraint w1 scheme balances subdomain
    # nonzeros better than nested dissection (seed-averaged)
    assert by["soed/w1"].nnz_D_ratio <= by["ngd"].nnz_D_ratio * 1.05


def test_fm_passes_ablation(benchmark, scale, results_dir):
    rows = benchmark.pedantic(
        lambda: run_fm_ablation("tdr190k", scale, k=8, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, "ablation_fm",
            format_ablation(rows, title="FM refinement passes (soed/w1)"))
    first, last = rows[0], rows[-1]
    # more refinement never hurts the separator much
    assert last.separator_size <= first.separator_size * 1.1
