"""Bench: solver design-space ablation (extension).

PDSLin exposes choices the paper holds fixed: the Krylov method for the
Schur system (GMRES vs BiCGSTAB) and the preconditioner factorization
(exact LU of S~ vs incomplete LU). This bench sweeps the 2x2 grid on a
cavity system and reports iterations + simulated times.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.experiments.common import render_table
from repro.matrices import generate
from repro.solver import PDSLin, PDSLinConfig

OPTIONS = [("gmres", "lu"), ("gmres", "ilu"),
           ("bicgstab", "lu"), ("bicgstab", "ilu")]


def test_solver_options(benchmark, scale, results_dir):
    gm = generate("tdr190k", scale)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(gm.n)

    # the highly indefinite cavity needs tighter dropping as it grows
    # or no Krylov method converges (Section I of the paper)
    drop_i, drop_s = (1e-5, 1e-8) if scale == "medium" else (2e-4, 1e-6)

    def sweep():
        rows = []
        for krylov, fac in OPTIONS:
            cfg = PDSLinConfig(k=8, partitioner="rhb", seed=0,
                               krylov=krylov, schur_factorization=fac,
                               drop_interface=drop_i, drop_schur=drop_s,
                               gmres_tol=1e-8)
            solver = PDSLin(gm.A, cfg, M=gm.M)
            res = solver.solve(b)
            br = solver.machine.breakdown()
            rows.append([f"{krylov}+{fac}", res.iterations,
                         res.converged, f"{res.residual_norm:.1e}",
                         round(br.get("LU(S)", 0.0), 3),
                         round(br.get("Solve", 0.0), 3)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(results_dir, "solver_options", render_table(
        ["config", "#iter", "converged", "residual", "LU(S) s", "Solve s"],
        rows, title="Solver design space — Krylov x Schur factorization"))
    by = {r[0]: r for r in rows}
    assert by["gmres+lu"][2], "exact-LU GMRES must converge"
    # the incomplete factorization never needs fewer iterations
    assert by["gmres+ilu"][1] >= by["gmres+lu"][1]
