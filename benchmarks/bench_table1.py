"""Bench: regenerate Table I (test-matrix properties)."""

from benchmarks.conftest import publish
from repro.experiments import format_table1, run_table1


def test_table1(benchmark, scale, results_dir):
    rows = benchmark.pedantic(
        lambda: run_table1(scale, check_definiteness=True),
        rounds=1, iterations=1)
    publish(results_dir, "table1", format_table1(rows))
    names = {r["name"] for r in rows}
    assert {"tdr190k", "matrix211", "ASIC_680ks", "G3_circuit"} <= names
