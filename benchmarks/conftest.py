"""Benchmark configuration.

Every bench regenerates one table or figure of the paper, prints the
formatted rows/series, and archives them under ``benchmarks/results/``.
``REPRO_BENCH_SCALE`` selects the matrix scale (default "small";
"tiny" for a fast sanity sweep, "medium" for the full-size run) and
``REPRO_BENCH_RESULTS_DIR`` overrides where the text outputs land so
runs at different scales can be archived side by side.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import envcfg

RESULTS_DIR = Path(envcfg.get("REPRO_BENCH_RESULTS_DIR")
                   or Path(__file__).parent / "results")


def _bench_opted_in(config) -> bool:
    if envcfg.get("REPRO_RUN_BENCH"):
        return True
    try:
        return bool(config.getoption("--benchmark-only"))
    except (ValueError, KeyError):  # pytest-benchmark not installed
        return False


def pytest_collection_modifyitems(config, items):
    """Keep full benchmarks out of ordinary test runs.

    Every ``bench_*.py`` item is marked ``slow`` and skipped unless the
    run opted in via ``--benchmark-only`` (the documented benchmark
    invocation) or ``REPRO_RUN_BENCH=1``. Tier-1 CI collects only
    ``tests/``, but this guard makes an accidental ``pytest benchmarks/``
    cheap instead of a multi-minute experiment sweep.
    """
    opted_in = _bench_opted_in(config)
    skip = pytest.mark.skip(
        reason="benchmark: run with --benchmark-only or REPRO_RUN_BENCH=1")
    for item in items:
        if Path(item.fspath).name.startswith("bench_"):
            item.add_marker(pytest.mark.slow)
            if not opted_in:
                item.add_marker(skip)


def bench_scale(default: str = "small") -> str:
    return envcfg.get("REPRO_BENCH_SCALE") or default


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a result table and archive it."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
