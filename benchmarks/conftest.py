"""Benchmark configuration.

Every bench regenerates one table or figure of the paper, prints the
formatted rows/series, and archives them under ``benchmarks/results/``.
``REPRO_BENCH_SCALE`` selects the matrix scale (default "small";
"tiny" for a fast sanity sweep, "medium" for the full-size run) and
``REPRO_BENCH_RESULTS_DIR`` overrides where the text outputs land so
runs at different scales can be archived side by side.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(os.environ.get(
    "REPRO_BENCH_RESULTS_DIR", Path(__file__).parent / "results"))


def bench_scale(default: str = "small") -> str:
    return os.environ.get("REPRO_BENCH_SCALE", default)


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a result table and archive it."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
