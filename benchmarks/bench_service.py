"""Bench: serving-layer throughput (SolverService vs per-request setup).

Replays a mixed traffic trace — >= 64 requests over four matrices, one
hot (receiving ~3/4 of the traffic) and three cold — through two
front ends: the naive per-request path (a fresh ``PDSLin`` built, set
up, and solved for every request, what a stateless endpoint would do)
and a :class:`repro.service.SolverService` (LRU session cache +
micro-batched request queue). Acceptance gates: the service must beat
the naive path by >= 2x on wall-clock throughput, every sampled
cache-hit response must be bit-identical to a fresh solve of the same
system, and no worker processes may survive ``service.close()``.

Run directly (``PYTHONPATH=src python -m benchmarks.bench_service``)
for a one-off report; CI runs the smoke CLI
(``python -m repro.service.smoke``) instead.
"""

from __future__ import annotations

import argparse
import multiprocessing
import time

import numpy as np

from benchmarks.conftest import publish
from repro.matrices import generate
from repro.service import SolverService
from repro.solver import PDSLin, PDSLinConfig

HOT_MATRIX = "tdr190k"
COLD_MATRICES = ("tdr455k", "dds.quad", "matrix211")
N_REQUESTS = 64
GATE_SPEEDUP = 2.0


def _trace(scale: str, n_requests: int, seed: int = 0):
    """The request trace: (matrix_name, A, b) per request, hot-heavy."""
    mats = {name: generate(name, scale).A.tocsr()
            for name in (HOT_MATRIX, *COLD_MATRICES)}
    rng = np.random.default_rng(seed)
    trace = []
    for i in range(n_requests):
        # every 4th request goes to a cold matrix, round-robin
        name = COLD_MATRICES[(i // 4) % len(COLD_MATRICES)] \
            if i % 4 == 3 else HOT_MATRIX
        A = mats[name]
        trace.append((name, A, rng.standard_normal(A.shape[0])))
    return trace


def _naive(trace, cfg):
    """Stateless per-request baseline: setup + solve every time."""
    xs = []
    for _, A, b in trace:
        solver = PDSLin(A, cfg)
        solver.setup()
        xs.append(solver.solve(b).x)
    return xs


def _served(trace, cfg, backend=None):
    svc = SolverService(config=cfg, backend=backend)
    try:
        futs = [svc.submit(A, b) for _, A, b in trace]
        xs = [f.result(timeout=600).x for f in futs]
        report = svc.service_report()
    finally:
        svc.close()
    return xs, report


def test_service_throughput(scale, results_dir):
    cfg = PDSLinConfig(k=4, seed=0)
    trace = _trace(scale, N_REQUESTS)
    hot_count = sum(1 for name, _, _ in trace if name == HOT_MATRIX)
    assert len(trace) >= 64 and hot_count > len(trace) // 2

    t0 = time.perf_counter()
    naive_xs = _naive(trace, cfg)
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    served_xs, report = _served(trace, cfg)
    t_served = time.perf_counter() - t0

    # cache-hit responses must be bit-identical to a fresh solve
    for x_naive, x_served in zip(naive_xs, served_xs):
        assert x_served.tobytes() == x_naive.tobytes(), \
            "served response diverged from the fresh per-request solve"
    assert report["cache"]["hits"] > 0
    assert report["requests"]["max_batch_nrhs"] >= 2

    # workers: a process-backed service must leave no orphans behind
    _, preport = _served(trace[:8], cfg, backend="process:2")
    assert multiprocessing.active_children() == [], \
        "worker processes survived service.close()"
    assert preport["requests"]["served"] == 8

    speedup = t_naive / t_served
    lines = [f"Serving throughput ({scale}, k=4, {len(trace)} requests, "
             f"{hot_count} hot / {len(trace) - hot_count} cold, "
             "serial backend)",
             f"naive per-request  {t_naive * 1e3:8.1f} ms   "
             f"{len(trace) / t_naive:8.1f} req/s",
             f"SolverService      {t_served * 1e3:8.1f} ms   "
             f"{len(trace) / t_served:8.1f} req/s   {speedup:5.2f}x",
             "",
             f"cache: {report['cache']['sessions']} sessions, "
             f"{report['cache']['hits']} hits / "
             f"{report['cache']['misses']} misses",
             f"batching: {report['requests']['batches']} batches, "
             f"max {report['requests']['max_batch_nrhs']} RHS, "
             f"mean {report['throughput']['mean_batch_nrhs']:.1f} RHS",
             f"solver throughput: "
             f"{report['throughput']['rhs_per_s']:.1f} RHS/s"]
    publish(results_dir, "service_throughput", "\n".join(lines))

    assert speedup >= GATE_SPEEDUP, (
        f"SolverService reached only {speedup:.2f}x over the naive "
        f"per-request path (gate {GATE_SPEEDUP}x)")


def main(argv: list[str] | None = None) -> int:
    """CLI: replay the trace and print the throughput comparison."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="tiny")
    ap.add_argument("--requests", type=int, default=N_REQUESTS)
    ap.add_argument("--k", type=int, default=4)
    args = ap.parse_args(argv)

    cfg = PDSLinConfig(k=args.k, seed=0)
    trace = _trace(args.scale, args.requests)
    t0 = time.perf_counter()
    _naive(trace, cfg)
    t_naive = time.perf_counter() - t0
    t0 = time.perf_counter()
    _, report = _served(trace, cfg)
    t_served = time.perf_counter() - t0
    speedup = t_naive / t_served
    print(f"naive:   {t_naive:6.2f} s  "
          f"{len(trace) / t_naive:8.1f} req/s")
    print(f"service: {t_served:6.2f} s  "
          f"{len(trace) / t_served:8.1f} req/s  ({speedup:.2f}x)")
    print(f"cache hits={report['cache']['hits']} "
          f"sessions={report['cache']['sessions']} "
          f"max_batch={report['requests']['max_batch_nrhs']}")
    return 0 if speedup >= GATE_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
