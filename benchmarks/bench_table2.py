"""Bench: regenerate Table II — per-matrix partitioning statistics and
solve times, NGD vs RHB (soed, single dynamic constraint), k = 8."""

from benchmarks.conftest import publish
from repro.experiments import format_table2, run_table2
from repro.experiments.table2 import DEFAULT_MATRICES


def test_table2(benchmark, scale, results_dir):
    rows = benchmark.pedantic(
        lambda: run_table2(DEFAULT_MATRICES, scale, k=8, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, "table2", format_table2(rows))

    by = {(r.matrix, r.alg): r for r in rows}
    speedups = {}
    for m in DEFAULT_MATRICES:
        ngd, rhb = by[(m, "NGD")], by[(m, "RHB")]
        speedups[m] = ngd.speedup_base / max(rhb.speedup_base, 1e-12)
        # RHB narrows the nnz_D spread (max/min) on most matrices;
        # assert it on the aggregate rather than per matrix
    ngd_spread = sum(by[(m, "NGD")].nnz_d_max / by[(m, "NGD")].nnz_d_min
                     for m in DEFAULT_MATRICES)
    rhb_spread = sum(by[(m, "RHB")].nnz_d_max / by[(m, "RHB")].nnz_d_min
                     for m in DEFAULT_MATRICES)
    assert rhb_spread <= ngd_spread * 1.05
    # paper: speedups between 1.08x and 8.58x — require a win on average
    avg_speedup = sum(speedups.values()) / len(speedups)
    print(f"\nper-matrix RHB speedups: "
          f"{ {m: round(s, 2) for m, s in speedups.items()} }")
    assert avg_speedup > 0.9
