"""Microbenchmarks of the library's computational kernels.

Unlike the table/figure benches (single-shot experiment regeneration),
these use pytest-benchmark's statistical timing on the individual
substrate kernels, so performance regressions in the partitioner, the
orderings, or the triangular solver show up directly.
"""

import numpy as np
import pytest

from repro.core import rhb_partition
from repro.graphs import nested_dissection_partition
from repro.hypergraph import Hypergraph, bisect_hypergraph
from repro.lu import (
    SupernodalLower,
    blocked_triangular_solve,
    factorize,
    partition_columns,
    solution_pattern,
)
from repro.matrices import generate
from repro.ordering import (
    elimination_tree,
    minimum_degree,
    reverse_cuthill_mckee,
)


@pytest.fixture(scope="module")
def cavity(scale):
    return generate("tdr190k", "tiny" if scale == "tiny" else "small")


def test_kernel_etree(benchmark, cavity):
    from repro.sparse import symmetrized
    A = symmetrized(cavity.A)
    benchmark(elimination_tree, A)


def test_kernel_minimum_degree(benchmark, cavity):
    benchmark.pedantic(minimum_degree, args=(cavity.A,), rounds=3,
                       iterations=1)


def test_kernel_rcm(benchmark, cavity):
    benchmark.pedantic(reverse_cuthill_mckee, args=(cavity.A,), rounds=3,
                       iterations=1)


def test_kernel_hypergraph_bisection(benchmark, cavity):
    H = Hypergraph.column_net_model(cavity.M)
    benchmark.pedantic(
        lambda: bisect_hypergraph(H, epsilon=0.05, seed=0, n_trials=2),
        rounds=3, iterations=1)


def test_kernel_rhb_k8(benchmark, cavity):
    benchmark.pedantic(
        lambda: rhb_partition(cavity.A, 8, M=cavity.M, seed=0, n_trials=2),
        rounds=1, iterations=1)


def test_kernel_ngd_k8(benchmark, cavity):
    benchmark.pedantic(
        lambda: nested_dissection_partition(cavity.A, 8, seed=0, n_trials=2),
        rounds=1, iterations=1)


def test_kernel_lu_factorize(benchmark, cavity):
    A = cavity.A.tocsc()
    perm = minimum_degree(cavity.A)
    benchmark.pedantic(
        lambda: factorize(A, col_perm=perm, diag_pivot_thresh=0.0),
        rounds=3, iterations=1)


def test_kernel_blocked_trsolve(benchmark, cavity):
    import scipy.sparse as sp
    A = cavity.A.tocsc()
    f = factorize(A, diag_pivot_thresh=0.0)
    n = A.shape[0]
    E = sp.random(n, 64, 0.02, random_state=0, format="csr")
    Ep = f.permute_rows(E)
    G = solution_pattern(f.L, Ep)
    snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
    parts = partition_columns(np.arange(64), 16)
    benchmark.pedantic(
        lambda: blocked_triangular_solve(snl, Ep, G, parts),
        rounds=3, iterations=1)
