"""Bench: batched multi-RHS throughput (solve_block vs per-column).

Measures the smoke matrix at nrhs=16 through three paths — the old
per-column loop (one full ``solve()`` per column, what ``solve_multiple``
used to do), the batched ``solve_block`` with column-to-column Krylov
seeding (the default), and ``solve_block`` with ``block_gmres=True`` —
and reports RHS/s against the block size. Acceptance gates: block-GMRES
``solve_block`` must beat the per-column loop by >= 3x and the default
seeded path by >= 1.5x, with the parity contract checked in the same run
(bit-identical solutions with seeding off, equal certification with it
on).

Run directly (``PYTHONPATH=src python -m benchmarks.bench_multirhs
--metrics m.json``) to produce the multirhs ``metrics.json`` the CI
``multirhs-bench`` job feeds to ``tools/perf_gate.py``.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import publish
from repro.matrices import generate
from repro.obs.smoke import MULTIRHS_NRHS, SMOKE_MATRIX, run_multirhs_smoke
from repro.solver import PDSLin, PDSLinConfig

NRHS = MULTIRHS_NRHS
BLOCK_SIZES = (1, 4, 16, 64)
GATE_BLOCK_GMRES = 3.0   # block-GMRES solve_block vs per-column loop
GATE_SEEDED = 1.5        # default seeded solve_block vs per-column loop
REPS = 3


def _setup(A, *, k, seed=0, **kw):
    solver = PDSLin(A.copy(), PDSLinConfig(
        k=k, seed=seed, rhs_ordering="hypergraph", block_size=32, **kw))
    solver.setup()
    return solver


def _best_of(fn, reps=REPS):
    walls = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def test_multirhs_throughput(scale, results_dir):
    k = 4
    gm = generate(SMOKE_MATRIX, scale)
    A = gm.A.tocsr()
    rng = np.random.default_rng(0)
    B = rng.standard_normal((A.shape[0], NRHS))

    old = _setup(A, k=k)
    t_old = _best_of(lambda: [old.solve(B[:, j]) for j in range(NRHS)])
    cols = [old.solve(B[:, j]) for j in range(NRHS)]

    seeded = _setup(A, k=k)
    t_seeded = _best_of(lambda: seeded.solve_block(B))
    res_seeded = seeded.solve_block(B)

    blockg = _setup(A, k=k, block_gmres=True)
    t_blockg = _best_of(lambda: blockg.solve_block(B))
    res_blockg = blockg.solve_block(B)

    # parity contract: seeding off -> bit-identical to per-column solve
    unseeded = _setup(A, k=k, krylov_seed=False)
    res_unseeded = unseeded.solve_block(B)
    for j in range(NRHS):
        assert res_unseeded[j].x.tobytes() == cols[j].x.tobytes(), \
            f"unseeded solve_block broke bit parity on column {j}"
    # ... and the seeded/block paths stay equally certified
    for res in (res_seeded, res_blockg):
        for j in range(NRHS):
            assert res[j].converged
            assert res[j].certified == cols[j].certified, \
                f"certification parity broken on column {j}"

    # RHS/s against the block size, batched vs per-column
    rows = []
    rng2 = np.random.default_rng(1)
    for p in BLOCK_SIZES:
        Bp = rng2.standard_normal((A.shape[0], p))
        t_col = _best_of(lambda: [old.solve(Bp[:, j]) for j in range(p)])
        t_blk = _best_of(lambda: seeded.solve_block(Bp))
        rows.append((p, p / t_col, p / t_blk, t_col / t_blk))

    lines = [f"Multi-RHS throughput ({SMOKE_MATRIX} {scale}, k={k}, "
             f"nrhs={NRHS}, serial backend, best of {REPS})",
             f"per-column loop   {t_old * 1e3:8.1f} ms   "
             f"{NRHS / t_old:8.1f} RHS/s",
             f"solve_block       {t_seeded * 1e3:8.1f} ms   "
             f"{NRHS / t_seeded:8.1f} RHS/s   "
             f"{t_old / t_seeded:5.2f}x",
             f"  + block_gmres   {t_blockg * 1e3:8.1f} ms   "
             f"{NRHS / t_blockg:8.1f} RHS/s   "
             f"{t_old / t_blockg:5.2f}x",
             "",
             f"{'nrhs':>6} {'per-col RHS/s':>14} {'block RHS/s':>12} "
             f"{'speedup':>8}"]
    for p, r_col, r_blk, sp in rows:
        lines.append(f"{p:>6} {r_col:>14.1f} {r_blk:>12.1f} {sp:>7.2f}x")
    publish(results_dir, "multirhs_throughput", "\n".join(lines))

    assert t_old / t_blockg >= GATE_BLOCK_GMRES, (
        f"block-GMRES solve_block reached only {t_old / t_blockg:.2f}x "
        f"over the per-column loop (gate {GATE_BLOCK_GMRES}x)")
    assert t_old / t_seeded >= GATE_SEEDED, (
        f"seeded solve_block reached only {t_old / t_seeded:.2f}x "
        f"over the per-column loop (gate {GATE_SEEDED}x)")


def main(argv: list[str] | None = None) -> int:
    """CLI: run the multirhs scenario and write the perf-gate metrics."""
    from repro.obs.export import format_stage_summary, write_metrics

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", default="multirhs-metrics.json")
    ap.add_argument("--scale", default="tiny")
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--nrhs", type=int, default=NRHS)
    args = ap.parse_args(argv)
    run = run_multirhs_smoke(scale=args.scale, k=args.k, seed=args.seed,
                             nrhs=args.nrhs)
    Path(args.metrics).parent.mkdir(parents=True, exist_ok=True)
    write_metrics(run.tracer, args.metrics, meta=run.meta)
    print(format_stage_summary(run.tracer))
    rate = run.tracer.counters.get("noise:rhs_per_s", 0.0)
    print(f"converged={run.converged} iterations={run.iterations} "
          f"worst_residual={run.residual_norm:.2e} "
          f"throughput={rate:.1f} RHS/s")
    print(f"wrote {args.metrics}")
    return 0 if run.converged else 1


if __name__ == "__main__":
    raise SystemExit(main())
