"""Bench: regenerate the Section V-B(c) study — quasi-dense row removal
speeds up the hypergraph RHS partitioning with flat quality until tau
drops too low."""

from benchmarks.conftest import publish
from repro.experiments import (
    format_quasidense,
    prepare_triangular_study,
    run_quasidense,
)
from repro.matrices import generate

TAUS = (None, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05)


def test_quasidense(benchmark, scale, results_dir):
    subs = prepare_triangular_study(generate("tdr190k", scale), k=8, seed=0)
    points = benchmark.pedantic(
        lambda: run_quasidense(subs=subs, block_size=64, taus=TAUS, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, "quasidense", format_quasidense(points))

    base = points[0]
    by_tau = {p.tau: p for p in points}
    # removal speeds up partitioning (paper: factors up to 4)
    assert by_tau[0.4].partition_seconds < base.partition_seconds
    # quality stays flat for moderate tau (paper: until tau < 0.1)
    assert by_tau[0.4].padded_fraction_avg <= \
        base.padded_fraction_avg + 0.05
    # aggressive tau removes many more rows
    assert by_tau[0.05].rows_removed_frac >= by_tau[0.8].rows_removed_frac
