"""Bench: regenerate Table III — statistics of the interface solution
patterns G_l (nnz, nonzero rows/cols, effective density, fill ratio)."""

from benchmarks.conftest import publish
from repro.experiments import format_table3, run_table3
from repro.experiments.table3 import DEFAULT_MATRICES


def test_table3(benchmark, scale, results_dir):
    rows = benchmark.pedantic(
        lambda: run_table3(DEFAULT_MATRICES, scale, k=8, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, "table3", format_table3(rows))

    by = {r.matrix: r for r in rows}
    for r in rows:
        assert r.fill_ratio_min >= 1.0          # solves only add fill
        assert 0.0 < r.eff_density_max <= 1.0
    # the paper's Table III: matrix211's interfaces are the sparsest
    # (smallest fill ratio) of the set — this drives the Fig. 4
    # postorder-vs-hypergraph crossover
    assert by["matrix211"].fill_ratio_max <= \
        min(by[m].fill_ratio_max for m in by if m != "matrix211") * 2.0
