"""Bench: regenerate Fig. 5 — blocked sparse triangular solution time vs
block size B for the three RHS orderings (four panels)."""

import pytest

from benchmarks.conftest import publish
from repro.experiments import format_fig5, prepare_triangular_study, run_fig5
from repro.matrices import generate

PANELS = ["tdr190k", "dds.quad", "dds.linear", "matrix211"]
BLOCK_SIZES = (8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def studies(scale):
    return {m: prepare_triangular_study(generate(m, scale), k=8, seed=0)
            for m in PANELS}


@pytest.mark.parametrize("matrix", PANELS)
def test_fig5_panel(benchmark, scale, results_dir, studies, matrix):
    subs = studies[matrix]
    points = benchmark.pedantic(
        lambda: run_fig5(subs=subs, block_sizes=BLOCK_SIZES, tau=0.4, seed=0),
        rounds=1, iterations=1)
    publish(results_dir, f"fig5_{matrix.replace('.', '_')}",
            format_fig5(points, title=f"Fig. 5 — {matrix}"))

    flops = {(p.ordering, p.block_size): p.flops_avg for p in points}
    # padding shows up as extra numeric work: at the largest B the
    # reordered solves never cost (meaningfully) more than natural
    B = BLOCK_SIZES[-1]
    best = min(flops[("postorder", B)], flops[("hypergraph", B)])
    assert best <= flops[("natural", B)] * 1.05
