"""Unit tests for the hypergraph substrate."""

import numpy as np
import pytest
from tests.conftest import grid_laplacian

from repro.hypergraph import (
    Hypergraph,
    bisect_hypergraph,
    bisection_cut,
    coarsen_hypergraph,
    contract_hypergraph,
    cutsize,
    enforce_exact_quota,
    fm_refine_hypergraph,
    heavy_connectivity_matching,
    hypergraph_gains,
    imbalance,
    initial_net_costs,
    net_connectivities,
    part_weights,
    split_by_side,
)


def small_h() -> Hypergraph:
    """4 vertices, 3 nets: {0,1}, {1,2,3}, {3}."""
    return Hypergraph.from_arrays(
        net_ptr=[0, 2, 5, 6], pins=[0, 1, 1, 2, 3, 3], n_vertices=4)


class TestStructure:
    def test_counts(self):
        H = small_h()
        assert H.n_nets == 3 and H.n_vertices == 4 and H.n_pins == 6

    def test_incidence_transpose(self):
        H = small_h()
        np.testing.assert_array_equal(H.vertex_net_list(1), [0, 1])
        np.testing.assert_array_equal(H.vertex_net_list(3), [1, 2])

    def test_column_net_model(self, grid8):
        H = Hypergraph.column_net_model(grid8)
        assert H.n_vertices == grid8.shape[0]
        assert H.n_nets == grid8.shape[1]
        assert H.n_pins == grid8.nnz

    def test_row_net_model_is_transpose(self, grid8):
        Hc = Hypergraph.column_net_model(grid8)
        Hr = Hypergraph.row_net_model(grid8.T.tocsr())
        assert Hr.n_nets == Hc.n_nets
        assert Hr.n_pins == Hc.n_pins

    def test_incidence_matrix_roundtrip(self):
        H = small_h()
        I = H.to_incidence_matrix()
        assert I.shape == (3, 4)
        assert I.nnz == 6

    def test_validate_duplicate_pins(self):
        H = Hypergraph.from_arrays([0, 2], [1, 1], 3)
        with pytest.raises(ValueError):
            H.validate()

    def test_flat_weights_become_single_constraint(self):
        H = Hypergraph.from_arrays([0, 1], [0], 2,
                                   vertex_weights=np.array([3, 4]))
        assert H.vertex_weights.shape == (2, 1)

    def test_pin_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph.from_arrays([0, 1], [5], 2)


class TestMetrics:
    def test_connectivities(self):
        H = small_h()
        part = np.array([0, 0, 1, 1])
        lam = net_connectivities(H, part, 2)
        np.testing.assert_array_equal(lam, [1, 2, 1])

    def test_cut_metrics_consistent(self):
        H = small_h()
        part = np.array([0, 1, 0, 1])
        # net0 {0,1}: cut; net1 {1,2,3}: cut; net2 {3}: not
        assert cutsize(H, part, 2, "con1") == 2
        assert cutsize(H, part, 2, "cnet") == 2
        assert cutsize(H, part, 2, "soed") == 4

    def test_soed_equals_con1_plus_cnet(self, grid8):
        H = Hypergraph.column_net_model(grid8)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 4, H.n_vertices)
        assert cutsize(H, part, 4, "soed") == \
            cutsize(H, part, 4, "con1") + cutsize(H, part, 4, "cnet")

    def test_weighted_nets(self):
        H = Hypergraph.from_arrays([0, 2], [0, 1], 2,
                                   net_costs=np.array([5]))
        part = np.array([0, 1])
        assert cutsize(H, part, 2, "con1") == 5
        assert cutsize(H, part, 2, "soed") == 10

    def test_single_part_zero_cut(self, grid8):
        H = Hypergraph.column_net_model(grid8)
        part = np.zeros(H.n_vertices, dtype=np.int64)
        for m in ("con1", "cnet", "soed"):
            assert cutsize(H, part, 1, m) == 0

    def test_imbalance_eq6(self):
        H = Hypergraph.from_arrays([0], [], 4,
                                   vertex_weights=np.array([1, 1, 1, 3]))
        part = np.array([0, 0, 0, 1])
        # W = (3, 3), Wavg = 3 -> imbalance 0
        assert imbalance(H, part, 2)[0] == pytest.approx(0.0)

    def test_part_weights_multiconstraint(self):
        w = np.array([[1, 10], [2, 20], [3, 30]])
        H = Hypergraph.from_arrays([0], [], 3, vertex_weights=w)
        W = part_weights(H, np.array([0, 1, 1]), 2)
        np.testing.assert_array_equal(W, [[1, 10], [5, 50]])

    def test_invalid_metric_rejected(self):
        H = small_h()
        with pytest.raises(ValueError):
            cutsize(H, np.zeros(4, dtype=int), 1, "bogus")


class TestCoarsening:
    def test_matching_symmetric(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        match = heavy_connectivity_matching(H, seed=0)
        for v in range(H.n_vertices):
            if match[v] >= 0:
                assert match[match[v]] == v

    def test_contract_preserves_weight(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        level = contract_hypergraph(H, heavy_connectivity_matching(H, seed=0))
        np.testing.assert_array_equal(level.hypergraph.total_weight(),
                                      H.total_weight())

    def test_coarse_cut_equals_fine_cut_under_projection(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        level = contract_hypergraph(H, heavy_connectivity_matching(H, seed=1))
        Hc = level.hypergraph
        rng = np.random.default_rng(2)
        cside = rng.integers(0, 2, Hc.n_vertices)
        fine = level.project(cside)
        # con1 == cnet in a bisection; costs are preserved through the
        # single-pin-drop + identical-net-merge transformations
        assert cutsize(Hc, cside, 2, "con1") == cutsize(H, fine, 2, "con1")

    def test_coarsen_shrinks(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        levels = coarsen_hypergraph(H, min_vertices=40, seed=0)
        assert levels and levels[-1].hypergraph.n_vertices < H.n_vertices / 2


class TestFM:
    def test_bisection_cut_reference(self):
        H = small_h()
        side = np.array([0, 1, 0, 1])
        assert bisection_cut(H, side) == 2

    def test_fm_improves_random(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        rng = np.random.default_rng(0)
        side = rng.integers(0, 2, H.n_vertices)
        cut0 = bisection_cut(H, side)
        caps = np.full((2, 1), 0.6 * H.n_vertices)
        refined, cut = fm_refine_hypergraph(H, side, caps=caps)
        assert cut < cut0
        assert cut == bisection_cut(H, refined)

    def test_incremental_cut_matches_recomputed(self, grid8):
        # run FM and double-check its reported cut against from-scratch
        H = Hypergraph.column_net_model(grid8)
        rng = np.random.default_rng(5)
        for _trial in range(3):
            side = rng.integers(0, 2, H.n_vertices)
            caps = np.full((2, 1), 0.7 * H.n_vertices)
            refined, cut = fm_refine_hypergraph(H, side, caps=caps)
            assert cut == bisection_cut(H, refined)

    def test_caps_respected(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        rng = np.random.default_rng(1)
        side = rng.integers(0, 2, H.n_vertices)
        caps = np.full((2, 1), 0.55 * H.n_vertices)
        refined, _ = fm_refine_hypergraph(H, side, caps=caps)
        counts = np.bincount(refined, minlength=2)
        assert counts.max() <= caps[0, 0]

    def test_gains_match_definition(self, grid8):
        H = Hypergraph.column_net_model(grid8)
        rng = np.random.default_rng(3)
        side = rng.integers(0, 2, H.n_vertices)
        sigma = np.zeros((2, H.n_nets), dtype=np.int64)
        for j in range(H.n_nets):
            for p in H.net_pins(j):
                sigma[side[p], j] += 1
        gains = hypergraph_gains(H, side, sigma)
        # brute force: gain = cut(before) - cut(after move)
        base = bisection_cut(H, side)
        for v in range(0, H.n_vertices, 7):
            s2 = side.copy()
            s2[v] = 1 - s2[v]
            assert gains[v] == base - bisection_cut(H, s2)

    def test_bad_caps_shape_rejected(self, grid8):
        H = Hypergraph.column_net_model(grid8)
        with pytest.raises(ValueError):
            fm_refine_hypergraph(H, np.zeros(H.n_vertices, dtype=int),
                                 caps=np.ones(3))


class TestBisect:
    def test_grid_quality(self):
        H = Hypergraph.column_net_model(grid_laplacian(16, 16))
        res = bisect_hypergraph(H, epsilon=0.05, seed=0, n_trials=4)
        assert res.cut <= 40  # straight cut costs ~32 nets

    def test_balance(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        res = bisect_hypergraph(H, epsilon=0.05, seed=0)
        W = res.part_weights[:, 0]
        assert W.max() <= (1.05) * H.n_vertices / 2 + 1

    def test_exact_quota(self, grid16):
        H = Hypergraph.column_net_model(grid16)
        res = bisect_hypergraph(H, seed=0, quota0=100)
        assert int((res.side == 0).sum()) == 100

    def test_enforce_exact_quota_counts(self, grid8):
        H = Hypergraph.column_net_model(grid8)
        side = np.zeros(H.n_vertices, dtype=np.int64)
        out = enforce_exact_quota(H, side, 20)
        assert int((out == 0).sum()) == 20

    def test_multiconstraint_balance(self, grid16):
        H0 = Hypergraph.column_net_model(grid16)
        rng = np.random.default_rng(0)
        w = np.stack([np.ones(H0.n_vertices, dtype=np.int64),
                      rng.integers(1, 5, H0.n_vertices)], axis=1)
        H = Hypergraph.from_arrays(H0.net_ptr, H0.pins, H0.n_vertices,
                                   vertex_weights=w)
        res = bisect_hypergraph(H, epsilon=0.15, seed=0)
        totals = H.total_weight()
        for c in range(2):
            assert res.part_weights[:, c].max() <= 0.65 * totals[c]


class TestNetOps:
    def test_initial_costs(self):
        np.testing.assert_array_equal(initial_net_costs(3, "soed"), [2, 2, 2])
        np.testing.assert_array_equal(initial_net_costs(3, "con1"), [1, 1, 1])

    def test_split_partitions_vertices(self):
        H = small_h()
        side = np.array([0, 0, 1, 1])
        spl = split_by_side(H, side, "con1")
        assert spl.children[0].n_vertices == 2
        assert spl.children[1].n_vertices == 2
        np.testing.assert_array_equal(spl.vertex_ids[0], [0, 1])

    def test_cut_net_splitting_con1(self):
        H = small_h()
        side = np.array([0, 0, 1, 1])
        spl = split_by_side(H, side, "con1")
        # net1 {1,2,3} is cut: fragment {1} on side0, {2,3} on side1
        np.testing.assert_array_equal(spl.cut_net_ids, [1])
        assert spl.children[0].n_nets == 2  # net0 + fragment of net1
        assert spl.children[1].n_nets == 2  # fragment of net1 + net2

    def test_cut_net_discarding_cnet(self):
        H = small_h()
        side = np.array([0, 0, 1, 1])
        spl = split_by_side(H, side, "cnet")
        assert spl.children[0].n_nets == 1
        assert spl.children[1].n_nets == 1

    def test_soed_cost_halving(self):
        H = Hypergraph.from_arrays([0, 3], [0, 1, 2], 3,
                                   net_costs=np.array([2]))
        side = np.array([0, 1, 1])
        spl = split_by_side(H, side, "soed")
        assert spl.cut_cost == 2
        assert spl.children[0].net_costs.tolist() == [1]
        assert spl.children[1].net_costs.tolist() == [1]

    def test_recursive_soed_accumulates_lambda(self):
        # one net with 4 pins split into 4 singleton parts: soed = 4
        H = Hypergraph.from_arrays([0, 4], [0, 1, 2, 3], 4,
                                   net_costs=initial_net_costs(1, "soed"))
        total = 0
        spl = split_by_side(H, np.array([0, 0, 1, 1]), "soed")
        total += spl.cut_cost
        for child in spl.children:
            spl2 = split_by_side(child, np.array([0, 1]), "soed")
            total += spl2.cut_cost
        assert total == 4  # lambda = 4

    def test_recursive_con1_accumulates_lambda_minus_1(self):
        H = Hypergraph.from_arrays([0, 4], [0, 1, 2, 3], 4)
        total = 0
        spl = split_by_side(H, np.array([0, 0, 1, 1]), "con1")
        total += spl.cut_cost
        for child in spl.children:
            spl2 = split_by_side(child, np.array([0, 1]), "con1")
            total += spl2.cut_cost
        assert total == 3  # lambda - 1

    def test_net_ids_traced_through_split(self):
        H = small_h()
        side = np.array([0, 0, 1, 1])
        spl = split_by_side(H, side, "con1")
        assert 1 in spl.children[0].net_ids  # fragment keeps original id


class TestVectorizedKernels:
    """Regressions for the vectorized cut/gain kernels against slow
    per-net reference loops."""

    @staticmethod
    def _random_h(rng, n_vertices=30, n_nets=20):
        nets = [rng.choice(n_vertices, size=int(rng.integers(0, 6)),
                           replace=False) for _ in range(n_nets)]
        net_ptr = np.concatenate(
            ([0], np.cumsum([len(net) for net in nets]))).astype(np.int64)
        pins = (np.concatenate(nets) if net_ptr[-1]
                else np.empty(0, dtype=np.int64))
        costs = rng.integers(1, 50, n_nets)
        return Hypergraph.from_arrays(net_ptr, pins, n_vertices,
                                      net_costs=costs)

    @staticmethod
    def _cut_reference(H, side):
        total = 0
        for j in range(H.n_nets):
            sides = {int(side[p]) for p in H.net_pins(j)}
            if len(sides) == 2:
                total += int(H.net_costs[j])
        return total

    def test_bisection_cut_fuzz_vs_reference(self):
        # empty nets, single-pin nets, and weighted nets all in play
        rng = np.random.default_rng(0)
        for _trial in range(20):
            H = self._random_h(rng)
            side = rng.integers(0, 2, H.n_vertices)
            assert bisection_cut(H, side) == self._cut_reference(H, side)

    def test_bisection_cut_all_one_side(self):
        rng = np.random.default_rng(1)
        H = self._random_h(rng)
        assert bisection_cut(H, np.zeros(H.n_vertices, dtype=int)) == 0
        assert bisection_cut(H, np.ones(H.n_vertices, dtype=int)) == 0

    def test_gains_exact_past_float53(self):
        # net costs beyond 2^53: a float64 accumulator (the old
        # np.bincount(weights=...) path) rounds the +3 away; the int64
        # np.add.at path must stay exact
        big = 2 ** 53
        H = Hypergraph.from_arrays(
            net_ptr=[0, 2, 4], pins=[0, 1, 0, 2], n_vertices=3,
            net_costs=[big, 3])
        side = np.array([0, 1, 1])
        sigma = np.zeros((2, H.n_nets), dtype=np.int64)
        for j in range(H.n_nets):
            for p in H.net_pins(j):
                sigma[side[p], j] += 1
        gains = hypergraph_gains(H, side, sigma)
        assert gains.dtype == np.int64
        # both nets are cut with vertex 0 their sole side-0 pin: moving
        # it uncuts both, for an exactly representable gain of 2^53 + 3
        assert gains[0] == big + 3
        assert float(big) + 3.0 != big + 3  # the float64 rounding trap
        assert gains[1] == big and gains[2] == 3
