"""Additional coverage: CLI paths, coarsening edge cases,
multi-constraint k-way refinement, report round-trips."""

import numpy as np
from tests.conftest import grid_laplacian

from repro.hypergraph import (
    Hypergraph,
    contract_hypergraph,
    cutsize,
    heavy_connectivity_matching,
    kway_refine,
)


class TestCLIMore:
    def test_fig4_cli(self, capsys, tmp_path):
        from repro.experiments.__main__ import main
        rc = main(["fig4", "--scale", "tiny", "--k", "2",
                   "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig4.txt").exists()
        assert "ordering" in capsys.readouterr().out

    def test_scaling_cli(self, capsys):
        from repro.experiments.__main__ import main
        rc = main(["scaling", "--scale", "tiny", "--k", "2"])
        assert rc == 0
        assert "two-level" in capsys.readouterr().out

    def test_ablation_cli(self, capsys):
        from repro.experiments.__main__ import main
        rc = main(["ablation", "--scale", "tiny", "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "weight schemes" in out and "FM passes" in out


class TestCoarsenEdgeCases:
    def test_empty_hypergraph_contract(self):
        H = Hypergraph.from_arrays([0], [], 3)
        match = heavy_connectivity_matching(H, seed=0)
        level = contract_hypergraph(H, match)
        assert level.hypergraph.n_nets == 0
        assert level.hypergraph.n_vertices <= 3

    def test_single_net_hypergraph(self):
        H = Hypergraph.from_arrays([0, 4], [0, 1, 2, 3], 4)
        match = heavy_connectivity_matching(H, seed=0)
        level = contract_hypergraph(H, match)
        # the lone net either survives (>1 coarse pin) or vanishes
        assert level.hypergraph.n_nets <= 1

    def test_identical_nets_merge_costs(self):
        # two identical nets must merge with summed cost after contraction
        H = Hypergraph.from_arrays([0, 2, 4], [0, 1, 0, 1], 2,
                                   net_costs=np.array([3, 4]))
        match = np.array([0, 1])  # no matching: identity contraction
        level = contract_hypergraph(H, match)
        assert level.hypergraph.n_nets == 1
        assert int(level.hypergraph.net_costs[0]) == 7


class TestKWayMultiConstraint:
    def test_refine_with_two_constraints(self):
        A = grid_laplacian(12, 12)
        H0 = Hypergraph.column_net_model(A)
        rng = np.random.default_rng(0)
        w = np.stack([np.ones(144, dtype=np.int64),
                      rng.integers(1, 4, 144)], axis=1)
        H = Hypergraph.from_arrays(H0.net_ptr, H0.pins, 144,
                                   vertex_weights=w)
        part = rng.integers(0, 3, 144)
        before = cutsize(H, part, 3, "con1")
        out = kway_refine(H, part, 3, epsilon=0.5)
        assert cutsize(H, out, 3, "con1") <= before


class TestGMRESHistory:
    def test_history_monotone_within_cycle(self, spd60, rng):
        from repro.solver import gmres
        b = rng.standard_normal(60)
        res = gmres(lambda v: spd60 @ v, b, tol=1e-12, restart=60)
        # within a single Arnoldi cycle the least-squares residual is
        # non-increasing
        inner = res.residual_norms[1:]
        assert all(a >= b - 1e-12 for a, b in zip(inner, inner[1:]))
