"""Unit tests for RHB partitioning and the dynamic weight schemes."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import compute_vertex_weights, rhb_partition
from repro.core.weights import current_w1
from repro.hypergraph import Hypergraph
from repro.matrices import cavity_matrix
from repro.sparse import edge_incidence_factor, row_nnz


class TestWeights:
    def make_h(self, grid8):
        M = edge_incidence_factor(grid8)
        return Hypergraph.column_net_model(M), row_nnz(M)

    def test_unit_scheme(self, grid8):
        H, w2 = self.make_h(grid8)
        w = compute_vertex_weights(H, "unit", w2, first_bisection=False)
        assert w.shape == (H.n_vertices, 1)
        assert np.all(w == 1)

    def test_first_bisection_forces_unit(self, grid8):
        H, w2 = self.make_h(grid8)
        w = compute_vertex_weights(H, "w1", w2, first_bisection=True)
        assert np.all(w == 1)

    def test_w1_equals_degree(self, grid8):
        H, w2 = self.make_h(grid8)
        w = compute_vertex_weights(H, "w1", w2, first_bisection=False)
        np.testing.assert_array_equal(w[:, 0],
                                      np.maximum(current_w1(H), 1))

    def test_w1w2_two_constraints(self, grid8):
        H, w2 = self.make_h(grid8)
        w = compute_vertex_weights(H, "w1w2", w2, first_bisection=False)
        assert w.shape == (H.n_vertices, 2)

    def test_w2_static(self, grid8):
        H, w2 = self.make_h(grid8)
        w = compute_vertex_weights(H, "w2", w2, first_bisection=False)
        np.testing.assert_array_equal(w[:, 0], np.maximum(w2, 1))

    def test_invalid_scheme(self, grid8):
        H, w2 = self.make_h(grid8)
        with pytest.raises(ValueError):
            compute_vertex_weights(H, "nope", w2, first_bisection=False)

    def test_wrong_w2_length(self, grid8):
        H, _ = self.make_h(grid8)
        with pytest.raises(ValueError):
            compute_vertex_weights(H, "w1", np.ones(3), first_bisection=False)


class TestRHB:
    @pytest.mark.parametrize("metric", ["con1", "cnet", "soed"])
    def test_dbbd_valid_each_metric(self, grid16, metric):
        r = rhb_partition(grid16, 4, metric=metric, seed=0)
        p = r.to_dbbd(grid16)  # validates
        assert p.separator_size == r.separator_size

    @pytest.mark.parametrize("scheme", ["unit", "w1", "w1w2"])
    def test_schemes_run(self, grid16, scheme):
        r = rhb_partition(grid16, 4, scheme=scheme, seed=0)
        sizes = np.bincount(r.col_part[r.col_part >= 0], minlength=4)
        assert np.all(sizes > 0)

    def test_every_column_assigned_or_separator(self, grid16):
        r = rhb_partition(grid16, 8, seed=1)
        assert r.col_part.size == grid16.shape[0]
        assert np.all((r.col_part >= -1) & (r.col_part < 8))

    def test_rows_partitioned(self, grid16):
        r = rhb_partition(grid16, 4, seed=0)
        assert np.all((r.row_part >= 0) & (r.row_part < 4))

    def test_fem_incidence_factor_used(self):
        gm = cavity_matrix(6, 6, 6, seed=0)
        r = rhb_partition(gm.A, 4, M=gm.M, seed=0)
        p = r.to_dbbd(gm.A)
        assert p.separator_size > 0
        sizes = p.subdomain_sizes() if hasattr(p, "subdomain_sizes") else \
            np.asarray([p.subdomain_vertices(i).size for i in range(4)])
        assert np.all(sizes > 0)

    def test_separator_smaller_than_naive(self, grid16):
        r = rhb_partition(grid16, 4, seed=0)
        assert r.separator_size < 0.3 * grid16.shape[0]

    def test_k1_trivial(self, grid8):
        r = rhb_partition(grid8, 1, seed=0)
        assert r.separator_size == 0
        assert np.all(r.col_part == 0)

    def test_non_power_of_two_k(self, grid16):
        r = rhb_partition(grid16, 6, seed=0)
        sizes = np.bincount(r.col_part[r.col_part >= 0], minlength=6)
        assert np.all(sizes > 0)

    def test_deterministic(self, grid16):
        a = rhb_partition(grid16, 4, seed=9)
        b = rhb_partition(grid16, 4, seed=9)
        np.testing.assert_array_equal(a.col_part, b.col_part)

    def test_mismatched_m_rejected(self, grid16):
        M = sp.csr_matrix((4, 7))
        with pytest.raises(ValueError):
            rhb_partition(grid16, 4, M=M)

    def test_cut_costs_recorded(self, grid16):
        r = rhb_partition(grid16, 4, seed=0)
        assert len(r.cut_costs) == 3  # k-1 bisections for k=4
        assert r.total_cut_cost == sum(r.cut_costs)

    def test_dynamic_weights_change_partition(self):
        """Regression: under net splitting the raw vertex degree never
        changes, so w1 must count internal columns only — otherwise the
        'dynamic' scheme silently degenerates to unit weights."""
        gm = cavity_matrix(12, 12, 12, seed=0)
        r_unit = rhb_partition(gm.A, 8, M=gm.M, scheme="unit", seed=0)
        r_w1 = rhb_partition(gm.A, 8, M=gm.M, scheme="w1", seed=0)
        assert not np.array_equal(r_unit.col_part, r_w1.col_part)

    def test_parallel_partition_projection(self, grid16):
        r = rhb_partition(grid16, 8, seed=0)
        assert len(r.bisection_seconds) == 7
        serial = r.serial_partition_seconds
        par_inf = r.parallel_partition_seconds()
        par_2 = r.parallel_partition_seconds(2)
        assert 0 < par_inf <= par_2 <= serial + 1e-12
        # the first bisection is always serial, so perfect parallelism
        # cannot beat the per-level maxima
        assert par_inf >= max(r.bisection_seconds[0], 0.0)

    def test_unsymmetric_input(self, unsym50):
        r = rhb_partition(unsym50, 2, seed=0)
        from repro.sparse import symmetrized
        p = r.to_dbbd(symmetrized(unsym50))
        assert p.k == 2
