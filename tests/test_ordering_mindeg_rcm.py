"""Unit tests for minimum-degree and RCM orderings."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.ordering import (
    bandwidth,
    envelope_size,
    minimum_degree,
    permute_symmetric,
    pseudo_peripheral_vertex,
    reverse_cuthill_mckee,
    symbolic_cholesky_row_counts,
)


def fill_of(A) -> int:
    return int(symbolic_cholesky_row_counts(A).sum())


class TestMinimumDegree:
    def test_is_permutation(self, grid8):
        order = minimum_degree(grid8)
        assert sorted(order.tolist()) == list(range(grid8.shape[0]))

    def test_reduces_fill_on_grid(self):
        A = grid_laplacian(12, 12)
        order = minimum_degree(A)
        assert fill_of(permute_symmetric(A, order)) < fill_of(A)

    def test_reduces_fill_on_random_spd(self, spd60):
        order = minimum_degree(spd60)
        # natural order of a random matrix is usually terrible; MD must
        # not be significantly worse
        assert fill_of(permute_symmetric(spd60, order)) <= fill_of(spd60)

    def test_deterministic(self, grid8):
        a = minimum_degree(grid8)
        b = minimum_degree(grid8)
        np.testing.assert_array_equal(a, b)

    def test_tridiagonal_identity_fill(self):
        # tridiagonal has no fill in natural order; MD keeps it optimal
        A = sp.diags([np.ones(9), 2 * np.ones(10), np.ones(9)],
                     [-1, 0, 1]).tocsr()
        order = minimum_degree(A)
        assert fill_of(permute_symmetric(A, order)) == fill_of(A)

    def test_star_graph_center_last(self):
        # star: eliminating the hub first creates a clique; MD must
        # defer the hub (degree n-1) to the end
        n = 8
        rows = [0] * (n - 1) + list(range(1, n))
        cols = list(range(1, n)) + [0] * (n - 1)
        A = (sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
             + 2 * sp.eye(n)).tocsr()
        order = minimum_degree(A)
        assert order[-1] == 0 or order[-2] == 0

    def test_empty_matrix(self):
        assert minimum_degree(sp.csr_matrix((0, 0))).size == 0

    def test_unsymmetric_handled(self, unsym50):
        order = minimum_degree(unsym50)
        assert sorted(order.tolist()) == list(range(50))


class TestRCM:
    def test_is_permutation(self, grid8):
        order = reverse_cuthill_mckee(grid8)
        assert sorted(order.tolist()) == list(range(grid8.shape[0]))

    def test_reduces_bandwidth(self, spd60):
        order = reverse_cuthill_mckee(spd60)
        P = permute_symmetric(spd60, order)
        assert bandwidth(P) <= bandwidth(spd60)

    def test_grid_bandwidth_near_optimal(self):
        A = grid_laplacian(6, 30)  # long thin grid: optimal bandwidth ~6
        order = reverse_cuthill_mckee(A)
        assert bandwidth(permute_symmetric(A, order)) <= 8

    def test_disconnected_graph(self):
        A = sp.block_diag([grid_laplacian(3, 3), grid_laplacian(2, 2)]).tocsr()
        order = reverse_cuthill_mckee(A)
        assert sorted(order.tolist()) == list(range(13))

    def test_deterministic(self, grid8):
        np.testing.assert_array_equal(reverse_cuthill_mckee(grid8),
                                      reverse_cuthill_mckee(grid8))


class TestPeripheralAndMetrics:
    def test_path_graph_endpoint(self):
        A = sp.diags([np.ones(9), 2 * np.ones(10), np.ones(9)],
                     [-1, 0, 1]).tocsr()
        v = pseudo_peripheral_vertex(A, start=5)
        assert v in (0, 9)

    def test_bandwidth_diagonal(self):
        assert bandwidth(sp.eye(5).tocsr()) == 0

    def test_bandwidth_empty(self):
        assert bandwidth(sp.csr_matrix((3, 3))) == 0

    def test_envelope_size_tridiagonal(self):
        A = sp.diags([np.ones(3), np.ones(4), np.ones(3)], [-1, 0, 1]).tocsr()
        assert envelope_size(A) == 3

    def test_start_out_of_range(self, grid8):
        with pytest.raises(IndexError):
            pseudo_peripheral_vertex(grid8, start=1000)


class TestEnvelopeReference:
    """Regression: the reduceat-vectorized envelope_size against a slow
    per-row reference loop."""

    @staticmethod
    def _reference(A) -> int:
        A = A.tocsr()
        total = 0
        for i in range(A.shape[0]):
            cols = [int(j) for j in A.indices[A.indptr[i]:A.indptr[i + 1]]
                    if j <= i]
            if cols:
                total += i - min(cols)
        return total

    def test_fuzz_vs_reference(self):
        rng = np.random.default_rng(0)
        for _trial in range(20):
            n = int(rng.integers(1, 40))
            A = sp.random(n, n, density=float(rng.uniform(0.02, 0.4)),
                          random_state=rng, format="csr")
            assert envelope_size(A) == self._reference(A)

    def test_strictly_upper_triangular(self):
        # no row has an entry on or below the diagonal, so every row
        # falls in the "contributes nothing" branch
        A = sp.csr_matrix(np.triu(np.ones((5, 5)), k=1))
        assert envelope_size(A) == 0

    def test_interleaved_empty_rows(self):
        # rows 0 and 2 empty, row 1 and 3 lower entries: reduceat must
        # line its segments up with the *nonempty* rows only
        A = sp.csr_matrix((np.ones(2), ([1, 3], [0, 1])), shape=(4, 4))
        assert envelope_size(A) == (1 - 0) + (3 - 1)
        assert envelope_size(A) == self._reference(A)

    def test_empty_matrix(self):
        assert envelope_size(sp.csr_matrix((4, 4))) == 0
        assert envelope_size(sp.csr_matrix((0, 0))) == 0


class TestRCMDisconnected:
    def test_isolated_vertices(self):
        A = sp.block_diag([grid_laplacian(3, 3), sp.csr_matrix((1, 1)),
                           grid_laplacian(2, 2),
                           sp.csr_matrix((2, 2))]).tocsr()
        order = reverse_cuthill_mckee(A)
        assert sorted(order.tolist()) == list(range(A.shape[0]))

    def test_visited_root_falls_back_to_component_seed(self, monkeypatch):
        # pseudo_peripheral_vertex walks the symmetrized graph from its
        # start vertex, so a well-formed run never crosses components;
        # force it to return a vertex of the already-ordered first
        # component and check reverse_cuthill_mckee falls back to the
        # component seed instead of revisiting (or losing) vertices
        import repro.ordering.rcm as rcm_mod

        A = sp.block_diag([grid_laplacian(3, 3),
                           grid_laplacian(2, 2)]).tocsr()
        monkeypatch.setattr(rcm_mod, "pseudo_peripheral_vertex",
                            lambda M, start=0: 0)
        order = rcm_mod.reverse_cuthill_mckee(A)
        assert sorted(order.tolist()) == list(range(A.shape[0]))
