"""End-to-end tests of PDSLin on the real execution backends: bit
parity with serial, crash recovery through the chaos seam, fault-plan
parity, the speculative drop-tolerance redo round, and the symbolic
cache on refactorization."""

from __future__ import annotations

import numpy as np
import pytest
from tests.conftest import grid_laplacian, random_unsymmetric

from repro.obs import Tracer
from repro.parallel.exec import ProcessBackend, ThreadBackend, get_backend
from repro.resilience import FaultPlan, FaultSpec
from repro.solver import PDSLin, PDSLinConfig
from repro.solver.partasks import ENV_CRASH_SUBDOMAIN


def _cfg(**kw) -> PDSLinConfig:
    kw.setdefault("k", 4)
    kw.setdefault("block_size", 16)
    kw.setdefault("seed", 0)
    return PDSLinConfig(**kw)


def _rhs(A, seed=0):
    return np.random.default_rng(seed).standard_normal(A.shape[0])


def _solve(A, backend, *, tracer=None, fault_plan=None, cfg=None):
    solver = PDSLin(A, cfg or _cfg(), tracer=tracer or Tracer(),
                    fault_plan=fault_plan, backend=backend)
    return solver, solver.solve(_rhs(A))


@pytest.fixture(scope="module")
def process2():
    backend = ProcessBackend(workers=2)
    yield backend
    backend.close()


class TestBitParity:
    @pytest.mark.parametrize("make", [
        lambda: grid_laplacian(16, 16),
        lambda: random_unsymmetric(80, 0.08, seed=5),
    ], ids=["grid16", "unsym80"])
    @pytest.mark.parametrize("backend", ["thread:2", "process:2"])
    def test_backend_matches_serial_bitwise(self, make, backend):
        A = make()
        _, ref = _solve(A, "serial")
        _, par = _solve(A, backend)
        assert par.x.tobytes() == ref.x.tobytes()
        assert par.iterations == ref.iterations
        assert par.residual_norm == ref.residual_norm
        assert par.converged and ref.converged

    def test_parallel_run_records_fanout_and_skew(self, process2):
        A = grid_laplacian(16, 16)
        tracer = Tracer()
        _solve(A, process2, tracer=tracer)
        names = [s.name for s in tracer.spans]
        assert "subdomain_fanout" in names
        # worker spans came back stamped onto per-process tracks
        tracks = {s.attrs.get("track") for s in tracer.spans}
        assert any(t and t.startswith("proc") for t in tracks)
        assert "noise:model_skew_subdomain_setup" in tracer.counters

    def test_update_matrix_parity_and_cache_hits(self, process2):
        A = grid_laplacian(12, 12)
        A2 = (A * 1.5).tocsr()
        tracer = Tracer()
        solver = PDSLin(A, _cfg(), tracer=tracer, backend=process2)
        solver.solve(_rhs(A))
        misses = tracer.counters.get("symbolic_cache_miss", 0)
        hits0 = tracer.counters.get("symbolic_cache_hit", 0)
        assert misses >= 4  # one ordering per subdomain, cold
        res2 = solver.update_matrix(A2).solve(_rhs(A))
        # same pattern: every symbolic analysis is a cache hit now
        assert tracer.counters.get("symbolic_cache_hit", 0) >= hits0 + 4
        assert tracer.counters.get("symbolic_cache_miss", 0) == misses
        ref = PDSLin(A2, _cfg(), backend="serial").solve(_rhs(A))
        assert res2.x.tobytes() == ref.x.tobytes()


class TestChaosCrash:
    def test_worker_crash_fails_over_and_stays_bit_identical(
            self, monkeypatch):
        A = grid_laplacian(16, 16)
        _, ref = _solve(A, "serial")
        monkeypatch.setenv(ENV_CRASH_SUBDOMAIN, "1")
        backend = ProcessBackend(workers=2)  # fresh: workers inherit env
        try:
            solver, res = _solve(A, backend)
        finally:
            backend.close()
        assert res.converged
        assert res.x.tobytes() == ref.x.tobytes()
        # the dead worker shows up as a degrading failover-root event
        assert res.degraded
        actions = res.recovery.actions()
        assert actions.get("failover-root", 0) >= 1
        assert any(e.subdomain == 1 and e.action == "failover-root"
                   for e in res.recovery.events)

    def test_crash_seam_is_inert_on_inline_backends(self, monkeypatch):
        # the seam must never kill the parent process, where serial and
        # thread backends run the task bodies
        A = grid_laplacian(8, 8)
        monkeypatch.setenv(ENV_CRASH_SUBDOMAIN, "1")
        for backend in ("serial", "thread:2"):
            _, res = _solve(A, backend)
            assert res.converged
            assert res.recovery.actions().get("failover-root", 0) == 0


class TestFaultPlanParity:
    def _plan(self):
        return FaultPlan([
            FaultSpec(stage="LU(D)", process=1, kind="permanent"),
            FaultSpec(stage="Comp(S)", process=2, kind="transient"),
        ], seed=0)

    def test_injected_faults_replay_identically(self, process2):
        A = grid_laplacian(16, 16)
        _, ref = _solve(A, "serial", fault_plan=self._plan())
        _, par = _solve(A, process2, fault_plan=self._plan())
        assert par.x.tobytes() == ref.x.tobytes()
        assert par.iterations == ref.iterations
        # identical ladders: same actions on the same subdomains
        def key(e):
            return (e.stage, e.action, e.subdomain)
        assert sorted(map(key, par.recovery.events)) == \
            sorted(map(key, ref.recovery.events))
        assert par.degraded == ref.degraded


class TestDropToleranceRedo:
    def test_speculative_comp_is_redone_at_serial_tolerance(self):
        # cond_threshold=1 makes every subdomain's condition estimate
        # tighten the interface tolerance, so the comps dispatched
        # speculatively at the coarse tolerance must be recomputed
        A = random_unsymmetric(80, 0.08, seed=5)
        cfg = dict(cond_threshold=1.0)
        _, ref = _solve(A, "serial", cfg=_cfg(**cfg))
        tracer = Tracer()
        backend = ProcessBackend(workers=2)
        try:
            _, par = _solve(A, backend, tracer=tracer, cfg=_cfg(**cfg))
        finally:
            backend.close()
        assert par.x.tobytes() == ref.x.tobytes()
        assert tracer.counters.get("comp_tol_redo", 0) >= 1
        names = [s.name for s in tracer.spans]
        assert "subdomain_fanout_redo" in names


class TestBackendSelection:
    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        A = grid_laplacian(8, 8)
        solver = PDSLin(A, _cfg())
        assert isinstance(solver.backend, ThreadBackend)
        assert solver.backend.workers == 2
        assert solver.solve(_rhs(A)).converged

    def test_shared_backend_instances_reused_across_solvers(self):
        A = grid_laplacian(8, 8)
        s1 = PDSLin(A, _cfg(), backend="thread:2")
        s2 = PDSLin(A, _cfg(), backend="thread:2")
        assert s1.backend is s2.backend
        assert s1.backend is get_backend("thread", workers=2)
