"""Unit tests for the numerics layer: Ruiz equilibration, maximum-
product matching, Hager-Higham condition estimation, backward errors,
iterative refinement, and the Krylov input guards."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from tests.conftest import grid_laplacian, random_unsymmetric

from repro.lu.numeric import factorize
from repro.numerics import (
    CertifiedAccuracy,
    backward_errors,
    condest_from_factors,
    maximum_product_matching,
    onenormest_inverse,
    prepare_system,
    refine,
    retarget_system,
    ruiz_equilibrate,
    scaling_quality,
)
from repro.solver.bicgstab import bicgstab
from repro.solver.gmres import gmres


def _ill_scaled(n: int = 60, decades: float = 6.0,
                seed: int = 0) -> sp.csr_matrix:
    """A benign operator wrapped in a wild diagonal scaling."""
    rng = np.random.default_rng(seed)
    base = grid_laplacian(int(np.sqrt(n)) + 1, int(np.sqrt(n)) + 1)
    m = base.shape[0]
    d = 10.0 ** (decades * (rng.random(m) - 0.5))
    return (sp.diags(d) @ base @ sp.diags(d)).tocsr()


# ---------------------------------------------------------------------------
# equilibration
# ---------------------------------------------------------------------------

class TestRuizEquilibration:
    def test_unit_row_col_maxima(self):
        A = _ill_scaled()
        eq = ruiz_equilibrate(A)
        assert eq.converged
        S = eq.A_scaled
        rmax = np.array([np.abs(S.getrow(i).data).max()
                         for i in range(S.shape[0])])
        cmax = np.array([np.abs(S.getcol(j).data).max()
                         for j in range(S.shape[1])])
        assert np.all(np.abs(rmax - 1.0) <= 1e-2)
        assert np.all(np.abs(cmax - 1.0) <= 1e-2)

    def test_scaled_matrix_is_rac(self):
        A = _ill_scaled(seed=1)
        eq = ruiz_equilibrate(A)
        RAC = sp.diags(eq.row_scale) @ A @ sp.diags(eq.col_scale)
        assert np.allclose(eq.A_scaled.toarray(), RAC.toarray())

    def test_round_trip_solution(self):
        # solving (R A C) y = R b and returning C y must solve A x = b
        A = _ill_scaled(seed=2)
        rng = np.random.default_rng(2)
        b = A @ rng.standard_normal(A.shape[0])
        eq = ruiz_equilibrate(A)
        y = spla.spsolve(eq.A_scaled.tocsc(), eq.scale_rhs(b))
        x = eq.unscale_solution(y)
        berr, _ = backward_errors(A, x, b)
        assert berr < 1e-12

    def test_quality_improves(self):
        A = _ill_scaled(seed=3)
        eq = ruiz_equilibrate(A)
        assert scaling_quality(eq.A_scaled) < 0.05
        assert scaling_quality(A) > 1.0

    def test_zero_row_and_column_keep_unit_scale(self):
        A = sp.csr_matrix(np.array([[1e6, 0.0], [0.0, 0.0]]))
        eq = ruiz_equilibrate(A)
        assert eq.row_scale[1] == 1.0
        assert eq.col_scale[1] == 1.0
        assert np.isclose(np.abs(eq.A_scaled[0, 0]), 1.0)

    def test_already_equilibrated_is_noop(self):
        A = sp.eye(5, format="csr")
        eq = ruiz_equilibrate(A)
        assert eq.converged
        assert eq.iterations == 0
        assert np.all(eq.row_scale == 1.0)

    def test_invalid_args(self):
        A = sp.eye(3, format="csr")
        with pytest.raises(ValueError):
            ruiz_equilibrate(A, max_iters=-1)
        with pytest.raises(ValueError):
            ruiz_equilibrate(A, tol=0.0)


# ---------------------------------------------------------------------------
# maximum-product matching
# ---------------------------------------------------------------------------

def _brute_force_log10_product(A: sp.csr_matrix) -> float:
    """Max over all permutations of sum_j log10 |A[p(j), j]|."""
    D = np.abs(A.toarray())
    n = D.shape[0]
    best = -np.inf
    for p in itertools.permutations(range(n)):
        vals = D[list(p), range(n)]
        if np.all(vals > 0):
            best = max(best, float(np.log10(vals).sum()))
    return best


class TestMaximumProductMatching:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_optimal_vs_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = 6
        # dense-ish random magnitudes spanning several decades
        M = 10.0 ** (3 * rng.standard_normal((n, n)))
        M[rng.random((n, n)) < 0.3] = 0.0
        np.fill_diagonal(M, np.where(np.diag(M) == 0, 1e-8, np.diag(M)))
        A = sp.csr_matrix(M)
        mt = maximum_product_matching(A)
        assert np.array_equal(np.sort(mt.row_perm), np.arange(n))
        assert mt.log10_product == pytest.approx(
            _brute_force_log10_product(A), abs=1e-8)

    def test_dominant_diagonal_fast_path(self):
        A = grid_laplacian(5, 5)
        mt = maximum_product_matching(A)
        assert mt.identity
        assert mt.is_perfect
        assert np.array_equal(mt.row_perm, np.arange(A.shape[0]))

    def test_apply_moves_large_entries_to_diagonal(self):
        # a cyclic shift of a dominant diagonal: matching must undo it
        n = 8
        base = sp.diags(np.arange(1.0, n + 1)).tocsr() \
            + 0.01 * sp.random(n, n, 0.3,
                               random_state=np.random.default_rng(0),
                               format="csr")
        perm = np.roll(np.arange(n), 1)
        A = base.tocsr()[perm].tocsr()
        mt = maximum_product_matching(A)
        assert not mt.identity
        d = np.abs(mt.apply(A).diagonal())
        assert np.all(d >= 1.0)

    def test_structurally_deficient(self):
        # column 2 has no nonzero: maximum matching, not perfect
        A = sp.csr_matrix(np.array([[1.0, 2.0, 0.0],
                                    [3.0, 4.0, 0.0],
                                    [5.0, 6.0, 0.0]]))
        mt = maximum_product_matching(A)
        assert not mt.is_perfect
        assert mt.matched_fraction == pytest.approx(2.0 / 3.0)
        assert np.array_equal(np.sort(mt.row_perm), np.arange(3))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            maximum_product_matching(sp.csr_matrix((2, 3)))

    def test_empty_matrix(self):
        mt = maximum_product_matching(sp.csr_matrix((0, 0)))
        assert mt.identity and mt.is_perfect


# ---------------------------------------------------------------------------
# condition estimation
# ---------------------------------------------------------------------------

class TestCondest:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_factor_of_truth(self, seed):
        A = random_unsymmetric(40, 0.2, seed=seed)
        factors = factorize(A.tocsc())
        est = condest_from_factors(A, factors)
        dense = A.toarray()
        true = np.linalg.norm(dense, 1) * np.linalg.norm(
            np.linalg.inv(dense), 1)
        # Hager's estimate is a lower bound, almost always a tight one
        assert est <= true * 1.01
        assert est >= 0.1 * true

    def test_identity_is_one(self):
        A = sp.eye(10, format="csc")
        est = condest_from_factors(A, factorize(A))
        assert est == pytest.approx(1.0, rel=0.5)

    def test_detects_ill_conditioning(self):
        d = 10.0 ** -np.linspace(0, 12, 30)
        A = sp.diags(d).tocsc()
        est = condest_from_factors(A, factorize(A))
        assert est > 1e11

    def test_onenormest_diagonal_exact(self):
        d = np.array([1.0, 0.5, 0.25, 5.0])
        solve = lambda v: v / d
        est = onenormest_inverse(solve, solve, d.size)
        assert est == pytest.approx(1.0 / d.min(), rel=1e-12)


# ---------------------------------------------------------------------------
# backward errors
# ---------------------------------------------------------------------------

class TestBackwardErrors:
    def test_exact_solution_is_zero(self, grid8):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(grid8.shape[0])
        b = grid8 @ x
        berr, nberr = backward_errors(grid8, x, b)
        assert berr < 1e-14
        assert nberr < 1e-15

    def test_row_scaling_invariance(self, grid8):
        # componentwise berr must not change under row scaling — this is
        # what lets PDSLin certify against the ORIGINAL system while
        # solving the equilibrated one
        rng = np.random.default_rng(1)
        n = grid8.shape[0]
        x = rng.standard_normal(n)
        b = grid8 @ rng.standard_normal(n)
        d = 10.0 ** (4 * (rng.random(n) - 0.5))
        b1, _ = backward_errors(grid8, x, b)
        b2, _ = backward_errors(sp.diags(d) @ grid8, x, d * b)
        assert b1 == pytest.approx(b2, rel=1e-10)

    def test_zero_denominator_with_residual_is_inf(self):
        A = sp.csr_matrix((2, 2))
        berr, _ = backward_errors(A, np.zeros(2), np.zeros(2),
                                  r=np.array([1.0, 0.0]))
        assert berr == float("inf")

    def test_all_zero_system(self):
        A = sp.csr_matrix((2, 2))
        berr, nberr = backward_errors(A, np.zeros(2), np.zeros(2))
        assert berr == 0.0
        assert nberr == 0.0


# ---------------------------------------------------------------------------
# iterative refinement
# ---------------------------------------------------------------------------

class TestRefine:
    def _system(self, seed=0):
        A = grid_laplacian(8, 8)
        rng = np.random.default_rng(seed)
        b = A @ rng.standard_normal(A.shape[0])
        lu = spla.splu(A.tocsc())
        return A, b, lu

    def test_exact_solver_certifies_quickly(self):
        A, b, lu = self._system()
        x0 = lu.solve(b) + 1e-6  # perturbed start
        x, acc = refine(A, b, x0, lu.solve, cond_est=100.0)
        assert isinstance(acc, CertifiedAccuracy)
        assert acc.certified
        assert acc.berr <= 1e-12
        assert acc.refine_steps <= 2
        assert not acc.stagnated
        assert np.isfinite(acc.ferr_bound)

    def test_stagnation_detected_with_useless_solver(self):
        A, b, lu = self._system(1)
        x0 = np.zeros(b.size)
        x, acc = refine(A, b, x0, lambda r: np.zeros_like(r))
        assert acc.stagnated
        assert not acc.certified
        assert acc.refine_steps <= 2
        assert acc.escalations == 0

    def test_stall_escalation_recovers(self):
        # inner solver is useless until on_stall "rebuilds" it; refine
        # must escalate exactly once and then certify
        A, b, lu = self._system(2)
        state = {"good": False, "stalls": 0}

        def solve(r):
            return lu.solve(r) if state["good"] else np.zeros_like(r)

        def on_stall():
            state["good"] = True
            state["stalls"] += 1
            return True

        x, acc = refine(A, b, np.zeros(b.size), solve, on_stall=on_stall)
        assert state["stalls"] == 1
        assert acc.escalations == 1
        assert acc.certified
        assert acc.berr <= 1e-12

    def test_stall_escalation_declined(self):
        A, b, lu = self._system(3)
        x, acc = refine(A, b, np.zeros(b.size),
                        lambda r: np.zeros_like(r), on_stall=lambda: False)
        assert acc.stagnated
        assert acc.escalations == 0

    def test_nonfinite_correction_keeps_best_iterate(self):
        A, b, lu = self._system(4)
        x0 = lu.solve(b)
        x, acc = refine(A, b, x0, lambda r: np.full_like(r, np.nan))
        assert np.array_equal(x, x0)
        assert np.all(np.isfinite(x))

    def test_best_iterate_returned_when_later_steps_worsen(self):
        A, b, lu = self._system(5)
        calls = {"n": 0}

        def solve(r):
            calls["n"] += 1
            # first correction is exact, later ones are sabotage
            return lu.solve(r) if calls["n"] == 1 \
                else 10.0 * np.ones_like(r)

        x, acc = refine(A, b, np.zeros(b.size), solve, tol=0.0, maxiter=3)
        assert acc.berr <= 1e-12
        berr_direct, _ = backward_errors(A, x, b)
        assert berr_direct == pytest.approx(acc.berr)

    def test_history_and_dict(self):
        A, b, lu = self._system(6)
        _, acc = refine(A, b, np.zeros(b.size), lu.solve, cond_est=50.0)
        d = acc.to_dict()
        assert d["berr"] == acc.berr
        assert d["refine_steps"] == acc.refine_steps
        assert len(acc.berr_history) == acc.refine_steps + 1
        assert "CERTIFIED" in acc.describe()


# ---------------------------------------------------------------------------
# system-transform pipeline
# ---------------------------------------------------------------------------

class TestPrepareSystem:
    def test_working_system_equivalence(self):
        A = _ill_scaled(seed=7)
        rng = np.random.default_rng(7)
        b = A @ rng.standard_normal(A.shape[0])
        prep = prepare_system(A)
        y = spla.spsolve(prep.A_work.tocsc(), prep.scale_rhs(b))
        x = prep.unscale_solution(y)
        berr, _ = backward_errors(A, x, b)
        assert berr < 1e-12

    def test_matching_gated_off_for_adequate_diagonal(self):
        prep = prepare_system(grid_laplacian(6, 6))
        assert prep.matching is None
        assert np.array_equal(prep.row_perm, np.arange(36))

    def test_matching_engages_on_weak_diagonal(self):
        n = 8
        base = sp.diags(np.full(n, 2.0)).tocsr() + sp.eye(n, k=1) * 0.1
        A = base.tocsr()[np.roll(np.arange(n), 1)].tocsr()
        prep = prepare_system(A)
        assert prep.matching is not None
        assert not prep.matching.identity
        assert np.abs(prep.A_work.diagonal()).min() > 0.5

    def test_retarget_reuses_permutation(self):
        n = 8
        base = sp.diags(np.full(n, 2.0)).tocsr() + sp.eye(n, k=1) * 0.1
        A = base.tocsr()[np.roll(np.arange(n), 1)].tocsr()
        prep = prepare_system(A)
        A2 = A.copy()
        A2.data *= 3.0
        prep2 = retarget_system(prep, A2)
        assert np.array_equal(prep2.row_perm, prep.row_perm)
        rng = np.random.default_rng(8)
        b = A2 @ rng.standard_normal(n)
        y = spla.spsolve(prep2.A_work.tocsc(), prep2.scale_rhs(b))
        x = prep2.unscale_solution(y)
        berr, _ = backward_errors(A2, x, b)
        assert berr < 1e-12

    def test_disabled_stages_are_identity(self, grid8):
        prep = prepare_system(grid8, equilibrate=False, matching=False)
        assert prep.is_identity
        assert prep.equilibration is None and prep.matching is None


# ---------------------------------------------------------------------------
# Krylov entry guards (satellite regressions)
# ---------------------------------------------------------------------------

class TestKrylovGuards:
    def _op(self, grid8):
        return lambda v: grid8 @ v

    def test_gmres_zero_rhs(self, grid8):
        res = gmres(self._op(grid8), np.zeros(grid8.shape[0]))
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.x == 0.0)

    def test_bicgstab_zero_rhs(self, grid8):
        res = bicgstab(self._op(grid8), np.zeros(grid8.shape[0]))
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.x == 0.0)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_gmres_rejects_nonfinite_rhs(self, grid8, bad):
        b = np.ones(grid8.shape[0])
        b[3] = bad
        with pytest.raises(ValueError, match="non-finite"):
            gmres(self._op(grid8), b)

    def test_gmres_rejects_nonfinite_x0(self, grid8):
        b = np.ones(grid8.shape[0])
        x0 = np.zeros_like(b)
        x0[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            gmres(self._op(grid8), b, x0=x0)

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_bicgstab_rejects_nonfinite_rhs(self, grid8, bad):
        b = np.ones(grid8.shape[0])
        b[0] = bad
        with pytest.raises(ValueError, match="non-finite"):
            bicgstab(self._op(grid8), b)

    def test_bicgstab_rejects_nonfinite_x0(self, grid8):
        b = np.ones(grid8.shape[0])
        x0 = np.full_like(b, np.inf)
        with pytest.raises(ValueError, match="non-finite"):
            bicgstab(self._op(grid8), b, x0=x0)
