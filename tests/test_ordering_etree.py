"""Unit tests for elimination trees, postorder and fill paths."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ordering import (
    children_lists,
    elimination_tree,
    etree_path_closure,
    first_descendants,
    is_postordered,
    postorder,
    symbolic_cholesky_row_counts,
    tree_level,
)


def dense_etree_reference(A: np.ndarray) -> np.ndarray:
    """Brute-force e-tree: parent[j] = min {i > j : L[i, j] != 0} of the
    (dense) Cholesky fill pattern computed by symbolic elimination."""
    n = A.shape[0]
    pat = (A != 0).astype(bool)
    pat |= pat.T
    np.fill_diagonal(pat, True)
    L = pat.copy()
    for k in range(n):
        rows = np.flatnonzero(L[:, k])
        rows = rows[rows > k]
        for i in rows:
            L[i, rows] |= True  # fill among below-diagonal rows
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(L[:, j])
        below = below[below > j]
        if below.size:
            parent[j] = below.min()
    return parent


class TestEliminationTree:
    def test_matches_dense_reference_small(self):
        for seed in range(5):
            A = sp.random(12, 12, 0.25, random_state=seed).toarray()
            A = A + A.T + np.eye(12)
            par = elimination_tree(sp.csr_matrix(A))
            ref = dense_etree_reference(A)
            np.testing.assert_array_equal(par, ref)

    def test_tridiagonal_is_a_path(self):
        A = sp.diags([np.ones(5), np.ones(6), np.ones(5)], [-1, 0, 1]).tocsr()
        par = elimination_tree(A)
        np.testing.assert_array_equal(par, [1, 2, 3, 4, 5, -1])

    def test_diagonal_forest(self):
        par = elimination_tree(sp.eye(4).tocsr())
        np.testing.assert_array_equal(par, [-1, -1, -1, -1])

    def test_grid(self, grid8):
        par = elimination_tree(grid8)
        n = grid8.shape[0]
        # exactly one root for a connected graph
        assert np.count_nonzero(par == -1) == 1
        assert np.all((par > np.arange(n)) | (par == -1))


class TestPostorder:
    def test_is_permutation(self, grid8):
        par = elimination_tree(grid8)
        po = postorder(par)
        assert sorted(po.tolist()) == list(range(grid8.shape[0]))

    def test_children_before_parents(self, grid8):
        par = elimination_tree(grid8)
        po = postorder(par)
        pos = np.empty(po.size, dtype=np.int64)
        pos[po] = np.arange(po.size)
        for v in range(po.size):
            if par[v] >= 0:
                assert pos[v] < pos[par[v]]

    def test_permuted_matrix_is_postordered(self, grid16):
        par = elimination_tree(grid16)
        po = postorder(par)
        Ap = grid16[po][:, po].tocsr()
        assert is_postordered(elimination_tree(Ap))

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            postorder(np.array([1, 0]))

    def test_self_parent_detected(self):
        with pytest.raises(ValueError):
            children_lists(np.array([0, -1]))


class TestTreeHelpers:
    def test_tree_level_path(self):
        par = np.array([1, 2, -1])
        np.testing.assert_array_equal(tree_level(par), [2, 1, 0])

    def test_first_descendants_path(self):
        par = np.array([1, 2, -1])
        np.testing.assert_array_equal(first_descendants(par), [0, 0, 0])

    def test_first_descendants_star(self):
        par = np.array([3, 3, 3, -1])
        np.testing.assert_array_equal(first_descendants(par), [0, 1, 2, 0])

    def test_is_postordered_negative(self):
        # node 2's children are 0 and 3: subtree not contiguous
        par = np.array([2, 4, 4, 2, -1])
        assert not is_postordered(par)


class TestPathClosure:
    def test_single_node_to_root(self):
        par = np.array([1, 2, -1])
        out = etree_path_closure(par, np.array([0]))
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_overlapping_paths_not_duplicated(self):
        par = np.array([2, 2, 3, -1])
        out = etree_path_closure(par, np.array([0, 1]))
        np.testing.assert_array_equal(out, [0, 1, 2, 3])

    def test_stop_mask(self):
        par = np.array([1, 2, -1])
        stop = np.array([False, True, False])
        out = etree_path_closure(par, np.array([0]), stop=stop)
        np.testing.assert_array_equal(out, [0])

    def test_out_of_range_support(self):
        with pytest.raises(IndexError):
            etree_path_closure(np.array([-1]), np.array([3]))


class TestRowCounts:
    def test_counts_match_dense_cholesky(self):
        A = sp.random(15, 15, 0.2, random_state=4).toarray()
        A = A + A.T + 15 * np.eye(15)
        As = sp.csr_matrix(A)
        counts = symbolic_cholesky_row_counts(As)
        # dense reference via actual Cholesky of a positive definite
        # matrix with the same pattern
        L = np.linalg.cholesky(A)
        ref = (np.abs(L) > 1e-12).sum(axis=1)
        assert np.all(counts >= ref)  # symbolic is an upper bound
        assert counts.sum() >= ref.sum()

    def test_tridiagonal_counts(self):
        A = sp.diags([np.ones(4), np.ones(5), np.ones(4)], [-1, 0, 1]).tocsr()
        counts = symbolic_cholesky_row_counts(A)
        np.testing.assert_array_equal(counts, [1, 2, 2, 2, 2])
