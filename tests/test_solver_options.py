"""Tests for the solver's substrate options: subdomain ordering choice,
supernode amalgamation, and the spectral NGD bisector."""

import numpy as np
import pytest
from tests.conftest import grid_laplacian

from repro.core import build_dbbd
from repro.graphs import nested_dissection_partition
from repro.solver import PDSLin, PDSLinConfig


class TestSubdomainOrdering:
    @pytest.mark.parametrize("ordering", ["md", "nd", "rcm"])
    def test_all_orderings_solve(self, ordering, rng):
        A = grid_laplacian(12, 12)
        b = rng.standard_normal(A.shape[0])
        cfg = PDSLinConfig(k=2, subdomain_ordering=ordering, seed=0)
        res = PDSLin(A, cfg).solve(b)
        assert res.residual_norm < 1e-8

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            PDSLinConfig(subdomain_ordering="colamd")

    def test_orderings_change_fill(self, rng):
        A = grid_laplacian(16, 16)
        fills = {}
        for ordering in ("md", "rcm"):
            solver = PDSLin(A, PDSLinConfig(k=2, seed=0,
                                            subdomain_ordering=ordering))
            solver.setup()
            fills[ordering] = sum(s.factors.fill_nnz
                                  for s in solver.subdomains)
        assert fills["md"] != fills["rcm"]  # genuinely different orders


class TestSupernodeRelax:
    def test_relaxed_solver_correct(self, rng):
        A = grid_laplacian(12, 12)
        b = rng.standard_normal(A.shape[0])
        strict = PDSLin(A, PDSLinConfig(k=2, seed=0)).solve(b)
        fat = PDSLin(A, PDSLinConfig(k=2, seed=0,
                                     supernode_relax=0.5)).solve(b)
        assert fat.residual_norm < 1e-8
        np.testing.assert_allclose(fat.x, strict.x, atol=1e-7)

    def test_invalid_relax(self):
        with pytest.raises(ValueError):
            PDSLinConfig(supernode_relax=1.0)


class TestSpectralNGD:
    def test_spectral_partition_valid(self, grid16):
        r = nested_dissection_partition(grid16, 4, seed=0,
                                        bisector="spectral")
        d = build_dbbd(grid16, r.part, 4)  # validates invariant
        assert np.all(d.subdomain_sizes() > 0)

    def test_spectral_quality_comparable(self):
        A = grid_laplacian(20, 20)
        fm = nested_dissection_partition(A, 4, seed=0, bisector="fm")
        spec = nested_dissection_partition(A, 4, seed=0,
                                           bisector="spectral")
        assert spec.separator_size <= 2 * max(fm.separator_size, 1)

    def test_non_power_of_two_rejected(self, grid16):
        with pytest.raises(ValueError):
            nested_dissection_partition(grid16, 6, bisector="spectral")

    def test_unknown_bisector_rejected(self, grid16):
        with pytest.raises(ValueError):
            nested_dissection_partition(grid16, 4, bisector="metis")
