"""Tests for FGMRES and the two-level-vs-one-level scaling experiment."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.experiments import format_scaling, run_twolevel_vs_onelevel
from repro.solver import gmres


class TestFGMRES:
    def test_fixed_preconditioner_matches_gmres(self, spd60, rng):
        b = rng.standard_normal(60)
        d = spd60.diagonal()
        M = lambda v: v / d
        plain = gmres(lambda v: spd60 @ v, b, preconditioner=M, tol=1e-10)
        flex = gmres(lambda v: spd60 @ v, b, preconditioner=M, tol=1e-10,
                     flexible=True)
        assert flex.converged
        np.testing.assert_allclose(flex.x, plain.x, atol=1e-8)

    def test_varying_preconditioner_converges(self, rng):
        """A preconditioner that changes each call breaks plain GMRES's
        assumptions but FGMRES handles it."""
        d = np.logspace(0, 5, 50)
        A = sp.diags(d)
        b = rng.standard_normal(50)
        state = {"i": 0}

        def M(v):
            state["i"] += 1
            # alternate between two inexact diagonal preconditioners
            scale = 1.0 if state["i"] % 2 == 0 else 0.5
            return scale * v / d

        res = gmres(lambda v: A @ v, b, preconditioner=M, tol=1e-10,
                    flexible=True, restart=30, maxiter=200)
        assert res.converged
        assert np.linalg.norm(A @ res.x - b) <= 1e-8 * np.linalg.norm(b)

    def test_no_preconditioner(self, spd60, rng):
        b = rng.standard_normal(60)
        res = gmres(lambda v: spd60 @ v, b, flexible=True, tol=1e-10)
        assert res.converged


class TestScalingExperiment:
    @pytest.fixture(scope="class")
    def points(self):
        return run_twolevel_vs_onelevel("tdr190k", "tiny", cores=(4, 16),
                                        k_two_level=4, seed=0)

    def test_point_count(self, points):
        assert len(points) == 4

    def test_schur_grows_one_level(self, points):
        one = {p.cores: p for p in points if p.mode.startswith("one")}
        assert one[16].schur_size > one[4].schur_size

    def test_two_level_schur_constant(self, points):
        two = {p.cores: p for p in points if p.mode.startswith("two")}
        assert two[4].schur_size == two[16].schur_size

    def test_two_level_scales(self, points):
        two = {p.cores: p for p in points if p.mode.startswith("two")}
        assert two[16].total_time < two[4].total_time

    def test_format(self, points):
        txt = format_scaling(points)
        assert "two-level" in txt and "one-level" in txt
