"""Unit tests for the resilience subsystem: structured errors, seeded
fault injection, machine integration, retry policy, recovery report."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.lu.numeric import GilbertPeierlsLU, factorize
from repro.obs import Tracer
from repro.parallel import RECOVER_STAGE, SimulatedMachine
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    KrylovBreakdownError,
    RecoveryReport,
    RetryPolicy,
    SchurFactorizationError,
    SingularSubdomainError,
    SolverError,
    emit_recovery,
    factorize_resilient,
    run_with_retry,
)


# ---------------------------------------------------------------------------
# structured errors
# ---------------------------------------------------------------------------

class TestErrors:
    def test_solver_error_context_in_message(self):
        err = SolverError("boom", stage="LU(D)", subdomain=3)
        assert "stage=LU(D)" in str(err)
        assert "subdomain=3" in str(err)

    def test_solver_error_is_runtime_error(self):
        # pre-existing callers catch RuntimeError around factorizations
        assert issubclass(SingularSubdomainError, RuntimeError)
        assert issubclass(SchurFactorizationError, RuntimeError)
        assert issubclass(KrylovBreakdownError, RuntimeError)
        assert issubclass(InjectedFault, RuntimeError)

    def test_singular_subdomain_attributes(self):
        err = SingularSubdomainError("singular", column=7, pivot=1e-20,
                                     subdomain=2)
        assert err.column == 7
        assert err.pivot == 1e-20
        assert err.stage == "LU(D)"
        assert err.subdomain == 2

    def test_krylov_breakdown_attributes(self):
        err = KrylovBreakdownError("stalled", method="bicgstab",
                                   iterations=42)
        assert err.method == "bicgstab"
        assert err.iterations == 42
        assert err.stage == "Solve"

    def test_injected_fault_kinds(self):
        assert InjectedFault("x", kind="permanent").permanent
        assert not InjectedFault("x", kind="transient").permanent
        with pytest.raises(ValueError):
            InjectedFault("x", kind="sporadic")


# ---------------------------------------------------------------------------
# fault plan
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("LU(D)", kind="weird")
        with pytest.raises(ValueError):
            FaultSpec("LU(D)", trips=0)
        with pytest.raises(ValueError):
            FaultSpec("LU(D)", delay_s=-1.0)
        assert FaultSpec("LU(D)", process=2).target() == "process 2"
        assert FaultSpec("LU(S)").target() == "root"

    def test_transient_fires_then_clears(self):
        plan = FaultPlan([FaultSpec("LU(D)", process=0, kind="transient",
                                    trips=2)])
        with pytest.raises(InjectedFault):
            plan.before("LU(D)", 0)
        with pytest.raises(InjectedFault):
            plan.before("LU(D)", 0)
        plan.before("LU(D)", 0)  # third attempt: cleared
        assert len(plan.fired) == 2
        assert plan.fired_summary() == {"transient": 2}

    def test_permanent_fires_forever(self):
        plan = FaultPlan([FaultSpec("LU(D)", process=1, kind="permanent")])
        for _ in range(4):
            with pytest.raises(InjectedFault) as exc:
                plan.before("LU(D)", 1)
            assert exc.value.permanent
        assert all(f.kind == "permanent" for f in plan.fired)

    def test_untargeted_stage_passes(self):
        plan = FaultPlan([FaultSpec("LU(D)", process=0)])
        plan.before("LU(D)", 1)       # other process
        plan.before("Comp(S)", 0)     # other stage
        plan.before("LU(D)", None)    # root, not process 0
        assert not plan.fired

    def test_straggler_adds_delay_on_exit(self):
        plan = FaultPlan([FaultSpec("Solve", process=0, kind="straggler",
                                    delay_s=0.25)])
        plan.before("Solve", 0)  # stragglers never raise
        assert plan.after("Solve", 0) == pytest.approx(0.25)
        assert plan.after("Solve", 1) == 0.0
        assert plan.fired_summary() == {"straggler": 1}

    def test_reset_clears_state(self):
        plan = FaultPlan([FaultSpec("LU(D)", process=0, trips=1)])
        with pytest.raises(InjectedFault):
            plan.before("LU(D)", 0)
        plan.reset()
        assert not plan.fired
        with pytest.raises(InjectedFault):
            plan.before("LU(D)", 0)  # armed again after reset

    def test_random_plan_deterministic(self):
        a = FaultPlan.random(seed=7, k=8, rate=0.5)
        b = FaultPlan.random(seed=7, k=8, rate=0.5)
        assert a.specs == b.specs
        # rate bounds
        assert len(FaultPlan.random(seed=0, k=4, rate=0.0)) == 0
        assert len(FaultPlan.random(seed=0, k=4,
                                    stages=("LU(D)",), rate=1.0)) == 4
        with pytest.raises(ValueError):
            FaultPlan.random(seed=0, k=4, rate=1.5)


# ---------------------------------------------------------------------------
# machine integration
# ---------------------------------------------------------------------------

class TestMachineFaults:
    def test_fault_raised_inside_stage(self):
        plan = FaultPlan([FaultSpec("LU(D)", process=1, kind="transient")])
        m = SimulatedMachine(2, fault_plan=plan)
        with pytest.raises(InjectedFault):
            with m.on_process(1, "LU(D)"):
                raise AssertionError("body must not run on a fault")
        # the failed entry still charged wall time to the stage
        assert m.processes[1].timer.get("LU(D)") > 0.0

    def test_straggler_inflates_stage_time(self):
        plan = FaultPlan([FaultSpec("Solve", process=0, kind="straggler",
                                    delay_s=0.5)])
        m = SimulatedMachine(2, fault_plan=plan)
        with m.on_process(0, "Solve"):
            pass
        with m.on_process(1, "Solve"):
            pass
        t = m.process_stage_times("Solve")
        assert t[0] >= 0.5
        assert t[1] < 0.5
        assert m.parallel_stage_time("Solve") >= 0.5

    def test_root_faults(self):
        plan = FaultPlan([FaultSpec("LU(S)", process=None, kind="transient")])
        m = SimulatedMachine(2, fault_plan=plan)
        with pytest.raises(InjectedFault):
            with m.on_root("LU(S)"):
                pass
        with m.on_root("LU(S)"):  # transient cleared
            pass

    def test_charge_recovery(self):
        m = SimulatedMachine(3)
        m.charge_recovery(1, seconds=0.125, flops=1000)
        m.charge_recovery(None, seconds=0.25)
        assert m.processes[1].timer.get(RECOVER_STAGE) == pytest.approx(0.125)
        assert m.processes[1].ops.get(RECOVER_STAGE) == 1000
        assert m.root.timer.get(RECOVER_STAGE) == pytest.approx(0.25)
        assert RECOVER_STAGE in m.breakdown()
        # parallel max (0.125) + serial root (0.25)
        assert m.breakdown()[RECOVER_STAGE] == pytest.approx(0.375)

    def test_scripted_makespan_deterministic(self):
        """Two machines driven by identical deterministic charges under
        the same plan produce bit-identical makespans."""
        def drive(machine, plan):
            for ell in range(machine.k):
                try:
                    with machine.on_process(ell, "LU(D)") as led:
                        led.timer.add("LU(D)", 0.5)
                except InjectedFault as f:
                    machine.charge_recovery(ell, seconds=f.recovery_cost_s)
                    with machine.on_process(ell, "LU(D)") as led:
                        led.timer.add("LU(D)", 0.5)
            return machine

        plans = [FaultPlan([FaultSpec("LU(D)", process=1, trips=1,
                                      recovery_cost_s=0.125)])
                 for _ in range(2)]
        machines = [drive(SimulatedMachine(4, fault_plan=p), p)
                    for p in plans]
        # wall-time noise from the stage context manager is real time,
        # so compare the deterministic (add-based) charges instead
        r0 = machines[0].breakdown()[RECOVER_STAGE]
        r1 = machines[1].breakdown()[RECOVER_STAGE]
        assert r0 == r1 == pytest.approx(0.125)
        assert [f.attempt for f in plans[0].fired] == \
               [f.attempt for f in plans[1].fired]


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------

class TestRetry:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        assert list(RetryPolicy(max_attempts=3).attempts()) == [1, 2, 3]

    def test_success_after_failures(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise RuntimeError("flaky")
            return "ok"

        result, used = run_with_retry(fn, policy=RetryPolicy(max_attempts=4))
        assert result == "ok" and used == 3
        assert calls == [1, 2, 3]

    def test_exhaustion_raises_last_error(self):
        with pytest.raises(RuntimeError, match="always"):
            run_with_retry(lambda a: (_ for _ in ()).throw(
                RuntimeError("always")), policy=RetryPolicy(max_attempts=2))

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise KeyError("nope")

        with pytest.raises(KeyError):
            run_with_retry(fn, policy=RetryPolicy(max_attempts=5))
        assert calls == [1]

    def test_on_retry_hook(self):
        seen = []

        def fn(attempt):
            if attempt == 1:
                raise RuntimeError("once")
            return attempt

        run_with_retry(fn, policy=RetryPolicy(max_attempts=2),
                       on_retry=lambda a, e: seen.append((a, str(e))))
        assert seen == [(1, "once")]


# ---------------------------------------------------------------------------
# recovery report
# ---------------------------------------------------------------------------

class TestRecoveryReport:
    def test_healthy_until_event(self):
        rep = RecoveryReport()
        assert rep.healthy and not rep.degraded
        rep.record("LU(D)", "retry", RuntimeError("x"))
        assert not rep.healthy and not rep.degraded  # retry isn't degrading
        assert rep.retries == 1

    def test_degrading_actions_flip_flag(self):
        for action in ("static-pivot", "failover-root", "precond-refresh",
                       "krylov-fallback"):
            rep = RecoveryReport()
            rep.record("LU(D)", action, RuntimeError("x"))
            assert rep.degraded, action

    def test_summary_and_to_dict(self):
        rep = RecoveryReport()
        rep.record("LU(D)", "static-pivot",
                   SingularSubdomainError("bad pivot"), subdomain=2,
                   detail="perturbed")
        rep.perturbed_pivots = 3
        text = rep.summary()
        assert "DEGRADED" in text
        assert "LU(D)[l=2]" in text
        assert "3 perturbed pivots" in text
        d = rep.to_dict()
        assert d["degraded"] and d["perturbed_pivots"] == 3
        assert d["events"][0]["error"] == "SingularSubdomainError"
        assert rep.actions() == {"static-pivot": 1}

    def test_emit_recovery_counts_on_tracer(self):
        tracer = Tracer()
        rep = RecoveryReport()
        emit_recovery(tracer, rep, "LU(S)", "ilu-to-lu", RuntimeError("x"))
        emit_recovery(tracer, rep, "Solve", "krylov-fallback",
                      KrylovBreakdownError("y"))
        assert tracer.counters["recovery_events"] == 2
        assert tracer.counters["recovery_ilu_to_lu"] == 1
        assert tracer.counters["recovery_krylov_fallback"] == 1
        assert len(rep.events) == 2


# ---------------------------------------------------------------------------
# structured errors out of the LU kernel + the factorization ladder
# ---------------------------------------------------------------------------

def _singular4() -> sp.csc_matrix:
    """4x4 with an exactly dependent column pair (numerically singular)."""
    A = np.array([[2.0, 1.0, 3.0, 0.0],
                  [4.0, 2.0, 6.0, 1.0],
                  [1.0, 0.5, 1.5, 2.0],
                  [0.0, 0.0, 0.0, 1.0]])
    return sp.csc_matrix(A)


class TestFactorizeResilient:
    def test_gp_raises_structured_error(self):
        with pytest.raises(SingularSubdomainError) as exc:
            GilbertPeierlsLU(_singular4(), subdomain=5)
        err = exc.value
        assert err.column is not None and err.pivot == 0.0
        assert err.subdomain == 5
        assert "stage=LU(D)" in str(err)

    def test_gp_structural_singularity(self):
        A = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(SingularSubdomainError):
            GilbertPeierlsLU(A)

    def test_static_pivoting_survives_and_counts(self):
        lu = GilbertPeierlsLU(_singular4(), static_pivoting=True)
        assert lu.perturbations >= 1
        assert np.all(np.isfinite(lu.factors.L.data))
        assert np.all(np.isfinite(lu.factors.U.data))

    def test_rejects_non_finite_input(self):
        A = np.eye(3)
        A[1, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            factorize(sp.csc_matrix(A))

    def test_ladder_escalates_to_static_pivot(self):
        rep = RecoveryReport()
        tracer = Tracer()
        factors, perturbations = factorize_resilient(
            _singular4(), diag_pivot_thresh=0.0, subdomain=1,
            report=rep, tracer=tracer)
        assert perturbations >= 1
        assert rep.perturbed_pivots == perturbations
        assert rep.degraded
        actions = rep.actions()
        assert actions.get("full-pivot") == 1
        assert actions.get("static-pivot") == 1
        assert tracer.counters["perturbed_pivots"] == perturbations
        # the perturbed factors are still usable
        b = np.ones(4)
        x = factors.solve(b)
        assert np.all(np.isfinite(x))

    def test_ladder_no_events_on_healthy_matrix(self):
        rep = RecoveryReport()
        A = sp.csc_matrix(np.array([[4.0, 1.0], [1.0, 3.0]]))
        factors, perturbations = factorize_resilient(A, report=rep)
        assert perturbations == 0 and rep.healthy
        x = factors.solve(np.array([1.0, 2.0]))
        np.testing.assert_allclose(A.toarray() @ x, [1.0, 2.0], atol=1e-12)
