"""Additional cost-model and machine-ledger behaviour tests."""

import pytest

from repro.parallel import (
    DEFAULT_STAGE_SCALING,
    SimulatedMachine,
    StageScaling,
    TwoLevelModel,
)


class TestDefaultScalingTable:
    def test_all_paper_stages_present(self):
        assert set(DEFAULT_STAGE_SCALING) == {"LU(D)", "Comp(S)", "LU(S)",
                                              "Solve"}

    def test_subdomain_stages_flagged(self):
        assert DEFAULT_STAGE_SCALING["LU(D)"].uses_subdomain_cores
        assert DEFAULT_STAGE_SCALING["Comp(S)"].uses_subdomain_cores
        assert not DEFAULT_STAGE_SCALING["LU(S)"].uses_subdomain_cores
        assert not DEFAULT_STAGE_SCALING["Solve"].uses_subdomain_cores

    def test_separator_stages_scale_worse(self):
        # higher serial fraction + lower alpha for the separator stages
        lud = DEFAULT_STAGE_SCALING["LU(D)"]
        solve = DEFAULT_STAGE_SCALING["Solve"]
        assert solve.serial_fraction > lud.serial_fraction
        assert solve.alpha < lud.alpha


class TestCustomScaling:
    def test_override_table(self):
        m = SimulatedMachine(2)
        m.processes[0].timer.add("LU(D)", 4.0)
        custom = {"LU(D)": StageScaling(serial_fraction=0.0, alpha=1.0,
                                        uses_subdomain_cores=True)}
        model = TwoLevelModel(k=2, scaling=custom)
        proj = model.project(m, 8)  # 4 cores per subdomain, ideal scaling
        assert proj["LU(D)"] == pytest.approx(1.0)

    def test_invalid_serial_fraction_rejected(self):
        bad = {"X": StageScaling(serial_fraction=2.0, alpha=1.0,
                                 uses_subdomain_cores=True)}
        with pytest.raises(ValueError):
            TwoLevelModel(k=2, scaling=bad)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TwoLevelModel(k=0)


class TestLedgerInteraction:
    def test_ops_and_time_independent(self):
        m = SimulatedMachine(2)
        with m.on_process(0, "s") as ledger:
            ledger.ops.add("s", 500)
        assert m.process_stage_flops("s")[0] == 500
        assert m.process_stage_flops("s")[1] == 0
        assert m.parallel_stage_time("s") >= 0.0

    def test_stage_names_union(self):
        m = SimulatedMachine(2)
        m.processes[0].timer.add("a", 1.0)
        m.root.timer.add("b", 1.0)
        assert m.stage_names() == ["a", "b"]

    def test_nested_process_stages(self):
        m = SimulatedMachine(1)
        with m.on_process(0, "outer"):
            with m.processes[0].timer.stage("inner"):
                pass
        assert "outer/inner" in m.processes[0].timer.totals
