"""Unit tests for repro.sparse.patterns."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    boolean_product_pattern,
    col_nnz,
    density_of_rows,
    drop_explicit_zeros,
    extract_submatrix,
    nonzero_cols,
    nonzero_rows,
    pattern_equal,
    pattern_of,
    pattern_union,
    row_nnz,
)


def mat(rows, cols, vals, shape):
    return sp.csr_matrix((vals, (rows, cols)), shape=shape)


class TestPatternOf:
    def test_data_becomes_ones(self):
        A = mat([0, 1], [1, 0], [2.5, -3.0], (2, 2))
        P = pattern_of(A)
        np.testing.assert_array_equal(P.data, [1, 1])

    def test_explicit_zeros_dropped(self):
        A = mat([0, 1], [0, 1], [0.0, 1.0], (2, 2))
        P = pattern_of(A)
        assert P.nnz == 1

    def test_empty_matrix(self):
        P = pattern_of(sp.csr_matrix((3, 3)))
        assert P.nnz == 0


class TestPatternEqual:
    def test_equal_despite_values(self):
        A = mat([0], [1], [5.0], (2, 2))
        B = mat([0], [1], [-1.0], (2, 2))
        assert pattern_equal(A, B)

    def test_different_patterns(self):
        A = mat([0], [1], [1.0], (2, 2))
        B = mat([1], [0], [1.0], (2, 2))
        assert not pattern_equal(A, B)

    def test_different_shapes(self):
        assert not pattern_equal(sp.eye(2).tocsr(), sp.eye(3).tocsr())


class TestCounts:
    def test_row_nnz(self):
        A = mat([0, 0, 2], [0, 1, 2], [1, 1, 1], (3, 3))
        np.testing.assert_array_equal(row_nnz(A), [2, 0, 1])

    def test_col_nnz(self):
        A = mat([0, 1, 2], [0, 0, 2], [1, 1, 1], (3, 3))
        np.testing.assert_array_equal(col_nnz(A), [2, 0, 1])

    def test_nonzero_rows_cols(self):
        A = mat([0, 2], [1, 1], [1, 1], (3, 3))
        np.testing.assert_array_equal(nonzero_rows(A), [0, 2])
        np.testing.assert_array_equal(nonzero_cols(A), [1])

    def test_counts_ignore_explicit_zeros(self):
        A = mat([0, 0], [0, 1], [0.0, 1.0], (2, 2))
        np.testing.assert_array_equal(row_nnz(A), [1, 0])


class TestBooleanProduct:
    def test_matches_dense_reference(self, rng):
        A = sp.random(10, 8, 0.3, random_state=1, format="csr")
        B = sp.random(8, 12, 0.3, random_state=2, format="csr")
        P = boolean_product_pattern(A, B)
        ref = (A.toarray() != 0).astype(int) @ (B.toarray() != 0).astype(int)
        np.testing.assert_array_equal(P.toarray() != 0, ref > 0)

    def test_identity_product(self):
        A = sp.random(6, 6, 0.4, random_state=3, format="csr")
        P = boolean_product_pattern(sp.eye(6).tocsr(), A)
        assert pattern_equal(P, A)


class TestUnionAndSubmatrix:
    def test_union(self):
        A = mat([0], [0], [1.0], (2, 2))
        B = mat([1], [1], [1.0], (2, 2))
        U = pattern_union(A, B)
        assert U.nnz == 2

    def test_union_shape_mismatch(self):
        with pytest.raises(ValueError):
            pattern_union(sp.eye(2).tocsr(), sp.eye(3).tocsr())

    def test_extract_submatrix(self):
        A = sp.csr_matrix(np.arange(16, dtype=float).reshape(4, 4))
        S = extract_submatrix(A, np.array([1, 3]), np.array([0, 2]))
        np.testing.assert_array_equal(S.toarray(), [[4, 6], [12, 14]])


class TestDensity:
    def test_density_of_rows(self):
        A = mat([0, 0, 1], [0, 1, 0], [1, 1, 1], (2, 4))
        np.testing.assert_allclose(density_of_rows(A), [0.5, 0.25])

    def test_drop_explicit_zeros_noop_when_clean(self):
        A = sp.eye(3).tocsr()
        assert drop_explicit_zeros(A).nnz == 3
