"""Tests for the typed REPRO_* environment registry."""

from pathlib import Path

import pytest

from repro import envcfg

README = Path(__file__).resolve().parent.parent / "README.md"


class TestParsing:
    def test_unset_returns_default(self):
        assert envcfg.get("REPRO_CHAOS_STRAGGLE_S", env={}) == 0.25
        assert envcfg.get("REPRO_SERVICE_CACHE_BYTES",
                          env={}) == 256 * 1024 * 1024
        assert envcfg.get("REPRO_TRANSPORT_CHECKSUM", env={}) is True

    def test_empty_string_counts_as_unset(self):
        assert envcfg.get("REPRO_WORKERS", env={"REPRO_WORKERS": ""}) is None

    def test_int_round_trip(self):
        env = {"REPRO_WORKERS": "3"}
        assert envcfg.get("REPRO_WORKERS", env=env) == 3

    def test_float_round_trip(self):
        env = {"REPRO_SERVICE_BATCH_WINDOW_S": "0.25"}
        assert envcfg.get("REPRO_SERVICE_BATCH_WINDOW_S", env=env) == 0.25

    def test_flag01_round_trip(self):
        get = lambda raw: envcfg.get(
            "REPRO_TRANSPORT_CHECKSUM",
            env={"REPRO_TRANSPORT_CHECKSUM": raw})
        assert get("1") is True
        assert get("0") is False

    def test_choice_round_trip(self):
        env = {"REPRO_CHAOS_BITFLIP_TARGET": "schur"}
        assert envcfg.get("REPRO_CHAOS_BITFLIP_TARGET", env=env) == "schur"

    def test_truthy(self):
        assert envcfg.get("REPRO_RUN_BENCH", env={}) is False
        assert envcfg.get("REPRO_RUN_BENCH",
                          env={"REPRO_RUN_BENCH": "yes"}) is True


class TestValidationErrors:
    """Malformed values die with a ValueError naming the variable —
    the contract the scattered per-module parsers used to implement."""

    @pytest.mark.parametrize("name,raw", [
        ("REPRO_WORKERS", "banana"),
        ("REPRO_WORKERS", "0"),
        ("REPRO_WORKERS", "-2"),
        ("REPRO_SERVICE_MAX_PENDING", "0"),
        ("REPRO_SERVICE_BATCH_WINDOW_S", "-1"),
        ("REPRO_SERVICE_CACHE_BYTES", "lots"),
        ("REPRO_CHAOS_STRAGGLE_S", "soon"),
        ("REPRO_CHAOS_BITFLIP_TARGET", "cache"),
        ("REPRO_CHAOS_CRASH_SUBDOMAIN", "first"),
        ("REPRO_TRANSPORT_CHECKSUM", "maybe"),
        ("REPRO_MP_START", "teleport"),
    ])
    def test_malformed_value_names_variable(self, name, raw):
        with pytest.raises(ValueError, match=name):
            envcfg.get(name, env={name: raw})

    def test_historical_messages_preserved(self):
        with pytest.raises(ValueError,
                           match="must be a positive integer"):
            envcfg.get("REPRO_WORKERS", env={"REPRO_WORKERS": "0"})
        with pytest.raises(ValueError,
                           match="an integer subdomain index"):
            envcfg.get("REPRO_CHAOS_CRASH_SUBDOMAIN",
                       env={"REPRO_CHAOS_CRASH_SUBDOMAIN": "x"})
        with pytest.raises(ValueError, match="'0' or '1'"):
            envcfg.get("REPRO_TRANSPORT_CHECKSUM",
                       env={"REPRO_TRANSPORT_CHECKSUM": "2"})

    def test_validate_all_sweeps(self):
        envcfg.validate_all(env={})  # all-unset always passes
        with pytest.raises(ValueError, match="REPRO_CHAOS_BITFLIP_COUNT"):
            envcfg.validate_all(env={"REPRO_CHAOS_BITFLIP_COUNT": "0"})

    def test_unregistered_name_rejected(self):
        with pytest.raises(KeyError, match="REPRO_NOT_A_KNOB"):
            envcfg.get("REPRO_NOT_A_KNOB")
        with pytest.raises(KeyError, match="REPRO_NOT_A_KNOB"):
            envcfg.get_raw("REPRO_NOT_A_KNOB")


class TestRegistryIsAuthoritative:
    def test_consumers_use_registry(self):
        """The refactored parse sites agree with the registry."""
        from repro.parallel import exec as pexec

        assert pexec._default_workers() >= 1
        assert isinstance(pexec.transport_checksum_enabled(), bool)

    def test_markdown_table_lists_every_variable(self):
        table = envcfg.markdown_table()
        for name, _ in envcfg.env_table():
            assert f"`{name}`" in table

    def test_readme_table_in_sync(self):
        """The README environment table is generated from the registry
        (regenerate with ``python -m repro.envcfg``)."""
        readme = README.read_text()
        assert envcfg.markdown_table() in readme, (
            "README environment table drifted from repro.envcfg; paste "
            "the output of `python -m repro.envcfg` into README.md")
