"""Tests for the solver extensions: BiCGSTAB, separator trimming, and
the experiment CLI."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.core import build_dbbd, rhb_partition, trim_separator
from repro.graphs import nested_dissection_partition
from repro.solver import PDSLin, PDSLinConfig, bicgstab


class TestBiCGSTAB:
    def test_identity(self, rng):
        b = rng.standard_normal(12)
        res = bicgstab(lambda v: v.copy(), b)
        assert res.converged
        np.testing.assert_allclose(res.x, b, atol=1e-10)

    def test_spd(self, spd60, rng):
        b = rng.standard_normal(60)
        res = bicgstab(lambda v: spd60 @ v, b, tol=1e-12)
        assert res.converged
        assert np.linalg.norm(spd60 @ res.x - b) <= 1e-9 * np.linalg.norm(b)

    def test_unsymmetric(self, unsym50, rng):
        b = rng.standard_normal(50)
        res = bicgstab(lambda v: unsym50 @ v, b, tol=1e-10, maxiter=2000)
        if res.converged:
            assert np.linalg.norm(unsym50 @ res.x - b) <= \
                1e-8 * np.linalg.norm(b)

    def test_preconditioner(self, rng):
        d = np.logspace(0, 6, 40)
        A = sp.diags(d)
        b = rng.standard_normal(40)
        res = bicgstab(lambda v: A @ v, b, preconditioner=lambda v: v / d,
                       tol=1e-10)
        assert res.converged
        assert res.iterations <= 5

    def test_zero_rhs(self):
        res = bicgstab(lambda v: v, np.zeros(5))
        assert res.converged and res.iterations == 0

    def test_maxiter_respected(self, rng):
        n = 60
        A = sp.eye(n) + 5 * sp.random(n, n, 0.3, random_state=2)
        b = rng.standard_normal(n)
        res = bicgstab(lambda v: A @ v, b, tol=1e-15, maxiter=2)
        assert res.iterations <= 2

    def test_invalid_maxiter(self):
        with pytest.raises(ValueError):
            bicgstab(lambda v: v, np.ones(3), maxiter=0)

    def test_pdslin_with_bicgstab(self, rng):
        A = grid_laplacian(12, 12)
        b = rng.standard_normal(A.shape[0])
        cfg = PDSLinConfig(k=2, krylov="bicgstab", seed=0,
                           drop_interface=1e-3, drop_schur=1e-4)
        res = PDSLin(A, cfg).solve(b)
        assert res.residual_norm < 1e-7

    def test_bad_krylov_rejected(self):
        with pytest.raises(ValueError):
            PDSLinConfig(krylov="chebyshev")

    def test_pdslin_with_fgmres(self, rng):
        A = grid_laplacian(12, 12)
        b = rng.standard_normal(A.shape[0])
        cfg = PDSLinConfig(k=2, krylov="fgmres", seed=0,
                           drop_interface=1e-3, drop_schur=1e-4)
        res = PDSLin(A, cfg).solve(b)
        assert res.converged and res.residual_norm < 1e-7


class TestTrimSeparator:
    def test_never_grows_separator(self, grid16):
        r = nested_dissection_partition(grid16, 4, seed=0)
        before = int((r.part == -1).sum())
        out = trim_separator(grid16, r.part, 4)
        after = int((out == -1).sum())
        assert after <= before

    def test_result_still_valid_dbbd(self, grid16):
        r = nested_dissection_partition(grid16, 4, seed=1)
        out = trim_separator(grid16, r.part, 4)
        build_dbbd(grid16, out, 4)  # validates the invariant

    def test_trims_artificial_fat_separator(self):
        # two cliques joined by a path of 3 vertices; mark the whole
        # path as separator although one vertex suffices
        blocks = [np.ones((3, 3)), np.ones((3, 3))]
        A = sp.block_diag(blocks).tolil()
        # path: 2 - 6 - 7 - 8 - 3  (vertices 6,7,8 appended)
        n = 9
        A.resize((n, n))
        for a, b2 in ((2, 6), (6, 7), (7, 8), (8, 3)):
            A[a, b2] = 1.0
            A[b2, a] = 1.0
        A = sp.csr_matrix(A) + sp.eye(n)
        part = np.array([0, 0, 0, 1, 1, 1, -1, -1, -1])
        out = trim_separator(A.tocsr(), part, 2)
        assert int((out == -1).sum()) < 3
        build_dbbd(A.tocsr(), out, 2)

    def test_input_not_modified(self, grid16):
        r = nested_dissection_partition(grid16, 2, seed=0)
        snapshot = r.part.copy()
        trim_separator(grid16, r.part, 2)
        np.testing.assert_array_equal(r.part, snapshot)

    def test_rhb_partition_trimmable(self, grid16):
        r = rhb_partition(grid16, 4, seed=0)
        out = trim_separator(grid16, r.col_part, 4)
        assert int((out == -1).sum()) <= r.separator_size
        build_dbbd(grid16, out, 4)

    def test_pdslin_trim_option(self, rng):
        A = grid_laplacian(12, 12)
        b = rng.standard_normal(A.shape[0])
        res = PDSLin(A, PDSLinConfig(k=2, trim_separator=True,
                                     seed=0)).solve(b)
        assert res.residual_norm < 1e-8

    def test_wrong_length_rejected(self, grid8):
        with pytest.raises(ValueError):
            trim_separator(grid8, np.zeros(3, dtype=int), 2)


class TestCLI:
    def test_table1_runs(self, capsys, tmp_path):
        from repro.experiments.__main__ import main
        rc = main(["table1", "--scale", "tiny", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tdr190k" in out
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])
