"""End-to-end recovery-ladder tests: PDSLin solves through injected
faults and numerical breakdowns, reporting degradation honestly."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.obs import Tracer
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.chaos import run_chaos_smoke, standard_fault_plan
from repro.solver import PDSLin, PDSLinConfig
from repro.solver.bicgstab import BiCGSTABResult


def _cfg(**kw) -> PDSLinConfig:
    kw.setdefault("k", 4)
    kw.setdefault("block_size", 16)
    kw.setdefault("seed", 0)
    return PDSLinConfig(**kw)


def _rhs(A, seed=0):
    return np.random.default_rng(seed).standard_normal(A.shape[0])


# ---------------------------------------------------------------------------
# the acceptance scenario: permanent LU(D) + transient LU(S) faults
# ---------------------------------------------------------------------------

class TestFaultInjectionEndToEnd:
    def test_acceptance_scenario(self, grid16):
        plan = FaultPlan([
            FaultSpec(stage="LU(D)", process=1, kind="permanent"),
            FaultSpec(stage="LU(S)", process=None, kind="transient"),
        ], seed=0)
        tracer = Tracer()
        solver = PDSLin(grid16, _cfg(), tracer=tracer, fault_plan=plan)
        result = solver.solve(_rhs(grid16))

        assert result.converged
        assert result.residual_norm < 1e-8
        # non-empty recovery report with both ladders exercised
        rep = result.recovery
        assert rep.events
        actions = rep.actions()
        assert actions.get("failover-root") == 1   # permanent LU(D) fault
        assert actions.get("retry", 0) >= 1        # transient LU(S) fault
        assert result.degraded                     # failover degrades
        # the Recover stage shows up in the machine breakdown
        bd = result.breakdown()
        assert bd.get("Recover", 0.0) > 0.0
        # tracer counters match the report
        assert tracer.counters["recovery_events"] == len(rep.events)
        assert tracer.counters["recovery_failover_root"] == 1
        assert plan.fired_summary()["permanent"] == 1
        assert plan.fired_summary()["transient"] == 1

    def test_transient_subdomain_fault_retries_in_place(self, grid16):
        plan = FaultPlan([FaultSpec(stage="Comp(S)", process=2,
                                    kind="transient", trips=1)])
        solver = PDSLin(grid16, _cfg(), fault_plan=plan)
        result = solver.solve(_rhs(grid16))
        assert result.converged
        assert result.recovery.actions() == {"retry": 1}
        assert not result.degraded  # a plain retry is not degradation
        assert result.breakdown().get("Recover", 0.0) > 0.0

    def test_straggler_inflates_makespan_without_events(self, grid16):
        plan = FaultPlan([FaultSpec(stage="LU(D)", process=0,
                                    kind="straggler", delay_s=0.5)])
        solver = PDSLin(grid16, _cfg(), fault_plan=plan)
        result = solver.solve(_rhs(grid16))
        assert result.converged
        assert result.recovery.healthy  # stragglers are slow, not broken
        assert solver.machine.process_stage_times("LU(D)")[0] >= 0.5

    def test_same_seed_same_recovery_events(self, grid16):
        def run():
            plan = FaultPlan([
                FaultSpec(stage="LU(D)", process=1, kind="transient",
                          trips=2, recovery_cost_s=0.01),
                FaultSpec(stage="Comp(S)", process=3, kind="transient",
                          recovery_cost_s=0.02),
            ], seed=4)
            solver = PDSLin(grid16, _cfg(), fault_plan=plan)
            result = solver.solve(_rhs(grid16))
            return plan, result

        plan_a, res_a = run()
        plan_b, res_b = run()
        assert res_a.converged and res_b.converged
        # identical fired-fault sequences and recovery events
        assert plan_a.fired == plan_b.fired
        assert res_a.recovery.events == res_b.recovery.events
        # transient-only plans charge Recover purely through
        # deterministic add() amounts -> bit-identical stage time;
        # breakdown() reports the parallel max over processes:
        # max(2 retries * 0.01 on process 1, 1 retry * 0.02 on process 3)
        ra = res_a.machine.breakdown()["Recover"]
        rb = res_b.machine.breakdown()["Recover"]
        assert ra == rb == pytest.approx(0.02)

    def test_chaos_smoke_passes_all_checks(self):
        run = run_chaos_smoke(k=4, seed=0)
        assert run.checks == {name: True for name in run.checks}
        assert run.ok
        assert run.degraded
        assert run.breakdown["Recover"] > 0.0

    def test_standard_fault_plan_deterministic(self):
        a = standard_fault_plan(k=4, seed=3)
        b = standard_fault_plan(k=4, seed=3)
        assert a.specs == b.specs
        assert a.specs[0].kind == "permanent"
        assert a.specs[1].process is None


# ---------------------------------------------------------------------------
# numerical-breakdown ladders
# ---------------------------------------------------------------------------

class TestNumericalRecovery:
    def test_singular_subdomain_solved_by_static_pivoting(self):
        """A subdomain-singular (but globally nonsingular) matrix that
        previously aborted the factorization now solves via the static
        pivot perturbation rung, with the count reported."""
        A = grid_laplacian(12, 12)
        cfg = PDSLinConfig(k=2, block_size=16, seed=0)
        probe = PDSLin(A, cfg)
        probe.setup()
        part = probe.partition.part
        sepv = set(probe.partition.separator_vertices.tolist())
        Acsr = A.tocsr()
        victim = next(
            v for v in range(A.shape[0])
            if v not in sepv and part[v] == 0 and any(
                int(w) in sepv
                for w in Acsr.indices[Acsr.indptr[v]:Acsr.indptr[v + 1]]
                if w != v))
        # zero the victim's row inside its subdomain block (diagonal
        # included) but keep its separator coupling: D_ell becomes
        # singular while A stays nonsingular
        A2 = A.tolil()
        for w in Acsr.indices[Acsr.indptr[victim]:Acsr.indptr[victim + 1]]:
            if int(w) not in sepv:
                A2[victim, int(w)] = 0.0
        A2 = A2.tocsr()
        A2.eliminate_zeros()

        # static_pivot_matching would *proactively* permute the zero
        # pivot away (see test below); disable it to exercise the
        # reactive perturbation rung
        tracer = Tracer()
        solver = PDSLin(A2, PDSLinConfig(k=2, block_size=16, seed=0,
                                         static_pivot_matching=False),
                        tracer=tracer)
        result = solver.solve(_rhs(A2))
        assert result.converged
        rep = result.recovery
        assert rep.perturbed_pivots >= 1
        assert rep.actions().get("static-pivot", 0) >= 1
        assert result.degraded
        assert tracer.counters["perturbed_pivots"] == rep.perturbed_pivots
        assert "perturbed pivots" in rep.summary()
        # degraded accuracy is expected, catastrophic loss is not
        assert result.residual_norm < 0.1

    def test_ilu_breakdown_falls_back_to_lu(self, grid16, monkeypatch):
        import scipy.sparse.linalg as spla

        def broken_spilu(*args, **kwargs):
            raise RuntimeError("ILU factorization hit a zero pivot")

        monkeypatch.setattr(spla, "spilu", broken_spilu)
        solver = PDSLin(grid16, _cfg(schur_factorization="ilu"))
        result = solver.solve(_rhs(grid16))
        assert result.converged
        assert result.recovery.actions().get("ilu-to-lu") == 1
        assert result.recovery.preconditioner_mode == "lu(from-ilu)"
        assert result.breakdown().get("Recover", 0.0) > 0.0

    def test_gmres_stagnation_refreshes_preconditioner(self, grid16):
        """An over-dropped S~ makes GMRES fail its iteration budget; the
        ladder rebuilds the preconditioner without dropping and retries
        once, warm-started, to convergence."""
        tracer = Tracer()
        solver = PDSLin(grid16, _cfg(drop_schur=0.5, gmres_maxiter=4,
                                     gmres_restart=4), tracer=tracer)
        result = solver.solve(_rhs(grid16))
        assert result.converged
        assert result.residual_norm < 1e-8
        assert result.recovery.actions().get("precond-refresh") == 1
        assert result.recovery.preconditioner_mode == \
            "lu(refreshed, drop_schur=0)"
        assert result.degraded
        assert tracer.counters["recovery_precond_refresh"] == 1
        assert result.breakdown().get("Recover", 0.0) > 0.0

    def test_bicgstab_breakdown_falls_back_to_gmres(self, grid16,
                                                    monkeypatch):
        # the package re-exports the function under the same name, so
        # resolve the submodule explicitly
        import importlib
        bicgstab_mod = importlib.import_module("repro.solver.bicgstab")

        def broken_bicgstab(matvec, b, **kwargs):
            return BiCGSTABResult(x=np.zeros_like(b), converged=False,
                                  iterations=3, breakdown=True)

        monkeypatch.setattr(bicgstab_mod, "bicgstab", broken_bicgstab)
        solver = PDSLin(grid16, _cfg(krylov="bicgstab"))
        result = solver.solve(_rhs(grid16))
        assert result.converged
        assert result.recovery.actions().get("krylov-fallback") == 1
        assert result.degraded
        ev = next(e for e in result.recovery.events
                  if e.action == "krylov-fallback")
        assert ev.error == "KrylovBreakdownError"

    def test_bicgstab_healthy_path_untouched(self, grid16):
        solver = PDSLin(grid16, _cfg(krylov="bicgstab"))
        result = solver.solve(_rhs(grid16))
        assert result.converged
        assert result.recovery.healthy


# ---------------------------------------------------------------------------
# input validation
# ---------------------------------------------------------------------------

class TestInputValidation:
    def test_nan_matrix_rejected_at_init(self, grid8):
        A = grid8.tolil()
        A[3, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            PDSLin(A.tocsr(), _cfg(k=2))

    def test_inf_rhs_rejected(self, grid8):
        solver = PDSLin(grid8, _cfg(k=2))
        b = np.ones(grid8.shape[0])
        b[0] = np.inf
        with pytest.raises(ValueError, match="b contains"):
            solver.solve(b)

    def test_nan_block_rhs_rejected(self, grid8):
        solver = PDSLin(grid8, _cfg(k=2))
        B = np.ones((grid8.shape[0], 2))
        B[1, 1] = np.nan
        with pytest.raises(ValueError, match="B contains"):
            solver.solve_multiple(B)

    def test_finite_inputs_pass(self, grid8):
        solver = PDSLin(grid8, _cfg(k=2))
        result = solver.solve(np.ones(grid8.shape[0]))
        assert result.converged and result.recovery.healthy
        assert not result.degraded


# ---------------------------------------------------------------------------
# result surface
# ---------------------------------------------------------------------------

def test_result_carries_recovery_report(grid8):
    solver = PDSLin(grid8, _cfg(k=2))
    r1 = solver.solve(np.ones(grid8.shape[0]))
    r2 = solver.solve(np.arange(grid8.shape[0], dtype=float))
    # one cumulative report per solver instance, shared across results
    assert r1.recovery is solver.recovery
    assert r2.recovery is solver.recovery
    assert isinstance(r1.degraded, bool)
    assert sp.issparse(grid8)
