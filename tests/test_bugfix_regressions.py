"""Regression tests for the bugs flushed out by ``repro.verify``.

Each test here fails on the pre-fix code:

- GMRES kept iterating (or crashed on a singular small system) after an
  Arnoldi breakdown instead of returning/restarting;
- ``drop_small_entries`` thresholded over un-summed duplicate COO
  entries;
- ``SimulatedMachine.balance_ratio`` returned inf when any process
  never entered the stage;
- ``blocked_triangular_solve`` walked the symbolic pattern twice per
  part (checked against the :func:`repro.verify.oracles` padding
  oracle).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.lu import (
    SupernodalLower,
    blocked_triangular_solve,
    padded_zeros,
    partition_columns,
)
from repro.lu.symbolic import solution_pattern
from repro.parallel.machine import SimulatedMachine
from repro.solver.gmres import gmres
from repro.solver.schur import drop_small_entries

# -- satellite 1: GMRES Arnoldi breakdown ------------------------------------


def test_gmres_happy_breakdown_exact_eigenvector():
    # b is an exact eigenvector: Arnoldi breaks down at j=0 with
    # H[1,0] == 0.0 exactly; the one-dimensional small system is exact.
    A = np.diag([2.0, 3.0, 4.0])
    b = np.array([1.0, 0.0, 0.0])
    res = gmres(lambda v: A @ v, b, tol=1e-12, restart=5, maxiter=50)
    assert res.converged
    assert res.iterations == 1
    np.testing.assert_allclose(res.x, [0.5, 0.0, 0.0], atol=1e-14)


def test_gmres_happy_breakdown_invariant_subspace():
    # b spans an exactly invariant 2D subspace (all arithmetic exact in
    # binary floating point): breakdown at j=1, solved in 2 iterations.
    A = np.array([[2.0, 1.0, 0.0],
                  [0.0, 3.0, 0.0],
                  [0.0, 0.0, 5.0]])
    b = np.array([0.0, 1.0, 0.0])
    res = gmres(lambda v: A @ v, b, tol=1e-12, restart=10, maxiter=50)
    assert res.converged
    assert res.iterations == 2
    np.testing.assert_allclose(A @ res.x, b, atol=1e-12)


def test_gmres_breakdown_singular_operator_no_crash():
    # The operator annihilates b entirely: H[0,0] = H[1,0] = 0 at j=0.
    # Pre-fix this raised numpy.linalg.LinAlgError ("Singular matrix")
    # from the small triangular solve; post-fix it reports breakdown.
    A = np.diag([0.0, 1.0, 1.0])
    b = np.array([1.0, 0.0, 0.0])
    res = gmres(lambda v: A @ v, b, tol=1e-12, restart=5, maxiter=50)
    assert not res.converged
    assert res.stagnated
    assert np.all(np.isfinite(res.x))


def test_gmres_breakdown_rank_deficient_partial_progress():
    # b has a component in the operator's range and one in its null
    # space; the solvable part must be resolved before the breakdown
    # return (no crash, no infinite restart churn).
    A = np.diag([0.0, 2.0])
    b = np.array([1.0, 1.0])
    res = gmres(lambda v: A @ v, b, tol=1e-12, restart=4, maxiter=100)
    assert not res.converged
    assert np.all(np.isfinite(res.x))
    # the reachable component is solved: residual reduces to the
    # null-space part only
    r = b - A @ res.x
    assert abs(r[1]) < 1e-10
    assert res.iterations < 100  # terminated early, not via maxiter


# -- satellite 2: drop_small_entries duplicate canonicalization --------------


def test_drop_small_entries_sums_duplicates_before_threshold():
    # (0,1) is stored as two 0.6 entries summing to 1.2 — the largest
    # magnitude in the canonical matrix. Pre-fix the threshold was
    # 0.7 * max|un-summed| = 0.7 and both 0.6 fragments were dropped.
    A = sp.coo_matrix(([0.6, 0.6, 1.0], ([0, 0, 1], [1, 1, 0])),
                      shape=(2, 2))
    out = drop_small_entries(A, 0.7)
    assert out[0, 1] == pytest.approx(1.2)
    assert out[1, 0] == pytest.approx(1.0)


def test_drop_small_entries_zero_tol_canonical():
    A = sp.coo_matrix(([1.0, 1.0, 2.0], ([0, 0, 1], [1, 1, 1])),
                      shape=(2, 2))
    out = drop_small_entries(A, 0.0)
    assert out.has_canonical_format
    assert out.nnz == 2
    assert out[0, 1] == pytest.approx(2.0)


def test_drop_small_entries_does_not_mutate_input():
    A = sp.coo_matrix(([0.5, 0.5], ([0, 0], [1, 1])), shape=(2, 2))
    drop_small_entries(A, 0.0)
    assert A.nnz == 2  # caller's matrix untouched


# -- satellite 3: balance_ratio over participating processes -----------------


def test_balance_ratio_ignores_nonparticipating_processes():
    m = SimulatedMachine(4)
    for ell in (0, 1):
        with m.on_process(ell, "LU(D)") as ledger:
            ledger.ops.add("LU(D)", 100 * (ell + 1))
    # processes 2 and 3 never entered LU(D): pre-fix both ratios were inf
    assert m.balance_ratio("LU(D)", use_flops=True) == pytest.approx(2.0)
    t_ratio = m.balance_ratio("LU(D)")
    assert np.isfinite(t_ratio) and t_ratio >= 1.0


def test_balance_ratio_empty_stage_is_one():
    m = SimulatedMachine(3)
    assert m.balance_ratio("nothing") == 1.0
    assert m.balance_ratio("nothing", use_flops=True) == 1.0


# -- satellite 4: single pattern sweep in blocked_triangular_solve -----------


def _small_lower_system(seed: int = 0, n: int = 40, m: int = 12):
    rng = np.random.default_rng(seed)
    L = sp.eye(n, format="lil")
    for _ in range(3 * n):
        i = rng.integers(1, n)
        j = rng.integers(0, i)
        L[i, j] = rng.normal()
    L = sp.csc_matrix(L)
    E = sp.random(n, m, density=0.15, random_state=rng, format="csr")
    return L, E


def test_blocked_solve_padding_matches_padded_zeros_oracle():
    L, E = _small_lower_system()
    Gpat = solution_pattern(L, E, method="reach")
    parts = partition_columns(np.arange(E.shape[1]), 5)
    snl = SupernodalLower.from_csc(L, unit_diagonal=True)
    res = blocked_triangular_solve(snl, E, Gpat, parts)
    oracle = padded_zeros(Gpat, parts)
    assert res.padding == oracle


def test_blocked_solve_flops_unchanged_and_correct():
    # the one-pass refactor must not change the numeric result or the
    # flop count; verified against a dense solve and the padding oracle
    L, E = _small_lower_system(seed=3)
    Gpat = solution_pattern(L, E, method="reach")
    parts = partition_columns(np.arange(E.shape[1]), 4)
    snl = SupernodalLower.from_csc(L, unit_diagonal=True)
    res = blocked_triangular_solve(snl, E, Gpat, parts)
    X_ref = np.linalg.solve(L.toarray(), E.toarray())
    np.testing.assert_allclose(res.X.toarray(), X_ref, atol=1e-10)
    oracle = padded_zeros(Gpat, parts)
    assert res.padding.total_block_entries == oracle.total_block_entries
    assert res.flops > 0
