"""Smoke tests: every example script runs to completion.

Run as subprocesses so import-time behaviour, argument parsing and the
``__main__`` guards are exercised exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "converged:      True" in out
        assert "stage breakdown" in out

    def test_cavity_partitioning(self):
        out = run_example("cavity_partitioning.py", "tiny")
        assert "PT-SCOTCH" in out
        assert "weight-scheme ablation" in out or "weight scheme" in out

    def test_circuit_analysis(self):
        out = run_example("circuit_analysis.py")
        assert "separator size" in out
        assert "end-to-end solves" in out

    def test_rhs_reordering(self):
        out = run_example("rhs_reordering.py")
        assert "padded-zero fraction" in out
        assert "quasi-dense" in out

    def test_custom_matrix(self):
        out = run_example("custom_matrix.py")
        assert "MatrixMarket roundtrip max error: 0.0" in out
        assert "converged=True" in out

    def test_unstructured_fem(self):
        out = run_example("unstructured_fem.py")
        assert "partitioner comparison" in out
        assert "converged=True" in out

    def test_chaos_solve(self):
        out = run_example("chaos_solve.py")
        assert "all scenarios recovered: True" in out
        assert "DEGRADED" in out
        assert "static-pivot" in out
        assert "precond-refresh" in out

    def test_parallel_trace(self, tmp_path):
        out = run_example("parallel_trace.py", str(tmp_path))
        assert "two-level projection" in out
        assert (tmp_path / "pdslin_trace.json").exists()
        assert (tmp_path / "pdslin_report.json").exists()
