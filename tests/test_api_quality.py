"""Meta-tests on the public API surface: every exported item is
importable, documented, and the package __all__ lists are accurate."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.utils",
    "repro.sparse",
    "repro.ordering",
    "repro.graphs",
    "repro.hypergraph",
    "repro.core",
    "repro.lu",
    "repro.solver",
    "repro.parallel",
    "repro.resilience",
    "repro.matrices",
    "repro.experiments",
    "repro.obs",
]


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_importable(pkg):
    mod = importlib.import_module(pkg)
    assert hasattr(mod, "__all__"), f"{pkg} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{pkg}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_public_items_documented(pkg):
    mod = importlib.import_module(pkg)
    undocumented = []
    for name in mod.__all__:
        obj = getattr(mod, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            doc = inspect.getdoc(obj)
            if not doc or len(doc) < 15:
                undocumented.append(name)
    assert not undocumented, f"{pkg}: undocumented public items: " \
                             f"{undocumented}"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_module_docstrings(pkg):
    mod = importlib.import_module(pkg)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, \
        f"{pkg} lacks a module docstring"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_no_duplicate_exports():
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        assert len(mod.__all__) == len(set(mod.__all__)), \
            f"{pkg}.__all__ has duplicates"
