"""Tests for the e-tree fill-path symbolic method (solution_pattern
method="etree") against the exact DAG reach."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from tests.conftest import grid_laplacian

from repro.lu import factor_etree, factorize, reach, solution_pattern
from repro.ordering import elimination_tree, minimum_degree, postorder
from repro.sparse import symmetrized


@pytest.fixture(scope="module")
def factored():
    A = grid_laplacian(12, 12)
    md = minimum_degree(A)
    po = postorder(elimination_tree(symmetrized(A[md][:, md].tocsr())))
    perm = md[po]
    f = factorize(A[perm][:, perm].tocsc(), diag_pivot_thresh=0.0)
    return f


class TestFactorEtree:
    def test_matches_matrix_etree_for_cholesky_structure(self, factored):
        """For a symmetric-pattern factor, the first-below-diagonal
        parents are the classical elimination tree."""
        f = factored
        par_factor = factor_etree(f.L)
        # the factor etree must be consistent: parent[j] > j or -1
        n = f.n
        assert np.all((par_factor == -1) | (par_factor > np.arange(n)))

    def test_roots_have_empty_below(self, factored):
        par = factor_etree(factored.L)
        L = factored.L
        for j in np.flatnonzero(par == -1):
            rows = L.indices[L.indptr[j]:L.indptr[j + 1]]
            assert (rows > j).sum() == 0


class TestEtreeMethod:
    def test_superset_of_exact_reach(self, factored):
        f = factored
        n = f.n
        B = sp.random(n, 15, 0.05, random_state=2, format="csr")
        G_exact = solution_pattern(f.L, B, method="reach")
        G_etree = solution_pattern(f.L, B, method="etree")
        missing = (G_exact.toarray() != 0) & (G_etree.toarray() == 0)
        assert not missing.any()

    def test_equal_on_cholesky_like_factor(self, factored):
        """For MD+postorder diagonal-pivot factors of symmetric-pattern
        matrices the fill-path closure IS the exact reach."""
        f = factored
        n = f.n
        B = sp.random(n, 10, 0.08, random_state=3, format="csr")
        G_exact = solution_pattern(f.L, B, method="reach")
        G_etree = solution_pattern(f.L, B, method="etree")
        np.testing.assert_array_equal(G_exact.toarray() != 0,
                                      G_etree.toarray() != 0)

    def test_covers_numeric_nonzeros(self, factored):
        f = factored
        n = f.n
        B = sp.random(n, 8, 0.05, random_state=4, format="csr")
        Bp = B  # already in factored coordinates for this test
        G = solution_pattern(f.L, Bp, method="etree")
        X = spla.spsolve_triangular(f.L.tocsr(), Bp.toarray(), lower=True,
                                    unit_diagonal=True)
        bad = (np.abs(X) > 0) & (G.toarray() == 0)
        assert not bad.any()

    def test_invalid_method(self, factored):
        with pytest.raises(ValueError):
            solution_pattern(factored.L, sp.csr_matrix((factored.n, 1)),
                             method="magic")

    def test_empty_rhs(self, factored):
        G = solution_pattern(factored.L, sp.csr_matrix((factored.n, 0)),
                             method="etree")
        assert G.shape == (factored.n, 0)

    def test_solver_end_to_end_with_etree_patterns(self, rng):
        """PDSLin (which now predicts patterns via the e-tree model)
        still produces exact solutions."""
        from repro.solver import PDSLin, PDSLinConfig
        A = grid_laplacian(14, 14)
        b = rng.standard_normal(A.shape[0])
        res = PDSLin(A, PDSLinConfig(k=4, seed=0)).solve(b)
        assert res.residual_norm < 1e-8


class TestUnsymmetricFactorSuperset:
    """Regression: the first-below-diagonal tree lacks the ancestor
    property on general partial-pivoted LU factors, so the fill-path
    closure under-approximated the exact reach (and numeric interface
    solves silently dropped active rows, caught by the fuzz harness on
    the matrix211 suite case). The Liu-style tree must dominate the
    reach for *any* lower-triangular pattern."""

    @pytest.fixture(scope="class")
    def unsym_factors(self):
        rng = np.random.default_rng(42)
        n = 80
        A = sp.random(n, n, density=0.06, random_state=rng, format="csc")
        A = (A + sp.diags(np.ones(n) * 0.5)).tocsc()
        f = spla.splu(A, permc_spec="COLAMD")
        return f.L.tocsc(), f.U.T.tocsc()

    def test_ancestor_property_both_factors(self, unsym_factors):
        for L in unsym_factors:
            par = factor_etree(L)
            n = L.shape[0]
            for j in range(n):
                rows = L.indices[L.indptr[j]:L.indptr[j + 1]]
                for i in rows[rows > j]:
                    v = j
                    while v != -1 and v != i:
                        v = par[v]
                    assert v == i, f"row {i} not an ancestor of col {j}"

    def test_etree_pattern_dominates_reach(self, unsym_factors):
        rng = np.random.default_rng(7)
        B = sp.random(80, 10, density=0.05, random_state=rng, format="csc")
        for L in unsym_factors:
            Ge = solution_pattern(L, B, method="etree")
            Gr = solution_pattern(L, B, method="reach")
            missing = (Gr - Gr.multiply(Ge)).nnz
            assert missing == 0

    def test_reduces_to_first_below_diagonal_on_cholesky(self, factored):
        """On a Cholesky-structure factor the Liu tree coincides with
        the classical first-below-diagonal elimination tree."""
        L = factored.L.tocsc()
        n = L.shape[0]
        expected = np.full(n, -1, dtype=np.int64)
        for j in range(n):
            rows = L.indices[L.indptr[j]:L.indptr[j + 1]]
            below = rows[rows > j]
            if below.size:
                expected[j] = below.min()
        assert np.array_equal(factor_etree(L), expected)
