"""Tests for the unstructured Delaunay FEM generator."""

import numpy as np
import pytest

from repro.matrices import (
    p1_assemble,
    random_delaunay_mesh,
    unstructured_matrix,
)
from repro.sparse import symmetry_info, verify_structural_factor


class TestMesh:
    @pytest.mark.parametrize("domain", ["square", "disk", "annulus"])
    def test_mesh_valid(self, domain):
        pts, tris = random_delaunay_mesh(400, domain=domain, seed=0)
        assert tris.min() >= 0 and tris.max() < pts.shape[0]
        assert tris.shape[1] == 3
        # every point referenced
        assert np.unique(tris).size == pts.shape[0]

    def test_annulus_has_hole(self):
        pts, tris = random_delaunay_mesh(800, domain="annulus", seed=1)
        centroids = pts[tris].mean(axis=1)
        d = np.linalg.norm(centroids - 0.5, axis=1)
        assert d.min() >= 0.45 * 0.5 - 1e-12

    def test_deterministic(self):
        a = random_delaunay_mesh(200, seed=5)
        b = random_delaunay_mesh(200, seed=5)
        np.testing.assert_array_equal(a[1], b[1])

    def test_bad_domain(self):
        with pytest.raises(ValueError):
            random_delaunay_mesh(100, domain="torus")


class TestP1Assembly:
    def unit_triangle(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        tris = np.array([[0, 1, 2]])
        return pts, tris

    def test_reference_stiffness(self):
        pts, tris = self.unit_triangle()
        K = p1_assemble(pts, tris).toarray()
        ref = 0.5 * np.array([[2.0, -1.0, -1.0],
                              [-1.0, 1.0, 0.0],
                              [-1.0, 0.0, 1.0]])
        np.testing.assert_allclose(K, ref, atol=1e-12)

    def test_stiffness_annihilates_constants(self):
        pts, tris = random_delaunay_mesh(300, domain="disk", seed=2)
        K = p1_assemble(pts, tris)
        np.testing.assert_allclose(K @ np.ones(pts.shape[0]), 0.0,
                                   atol=1e-10)

    def test_mass_integrates_area(self):
        pts, tris = self.unit_triangle()
        M = p1_assemble(pts, tris, mass_coeff=1.0,
                        conductivity=np.zeros(1)).toarray()
        assert M.sum() == pytest.approx(0.5)  # triangle area

    def test_conductivity_scales(self):
        pts, tris = self.unit_triangle()
        K1 = p1_assemble(pts, tris).toarray()
        K3 = p1_assemble(pts, tris, conductivity=np.array([3.0])).toarray()
        np.testing.assert_allclose(K3, 3 * K1)

    def test_spd_stiffness_plus_mass(self):
        pts, tris = random_delaunay_mesh(250, domain="square", seed=3)
        A = p1_assemble(pts, tris, mass_coeff=1.0)
        ev_min = np.linalg.eigvalsh(A.toarray()).min()
        assert ev_min > 0


class TestUnstructuredMatrix:
    def test_structure(self):
        gm = unstructured_matrix(600, seed=0)
        info = symmetry_info(gm.A, check_definiteness=True)
        assert info.pattern_symmetric and info.value_symmetric
        assert info.positive_definite is False  # shifted -> indefinite

    def test_incidence_factor_valid(self):
        gm = unstructured_matrix(500, seed=1)
        assert verify_structural_factor(gm.A, gm.M)

    def test_rhb_partitions_annulus(self):
        from repro.core import rhb_partition
        gm = unstructured_matrix(800, domain="annulus", seed=0)
        r = rhb_partition(gm.A, 4, M=gm.M, seed=0)
        d = r.to_dbbd(gm.A)
        assert np.all(d.subdomain_sizes() > 0)

    def test_pdslin_solves(self, rng):
        from repro.solver import PDSLin, PDSLinConfig
        gm = unstructured_matrix(500, domain="disk", seed=0)
        b = rng.standard_normal(gm.n)
        res = PDSLin(gm.A, PDSLinConfig(k=4, seed=0), M=gm.M).solve(b)
        assert res.residual_norm < 1e-7
