"""Tests for the experiment harness (each table/figure runs end-to-end
at tiny scale and produces sane shapes)."""

import pytest

from repro.experiments import (
    format_ablation,
    format_fig1,
    format_fig3,
    format_fig4,
    format_fig5,
    format_quasidense,
    format_table1,
    format_table2,
    format_table3,
    prepare_triangular_study,
    render_table,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fm_ablation,
    run_partitioner,
    run_quasidense,
    run_table1,
    run_table2,
    run_table3,
    run_weight_ablation,
)
from repro.matrices import generate


class TestCommon:
    def test_run_partitioner_both_methods(self):
        gm = generate("tdr190k", "tiny")
        for method in ("rhb", "ngd"):
            pr = run_partitioner(gm, 4, method=method, seed=0)
            assert pr.quality.separator_size > 0
            assert pr.seconds > 0

    def test_run_partitioner_bad_method(self):
        gm = generate("tdr190k", "tiny")
        with pytest.raises(ValueError):
            run_partitioner(gm, 4, method="metis")

    def test_prepare_triangular_study(self):
        gm = generate("tdr190k", "tiny")
        subs = prepare_triangular_study(gm, k=4, seed=0)
        assert len(subs) == 4
        for s in subs:
            assert s.G_pattern.shape[1] == s.E_factored.shape[1]

    def test_render_table(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", float("nan")]])
        assert "a" in out and "2.5" in out and "-" in out


class TestTable1:
    def test_rows_and_format(self):
        rows = run_table1("tiny", check_definiteness=False)
        assert len(rows) == 7
        txt = format_table1(rows)
        assert "tdr190k" in txt and "G3_circuit" in txt


class TestFig3:
    def test_single_constraint_panel(self):
        rows = run_fig3("tdr190k", "tiny", k=4, constraint="single",
                        include_solve=False, seed=0)
        labels = [r.label for r in rows]
        assert labels == ["CON1", "CNET", "SOED", "PT-SCOTCH"]
        for r in rows:
            assert r.separator_size > 0
            assert r.dim_ratio >= 1.0

    def test_invalid_constraint(self):
        with pytest.raises(ValueError):
            run_fig3("tdr190k", "tiny", constraint="triple")

    def test_format(self):
        rows = run_fig3("tdr190k", "tiny", k=4, constraint="single",
                        include_solve=False, seed=0)
        assert "PT-SCOTCH" in format_fig3(rows)


class TestFig4Fig5:
    def test_fig4_shapes(self):
        pts = run_fig4("tdr190k", "tiny", k=4, block_sizes=(8, 32), seed=0)
        assert len(pts) == 6  # 3 orderings x 2 sizes
        for p in pts:
            assert 0.0 <= p.frac_min <= p.frac_avg <= p.frac_max <= 1.0

    def test_fig4_fraction_grows_with_b(self):
        pts = run_fig4("tdr190k", "tiny", k=4, block_sizes=(4, 64),
                       orderings=("postorder",), seed=0)
        by_b = {p.block_size: p.frac_avg for p in pts}
        assert by_b[4] <= by_b[64]

    def test_fig5_times_positive(self):
        gm = generate("tdr190k", "tiny")
        subs = prepare_triangular_study(gm, k=4, seed=0)
        pts = run_fig5(subs=subs, block_sizes=(16,), seed=0)
        assert len(pts) == 3
        for p in pts:
            assert p.time_avg > 0 and p.flops_avg > 0

    def test_shared_subs_between_fig4_and_fig5(self):
        gm = generate("tdr190k", "tiny")
        subs = prepare_triangular_study(gm, k=4, seed=0)
        p4 = run_fig4(subs=subs, block_sizes=(16,), seed=0)
        p5 = run_fig5(subs=subs, block_sizes=(16,), seed=0)
        assert {p.ordering for p in p4} == {p.ordering for p in p5}

    def test_formats(self):
        gm = generate("tdr190k", "tiny")
        subs = prepare_triangular_study(gm, k=2, seed=0)
        assert "frac avg" in format_fig4(run_fig4(subs=subs,
                                                  block_sizes=(8,), seed=0))
        assert "t avg" in format_fig5(run_fig5(subs=subs,
                                               block_sizes=(8,), seed=0))


class TestQuasiDense:
    def test_sweep(self):
        gm = generate("tdr190k", "tiny")
        subs = prepare_triangular_study(gm, k=2, seed=0)
        pts = run_quasidense(subs=subs, block_size=16,
                             taus=(None, 0.4), seed=0)
        assert len(pts) == 2
        assert pts[0].tau is None
        assert pts[1].rows_removed_frac >= 0.0
        assert "tau" in format_quasidense(pts)


class TestAblation:
    def test_weight_ablation_rows(self):
        rows = run_weight_ablation("tdr190k", "tiny", k=4, seed=0,
                                   n_seeds=1)
        assert [r.label for r in rows] == \
            ["ngd", "soed/unit", "soed/w2", "soed/w1", "soed/w1w2"]
        txt = format_ablation(rows, title="weights")
        assert "soed/w1" in txt

    def test_fm_ablation_rows(self):
        rows = run_fm_ablation("tdr190k", "tiny", k=2, seed=0)
        assert len(rows) == 5


@pytest.mark.slow
class TestHeavyExperiments:
    def test_fig1_projection_monotone(self):
        pts = run_fig1("tdr455k", "tiny", k=2, cores=(2, 8, 64), seed=0)
        assert len(pts) == 6
        for label in ("RHB,soed", "PT-Scotch"):
            ours = [p for p in pts if p.partitioner == label]
            totals = [p.total for p in sorted(ours, key=lambda p: p.cores)]
            assert totals[0] >= totals[-1]
        assert "cores" in format_fig1(pts)

    def test_table2_rows(self):
        rows = run_table2(matrices=("G3_circuit",), scale="tiny", k=2, seed=0)
        assert len(rows) == 2
        assert rows[0].alg == "NGD" and rows[1].alg == "RHB"
        assert rows[0].n_d_min <= rows[0].n_d_max
        assert "Table II" in format_table2(rows)

    def test_table3_rows(self):
        rows = run_table3(matrices=("tdr190k",), scale="tiny", k=2, seed=0)
        assert len(rows) == 1
        r = rows[0]
        assert r.fill_ratio_min >= 1.0
        assert 0 < r.eff_density_max <= 1.0
        assert "Table III" in format_table3(rows)
