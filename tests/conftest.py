"""Shared fixtures: small deterministic matrices of each structural
class used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp


def grid_laplacian(nx: int, ny: int, *, diag: float = 4.0) -> sp.csr_matrix:
    """5-point 2-D grid operator (symmetric, diagonally dominant)."""
    Tx = sp.diags([-np.ones(nx - 1), diag * np.ones(nx),
                   -np.ones(nx - 1)], [-1, 0, 1])
    Ty = sp.diags([-np.ones(ny - 1), np.zeros(ny), -np.ones(ny - 1)],
                  [-1, 0, 1])
    A = sp.kron(sp.eye(ny), Tx) + sp.kron(Ty, sp.eye(nx))
    return A.tocsr()


def random_spd(n: int, density: float = 0.05, seed: int = 0) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density, random_state=rng, format="csr")
    A = A + A.T + (n * 0.5) * sp.eye(n)
    A = A.tocsr()
    A.sum_duplicates()
    return A


def random_unsymmetric(n: int, density: float = 0.05,
                       seed: int = 0) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density, random_state=rng, format="csr")
    A = (A + (density * n) * sp.eye(n)).tocsr()
    A.sum_duplicates()
    return A


@pytest.fixture
def grid16() -> sp.csr_matrix:
    return grid_laplacian(16, 16)


@pytest.fixture
def grid8() -> sp.csr_matrix:
    return grid_laplacian(8, 8)


@pytest.fixture
def spd60() -> sp.csr_matrix:
    return random_spd(60, 0.08, seed=3)


@pytest.fixture
def unsym50() -> sp.csr_matrix:
    return random_unsymmetric(50, 0.08, seed=5)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
