"""Tests for relaxed (amalgamated) supernodes."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla
from tests.conftest import grid_laplacian, random_spd

from repro.lu import (
    SupernodalLower,
    detect_supernodes,
    factorize,
    relaxed_supernodes,
)


@pytest.fixture(scope="module")
def factor():
    A = grid_laplacian(14, 14).tocsc()
    return factorize(A, diag_pivot_thresh=0.0)


class TestRelaxedRanges:
    def test_tiles_columns(self, factor):
        sn = relaxed_supernodes(factor.L, relax=0.3)
        assert sn[0][0] == 0 and sn[-1][1] == factor.n
        for (a0, a1), (b0, b1) in zip(sn, sn[1:]):
            assert a1 == b0

    def test_zero_relax_equals_strict(self, factor):
        strict = detect_supernodes(factor.L, max_size=64)
        relaxed = relaxed_supernodes(factor.L, relax=0.0, max_size=64)
        assert relaxed == strict

    def test_more_relax_fewer_blocks(self, factor):
        counts = [len(relaxed_supernodes(factor.L, relax=r))
                  for r in (0.0, 0.2, 0.5)]
        assert counts[0] >= counts[1] >= counts[2]

    def test_max_size_cap(self, factor):
        sn = relaxed_supernodes(factor.L, relax=0.9, max_size=8)
        assert max(c1 - c0 for c0, c1 in sn) <= 8

    def test_invalid_relax(self, factor):
        with pytest.raises(ValueError):
            relaxed_supernodes(factor.L, relax=1.5)


class TestAmalgamatedSolve:
    def test_solve_matches_strict(self, factor, rng):
        n = factor.n
        X = rng.standard_normal((n, 3))
        ref = spla.spsolve_triangular(factor.L.tocsr(), X, lower=True,
                                      unit_diagonal=True)
        for relax in (0.2, 0.5, 0.8):
            sn = relaxed_supernodes(factor.L, relax=relax)
            snl = SupernodalLower.from_csc(factor.L, unit_diagonal=True,
                                           snodes=sn)
            Y = X.copy()
            snl.solve_inplace(Y)
            np.testing.assert_allclose(Y, ref, atol=1e-10,
                                       err_msg=f"relax={relax}")

    def test_non_unit_diagonal(self, factor, rng):
        UT = factor.U.T.tocsc()
        sn = relaxed_supernodes(UT, relax=0.4)
        snl = SupernodalLower.from_csc(UT, unit_diagonal=False, snodes=sn)
        X = rng.standard_normal((factor.n, 2))
        ref = spla.spsolve_triangular(UT.tocsr(), X, lower=True)
        Y = X.copy()
        snl.solve_inplace(Y)
        np.testing.assert_allclose(Y, ref, atol=1e-8)

    def test_fewer_kernel_calls_more_flops(self, factor, rng):
        """Amalgamation trades kernel count for padded flops."""
        strict = SupernodalLower.from_csc(factor.L, unit_diagonal=True)
        sn = relaxed_supernodes(factor.L, relax=0.6)
        fat = SupernodalLower.from_csc(factor.L, unit_diagonal=True,
                                       snodes=sn)
        assert fat.n_supernodes <= strict.n_supernodes
        X = rng.standard_normal((factor.n, 4))
        f_strict = strict.solve_inplace(X.copy())
        f_fat = fat.solve_inplace(X.copy())
        assert f_fat >= f_strict

    def test_bad_ranges_rejected(self, factor):
        with pytest.raises(ValueError):
            SupernodalLower.from_csc(factor.L, unit_diagonal=True,
                                     snodes=[(0, 5), (6, factor.n)])

    def test_spd_matrix_roundtrip(self, rng):
        A = random_spd(70, 0.08, seed=9).tocsc()
        f = factorize(A, diag_pivot_thresh=0.0)
        sn = relaxed_supernodes(f.L, relax=0.3)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True, snodes=sn)
        b = rng.standard_normal((70, 1))
        y = b.copy()
        snl.solve_inplace(y)
        ref = spla.spsolve_triangular(f.L.tocsr(), b, lower=True,
                                      unit_diagonal=True)
        np.testing.assert_allclose(y, ref, atol=1e-10)
