"""Tests for the nested-dissection fill-reducing ordering."""

import numpy as np
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.ordering import (
    minimum_degree,
    nested_dissection_ordering,
    permute_symmetric,
    symbolic_cholesky_row_counts,
)


def fill_of(A) -> int:
    return int(symbolic_cholesky_row_counts(A).sum())


class TestNDOrdering:
    def test_is_permutation(self):
        A = grid_laplacian(12, 12)
        order = nested_dissection_ordering(A, leaf_size=16, seed=0)
        assert sorted(order.tolist()) == list(range(144))

    def test_reduces_fill_vs_natural(self):
        A = grid_laplacian(20, 20)
        order = nested_dissection_ordering(A, leaf_size=32, seed=0)
        assert fill_of(permute_symmetric(A, order)) < fill_of(A)

    def test_competitive_with_minimum_degree_on_grid(self):
        A = grid_laplacian(24, 24)
        nd = nested_dissection_ordering(A, leaf_size=32, seed=0)
        md = minimum_degree(A)
        fill_nd = fill_of(permute_symmetric(A, nd))
        fill_md = fill_of(permute_symmetric(A, md))
        # ND is asymptotically better on grids; at this size require it
        # to be at least in MD's ballpark
        assert fill_nd <= 1.3 * fill_md

    def test_small_matrix_pure_md_leaf(self):
        A = grid_laplacian(4, 4)
        order = nested_dissection_ordering(A, leaf_size=64, seed=0)
        np.testing.assert_array_equal(np.sort(order), np.arange(16))

    def test_disconnected(self):
        A = sp.block_diag([grid_laplacian(6, 6), grid_laplacian(5, 5)]).tocsr()
        order = nested_dissection_ordering(A, leaf_size=8, seed=0)
        assert sorted(order.tolist()) == list(range(61))

    def test_unsymmetric_input(self, unsym50):
        order = nested_dissection_ordering(unsym50, leaf_size=16, seed=0)
        assert sorted(order.tolist()) == list(range(50))

    def test_deterministic(self):
        A = grid_laplacian(10, 10)
        a = nested_dissection_ordering(A, seed=3)
        b = nested_dissection_ordering(A, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_usable_in_factorization(self, rng):
        from repro.lu import factorize
        A = grid_laplacian(12, 12)
        order = nested_dissection_ordering(A, leaf_size=16, seed=0)
        f = factorize(A.tocsc(), col_perm=order, diag_pivot_thresh=0.0)
        b = rng.standard_normal(144)
        Ap = A[order][:, order]
        np.testing.assert_allclose(Ap @ f.solve(b), b, atol=1e-8)
