"""Further behavioural tests: trimming interacts correctly with RHB's
cut-net separators; the standalone partitioner matches the flat metric
definitions; and DBBD round-trips through permutation."""

import numpy as np
import pytest
from tests.conftest import grid_laplacian

from repro.core import build_dbbd, rhb_partition, trim_separator
from repro.core.dbbd import SEPARATOR
from repro.hypergraph import (
    Hypergraph,
    net_connectivities,
    partition_hypergraph,
)


class TestTrimWithRHBMetrics:
    @pytest.mark.parametrize("metric", ["con1", "cnet", "soed"])
    def test_trim_after_each_metric(self, grid16, metric):
        r = rhb_partition(grid16, 8, metric=metric, seed=0)
        trimmed = trim_separator(grid16, r.col_part, 8)
        assert int((trimmed == SEPARATOR).sum()) <= r.separator_size
        build_dbbd(grid16, trimmed, 8)

    def test_trim_idempotent(self, grid16):
        r = rhb_partition(grid16, 4, seed=0)
        once = trim_separator(grid16, r.col_part, 4)
        twice = trim_separator(grid16, once, 4)
        np.testing.assert_array_equal(once, twice)


class TestConnectivityDetails:
    def test_lambda_counts_parts_not_pins(self):
        # net with 4 pins spread over 2 parts: lambda = 2 regardless of
        # pin multiplicity per part
        H = Hypergraph.from_arrays([0, 4], [0, 1, 2, 3], 4)
        part = np.array([0, 0, 1, 1])
        lam = net_connectivities(H, part, 2)
        assert lam[0] == 2

    def test_lambda_empty_net(self):
        H = Hypergraph.from_arrays([0, 0, 1], [2], 3)
        lam = net_connectivities(H, np.array([0, 1, 1]), 2)
        assert lam[0] == 0 and lam[1] == 1

    def test_partitioner_cut_matches_manual_sum(self):
        H = Hypergraph.column_net_model(grid_laplacian(12, 12))
        res = partition_hypergraph(H, 4, metric="soed", seed=1)
        lam = net_connectivities(H, res.part, 4)
        manual = int(lam[lam > 1].sum())
        assert res.cut == manual


class TestDBBDPermutationRoundTrip:
    def test_permuted_solve_equivalent(self, rng):
        """Solving the DBBD-permuted system permutes the solution."""
        import scipy.sparse.linalg as spla
        A = grid_laplacian(10, 10)
        r = rhb_partition(A, 4, seed=0)
        p = build_dbbd(A, r.col_part, 4)
        b = rng.standard_normal(100)
        x = spla.spsolve(A.tocsc(), b)
        Pm = p.permuted().tocsc()
        xp = spla.spsolve(Pm, b[p.perm])
        np.testing.assert_allclose(xp, x[p.perm], atol=1e-8)

    def test_block_extents_consistent(self, grid16):
        r = rhb_partition(grid16, 4, seed=0)
        p = build_dbbd(grid16, r.col_part, 4)
        ext = p.block_extents
        for ell in range(4):
            assert ext[ell + 1] - ext[ell] == p.subdomain_vertices(ell).size
        assert ext[-1] == grid16.shape[0]
