"""End-to-end tests of the numerics layer inside PDSLin: the robust
stress suite certifies with the layer on and visibly fails with it off,
accuracy is surfaced on results/reports/metrics, and refinement stalls
escalate into the resilience ladder."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.matrices import generate_robust, robust_suite_names
from repro.numerics import backward_errors
from repro.numerics.smoke import run_numerics_smoke
from repro.obs import Tracer
from repro.obs.export import load_metrics, stage_metrics, write_metrics
from repro.solver import PDSLin, PDSLinConfig
from repro.solver.report import format_report, run_report

CERTIFY_TOL = 1e-12
UNPROTECTED_BERR = 1e-8


def _cfg(**kw) -> PDSLinConfig:
    kw.setdefault("k", 4)
    kw.setdefault("seed", 0)
    return PDSLinConfig(**kw)


def _rhs(A, seed=0):
    return A @ np.random.default_rng(seed).standard_normal(A.shape[0])


# ---------------------------------------------------------------------------
# the acceptance criterion: robust suite certifies iff numerics is on
# ---------------------------------------------------------------------------

class TestRobustSuiteAcceptance:
    @pytest.mark.parametrize("name", robust_suite_names())
    def test_certified_with_numerics(self, name):
        gm = generate_robust(name, "tiny")
        b = _rhs(gm.A)
        res = PDSLin(gm.A, _cfg()).solve(b)
        assert res.converged
        assert res.certified
        assert res.accuracy is not None
        assert res.accuracy.berr <= CERTIFY_TOL

    @pytest.mark.parametrize("name", robust_suite_names())
    def test_unprotected_pipeline_fails(self, name):
        gm = generate_robust(name, "tiny")
        b = _rhs(gm.A)
        try:
            res = PDSLin(gm.A, _cfg(numerics=False)).solve(b)
        except Exception:
            return  # outright breakdown also counts as failure
        berr, _ = backward_errors(gm.A, res.x, b)
        assert (not res.converged) or berr > UNPROTECTED_BERR

    def test_lying_residual_on_graded_matrix(self):
        # the motivating phenomenon: without equilibration the residual
        # of the scaled-away rows is invisible — berr exposes it
        gm = generate_robust("graded.laplace", "tiny")
        b = _rhs(gm.A)
        res = PDSLin(gm.A, _cfg(numerics=False)).solve(b)
        berr, _ = backward_errors(gm.A, res.x, b)
        assert berr > UNPROTECTED_BERR

    def test_smoke_runner_passes(self):
        run = run_numerics_smoke(check_unprotected=False)
        assert run.ok
        assert set(run.results) == set(robust_suite_names())
        for name in robust_suite_names():
            assert run.checks[f"{name}:certified"]


# ---------------------------------------------------------------------------
# accuracy surfaced on results, reports, and metrics
# ---------------------------------------------------------------------------

class TestAccuracySurfacing:
    def test_result_accuracy_fields(self, grid16):
        res = PDSLin(grid16, _cfg()).solve(_rhs(grid16))
        acc = res.accuracy
        assert acc is not None
        assert acc.certified and res.certified
        assert acc.berr <= CERTIFY_TOL
        assert np.isfinite(acc.cond_est)
        assert acc.refine_steps >= 0
        assert len(acc.berr_history) == acc.refine_steps + 1

    def test_recovery_report_carries_accuracy(self, grid16):
        res = PDSLin(grid16, _cfg()).solve(_rhs(grid16))
        rep = res.recovery
        assert rep.accuracy is not None
        assert rep.accuracy["certified"]
        assert "accuracy: CERTIFIED" in rep.summary()
        assert rep.to_dict()["accuracy"]["berr"] == res.accuracy.berr

    def test_run_report_includes_numerics_and_accuracy(self, grid16):
        solver = PDSLin(grid16, _cfg())
        res = solver.solve(_rhs(grid16))
        rep = run_report(solver, res)
        assert rep["numerics"] is not None
        assert rep["numerics"]["equilibrated"]
        assert rep["solve"]["certified"]
        assert rep["solve"]["accuracy"]["berr"] <= CERTIFY_TOL
        assert "accuracy" in format_report(rep)

    def test_tracer_counters_and_metrics_roundtrip(self, tmp_path):
        gm = generate_robust("graded.laplace", "tiny")
        tracer = Tracer()
        res = PDSLin(gm.A, _cfg(), tracer=tracer).solve(_rhs(gm.A))
        assert res.certified
        for key in ("cond_est_subdomain", "cond_est_schur",
                    "refine_steps", "refine_certified",
                    "equilibrate_iters"):
            assert key in tracer.counters, key
        m = stage_metrics(tracer)
        assert "equilibrate" in m["stages"]
        assert "refine" in m["stages"]
        assert "cond_est_schur" in m["totals"]["counters"]
        path = tmp_path / "metrics.json"
        write_metrics(tracer, path)
        loaded = load_metrics(path)
        assert loaded["totals"]["counters"]["refine_certified"] >= 1

    def test_master_switch_disables_everything(self, grid16):
        tracer = Tracer()
        solver = PDSLin(grid16, _cfg(numerics=False), tracer=tracer)
        res = solver.solve(_rhs(grid16))
        assert res.converged
        assert res.accuracy is None
        assert not res.certified
        assert solver._prep is None
        for key in tracer.counters:
            assert not key.startswith(("cond_est", "refine",
                                       "equilibrate", "matching"))


# ---------------------------------------------------------------------------
# condition-driven drop tightening and Schur rebuild
# ---------------------------------------------------------------------------

class TestCondestDrivenAdaptation:
    def test_tightening_and_rebuild_on_graded_matrix(self):
        # equilibration off: the graded conditioning hits the subdomain
        # factors and the condest machinery must react
        gm = generate_robust("graded.laplace", "tiny")
        tracer = Tracer()
        cfg = _cfg(equilibrate=False, static_pivot_matching=False)
        res = PDSLin(gm.A, cfg, tracer=tracer).solve(_rhs(gm.A))
        assert res.certified  # refinement + adaptation still certify
        assert tracer.counters.get("cond_tightenings", 0) >= 1
        assert tracer.counters.get("schur_cond_rebuilds", 0) >= 1

    def test_cond_estimates_recorded(self, grid16):
        solver = PDSLin(grid16, _cfg())
        solver.setup()
        conds = solver.cond_estimates
        assert len(conds["subdomains"]) == solver.config.k
        assert all(np.isfinite(v) and v >= 1.0
                   for v in conds["subdomains"].values())
        assert conds["schur"] is not None and conds["schur"] >= 1.0

    def test_well_conditioned_system_untouched(self, grid16):
        tracer = Tracer()
        solver = PDSLin(grid16, _cfg(), tracer=tracer)
        solver.setup()
        assert tracer.counters.get("cond_tightenings", 0) == 0
        assert solver._drop_schur_eff == solver.config.drop_schur


# ---------------------------------------------------------------------------
# refinement-stall escalation into the resilience ladder
# ---------------------------------------------------------------------------

class TestRefineStallEscalation:
    def test_on_refine_stall_rebuilds_once(self, grid16):
        solver = PDSLin(grid16, _cfg(drop_schur=1e-4))
        solver.setup()
        assert solver._schur_drop_used > 0.0
        assert solver._on_refine_stall() is True
        assert solver._schur_drop_used == 0.0
        assert solver.recovery.actions().get("precond-refresh") == 1
        # nothing left to strengthen: a second stall cannot escalate
        assert solver._on_refine_stall() is False

    def test_stall_degrades_report(self, grid16, monkeypatch):
        # sloppy main solve + useless corrections: refinement stalls,
        # escalates once (precond rebuild), stalls again, and the run is
        # reported as degraded via a "refine-stall" event
        solver = PDSLin(grid16, _cfg(gmres_tol=1e-3, drop_schur=1e-4))
        monkeypatch.setattr(solver, "_correction_solve",
                            lambda r: np.zeros_like(r))
        res = solver.solve(_rhs(grid16))
        acc = res.accuracy
        assert acc is not None
        assert acc.stagnated
        assert not res.certified
        actions = res.recovery.actions()
        assert actions.get("refine-stall") == 1
        assert res.degraded
        assert "refine-stall" in res.recovery.summary()


# ---------------------------------------------------------------------------
# matrix updates through the working-system transform
# ---------------------------------------------------------------------------

class TestUpdateMatrixWithNumerics:
    def _ill_scaled(self, seed=0):
        rng = np.random.default_rng(seed)
        base = grid_laplacian(10, 10)
        d = 10.0 ** (5 * (rng.random(base.shape[0]) - 0.5))
        return (sp.diags(d) @ base @ sp.diags(d)).tocsr()

    def test_update_values_recertifies(self):
        A = self._ill_scaled()
        solver = PDSLin(A, _cfg())
        res1 = solver.solve(_rhs(A))
        assert res1.certified
        A2 = A.copy()
        A2.data *= 3.0
        solver.update_matrix(A2)
        b2 = _rhs(A2, seed=1)
        res2 = solver.solve(b2)
        assert res2.certified
        berr, _ = backward_errors(A2, res2.x, b2)
        assert berr <= CERTIFY_TOL

    def test_update_rejects_nonfinite_values(self):
        A = self._ill_scaled(1)
        solver = PDSLin(A, _cfg())
        solver.setup()
        A2 = A.copy()
        A2.data = A2.data.copy()
        A2.data[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            solver.update_matrix(A2)
