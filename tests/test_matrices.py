"""Unit tests for the synthetic matrix generators and suite."""

import numpy as np
import pytest

from repro.matrices import (
    HexMesh,
    asic_like_matrix,
    assemble_fem,
    cavity_matrix,
    dds_like_matrix,
    fd_laplacian_3d,
    fusion_matrix,
    g3_like_matrix,
    generate,
    hex_element_matrices,
    suite_names,
    table1_metadata,
)
from repro.sparse import (
    density_of_rows,
    symmetrized,
    symmetry_info,
    verify_structural_factor,
)


class TestHexMesh:
    def test_node_count(self):
        assert HexMesh(3, 4, 5).n_nodes == 60

    def test_element_count_3d(self):
        assert HexMesh(3, 3, 3).n_elements == 8

    def test_element_count_2d(self):
        assert HexMesh(4, 4, 1).n_elements == 9

    def test_element_nodes_are_valid_ids(self):
        mesh = HexMesh(4, 3, 3)
        conn = mesh.element_nodes()
        assert conn.min() >= 0 and conn.max() < mesh.n_nodes
        assert conn.shape == (mesh.n_elements, 8)

    def test_incidence_covers_fem_pattern(self):
        mesh = HexMesh(4, 4, 3)
        K, _ = hex_element_matrices()
        A = assemble_fem(mesh, K)
        M = mesh.incidence_matrix()
        assert verify_structural_factor(A, M)

    def test_incidence_multi_dof(self):
        mesh = HexMesh(3, 3, 2)
        M = mesh.incidence_matrix(dofs_per_node=2)
        assert M.shape == (mesh.n_elements, 2 * mesh.n_nodes)


class TestElementMatrices:
    def test_stiffness_symmetric_psd(self):
        K, Mm = hex_element_matrices()
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        ev = np.linalg.eigvalsh(K)
        assert ev.min() > -1e-12  # PSD with nullspace = constants

    def test_stiffness_annihilates_constants(self):
        K, _ = hex_element_matrices()
        np.testing.assert_allclose(K @ np.ones(8), 0.0, atol=1e-12)

    def test_mass_spd(self):
        _, Mm = hex_element_matrices()
        assert np.linalg.eigvalsh(Mm).min() > 0

    def test_mass_integrates_to_volume(self):
        _, Mm = hex_element_matrices()
        assert Mm.sum() == pytest.approx(1.0)  # unit cube volume


class TestFdLaplacian:
    def test_2d_shape_and_stencil(self):
        A = fd_laplacian_3d(4, 5)
        assert A.shape == (20, 20)
        assert A[0, 0] == 4.0

    def test_3d_diagonal(self):
        A = fd_laplacian_3d(3, 3, 3)
        assert A[13, 13] == 6.0  # center point

    def test_symmetric(self):
        A = fd_laplacian_3d(4, 4, 3)
        assert (abs(A - A.T)).nnz == 0


class TestGenerators:
    def test_cavity_indefinite(self):
        gm = cavity_matrix(7, 7, 7, seed=0)
        info = symmetry_info(gm.A, check_definiteness=True)
        assert info.pattern_symmetric and info.value_symmetric
        assert info.positive_definite is False

    def test_cavity_factor_valid(self):
        gm = cavity_matrix(6, 6, 6, seed=0)
        assert verify_structural_factor(gm.A, gm.M)

    def test_cavity_nonsingular(self):
        gm = cavity_matrix(6, 6, 6, seed=0)
        from scipy.sparse.linalg import splu
        lu = splu(gm.A.tocsc())
        x = lu.solve(np.ones(gm.n))
        assert np.isfinite(x).all()

    def test_dds_linear_sparser_than_quad(self):
        q = dds_like_matrix(8, 8, 8, variant="quad", seed=0)
        l = dds_like_matrix(8, 8, 8, variant="linear", seed=0)
        assert l.nnz_per_row < q.nnz_per_row

    def test_dds_bad_variant(self):
        with pytest.raises(ValueError):
            dds_like_matrix(4, 4, 4, variant="cubic")

    def test_fusion_unsymmetric_pattern(self):
        gm = fusion_matrix(6, 6, 5, seed=0)
        info = symmetry_info(gm.A)
        assert not info.pattern_symmetric

    def test_fusion_factor_covers_symmetrized(self):
        gm = fusion_matrix(5, 5, 4, seed=0)
        assert verify_structural_factor(symmetrized(gm.A), gm.M)

    def test_fusion_dense_rows(self):
        gm = fusion_matrix(8, 8, 8, dofs=2, seed=0)
        assert gm.nnz_per_row > 35

    def test_asic_has_quasi_dense_rows(self):
        gm = asic_like_matrix(800, n_hubs=3, hub_fraction=0.1, seed=0)
        dens = density_of_rows(gm.A)
        assert (dens > 0.05).sum() >= 3

    def test_asic_very_sparse_overall(self):
        gm = asic_like_matrix(2000, seed=0)
        assert gm.nnz_per_row < 8

    def test_asic_pattern_symmetric_value_not(self):
        gm = asic_like_matrix(500, seed=1)
        info = symmetry_info(gm.A)
        assert info.pattern_symmetric and not info.value_symmetric

    def test_asic_diagonally_dominant(self):
        gm = asic_like_matrix(400, seed=2)
        A = gm.A
        d = np.abs(A.diagonal())
        off = np.abs(A).sum(axis=1).A1 - d
        assert np.all(d >= off * 0.99)

    def test_g3_spd(self):
        gm = g3_like_matrix(20, 20, seed=0)
        info = symmetry_info(gm.A, check_definiteness=True)
        assert info.positive_definite is True

    def test_seeds_reproducible(self):
        a = asic_like_matrix(300, seed=5)
        b = asic_like_matrix(300, seed=5)
        assert (a.A != b.A).nnz == 0


class TestSuite:
    def test_all_names_generate_tiny(self):
        for name in suite_names():
            gm = generate(name, "tiny")
            assert gm.n > 100

    def test_scales_grow(self):
        t = generate("tdr190k", "tiny")
        s = generate("tdr190k", "small")
        assert s.n > t.n

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate("laplace9000")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            generate("tdr190k", "huge")

    def test_table1_matches_paper_classes(self):
        rows = {r["name"]: r for r in table1_metadata("tiny")}
        assert rows["tdr190k"]["pattern_symmetric"]
        assert rows["tdr190k"]["value_symmetric"]
        assert not rows["matrix211"]["pattern_symmetric"]
        assert rows["ASIC_680ks"]["pattern_symmetric"]
        assert not rows["ASIC_680ks"]["value_symmetric"]
        assert rows["G3_circuit"]["value_symmetric"]
        # circuit matrices much sparser than FEM ones
        assert rows["ASIC_680ks"]["nnz/n"] < rows["tdr190k"]["nnz/n"] / 2
