"""Each oracle of :mod:`repro.verify.oracles` cross-checked against an
independent computation (or against the production kernel it verifies)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from tests.conftest import grid_laplacian, random_unsymmetric

from repro.core.dbbd import build_dbbd
from repro.core.rhb import rhb_partition
from repro.core.weights import compute_vertex_weights
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import cutsize
from repro.lu import factorize, padded_zeros
from repro.verify.oracles import (
    cut_metrics_reference,
    dense_exact_schur,
    dense_triangular_solve_oracle,
    lu_reconstruction_error,
    materialize_operator,
    normwise_backward_error,
    padded_zeros_bruteforce,
    rhb_cut_cost_reference,
    soed_identity_gap,
    splu_solve_oracle,
    vertex_weights_reference,
)


@pytest.fixture(scope="module")
def small_hg():
    rng = np.random.default_rng(11)
    M = sp.random(40, 30, density=0.15, random_state=rng, format="csr")
    M.data[:] = 1.0
    return Hypergraph.column_net_model(M)


class TestDirectSolveOracles:
    def test_splu_solve_oracle(self, grid8, rng):
        b = rng.standard_normal(grid8.shape[0])
        x = splu_solve_oracle(grid8, b)
        assert np.linalg.norm(grid8 @ x - b) < 1e-10 * np.linalg.norm(b)

    def test_dense_triangular_solve_oracle(self, rng):
        n = 25
        L = sp.tril(sp.random(n, n, 0.3, random_state=rng), -1) + sp.eye(n)
        B = rng.standard_normal((n, 4))
        X = dense_triangular_solve_oracle(L.tocsr(), B)
        ref = spla.spsolve_triangular(L.tocsr(), B, lower=True)
        assert np.allclose(X, ref)

    def test_lu_reconstruction_error_small_for_good_factor(self, grid8):
        f = factorize(grid8.tocsc())
        assert lu_reconstruction_error(grid8, f) < 1e-12

    def test_lu_reconstruction_error_detects_corruption(self, grid8):
        f = factorize(grid8.tocsc())
        U = f.U.copy()
        U.data = U.data.copy()
        U.data[0] *= 2.0
        from dataclasses import replace
        bad = replace(f, U=U)
        assert lu_reconstruction_error(grid8, bad) > 1e-3


class TestSchurOracles:
    def test_dense_exact_schur_vs_block_elimination(self, grid16):
        res = rhb_partition(grid16, 4, seed=0)
        p = build_dbbd(grid16, res.col_part, 4)
        S = dense_exact_schur(p)
        Ad = p.permuted().toarray()
        m = p.separator_size
        ni = Ad.shape[0] - m
        ref = Ad[ni:, ni:] - Ad[ni:, :ni] @ np.linalg.solve(
            Ad[:ni, :ni], Ad[:ni, ni:])
        assert np.allclose(S, ref, atol=1e-9)

    def test_materialize_operator(self, rng):
        M = rng.standard_normal((7, 7))
        out = materialize_operator(lambda v: M @ v, 7)
        assert np.array_equal(out, M)


class TestPaddingOracle:
    def test_bruteforce_matches_production(self, rng):
        G = sp.random(30, 20, density=0.2, random_state=rng, format="csr")
        parts = [np.arange(0, 7), np.arange(7, 15), np.arange(15, 20)]
        ref = padded_zeros_bruteforce(G, parts)
        got = padded_zeros(G, parts)
        assert got.total_padded == ref.total_padded
        assert got.total_block_entries == ref.total_block_entries
        assert got.per_part_padded == ref.per_part_padded
        assert got.per_part_entries == ref.per_part_entries

    def test_counts_stored_zeros(self):
        # explicit zero entries are stored pattern, not padding
        G = sp.csr_matrix((np.array([0.0, 1.0]),
                           (np.array([0, 1]), np.array([0, 1]))),
                          shape=(2, 2))
        st = padded_zeros_bruteforce(G, [np.array([0, 1])])
        assert st.total_padded == 2  # (0,1) and (1,0) only


class TestCutMetricOracles:
    def test_reference_matches_vectorized(self, small_hg):
        rng = np.random.default_rng(3)
        part = rng.integers(0, 4, small_hg.n_vertices)
        ref = cut_metrics_reference(small_hg, part, 4)
        for metric in ("con1", "cnet", "soed"):
            assert cutsize(small_hg, part, 4, metric) == ref[metric]

    def test_cutsize_verify_flag_runs_clean(self, small_hg):
        part = np.zeros(small_hg.n_vertices, dtype=np.int64)
        part[::3] = 1
        for metric in ("con1", "cnet", "soed"):
            cutsize(small_hg, part, 2, metric, verify=True)

    def test_soed_identity_gap_zero(self, small_hg):
        rng = np.random.default_rng(4)
        for k in (2, 3, 5):
            part = rng.integers(0, k, small_hg.n_vertices)
            assert soed_identity_gap(small_hg, part, k) == 0

    def test_rhb_cut_cost_reference_uses_unit_costs(self, small_hg):
        from dataclasses import replace
        costly = replace(small_hg,
                         net_costs=np.full(small_hg.n_nets, 7,
                                           dtype=np.int64),
                         _vtx_ptr=None, _vtx_nets=None, _net_of_pin=None)
        part = np.arange(small_hg.n_vertices) % 2
        for metric in ("con1", "cnet", "soed"):
            assert (rhb_cut_cost_reference(costly, part, 2, metric)
                    == cut_metrics_reference(small_hg, part, 2)[metric])

    def test_rhb_identity_end_to_end(self, grid16):
        """The recursively accumulated cut cost telescopes to the flat
        unit-cost metric on the final row partition."""
        from repro.sparse.structural import edge_incidence_factor
        M = edge_incidence_factor(grid16)
        H0 = Hypergraph.column_net_model(M)
        for metric in ("con1", "cnet", "soed"):
            res = rhb_partition(grid16, 4, M=M, metric=metric, seed=2)
            assert (res.total_cut_cost
                    == rhb_cut_cost_reference(H0, res.row_part, 4, metric))


class TestWeightOracle:
    def test_matches_production_all_schemes(self, small_hg):
        rng = np.random.default_rng(9)
        w2 = rng.integers(1, 12, small_hg.n_vertices)
        internal = rng.random(small_hg.n_nets) < 0.7
        for scheme in ("unit", "w1", "w2", "w1w2"):
            for first in (True, False):
                ref = vertex_weights_reference(
                    small_hg, scheme, w2, first_bisection=first,
                    net_internal=internal)
                got = compute_vertex_weights(
                    small_hg, scheme, w2, first_bisection=first,
                    net_internal=internal)
                assert np.array_equal(got, ref), (scheme, first)


class TestBackwardError:
    def test_exact_solution_tiny(self, grid8, rng):
        b = rng.standard_normal(grid8.shape[0])
        x = spla.spsolve(grid8.tocsc(), b)
        assert normwise_backward_error(grid8, x, b) < 1e-14

    def test_scale_invariant(self, rng):
        A = random_unsymmetric(40, 0.1, seed=8)
        b = rng.standard_normal(40)
        x = rng.standard_normal(40)
        e1 = normwise_backward_error(A, x, b)
        e2 = normwise_backward_error(A * 1e6, x, b * 1e6)
        assert e1 == pytest.approx(e2, rel=1e-12)

    def test_wrong_solution_large(self, grid8):
        b = np.ones(grid8.shape[0])
        assert normwise_backward_error(grid8, np.zeros_like(b), b) > 0.1
