"""Cross-module integration tests: full pipelines on every matrix
family, correctness of the end-to-end solve, and consistency between
the solver's internal accounting and the standalone experiment paths."""

import numpy as np
import pytest

from repro import PDSLin, PDSLinConfig, generate, suite_names
from repro.core import build_dbbd, rhb_partition
from repro.core.rhs_reorder import (
    hypergraph_column_order,
    postorder_column_order,
)
from repro.experiments import prepare_triangular_study, run_partitioner
from repro.lu import blocked_triangular_solve, padded_zeros, partition_columns


class TestFullSolveAllFamilies:
    @pytest.mark.parametrize("name", suite_names())
    def test_solve_every_suite_matrix(self, name, rng):
        gm = generate(name, "tiny")
        b = rng.standard_normal(gm.n)
        cfg = PDSLinConfig(k=4, partitioner="rhb", seed=0,
                           drop_interface=1e-4, drop_schur=1e-6,
                           gmres_tol=1e-9)
        res = PDSLin(gm.A, cfg, M=gm.M).solve(b)
        assert res.converged, f"{name} did not converge"
        assert res.residual_norm < 1e-6, f"{name}: {res.residual_norm}"

    @pytest.mark.parametrize("partitioner", ["rhb", "ngd"])
    def test_solution_matches_direct(self, partitioner, rng):
        import scipy.sparse.linalg as spla
        gm = generate("G3_circuit", "tiny")
        b = rng.standard_normal(gm.n)
        res = PDSLin(gm.A, PDSLinConfig(k=4, partitioner=partitioner,
                                        seed=0)).solve(b)
        x_ref = spla.spsolve(gm.A.tocsc(), b)
        np.testing.assert_allclose(res.x, x_ref, rtol=1e-6, atol=1e-8)


class TestAccountingConsistency:
    def test_partition_quality_same_via_solver_and_experiment(self):
        gm = generate("tdr190k", "tiny")
        pr = run_partitioner(gm, 4, method="rhb", metric="soed",
                             scheme="w1", seed=7)
        cfg = PDSLinConfig(k=4, partitioner="rhb", metric="soed",
                           scheme="w1", seed=7)
        solver = PDSLin(gm.A, cfg, M=gm.M).setup()
        assert solver.partition.separator_size == \
            pr.quality.separator_size
        assert solver.partition.quality().nnz_D_ratio == \
            pytest.approx(pr.quality.nnz_D_ratio)

    def test_machine_flops_populated(self, rng):
        gm = generate("tdr190k", "tiny")
        solver = PDSLin(gm.A, PDSLinConfig(k=4, seed=0), M=gm.M)
        solver.solve(rng.standard_normal(gm.n))
        flops = solver.machine.process_stage_flops("LU(D)")
        assert flops.shape == (4,)
        assert np.all(flops > 0)

    def test_subdomain_padding_recorded(self, rng):
        gm = generate("tdr190k", "tiny")
        solver = PDSLin(gm.A, PDSLinConfig(k=4, seed=0, block_size=16),
                        M=gm.M)
        solver.setup()
        for s in solver.subdomains:
            assert s.padding_G.total_block_entries >= 0
            assert s.T_tilde.shape == (s.interfaces.f_rows.size,
                                       s.interfaces.e_cols.size)


class TestReorderingPipelineConsistency:
    def test_orderings_preserve_solution_values(self):
        """The column ordering affects cost only; G values must agree."""
        gm = generate("dds.quad", "tiny")
        subs = prepare_triangular_study(gm, k=2, seed=0)
        s = subs[0]
        m = s.E_factored.shape[1]
        ref = None
        for order in (np.arange(m),
                      postorder_column_order(s.E_factored),
                      hypergraph_column_order(s.G_pattern, 16, seed=0).order):
            parts = partition_columns(order, 16)
            X = blocked_triangular_solve(s.snl, s.E_factored, s.G_pattern,
                                         parts).X.toarray()
            if ref is None:
                ref = X
            else:
                np.testing.assert_allclose(X, ref, atol=1e-10)

    def test_padding_matches_flops_ordering(self):
        """More padded zeros must never mean fewer solve flops for the
        same B (padding IS the extra work)."""
        gm = generate("tdr190k", "tiny")
        subs = prepare_triangular_study(gm, k=2, seed=0)
        s = subs[0]
        m = s.E_factored.shape[1]
        B = 24
        rng = np.random.default_rng(0)
        results = []
        for order in (np.arange(m), rng.permutation(m)):
            parts = partition_columns(order, B)
            pad = padded_zeros(s.G_pattern, parts).total_padded
            res = blocked_triangular_solve(s.snl, s.E_factored,
                                           s.G_pattern, parts)
            results.append((pad, res.flops))
        results.sort()
        assert results[0][1] <= results[1][1] * 1.01


class TestRHBtoSolverPath:
    def test_rhb_result_drives_solver_partition(self):
        """PDSLin with 'rhb' and the standalone rhb_partition agree when
        given the same seed and inputs."""
        gm = generate("dds.linear", "tiny")
        r = rhb_partition(gm.A, 4, M=gm.M, metric="soed", scheme="w1",
                          seed=11, n_trials=2)
        cfg = PDSLinConfig(k=4, partitioner="rhb", metric="soed",
                           scheme="w1", seed=11, partition_trials=2)
        solver = PDSLin(gm.A, cfg, M=gm.M).setup()
        np.testing.assert_array_equal(solver.partition.part, r.col_part)

    def test_dbbd_of_each_family(self):
        for name in ("tdr190k", "matrix211", "ASIC_680ks"):
            gm = generate(name, "tiny")
            r = rhb_partition(gm.A, 4, M=gm.M, seed=0)
            from repro.sparse import symmetrized
            d = build_dbbd(symmetrized(gm.A), r.col_part, 4)
            assert d.separator_size == r.separator_size
