"""Property-based tests for the extension modules (k-way gains,
relaxed supernodes, separator trimming)."""

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

from repro.core import build_dbbd, trim_separator
from repro.graphs import nested_dissection_partition
from repro.hypergraph import Hypergraph, cutsize, kway_move_gain
from repro.hypergraph.kway import _pin_counts
from repro.lu import SupernodalLower, factorize, relaxed_supernodes


@st.composite
def hypergraph_partition_k(draw):
    n_v = draw(st.integers(3, 16))
    n_n = draw(st.integers(1, 10))
    k = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    ptr = [0]
    pins: list[int] = []
    for _ in range(n_n):
        sz = int(rng.integers(1, min(n_v, 5) + 1))
        pins.extend(rng.choice(n_v, size=sz, replace=False).tolist())
        ptr.append(len(pins))
    H = Hypergraph.from_arrays(ptr, pins, n_v)
    part = rng.integers(0, k, n_v)
    v = int(rng.integers(n_v))
    b = int(rng.integers(k))
    return H, part, k, v, b


class TestKWayGainProperty:
    @given(hypergraph_partition_k())
    @settings(max_examples=120, deadline=None)
    def test_gain_equals_cut_delta(self, data):
        H, part, k, v, b = data
        a = int(part[v])
        if a == b:
            return
        pi = _pin_counts(H, part, k)
        sizes = H.net_sizes()
        for metric in ("con1", "cnet", "soed"):
            g = kway_move_gain(H, pi, sizes, v, a, b, metric)
            p2 = part.copy()
            p2[v] = b
            assert g == cutsize(H, part, k, metric) - \
                cutsize(H, p2, k, metric)


@st.composite
def spd_system(draw):
    n = draw(st.integers(5, 30))
    density = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density, random_state=rng, format="csr")
    A = (A + A.T + n * sp.eye(n)).tocsc()
    return A, seed


class TestRelaxedSupernodeProperty:
    @given(spd_system(), st.floats(0.0, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_solve_invariant_under_relaxation(self, system, relax):
        A, seed = system
        f = factorize(A, diag_pivot_thresh=0.0)
        sn = relaxed_supernodes(f.L, relax=relax)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True, snodes=sn)
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((A.shape[0], 2))
        ref = spla.spsolve_triangular(f.L.tocsr(), X, lower=True,
                                      unit_diagonal=True)
        Y = X.copy()
        snl.solve_inplace(Y)
        np.testing.assert_allclose(Y, ref, atol=1e-9)


@st.composite
def partitioned_matrix(draw):
    nx = draw(st.integers(4, 9))
    ny = draw(st.integers(4, 9))
    k = draw(st.sampled_from([2, 4]))
    seed = draw(st.integers(0, 2**31 - 1))
    from tests.conftest import grid_laplacian
    A = grid_laplacian(nx, ny)
    r = nested_dissection_partition(A, k, seed=seed)
    return A, r.part, k


class TestTrimProperty:
    @given(partitioned_matrix())
    @settings(max_examples=25, deadline=None)
    def test_trim_preserves_invariant_and_shrinks(self, data):
        A, part, k = data
        out = trim_separator(A, part, k)
        assert int((out == -1).sum()) <= int((part == -1).sum())
        build_dbbd(A, out, k)  # must still be a valid DBBD
        # non-separator assignments never change
        moved = (part >= 0) & (out != part)
        assert not moved.any()
