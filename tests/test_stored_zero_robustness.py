"""Regression tests: explicitly stored zero entries must not confuse
structure-based code (found by hypothesis on kron-assembled matrices,
which routinely store zeros)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import build_dbbd, rhb_partition, trim_separator
from repro.graphs import Graph, nested_dissection_partition
from repro.ordering import elimination_tree
from repro.sparse import symmetrized


@pytest.fixture
def zeroful_grid():
    """4x4 grid operator assembled so scipy stores 96 explicit zeros."""
    nx = ny = 4
    Tx = sp.diags([-np.ones(nx - 1), 4 * np.ones(nx), -np.ones(nx - 1)],
                  [-1, 0, 1])
    Ty = sp.diags([-np.ones(ny - 1), np.zeros(ny), -np.ones(ny - 1)],
                  [-1, 0, 1])
    A = (sp.kron(sp.eye(ny), Tx) + sp.kron(Ty, sp.eye(nx))).tocsr()
    assert (A.data == 0).sum() > 0, "fixture must contain stored zeros"
    return A


class TestStoredZeros:
    def test_symmetrized_drops_zeros(self, zeroful_grid):
        S = symmetrized(zeroful_grid)
        assert (S.data == 0).sum() == 0
        # true 5-point pattern: 16 diagonal + 48 edges
        assert S.nnz == 64

    def test_graph_sees_true_pattern(self, zeroful_grid):
        g = Graph.from_matrix(zeroful_grid)
        assert g.n_edges == 24

    def test_ngd_partition_validates(self, zeroful_grid):
        for seed in range(3):
            r = nested_dissection_partition(zeroful_grid, 2, seed=seed)
            build_dbbd(zeroful_grid, r.part, 2)  # must not raise

    def test_rhb_partition_validates(self, zeroful_grid):
        r = rhb_partition(zeroful_grid, 2, seed=0)
        build_dbbd(zeroful_grid, r.col_part, 2)

    def test_trim_on_zeroful_matrix(self, zeroful_grid):
        r = nested_dissection_partition(zeroful_grid, 2, seed=0)
        out = trim_separator(zeroful_grid, r.part, 2)
        build_dbbd(zeroful_grid, out, 2)

    def test_etree_ignores_zeros(self, zeroful_grid):
        par_zeroful = elimination_tree(symmetrized(zeroful_grid))
        dense = zeroful_grid.toarray()
        clean = sp.csr_matrix(dense)
        par_clean = elimination_tree(symmetrized(clean))
        np.testing.assert_array_equal(par_zeroful, par_clean)
