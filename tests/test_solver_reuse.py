"""Tests for setup reuse: numeric refactorization (update_matrix) and
multi-RHS solves."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.solver import PDSLin, PDSLinConfig


@pytest.fixture
def system():
    A = grid_laplacian(12, 12)
    solver = PDSLin(A, PDSLinConfig(k=4, seed=0))
    solver.setup()
    return A, solver


class TestUpdateMatrix:
    def test_refactorize_scaled_matrix(self, system, rng):
        A, solver = system
        part_before = solver.partition.part.copy()
        A2 = (2.5 * A).tocsr()
        solver.update_matrix(A2)
        np.testing.assert_array_equal(solver.partition.part, part_before)
        b = rng.standard_normal(A.shape[0])
        res = solver.solve(b)
        assert res.residual_norm < 1e-8
        np.testing.assert_allclose(A2 @ res.x, b, atol=1e-7)

    def test_value_perturbation(self, system, rng):
        A, solver = system
        A2 = A.copy()
        A2.data = A2.data * (1.0 + 0.05 * rng.random(A2.nnz))
        A2 = A2 + A2.T  # keep it solvable and same pattern
        A2 = A2.tocsr()
        solver.update_matrix(A2)
        b = rng.standard_normal(A.shape[0])
        res = solver.solve(b)
        assert np.linalg.norm(A2 @ res.x - b) <= \
            1e-7 * np.linalg.norm(b)

    def test_pattern_change_rejected(self, system):
        A, solver = system
        A2 = A.tolil()
        A2[0, 50] = 1.0
        A2[50, 0] = 1.0
        with pytest.raises(ValueError):
            solver.update_matrix(sp.csr_matrix(A2))

    def test_shape_change_rejected(self, system):
        _, solver = system
        with pytest.raises(ValueError):
            solver.update_matrix(grid_laplacian(6, 6))

    def test_before_setup_rejected(self):
        solver = PDSLin(grid_laplacian(8, 8), PDSLinConfig(k=2))
        with pytest.raises(ValueError):
            solver.update_matrix(grid_laplacian(8, 8))


class TestSolveMultiple:
    def test_columns_solved(self, system, rng):
        A, solver = system
        B = rng.standard_normal((A.shape[0], 3))
        results = solver.solve_multiple(B)
        assert len(results) == 3
        for j, res in enumerate(results):
            np.testing.assert_allclose(A @ res.x, B[:, j], atol=1e-7)

    def test_bad_shape(self, system):
        _, solver = system
        with pytest.raises(ValueError):
            solver.solve_multiple(np.ones(5))
        with pytest.raises(ValueError):
            solver.solve_multiple(np.ones((7, 2)))

    def test_runs_setup_on_demand(self, rng):
        A = grid_laplacian(8, 8)
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0))
        B = rng.standard_normal((64, 2))
        results = solver.solve_multiple(B)
        assert all(r.converged for r in results)
