"""Tests for run reports, chrome-trace export, and the ILU Schur option."""

import json

import numpy as np
import pytest
from tests.conftest import grid_laplacian

from repro.parallel import SimulatedMachine, export_chrome_trace
from repro.solver import (
    PDSLin,
    PDSLinConfig,
    format_report,
    run_report,
    save_report,
)


@pytest.fixture(scope="module")
def solved():
    A = grid_laplacian(12, 12)
    rng = np.random.default_rng(0)
    solver = PDSLin(A, PDSLinConfig(k=4, seed=0, block_size=16))
    result = solver.solve(rng.standard_normal(A.shape[0]))
    return solver, result


class TestRunReport:
    def test_report_structure(self, solved):
        solver, result = solved
        rep = run_report(solver, result)
        assert rep["n"] == 144
        assert set(rep["partition"]) == {"separator_size", "dim_ratio",
                                         "nnz_D_ratio", "ncol_E_ratio",
                                         "nnz_E_ratio"}
        assert len(rep["subdomains"]) == 4
        assert rep["solve"]["converged"]

    def test_report_json_serializable(self, solved):
        solver, result = solved
        json.dumps(run_report(solver, result))

    def test_save_report(self, solved, tmp_path):
        solver, result = solved
        path = tmp_path / "r.json"
        save_report(run_report(solver, result), path)
        loaded = json.loads(path.read_text())
        assert loaded["solve"]["converged"]

    def test_format_report_readable(self, solved):
        solver, result = solved
        txt = format_report(run_report(solver, result))
        assert "separator" in txt and "iters=" in txt

    def test_unsetup_solver_rejected(self):
        A = grid_laplacian(6, 6)
        solver = PDSLin(A, PDSLinConfig(k=2))
        with pytest.raises(ValueError):
            run_report(solver, None)  # type: ignore[arg-type]


class TestChromeTrace:
    def test_export_shape(self, solved, tmp_path):
        solver, _ = solved
        path = tmp_path / "trace.json"
        trace = export_chrome_trace(solver.machine, path)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert events, "no duration events exported"
        # stage ordering: every LU(D) event ends before any Solve starts
        lud_end = max(e["ts"] + e["dur"] for e in events
                      if e["name"] == "LU(D)")
        solve_start = min(e["ts"] for e in events if e["name"] == "Solve")
        assert lud_end <= solve_start + 1e-9
        # file round-trips as JSON
        json.loads(path.read_text())

    def test_thread_metadata_per_process(self, solved):
        solver, _ = solved
        import io
        buf = io.StringIO()
        trace = export_chrome_trace(solver.machine, buf)
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["name"] == "thread_name"}
        assert {"root", "proc0", "proc3"} <= names

    def test_empty_machine(self, tmp_path):
        m = SimulatedMachine(2)
        trace = export_chrome_trace(m, tmp_path / "t.json")
        assert all(e["ph"] == "M" for e in trace["traceEvents"])


class TestILUSchur:
    def test_ilu_preconditioner_converges(self, rng):
        A = grid_laplacian(14, 14)
        b = rng.standard_normal(A.shape[0])
        cfg = PDSLinConfig(k=4, schur_factorization="ilu", seed=0,
                           drop_interface=1e-4, drop_schur=1e-6)
        res = PDSLin(A, cfg).solve(b)
        assert res.converged
        assert res.residual_norm < 1e-7

    def test_ilu_never_fewer_iterations_than_lu(self, rng):
        A = grid_laplacian(14, 14)
        b = rng.standard_normal(A.shape[0])
        res_lu = PDSLin(A, PDSLinConfig(k=4, seed=0)).solve(b)
        res_ilu = PDSLin(A, PDSLinConfig(k=4, seed=0,
                                         schur_factorization="ilu")).solve(b)
        assert res_ilu.iterations >= res_lu.iterations

    def test_invalid_option(self):
        with pytest.raises(ValueError):
            PDSLinConfig(schur_factorization="cholesky")
