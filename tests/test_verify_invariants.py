"""Invariant checks: pass on healthy pipeline stages, raise
:class:`VerificationError` on corrupted ones, and wire end-to-end
through ``verify=`` flags of the solver and partitioners."""

from types import SimpleNamespace

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.core.dbbd import build_dbbd
from repro.core.rhb import rhb_partition
from repro.graphs.ngd import nested_dissection_partition
from repro.lu import factorize
from repro.solver import PDSLin, PDSLinConfig
from repro.verify import NULL_VERIFIER, NullVerifier, VerificationError, Verifier


@pytest.fixture
def v():
    return Verifier()


class TestPermutation:
    def test_good(self, v):
        v.check_permutation(np.array([2, 0, 1]), 3, "t")
        assert v.checks_run == ["t"]

    def test_repeated_entry(self, v):
        with pytest.raises(VerificationError, match="bijection"):
            v.check_permutation(np.array([0, 0, 1]), 3, "t")

    def test_out_of_range(self, v):
        with pytest.raises(VerificationError, match="range"):
            v.check_permutation(np.array([0, 1, 3]), 3, "t")

    def test_wrong_shape(self, v):
        with pytest.raises(VerificationError, match="shape"):
            v.check_permutation(np.array([0, 1]), 3, "t")


class TestVertexSeparator:
    def test_good_ngd_result(self, v, grid8):
        res = nested_dissection_partition(grid8, 4, seed=0)
        adj = grid8 - sp.diags(grid8.diagonal())
        v.check_vertex_separator(adj, res.part, 4)
        assert "ngd.separator-complete" in v.checks_run

    def test_incomplete_separator_raises(self, v, grid8):
        res = nested_dissection_partition(grid8, 2, seed=0)
        bad = res.part.copy()
        # reassigning all separator vertices to part 0 exposes edges
        # between part 0 and part 1
        bad[bad == -1] = 0
        adj = grid8 - sp.diags(grid8.diagonal())
        with pytest.raises(VerificationError, match="separator"):
            v.check_vertex_separator(adj, bad, 2)

    def test_part_id_out_of_range(self, v):
        adj = sp.eye(3, format="csr")
        with pytest.raises(VerificationError, match="part ids"):
            v.check_vertex_separator(adj, np.array([0, 5, 1]), 2)


class TestPartitionStage:
    def test_good_partition(self, v, grid16):
        res = rhb_partition(grid16, 4, seed=0)
        p = build_dbbd(grid16, res.col_part, 4)
        v.after_partition(grid16, p)
        assert "partition.dbbd-exact" in v.checks_run

    def test_corrupted_perm_raises(self, v, grid16):
        res = rhb_partition(grid16, 4, seed=0)
        p = build_dbbd(grid16, res.col_part, 4)
        p.perm = p.perm.copy()
        p.perm[0] = p.perm[1]
        with pytest.raises(VerificationError, match="bijection"):
            v.after_partition(grid16, p)

    def test_coupling_part_raises(self, v, grid16):
        res = rhb_partition(grid16, 4, seed=0)
        p = build_dbbd(grid16, res.col_part, 4)
        bad = p.part.copy()
        bad[bad == -1] = 0  # no separator: subdomains now couple
        p2 = build_dbbd(grid16, bad, 4, validate=False)
        with pytest.raises(AssertionError):
            v.after_partition(grid16, p2)

    def test_validate_exact_detects_displaced_entry(self, grid8):
        res = rhb_partition(grid8, 2, seed=0)
        p = build_dbbd(grid8, res.col_part, 2)
        p.validate_exact()  # healthy partition tiles exactly
        p.A = p.A.copy()
        p.A.data = p.A.data.copy()
        p.A.data[0] += 1.0  # blocks were cut before the edit... rebuild
        # blocks come from p.A lazily, so instead displace the perm
        p.perm = np.roll(p.perm, 1)
        with pytest.raises(AssertionError, match="tile"):
            p.validate_exact()


class TestInterfaces:
    @staticmethod
    def _sub(e_cols, f_rows, ns=10):
        return SimpleNamespace(
            ell=0, e_cols=np.asarray(e_cols), f_rows=np.asarray(f_rows),
            E_hat=sp.csr_matrix((4, len(e_cols))),
            F_hat=sp.csr_matrix((len(f_rows), 4)))

    def test_good(self, v):
        v.after_interfaces(self._sub([1, 3, 7], [0, 2]), 10)
        assert "interfaces.e_cols-injective" in v.checks_run

    def test_not_increasing_raises(self, v):
        with pytest.raises(VerificationError, match="increasing"):
            v.after_interfaces(self._sub([3, 1, 7], [0, 2]), 10)

    def test_out_of_separator_range_raises(self, v):
        with pytest.raises(VerificationError, match="separator range"):
            v.after_interfaces(self._sub([1, 3], [0, 99]), 10)

    def test_size_mismatch_raises(self, v):
        sub = self._sub([1, 3, 7], [0, 2])
        sub.E_hat = sp.csr_matrix((4, 2))
        with pytest.raises(VerificationError, match="entries"):
            v.after_interfaces(sub, 10)


class TestLUStage:
    def test_good_factorization(self, v, grid8):
        f = factorize(grid8.tocsc())
        v.after_subdomain_lu(0, grid8, f)
        assert "lu.reconstruction" in v.checks_run

    def test_subdiagonal_in_U_raises(self, v, grid8):
        from dataclasses import replace
        f = factorize(grid8.tocsc())
        U = f.U.tolil()
        U[5, 0] = 1.0
        with pytest.raises(VerificationError, match="below the diagonal"):
            v.after_subdomain_lu(0, grid8, replace(f, U=U.tocsc()))

    def test_corrupted_values_fail_reconstruction(self, v, grid8):
        from dataclasses import replace
        f = factorize(grid8.tocsc())
        U = f.U.copy()
        U.data = U.data.copy()
        U.data[U.data.size // 2] *= 3.0
        with pytest.raises(VerificationError, match="reconstruct"):
            v.after_subdomain_lu(0, grid8, replace(f, U=U))


class TestTriangularSolveStage:
    def test_exact_solve_passes(self, v, rng):
        n = 20
        L = (sp.tril(sp.random(n, n, 0.3, random_state=rng), -1)
             + sp.eye(n)).tocsr()
        B = sp.random(n, 5, 0.4, random_state=rng, format="csr")
        import scipy.sparse.linalg as spla
        X = sp.csr_matrix(spla.spsolve_triangular(L, B.toarray(), lower=True))
        v.after_interface_solve(L, B, X, 0.0)
        assert "trsolve.residual" in v.checks_run

    def test_wrong_solution_raises(self, v, rng):
        n = 20
        L = (sp.tril(sp.random(n, n, 0.3, random_state=rng), -1)
             + sp.eye(n)).tocsr()
        B = sp.random(n, 5, 0.4, random_state=rng, format="csr")
        with pytest.raises(VerificationError, match="L X != B"):
            v.after_interface_solve(L, B, B.copy(), 0.0)

    def test_nan_raises_even_with_dropping(self, v):
        L = sp.eye(3, format="csr")
        X = sp.csr_matrix(np.array([[np.nan, 0], [0, 0], [0, 0]]))
        with pytest.raises(VerificationError, match="NaN"):
            v.after_interface_solve(L, X, X, 0.5)


class TestSchurStage:
    def test_no_drop_identity(self, v, rng):
        S = sp.random(12, 12, 0.4, random_state=rng, format="csr")
        v.after_schur_assembly(S, S, S.copy(), 0.0)
        assert "schur.no-drop-identity" in v.checks_run

    def test_tampered_value_raises(self, v, rng):
        S = sp.random(12, 12, 0.4, random_state=rng, format="csr")
        T = S.copy()
        T.data = T.data.copy()
        T.data[0] += 1.0
        with pytest.raises(VerificationError, match="drop_tol=0"):
            v.after_schur_assembly(S, S, T, 0.0)

    def test_legitimate_dropping_passes(self, v):
        S = sp.csr_matrix(np.array([[2.0, 1e-9], [1e-9, 2.0]]))
        T = sp.csr_matrix(np.diag([2.0, 2.0]))
        v.after_schur_assembly(S, S, T, 1e-6)
        assert "schur.drop-subset" in v.checks_run

    def test_dropping_must_not_alter_kept_entries(self, v):
        S = sp.csr_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        T = sp.csr_matrix(np.array([[2.0, 0.5], [1.0, 2.0]]))
        with pytest.raises(VerificationError, match="altered"):
            v.after_schur_assembly(S, S, T, 1e-6)

    def test_dropping_the_diagonal_raises(self, v):
        S = sp.csr_matrix(np.array([[1e-9, 1.0], [1.0, 2.0]]))
        T = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        T.eliminate_zeros()
        with pytest.raises(VerificationError, match="diagonal"):
            v.after_schur_assembly(S, S, T, 1e-6)


class TestKrylovStage:
    def test_honest_history_passes(self, v, rng):
        M = np.diag(rng.uniform(1, 2, 8))
        x = rng.standard_normal(8)
        b = M @ x
        res = SimpleNamespace(x=x, converged=True,
                              residual_norms=[1.0, 0.0])
        v.after_krylov(lambda u: M @ u, b, res)
        assert "krylov.true-residual" in v.checks_run

    def test_lying_history_raises(self, v, rng):
        M = np.diag(rng.uniform(1, 2, 8))
        b = rng.standard_normal(8)
        res = SimpleNamespace(x=np.zeros(8), converged=True,
                              residual_norms=[1.0, 1e-12])
        with pytest.raises(VerificationError, match="true residual"):
            v.after_krylov(lambda u: M @ u, b, res)

    def test_empty_history_raises(self, v):
        res = SimpleNamespace(x=np.zeros(2), converged=False,
                              residual_norms=[])
        with pytest.raises(VerificationError, match="history"):
            v.after_krylov(lambda u: u, np.ones(2), res)


class TestSolveStage:
    def test_reported_residual_must_match(self, v, grid8, rng):
        b = rng.standard_normal(grid8.shape[0])
        import scipy.sparse.linalg as spla
        x = spla.spsolve(grid8.tocsc(), b)
        r = float(np.linalg.norm(b - grid8 @ x) / np.linalg.norm(b))
        v.after_solve(grid8, b, x, r)
        with pytest.raises(VerificationError, match="reported"):
            v.after_solve(grid8, b, x, r + 0.5)


class TestEndToEnd:
    def test_pdslin_verify_runs_all_stages(self, grid16, rng):
        verifier = Verifier()
        b = rng.standard_normal(grid16.shape[0])
        res = PDSLin(grid16, PDSLinConfig(k=4, seed=0),
                     verify=verifier).solve(b)
        assert res.residual_norm < 1e-8
        ran = set(verifier.checks_run)
        for expected in ("partition.perm-bijection", "partition.dbbd-exact",
                         "interfaces.e_cols-injective",
                         "lu.reconstruction", "trsolve.finite",
                         "schur.assembly", "krylov.true-residual",
                         "solve.reported-residual"):
            assert expected in ran, expected

    def test_pdslin_verify_true_promotes_to_verifier(self, grid8, rng):
        solver = PDSLin(grid8, PDSLinConfig(k=2, seed=0), verify=True)
        assert isinstance(solver.verifier, Verifier)
        assert solver.verifier.enabled
        b = rng.standard_normal(grid8.shape[0])
        assert solver.solve(b).residual_norm < 1e-8

    def test_pdslin_default_is_null_verifier(self, grid8):
        solver = PDSLin(grid8, PDSLinConfig(k=2, seed=0))
        assert solver.verifier is NULL_VERIFIER
        assert not solver.verifier.enabled

    def test_rhb_verify_flag(self, grid16):
        verifier = Verifier()
        rhb_partition(grid16, 4, seed=1, verify=verifier)
        assert "rhb.cut-cost-identity" in verifier.checks_run
        assert "rhb.column-consistency" in verifier.checks_run
        assert "weights.definition" in verifier.checks_run

    def test_ngd_verify_flag(self, grid16):
        verifier = Verifier()
        nested_dissection_partition(grid16, 4, seed=1, verify=verifier)
        assert "ngd.separator-complete" in verifier.checks_run


class TestPlugins:
    def test_plugin_sees_checks(self, grid8):
        seen = []
        verifier = Verifier(plugins=[lambda name, payload:
                                     seen.append(name)])
        verifier.check_permutation(np.array([0, 1]), 2, "t")
        assert seen == ["t"]

    def test_plugin_can_fail_stage(self):
        def angry(name, payload):
            raise VerificationError("plugin.angry", "no")
        verifier = Verifier(plugins=[angry])
        with pytest.raises(VerificationError, match="angry"):
            verifier.check_permutation(np.array([0, 1]), 2, "t")


class TestNullVerifier:
    def test_all_hooks_noop(self):
        nv = NullVerifier()
        nv.check_permutation(np.array([5, 5]), 2, "t")  # would fail
        nv.after_schur_assembly(None, None, None, 0.0)   # would crash
        assert nv.checks_run == []
        assert not nv.enabled
