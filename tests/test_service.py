"""Tests for the serving layer: session cache, micro-batching queue,
structured rejections, deadlines, revalidation, and shutdown hygiene."""

import multiprocessing
import pickle
import time

import numpy as np
import pytest

from repro.matrices import generate
from repro.obs.tracer import Tracer
from repro.resilience.errors import SolverError
from repro.service import (
    ServiceClosedError,
    ServiceDeadlineError,
    ServiceError,
    ServiceOverloadedError,
    SessionCache,
    SolverService,
    UnknownSessionError,
    session_key,
)
from repro.service.cache import make_session
from repro.solver import PDSLin, PDSLinConfig


def _cfg():
    return PDSLinConfig(k=4, seed=0)


@pytest.fixture(scope="module")
def hot():
    return generate("tdr190k", "tiny").A


@pytest.fixture(scope="module")
def cold_pair():
    return (generate("tdr455k", "tiny").A,
            generate("dds.quad", "tiny").A)


@pytest.fixture()
def svc():
    service = SolverService(config=_cfg(), batch_window_s=0.01,
                            tracer=Tracer())
    yield service
    service.close()


def _rhs(A, seed=0):
    return np.random.default_rng(seed).standard_normal(A.shape[0])


class TestSessionCache:
    def _session(self, A, key=None):
        solver = PDSLin(A, _cfg())
        solver.setup()
        return make_session(key or session_key(A, _cfg()), solver, A,
                            _cfg())

    def test_nbytes_accounts_factors(self, hot):
        s = self._session(hot)
        # more than the bare matrix: factors + Schur must be counted
        matrix_bytes = hot.data.nbytes + hot.indices.nbytes \
            + hot.indptr.nbytes
        assert s.nbytes > matrix_bytes

    def test_lru_eviction_respects_budget(self, hot, cold_pair):
        a = self._session(hot)
        cache = SessionCache(int(a.nbytes * 1.5))
        assert cache.put(a) == []
        b = self._session(cold_pair[0])
        evicted = cache.put(b)
        assert [s.key for s in evicted] == [a.key]
        assert cache.used_bytes <= cache.budget_bytes or len(cache) == 1
        assert cache.evicted_bytes == a.nbytes

    def test_eviction_releases_superlu_handles(self, hot, cold_pair):
        a = self._session(hot)
        assert any(s.factors.handle is not None
                   for s in a.solver.subdomains)
        cache = SessionCache(1)  # everything over budget
        cache.put(a)
        b = self._session(cold_pair[0])
        cache.put(b)
        assert all(s.factors.handle is None for s in a.solver.subdomains)

    def test_get_refreshes_recency(self, hot, cold_pair):
        a = self._session(hot)
        b = self._session(cold_pair[0])
        cache = SessionCache(a.nbytes + b.nbytes)
        cache.put(a)
        cache.put(b)
        assert cache.get(a.key) is a      # a is now most recent
        c = self._session(cold_pair[1])
        evicted = cache.put(c)
        assert [s.key for s in evicted] == [b.key]

    def test_zero_budget_still_serves_one(self, hot):
        cache = SessionCache(0)
        a = self._session(hot)
        cache.put(a)
        assert len(cache) == 1            # own insert never evicts itself


class TestSubmitAndBatch:
    def test_cache_hit_bit_identical_to_fresh_solve(self, svc, hot):
        b0, b1 = _rhs(hot, 0), _rhs(hot, 1)
        svc.solve(hot, b0)                            # warm the session
        served = svc.solve(hot, b1)                   # cache hit
        fresh = PDSLin(hot, _cfg()).solve(b1)
        assert served.x.tobytes() == fresh.x.tobytes()
        assert svc.service_report()["cache"]["hits"] >= 1

    def test_burst_coalesces_into_one_batch(self, svc, hot):
        svc.solve(hot, _rhs(hot))                     # warm up
        futs = [svc.submit(hot, _rhs(hot, i)) for i in range(5)]
        for f in futs:
            assert f.result(timeout=300).converged
        assert svc.service_report()["requests"]["max_batch_nrhs"] >= 2

    def test_fingerprint_round_trip(self, svc, hot):
        fp = svc.fingerprint(hot, _cfg())
        svc.solve(hot, _rhs(hot))
        b = _rhs(hot, 7)
        assert svc.solve(fp, b).converged
        assert fp == session_key(hot, _cfg())

    def test_unknown_fingerprint_rejected(self, svc):
        with pytest.raises(UnknownSessionError, match="resubmit"):
            svc.submit("feed:beef", np.ones(4))

    def test_distinct_matrices_get_distinct_sessions(self, svc, hot,
                                                     cold_pair):
        svc.solve(hot, _rhs(hot))
        svc.solve(cold_pair[0], _rhs(cold_pair[0]))
        assert svc.service_report()["cache"]["sessions"] == 2

    def test_input_validation(self, svc, hot):
        with pytest.raises(ValueError, match="1-D"):
            svc.submit(hot, np.ones((4, 2)))
        with pytest.raises(ValueError, match="length"):
            svc.submit(hot, np.ones(3))
        with pytest.raises(ValueError, match="deadline_s"):
            svc.submit(hot, _rhs(hot), deadline_s=0.0)


class TestBackpressureAndDeadlines:
    def test_queue_depth_rejection(self, hot):
        svc = SolverService(config=_cfg(), max_pending=2,
                            batch_window_s=5.0)
        try:
            svc.submit(hot, _rhs(hot, 0))
            svc.submit(hot, _rhs(hot, 1))
            with pytest.raises(ServiceOverloadedError) as exc:
                svc.submit(hot, _rhs(hot, 2))
            assert exc.value.limit == 2
            assert exc.value.queue_depth == 2
        finally:
            svc.close(timeout=1.0)

    def test_cold_matrix_admission_limit(self, hot, cold_pair):
        svc = SolverService(config=_cfg(), max_cold_sessions=1,
                            batch_window_s=5.0)
        try:
            svc.submit(hot, _rhs(hot))
            with pytest.raises(ServiceOverloadedError, match="cold"):
                svc.submit(cold_pair[0], _rhs(cold_pair[0]))
        finally:
            svc.close(timeout=1.0)

    def test_expired_deadline_is_structured_rejection(self, svc, hot):
        fut = svc.submit(hot, _rhs(hot), deadline_s=1e-5)
        with pytest.raises(ServiceDeadlineError) as exc:
            fut.result(timeout=300)
        assert exc.value.deadline_s == 1e-5
        assert exc.value.waited_s > 0
        assert svc.service_report()["requests"]["deadline_missed"] == 1

    def test_generous_deadline_is_served(self, svc, hot):
        assert svc.solve(hot, _rhs(hot), deadline_s=600.0).converged

    def test_service_errors_are_solver_errors_and_pickle(self):
        err = ServiceOverloadedError("full", queue_depth=9, limit=8)
        assert isinstance(err, SolverError)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ServiceOverloadedError)
        assert clone.queue_depth == 9 and clone.limit == 8
        assert isinstance(ServiceDeadlineError("late"), ServiceError)


class TestUpdateMatrix:
    def test_revalidation_rekeys_and_matches_fresh(self, svc, hot):
        svc.solve(hot, _rhs(hot))
        hot2 = hot.copy()
        hot2.data = hot2.data * 1.5
        key2 = svc.update_matrix(hot2)
        assert key2 == session_key(hot2, _cfg())
        b = _rhs(hot2, 5)
        served = svc.solve(key2, b)          # by fingerprint: rekeyed
        fresh = PDSLin(hot2, _cfg()).solve(b)
        assert served.x.tobytes() == fresh.x.tobytes()
        rep = svc.service_report()
        assert rep["requests"]["revalidations"] == 1
        assert rep["cache"]["sessions"] == 1  # rekeyed, not duplicated

    def test_no_pattern_match_falls_back_cold(self, svc, hot):
        key = svc.update_matrix(hot)          # nothing cached yet
        assert key == session_key(hot, _cfg())
        assert svc.service_report()["requests"]["revalidations"] == 0


class TestLifecycle:
    def test_close_rejects_pending_and_new(self, hot):
        svc = SolverService(config=_cfg(), batch_window_s=5.0)
        fut = svc.submit(hot, _rhs(hot))
        svc.close(timeout=1.0)
        with pytest.raises(ServiceClosedError):
            fut.result(timeout=1)
        with pytest.raises(ServiceClosedError):
            svc.submit(hot, _rhs(hot))
        svc.close()                           # idempotent

    def test_close_clears_cache(self, hot):
        svc = SolverService(config=_cfg(), batch_window_s=0.01)
        svc.solve(hot, _rhs(hot))
        svc.close()
        assert svc.cache.snapshot()["sessions"] == 0

    def test_process_backend_no_orphans_after_close(self, hot):
        svc = SolverService(config=_cfg(), backend="process:2",
                            batch_window_s=0.01)
        try:
            b = _rhs(hot)
            served = svc.solve(hot, b)
            fresh = PDSLin(hot, _cfg()).solve(b)   # serial reference
            assert served.x.tobytes() == fresh.x.tobytes()
        finally:
            svc.close()
        assert multiprocessing.active_children() == []

    def test_caller_owned_backend_not_closed(self, hot):
        from repro.parallel.exec import get_backend
        backend = get_backend("thread:2", fresh=True)
        try:
            svc = SolverService(config=_cfg(), backend=backend,
                                batch_window_s=0.01)
            svc.solve(hot, _rhs(hot))
            svc.close()
            # still usable: the service must not close what it not owns
            assert backend.map(len, [[1, 2]]) is not None
        finally:
            backend.close()


class TestDispatcherHardening:
    """One malformed or unlucky request must never kill the dispatcher
    thread or tear resources out from under a live batch."""

    def test_fingerprint_wrong_length_rejected_at_submit(self, svc, hot):
        svc.solve(hot, _rhs(hot))                     # session cached
        fp = svc.fingerprint(hot)
        with pytest.raises(ValueError, match="length"):
            svc.submit(fp, np.ones(hot.shape[0] - 1))
        # the dispatcher survived: the same session still serves
        assert svc.solve(fp, _rhs(hot, 3)).converged

    def test_fingerprint_validated_against_queued_carrier(self, hot):
        svc = SolverService(config=_cfg(), batch_window_s=5.0)
        try:
            fp = svc.fingerprint(hot)
            svc.submit(hot, _rhs(hot))                # carrier queued
            with pytest.raises(ValueError, match="length"):
                svc.submit(fp, np.ones(hot.shape[0] + 1))
        finally:
            svc.close(timeout=1.0)

    def test_fingerprint_admitted_while_session_in_flight(self, svc,
                                                          hot):
        # simulate the dispatcher mid-setup: the carrier popped off the
        # queue, its session not yet in the cache
        fp = svc.fingerprint(hot)
        with svc._lock:
            svc._building[fp] = int(hot.shape[0])
        with pytest.raises(ValueError, match="length"):
            svc.submit(fp, np.ones(2))
        fut = svc.submit(fp, _rhs(hot))               # admitted
        # no carrier ever establishes the session here, so the request
        # fails with the honest message — and the dispatcher lives on
        with pytest.raises(UnknownSessionError, match="carrier"):
            fut.result(timeout=300)
        assert svc.solve(hot, _rhs(hot)).converged

    def test_dispatcher_survives_serve_group_error(self, svc, hot):
        orig = svc._serve_group

        def boom(key, reqs):
            raise RuntimeError("injected dispatch failure")

        svc._serve_group = boom
        fut = svc.submit(hot, _rhs(hot))
        with pytest.raises(RuntimeError, match="injected"):
            fut.result(timeout=300)
        svc._serve_group = orig
        assert svc.solve(hot, _rhs(hot)).converged
        assert svc.service_report()["requests"]["failed"] == 1

    def test_deadline_expiring_during_setup_is_rejected(self, svc, hot):
        orig = svc._session_for

        def slow(key, reqs):
            out = orig(key, reqs)
            time.sleep(0.5)                           # cold setup drags
            return out

        svc._session_for = slow
        fut = svc.submit(hot, _rhs(hot), deadline_s=0.2)
        with pytest.raises(ServiceDeadlineError):
            fut.result(timeout=300)
        svc._session_for = orig

    def test_close_timeout_leaves_live_solve_untouched(self, hot):
        svc = SolverService(config=_cfg(), batch_window_s=0.01)
        svc.solve(hot, _rhs(hot))                     # session cached
        svc._exec_lock.acquire()                      # batch "solving"
        try:
            with pytest.warns(RuntimeWarning, match="still solving"):
                svc.close(timeout=0.2)
            assert not svc.closed
            # nothing torn down under the live solve
            assert svc.cache.snapshot()["sessions"] == 1
        finally:
            svc._exec_lock.release()
        svc.close()                                   # retry finishes
        assert svc.closed
        assert svc.cache.snapshot()["sessions"] == 0


class TestObservability:
    def test_report_shape(self, svc, hot):
        svc.solve(hot, _rhs(hot))
        rep = svc.service_report()
        assert rep["queue_depth"] == 0
        assert rep["cache"]["sessions"] == 1
        assert rep["requests"]["served"] == 1
        assert rep["throughput"]["rhs_per_s"] > 0
        assert rep["sessions"][0]["rhs_served"] == 1

    def test_tracer_spans_and_counters(self, hot):
        tracer = Tracer()
        svc = SolverService(config=_cfg(), tracer=tracer,
                            batch_window_s=0.01)
        try:
            svc.solve(hot, _rhs(hot, 0))
            svc.solve(hot, _rhs(hot, 1))
        finally:
            svc.close()
        assert tracer.span_count("service_setup") == 1
        assert tracer.span_count("service_batch") == 2
        assert tracer.counters.get("service_cache_hit") == 1
        assert tracer.counters.get("service_cache_miss") == 1

    def test_smoke_runner_serial(self):
        from repro.service.smoke import run_service_smoke
        out = run_service_smoke("serial", n_requests=12)
        assert out["ok"], out["checks"]
