"""Unit and integration tests for GMRES, Schur assembly, and PDSLin."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.core import build_dbbd
from repro.solver import (
    PDSLin,
    PDSLinConfig,
    assemble_approximate_schur,
    drop_small_entries,
    extract_interfaces,
    gmres,
)


class TestGMRES:
    def test_identity(self, rng):
        b = rng.standard_normal(10)
        res = gmres(lambda v: v, b)
        assert res.converged
        np.testing.assert_allclose(res.x, b, atol=1e-10)

    def test_spd_system(self, spd60, rng):
        b = rng.standard_normal(60)
        res = gmres(lambda v: spd60 @ v, b, tol=1e-12, restart=30)
        assert res.converged
        assert np.linalg.norm(spd60 @ res.x - b) <= 1e-10 * np.linalg.norm(b)

    def test_restart_path(self, spd60, rng):
        b = rng.standard_normal(60)
        res = gmres(lambda v: spd60 @ v, b, tol=1e-10, restart=5,
                    maxiter=400)
        assert res.converged

    def test_preconditioner_accelerates(self, rng):
        # diagonal system with huge condition number
        d = np.logspace(0, 8, 50)
        A = sp.diags(d)
        b = rng.standard_normal(50)
        plain = gmres(lambda v: A @ v, b, tol=1e-8, restart=10, maxiter=100)
        prec = gmres(lambda v: A @ v, b, preconditioner=lambda v: v / d,
                     tol=1e-8, restart=10, maxiter=100)
        assert prec.converged
        assert prec.iterations < max(plain.iterations, 100)

    def test_true_residual_history(self, spd60, rng):
        b = rng.standard_normal(60)
        res = gmres(lambda v: spd60 @ v, b, tol=1e-10)
        assert res.residual_norms[0] >= res.final_residual

    def test_zero_rhs(self):
        res = gmres(lambda v: v, np.zeros(5))
        assert res.converged and res.iterations == 0

    def test_x0_honored(self, spd60, rng):
        b = rng.standard_normal(60)
        x_star = gmres(lambda v: spd60 @ v, b, tol=1e-12).x
        res = gmres(lambda v: spd60 @ v, b, x0=x_star, tol=1e-8)
        assert res.iterations == 0

    def test_nonconvergence_reported(self, rng):
        # rotation-like skew system, 2 iterations allowed only
        n = 40
        A = sp.eye(n) + 10 * sp.random(n, n, 0.2, random_state=1)
        b = rng.standard_normal(n)
        res = gmres(lambda v: A @ v, b, tol=1e-14, restart=2, maxiter=2)
        assert not res.converged

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gmres(lambda v: v, np.ones(3), restart=0)


class TestInterfaces:
    def make_partition(self, grid16):
        from repro.graphs import nested_dissection_partition
        r = nested_dissection_partition(grid16, 2, seed=0)
        return build_dbbd(grid16, r.part, 2)

    def test_compressed_shapes(self, grid16):
        p = self.make_partition(grid16)
        sub = extract_interfaces(p, 0)
        assert sub.E_hat.shape == (sub.dim, sub.e_cols.size)
        assert sub.F_hat.shape == (sub.f_rows.size, sub.dim)

    def test_no_zero_columns_in_e_hat(self, grid16):
        p = self.make_partition(grid16)
        sub = extract_interfaces(p, 0)
        from repro.sparse.patterns import col_nnz
        assert np.all(col_nnz(sub.E_hat) > 0)

    def test_maps_reconstruct_full_e(self, grid16):
        p = self.make_partition(grid16)
        sub = extract_interfaces(p, 0)
        E = p.E(0).toarray()
        E_hat = np.zeros_like(E)
        E_hat[:, sub.e_cols] = sub.E_hat.toarray()
        np.testing.assert_array_equal(E, E_hat)


class TestSchurAssembly:
    def test_drop_small_keeps_diagonal(self):
        A = sp.csr_matrix(np.array([[1e-12, 1.0], [0.5, 1e-12]]))
        out = drop_small_entries(A, 0.1)
        assert out[0, 0] == 1e-12  # diagonal kept
        assert out[1, 1] == 1e-12

    def test_drop_zero_tol_noop(self, spd60):
        out = drop_small_entries(spd60, 0.0)
        assert (out != spd60).nnz == 0

    def test_exact_schur_against_dense(self, grid16):
        """S~ with no dropping equals the dense Schur complement."""
        from repro.graphs import nested_dissection_partition
        r = nested_dissection_partition(grid16, 2, seed=0)
        p = build_dbbd(grid16, r.part, 2)
        sep = p.separator_vertices
        # dense reference
        interior = np.flatnonzero(p.part >= 0)
        Ad = grid16.toarray()
        S_ref = Ad[np.ix_(sep, sep)] - Ad[np.ix_(sep, interior)] @ \
            np.linalg.solve(Ad[np.ix_(interior, interior)],
                            Ad[np.ix_(interior, sep)])
        # via the solver pieces with no dropping (numerics off so S~ is
        # the Schur complement of A itself, not of the scaled system)
        cfg = PDSLinConfig(k=2, partitioner="ngd", drop_interface=0.0,
                           drop_schur=0.0, seed=0, numerics=False)
        solver = PDSLin(grid16, cfg)
        solver.setup()
        S = solver.S_tilde.toarray()
        np.testing.assert_allclose(S, S_ref, atol=1e-8)

    def test_shape_mismatch_rejected(self, grid16):
        from repro.graphs import nested_dissection_partition
        r = nested_dissection_partition(grid16, 2, seed=0)
        p = build_dbbd(grid16, r.part, 2)
        sub = extract_interfaces(p, 0)
        T_bad = sp.csr_matrix((3, 3))
        with pytest.raises(ValueError):
            assemble_approximate_schur(p.C(), [(sub, T_bad)])


class TestPDSLin:
    @pytest.mark.parametrize("partitioner", ["rhb", "ngd"])
    def test_solves_grid(self, partitioner, rng):
        A = grid_laplacian(14, 14)
        b = rng.standard_normal(A.shape[0])
        solver = PDSLin(A, PDSLinConfig(k=4, partitioner=partitioner, seed=0))
        res = solver.solve(b)
        assert res.converged
        assert res.residual_norm < 1e-8

    @pytest.mark.parametrize("ordering", ["natural", "postorder", "hypergraph"])
    def test_rhs_orderings_all_work(self, ordering, rng):
        A = grid_laplacian(12, 12)
        b = rng.standard_normal(A.shape[0])
        cfg = PDSLinConfig(k=2, rhs_ordering=ordering, seed=0, block_size=8)
        res = PDSLin(A, cfg).solve(b)
        assert res.residual_norm < 1e-8

    def test_unsymmetric_system(self, rng):
        from repro.matrices import fusion_matrix
        gm = fusion_matrix(5, 5, 4, seed=0)
        b = rng.standard_normal(gm.n)
        cfg = PDSLinConfig(k=2, seed=0, gmres_tol=1e-10)
        res = PDSLin(gm.A, cfg, M=gm.M).solve(b)
        assert res.residual_norm < 1e-7

    def test_indefinite_system(self, rng):
        from repro.matrices import cavity_matrix
        gm = cavity_matrix(6, 6, 5, seed=0)
        b = rng.standard_normal(gm.n)
        cfg = PDSLinConfig(k=2, seed=0)
        res = PDSLin(gm.A, cfg, M=gm.M).solve(b)
        assert res.residual_norm < 1e-7

    def test_aggressive_dropping_needs_iterations(self, rng):
        A = grid_laplacian(14, 14)
        b = rng.standard_normal(A.shape[0])
        exact = PDSLin(A, PDSLinConfig(k=4, seed=0, drop_interface=0.0,
                                       drop_schur=0.0))
        loose = PDSLin(A, PDSLinConfig(k=4, seed=0, drop_interface=1e-2,
                                       drop_schur=1e-2))
        r_exact = exact.solve(b)
        r_loose = loose.solve(b)
        assert r_exact.iterations <= r_loose.iterations
        assert r_loose.residual_norm < 1e-7  # still converges

    def test_stage_breakdown_present(self, rng):
        A = grid_laplacian(10, 10)
        b = rng.standard_normal(A.shape[0])
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0))
        solver.solve(b)
        br = solver.machine.breakdown()
        for stage in ("LU(D)", "Comp(S)", "LU(S)", "Solve", "Partition"):
            assert stage in br

    def test_schur_size_reported(self, rng):
        A = grid_laplacian(12, 12)
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0))
        res = solver.solve(rng.standard_normal(A.shape[0]))
        assert res.schur_size == solver.partition.separator_size

    def test_wrong_rhs_shape(self):
        A = grid_laplacian(8, 8)
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0))
        with pytest.raises(ValueError):
            solver.solve(np.ones(3))

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            PDSLinConfig(partitioner="magic")
        with pytest.raises(ValueError):
            PDSLinConfig(rhs_ordering="sorted")
        with pytest.raises(ValueError):
            PDSLinConfig(block_size=0)

    def test_k1_direct_solve(self, rng):
        # k=1: no separator, reduces to a direct solve
        A = grid_laplacian(8, 8)
        b = rng.standard_normal(A.shape[0])
        res = PDSLin(A, PDSLinConfig(k=1, seed=0)).solve(b)
        assert res.schur_size == 0
        assert res.residual_norm < 1e-10

    def test_balance_ratio_queries(self, rng):
        A = grid_laplacian(12, 12)
        solver = PDSLin(A, PDSLinConfig(k=4, seed=0))
        solver.solve(rng.standard_normal(A.shape[0]))
        assert solver.machine.balance_ratio("LU(D)") >= 1.0
