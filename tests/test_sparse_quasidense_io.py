"""Unit tests for quasi-dense filtering and Matrix Market I/O."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    filter_quasi_dense_rows,
    pattern_equal,
    read_matrix_market,
    write_matrix_market,
)


class TestQuasiDenseFilter:
    def make(self):
        # 4 columns; row densities: 1.0, 0.5, 0.25, 0.0
        rows = [0, 0, 0, 0, 1, 1, 2]
        cols = [0, 1, 2, 3, 0, 2, 1]
        return sp.csr_matrix((np.ones(7), (rows, cols)), shape=(4, 4))

    def test_threshold_splits_correctly(self):
        f = filter_quasi_dense_rows(self.make(), tau=0.5)
        np.testing.assert_array_equal(f.dense_rows, [0, 1])
        np.testing.assert_array_equal(f.empty_rows, [3])
        np.testing.assert_array_equal(f.kept_rows, [2])

    def test_kept_matrix_rows(self):
        f = filter_quasi_dense_rows(self.make(), tau=0.9)
        assert f.kept.shape == (2, 4)
        np.testing.assert_array_equal(f.kept_rows, [1, 2])

    def test_tau_one_keeps_everything_nonempty_nondense(self):
        f = filter_quasi_dense_rows(self.make(), tau=1.0)
        np.testing.assert_array_equal(f.dense_rows, [0])

    def test_tau_zero_rejected(self):
        with pytest.raises(ValueError):
            filter_quasi_dense_rows(self.make(), tau=0.0)

    def test_fraction_properties(self):
        f = filter_quasi_dense_rows(self.make(), tau=0.5)
        assert f.n_removed == 3
        assert f.removed_fraction == pytest.approx(0.75)


class TestMatrixMarketIO:
    def test_roundtrip_general(self, unsym50):
        buf = io.StringIO()
        write_matrix_market(buf, unsym50, comment="test matrix")
        buf.seek(0)
        B = read_matrix_market(buf)
        assert (abs(unsym50 - B)).max() < 1e-14

    def test_roundtrip_file(self, tmp_path, grid8):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, grid8)
        B = read_matrix_market(path)
        assert pattern_equal(grid8, B)
        assert (abs(grid8 - B)).max() < 1e-14

    def test_reads_symmetric_format(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 -1.0
3 3 4.0
"""
        A = read_matrix_market(io.StringIO(text))
        assert A[0, 1] == -1.0 and A[1, 0] == -1.0
        assert A[2, 2] == 4.0

    def test_reads_pattern_format(self):
        text = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""
        A = read_matrix_market(io.StringIO(text))
        assert A[0, 1] == 1.0 and A[1, 0] == 1.0

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("not a matrix\n"))

    def test_rejects_unsupported_field(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(text))

    def test_skips_comment_lines(self):
        text = """%%MatrixMarket matrix coordinate real general
% a comment
% another
2 2 1
1 1 5.0
"""
        A = read_matrix_market(io.StringIO(text))
        assert A[0, 0] == 5.0

    def test_truncated_file_raises(self):
        text = """%%MatrixMarket matrix coordinate real general
2 2 2
1 1 5.0
"""
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(text))
