"""Tests for the standalone k-way partitioner and direct k-way
refinement."""

import numpy as np
import pytest
from tests.conftest import grid_laplacian

from repro.hypergraph import (
    Hypergraph,
    cutsize,
    imbalance,
    kway_move_gain,
    kway_refine,
    partition_hypergraph,
)
from repro.hypergraph.kway import _pin_counts


@pytest.fixture(scope="module")
def grid_h():
    return Hypergraph.column_net_model(grid_laplacian(16, 16))


class TestPartitionHypergraph:
    @pytest.mark.parametrize("metric", ["con1", "cnet", "soed"])
    def test_all_metrics_run(self, grid_h, metric):
        res = partition_hypergraph(grid_h, 4, metric=metric, seed=0)
        assert res.cut == cutsize(grid_h, res.part, 4, metric)
        counts = np.bincount(res.part, minlength=4)
        assert np.all(counts > 0)

    def test_balance_bound(self, grid_h):
        res = partition_hypergraph(grid_h, 4, epsilon=0.05, seed=0)
        # recursive bisection compounds epsilon; allow modest slack
        assert res.imbalance[0] <= 0.25

    def test_k1_trivial(self, grid_h):
        res = partition_hypergraph(grid_h, 1, seed=0)
        assert res.cut == 0
        assert np.all(res.part == 0)

    def test_cut_reasonable_on_grid(self):
        H = Hypergraph.column_net_model(grid_laplacian(16, 16))
        res = partition_hypergraph(H, 4, metric="con1", seed=0)
        # 3 straight cuts cost ~3*2*16 connectivity; anything < 160 is sane
        assert res.cut < 160

    def test_refinement_never_worse(self, grid_h):
        raw = partition_hypergraph(grid_h, 8, seed=3, refine_kway=False)
        ref = partition_hypergraph(grid_h, 8, seed=3, refine_kway=True)
        assert ref.cut <= raw.cut

    def test_deterministic(self, grid_h):
        a = partition_hypergraph(grid_h, 4, seed=5)
        b = partition_hypergraph(grid_h, 4, seed=5)
        np.testing.assert_array_equal(a.part, b.part)


class TestKWayGain:
    def make(self):
        # one net {0,1,2}, parts [0, 0, 1] with k=3
        H = Hypergraph.from_arrays([0, 3], [0, 1, 2], 3)
        part = np.array([0, 0, 1])
        pi = _pin_counts(H, part, 3)
        return H, part, pi, H.net_sizes()

    def test_con1_gain_uncut(self):
        H, part, pi, sizes = self.make()
        # moving v2 from part1 to part0 uncuts the net: +1
        assert kway_move_gain(H, pi, sizes, 2, 1, 0, "con1") == 1

    def test_con1_gain_new_part(self):
        H, part, pi, sizes = self.make()
        # moving v0 from part0 to empty part2 raises lambda: -1
        assert kway_move_gain(H, pi, sizes, 0, 0, 2, "con1") == -1

    def test_cnet_gain(self):
        H, part, pi, sizes = self.make()
        # v2 to part0 makes the net internal: cnet +1
        assert kway_move_gain(H, pi, sizes, 2, 1, 0, "cnet") == 1

    def test_soed_is_sum(self):
        H, part, pi, sizes = self.make()
        for (v, a, b) in ((2, 1, 0), (0, 0, 2), (0, 0, 1)):
            s = kway_move_gain(H, pi, sizes, v, a, b, "soed")
            c1 = kway_move_gain(H, pi, sizes, v, a, b, "con1")
            cn = kway_move_gain(H, pi, sizes, v, a, b, "cnet")
            assert s == c1 + cn

    def test_gain_matches_brute_force(self, grid_h):
        rng = np.random.default_rng(0)
        k = 4
        part = rng.integers(0, k, grid_h.n_vertices)
        pi = _pin_counts(grid_h, part, k)
        sizes = grid_h.net_sizes()
        for metric in ("con1", "cnet", "soed"):
            base = cutsize(grid_h, part, k, metric)
            for v in range(0, grid_h.n_vertices, 37):
                a = int(part[v])
                b = (a + 1) % k
                g = kway_move_gain(grid_h, pi, sizes, v, a, b, metric)
                p2 = part.copy()
                p2[v] = b
                assert g == base - cutsize(grid_h, p2, k, metric), \
                    f"{metric} gain mismatch at v={v}"


class TestKWayRefine:
    def test_improves_random_partition(self, grid_h):
        rng = np.random.default_rng(1)
        part = rng.integers(0, 4, grid_h.n_vertices)
        before = cutsize(grid_h, part, 4, "con1")
        out = kway_refine(grid_h, part, 4, metric="con1", epsilon=0.5)
        after = cutsize(grid_h, out, 4, "con1")
        assert after < before

    @pytest.mark.parametrize("metric", ["con1", "cnet", "soed"])
    def test_never_worse_any_metric(self, grid_h, metric):
        rng = np.random.default_rng(2)
        part = rng.integers(0, 4, grid_h.n_vertices)
        before = cutsize(grid_h, part, 4, metric)
        out = kway_refine(grid_h, part, 4, metric=metric, epsilon=0.5)
        assert cutsize(grid_h, out, 4, metric) <= before

    def test_balance_respected(self, grid_h):
        rng = np.random.default_rng(3)
        part = rng.integers(0, 4, grid_h.n_vertices)
        eps = 0.10
        out = kway_refine(grid_h, part, 4, epsilon=eps)
        # moves must not push any part beyond the cap (input may already
        # violate it; refined imbalance can only be <= max(input, cap))
        assert imbalance(grid_h, out, 4)[0] <= \
            max(imbalance(grid_h, part, 4)[0], eps) + 1e-9

    def test_input_unchanged(self, grid_h):
        rng = np.random.default_rng(4)
        part = rng.integers(0, 4, grid_h.n_vertices)
        snap = part.copy()
        kway_refine(grid_h, part, 4)
        np.testing.assert_array_equal(part, snap)

    def test_perfect_partition_stable(self):
        # two disjoint cliques already split perfectly: no move helps
        H = Hypergraph.from_arrays([0, 3, 6], [0, 1, 2, 3, 4, 5], 6)
        part = np.array([0, 0, 0, 1, 1, 1])
        out = kway_refine(H, part, 2)
        assert cutsize(H, out, 2, "con1") == 0
