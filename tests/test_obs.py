"""Tests for the observability layer: tracer, exporters, solver wiring."""

import json
import time

import numpy as np
import pytest

from repro.matrices import generate
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_dict,
    export_chrome_trace,
    load_metrics,
    stage_metrics,
    write_metrics,
)
from repro.obs.export import format_stage_summary
from repro.solver import PDSLin, PDSLinConfig


class TestSpans:
    def test_nesting_records_path_and_depth(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner", l=3):
                pass
        inner, outer = tr.spans
        assert inner.name == "inner" and inner.depth == 1
        assert inner.path == "outer/inner"
        assert inner.attrs == {"l": 3}
        assert outer.name == "outer" and outer.depth == 0
        assert outer.path == "outer"
        # the inner span is contained in the outer one
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_wall_time_measures_elapsed(self):
        tr = Tracer()
        with tr.span("sleep"):
            time.sleep(0.02)
        assert tr.spans[0].wall_s >= 0.015

    def test_depth_tracks_open_spans(self):
        tr = Tracer()
        assert tr.depth == 0
        with tr.span("a"):
            assert tr.depth == 1
            with tr.span("b"):
                assert tr.depth == 2
        assert tr.depth == 0

    def test_exception_still_closes_span(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert tr.depth == 0
        assert [s.name for s in tr.spans] == ["boom"]

    def test_iter_roots_yields_top_level_only(self):
        tr = Tracer()
        with tr.span("r1"):
            with tr.span("child"):
                pass
        with tr.span("r2"):
            pass
        assert [s.name for s in tr.iter_roots()] == ["r1", "r2"]


class TestCounters:
    def test_counts_accumulate_globally_and_per_span(self):
        tr = Tracer()
        with tr.span("a"):
            tr.count("nnz", 10)
            with tr.span("b"):
                tr.count("nnz", 5)
                tr.count("iters")
        assert tr.counters == {"nnz": 15, "iters": 1}
        by_name = {s.name: s for s in tr.spans}
        # each increment lands on the innermost open span only
        assert by_name["a"].counters == {"nnz": 10}
        assert by_name["b"].counters == {"nnz": 5, "iters": 1}

    def test_count_outside_any_span_is_global_only(self):
        tr = Tracer()
        tr.count("x", 2)
        assert tr.counters == {"x": 2}
        assert tr.spans == []


class TestNullTracer:
    def test_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", attr=1):
            NULL_TRACER.count("ignored", 99)
        assert NULL_TRACER.depth == 0
        assert list(NULL_TRACER.spans) == []
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.events() == []
        assert list(NULL_TRACER.iter_roots()) == []

    def test_span_returns_shared_context_manager(self):
        # one reusable object: no per-call allocation when disabled
        assert NullTracer().span("a") is NULL_TRACER.span("b")


class TestExport:
    def _traced(self):
        tr = Tracer()
        with tr.span("stage_a", k=4):
            tr.count("ops", 100)
        with tr.span("stage_a"):
            tr.count("ops", 50)
        with tr.span("stage_b"):
            pass
        return tr

    def test_stage_metrics_aggregates_calls_and_counters(self):
        m = stage_metrics(self._traced())
        assert m["stages"]["stage_a"]["calls"] == 2
        assert m["stages"]["stage_a"]["counters"] == {"ops": 150}
        assert m["stages"]["stage_b"]["calls"] == 1
        assert m["totals"]["counters"] == {"ops": 150}

    def test_totals_do_not_double_count_nesting(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.01)
        m = stage_metrics(tr)
        outer_wall = m["stages"]["outer"]["wall_s"]
        # total == outer (the only root), not outer + inner
        assert m["totals"]["wall_s"] == pytest.approx(outer_wall)

    def test_metrics_round_trip(self, tmp_path):
        tr = self._traced()
        path = tmp_path / "metrics.json"
        written = write_metrics(tr, path, meta={"seed": 0})
        loaded = load_metrics(path)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["meta"] == {"seed": 0}

    def test_chrome_trace_is_valid(self, tmp_path):
        tr = self._traced()
        path = tmp_path / "trace.json"
        export_chrome_trace(tr, path)
        doc = json.loads(path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        assert all({"name", "ts", "dur", "pid", "tid"} <= set(e) for e in xs)
        args = {e["name"]: e.get("args", {}) for e in xs}
        assert args["stage_a"].get("ops") in (100, 50)

    def test_chrome_trace_dict_from_events(self):
        tr = self._traced()
        doc = chrome_trace_dict(tr.events())
        assert doc["displayTimeUnit"] == "ms"

    def test_format_stage_summary(self):
        text = format_stage_summary(self._traced())
        assert "stage_a" in text and "TOTAL" in text
        assert "ops=150" in text
        assert format_stage_summary(Tracer()) == "(no spans recorded)"


class TestSolverWiring:
    @pytest.fixture(scope="class")
    def traced_solve(self):
        gm = generate("tdr190k", "tiny")
        A = gm.A.tocsr()
        b = np.random.default_rng(0).standard_normal(A.shape[0])
        tracer = Tracer()
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0), tracer=tracer)
        result = solver.solve(b)
        return tracer, result

    def test_pipeline_stages_are_covered(self, traced_solve):
        tracer, result = traced_solve
        assert result.converged
        names = {s.name for s in tracer.spans}
        assert {"partition", "factor_subdomain", "interface_solve",
                "schur_assemble", "factor_schur", "solve"} <= names
        assert tracer.depth == 0

    def test_key_counters_recorded(self, traced_solve):
        tracer, _ = traced_solve
        assert tracer.counters["separator_size"] > 0
        assert tracer.counters["lu_fill_nnz"] > 0
        assert tracer.counters["lu_flops"] > 0
        assert tracer.counters["gmres_iterations"] >= 1

    def test_default_solver_uses_null_tracer(self):
        gm = generate("tdr190k", "tiny")
        solver = PDSLin(gm.A.tocsr(), PDSLinConfig(k=2, seed=0))
        assert solver.tracer is NULL_TRACER
