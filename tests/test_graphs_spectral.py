"""Tests for the Lanczos eigensolver and spectral bisection."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from tests.conftest import grid_laplacian

from repro.graphs import (
    Graph,
    graph_laplacian,
    lanczos_fiedler,
    spectral_bisection,
)


def path_graph(n: int) -> Graph:
    A = sp.diags([np.ones(n - 1), 2 * np.ones(n), np.ones(n - 1)],
                 [-1, 0, 1]).tocsr()
    return Graph.from_matrix(A)


class TestLaplacian:
    def test_rows_sum_to_zero(self, grid16):
        g = Graph.from_matrix(grid16)
        L = graph_laplacian(g)
        np.testing.assert_allclose(np.asarray(L.sum(axis=1)).ravel(), 0.0,
                                   atol=1e-12)

    def test_psd(self):
        g = path_graph(10)
        L = graph_laplacian(g).toarray()
        assert np.linalg.eigvalsh(L).min() > -1e-10


class TestLanczosFiedler:
    def test_matches_scipy_on_grid(self, grid16):
        g = Graph.from_matrix(grid16)
        L = graph_laplacian(g)
        lam, v = lanczos_fiedler(L, seed=0)
        ref = spla.eigsh(L.asfptype(), k=2, which="SM",
                         return_eigenvectors=False)
        lam_ref = float(np.sort(ref)[1])
        assert lam == pytest.approx(lam_ref, rel=1e-4)

    def test_eigenvector_residual(self):
        g = path_graph(40)
        L = graph_laplacian(g)
        lam, v = lanczos_fiedler(L, seed=1)
        resid = np.linalg.norm(L @ v - lam * v)
        assert resid < 1e-5

    def test_path_fiedler_is_monotone(self):
        # the path graph's Fiedler vector is a cosine: sorted by vertex
        g = path_graph(30)
        _, v = lanczos_fiedler(graph_laplacian(g), seed=0)
        s = np.sign(v[-1] - v[0])
        diffs = np.diff(s * v)
        assert (diffs > -1e-8).all()

    def test_orthogonal_to_constants(self, grid16):
        g = Graph.from_matrix(grid16)
        _, v = lanczos_fiedler(graph_laplacian(g), seed=0)
        assert abs(v.sum()) < 1e-8

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            lanczos_fiedler(sp.csr_matrix((1, 1)))


class TestSpectralBisection:
    def test_grid_cut_quality(self):
        g = Graph.from_matrix(grid_laplacian(16, 16))
        res = spectral_bisection(g, seed=0)
        assert res.cut <= 24  # optimal straight cut is 16
        assert abs(res.part_weights[0] - res.part_weights[1]) <= 26

    def test_path_graph_cut_is_one(self):
        g = path_graph(32)
        res = spectral_bisection(g, seed=0)
        assert res.cut == 1

    def test_refinement_not_worse(self):
        g = Graph.from_matrix(grid_laplacian(12, 12))
        raw = spectral_bisection(g, seed=0, refine=False)
        ref = spectral_bisection(g, seed=0, refine=True)
        assert ref.cut <= raw.cut

    def test_comparable_to_multilevel(self):
        from repro.graphs import bisect_graph
        g = Graph.from_matrix(grid_laplacian(16, 16))
        s = spectral_bisection(g, seed=0)
        m = bisect_graph(g, seed=0)
        assert s.cut <= 2.0 * max(m.cut, 1)

    def test_single_vertex(self):
        g = Graph.from_matrix(sp.csr_matrix(np.array([[1.0]])))
        res = spectral_bisection(g, seed=0)
        assert res.cut == 0
