"""Deeper tests of the blocked triangular solver's accounting."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.lu import (
    SupernodalLower,
    blocked_triangular_solve,
    factorize,
    padded_zeros,
    partition_columns,
    solution_pattern,
)
from repro.utils import OpCounter


@pytest.fixture(scope="module")
def problem():
    A = grid_laplacian(12, 12).tocsc()
    f = factorize(A, diag_pivot_thresh=0.0)
    E = sp.random(144, 30, 0.04, random_state=3, format="csr")
    Ep = f.permute_rows(E)
    G = solution_pattern(f.L, Ep)
    snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
    return f, Ep, G, snl


class TestDropTolSemantics:
    def test_relative_per_column(self, problem):
        f, Ep, G, snl = problem
        parts = partition_columns(np.arange(30), 10)
        res = blocked_triangular_solve(snl, Ep, G, parts, drop_tol=0.1)
        X = res.X
        for j in range(30):
            col = X[:, j].toarray().ravel()
            nz = col[col != 0]
            if nz.size:
                assert np.abs(nz).min() >= 0.1 * np.abs(nz).max() - 1e-15

    def test_zero_columns_survive(self, problem):
        f, Ep, G, snl = problem
        # append an all-zero RHS column
        Ez = sp.hstack([Ep, sp.csr_matrix((144, 1))]).tocsr()
        Gz = solution_pattern(f.L, Ez)
        parts = partition_columns(np.arange(31), 8)
        res = blocked_triangular_solve(snl, Ez, Gz, parts)
        assert res.X[:, 30].nnz == 0


class TestAccounting:
    def test_ops_counter_wired(self, problem):
        f, Ep, G, snl = problem
        ops = OpCounter()
        parts = partition_columns(np.arange(30), 10)
        res = blocked_triangular_solve(snl, Ep, G, parts, ops=ops)
        assert ops.get("blocked_trsolve") == res.flops

    def test_per_part_tuples_align(self, problem):
        f, Ep, G, snl = problem
        parts = partition_columns(np.arange(30), 7)
        st = padded_zeros(G, parts)
        assert len(st.per_part_padded) == len(parts)
        assert sum(st.per_part_padded) == st.total_padded
        assert sum(st.per_part_entries) == st.total_block_entries
        for pad, ent in zip(st.per_part_padded, st.per_part_entries):
            assert 0 <= pad <= ent

    def test_fraction_bounds(self, problem):
        f, Ep, G, snl = problem
        for B in (1, 5, 30):
            st = padded_zeros(G, partition_columns(np.arange(30), B))
            assert 0.0 <= st.fraction < 1.0

    def test_n_parts_recorded(self, problem):
        f, Ep, G, snl = problem
        parts = partition_columns(np.arange(30), 9)
        res = blocked_triangular_solve(snl, Ep, G, parts)
        assert res.n_parts == len(parts)

    def test_seconds_positive(self, problem):
        f, Ep, G, snl = problem
        parts = partition_columns(np.arange(30), 15)
        res = blocked_triangular_solve(snl, Ep, G, parts)
        assert res.seconds > 0.0


class TestDimensionErrors:
    def test_factor_rhs_mismatch(self, problem):
        f, Ep, G, snl = problem
        bad = sp.csr_matrix((10, 4))
        with pytest.raises(ValueError):
            blocked_triangular_solve(snl, bad, G, [np.array([0])])
