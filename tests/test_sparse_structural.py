"""Unit tests for structural factorization str(A) = str(M^T M)."""

import numpy as np
import scipy.sparse as sp

from repro.sparse import (
    clique_factor,
    edge_incidence_factor,
    symmetrized,
    verify_structural_factor,
)


class TestEdgeIncidenceFactor:
    def test_valid_on_grid(self, grid8):
        M = edge_incidence_factor(grid8)
        assert verify_structural_factor(grid8, M)

    def test_rows_have_two_pins(self, grid8):
        M = edge_incidence_factor(grid8)
        counts = np.diff(M.indptr)
        assert set(counts.tolist()) <= {1, 2}

    def test_row_count_equals_edges(self, grid8):
        M = edge_incidence_factor(grid8)
        S = symmetrized(grid8)
        n_edges = (S.nnz - grid8.shape[0]) // 2  # full diagonal present
        assert M.shape[0] == n_edges

    def test_isolated_vertex_gets_singleton_row(self):
        A = sp.csr_matrix(np.array([[1.0, 0.5, 0.0],
                                    [0.5, 2.0, 0.0],
                                    [0.0, 0.0, 3.0]]))
        M = edge_incidence_factor(A)
        assert verify_structural_factor(A, M)
        # vertex 2 is isolated -> some row touches only column 2
        cols_per_row = [set(M.indices[M.indptr[i]:M.indptr[i + 1]])
                        for i in range(M.shape[0])]
        assert {2} in cols_per_row

    def test_unsymmetric_input_symmetrized(self, unsym50):
        M = edge_incidence_factor(unsym50)
        assert verify_structural_factor(unsym50, M)


class TestCliqueFactor:
    def test_valid_on_grid(self, grid8):
        Mc = clique_factor(grid8)
        assert verify_structural_factor(grid8, Mc)

    def test_fewer_rows_than_edge_factor_on_dense_blocks(self):
        # a matrix with a dense 6x6 block: cliques collapse it
        n = 12
        A = sp.lil_matrix((n, n))
        A[np.ix_(range(6), range(6))] = 1.0
        A[6:, 6:] = np.eye(6)
        A = sp.csr_matrix(A)
        Me = edge_incidence_factor(A)
        Mc = clique_factor(A)
        assert verify_structural_factor(A, Mc)
        assert Mc.shape[0] < Me.shape[0]

    def test_max_clique_respected(self, grid8):
        Mc = clique_factor(grid8, max_clique=2)
        sizes = np.diff(Mc.indptr)
        assert sizes.max() <= 2
        assert verify_structural_factor(grid8, Mc)


class TestVerify:
    def test_detects_missing_coverage(self, grid8):
        M = edge_incidence_factor(grid8)
        # drop one edge-row: coverage broken
        M2 = M[1:]
        assert not verify_structural_factor(grid8, M2)

    def test_detects_spurious_edges(self):
        A = sp.eye(4).tocsr()
        # row covering columns 0..3 creates off-diagonals absent in A
        M = sp.csr_matrix(np.ones((1, 4)))
        assert not verify_structural_factor(A, M)

    def test_shape_mismatch_false(self, grid8):
        M = sp.csr_matrix((2, 5))
        assert not verify_structural_factor(grid8, M)
