"""Unit tests for the graph substrate (Graph, coarsening, FM, bisection,
separators, NGD)."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.core.dbbd import build_dbbd
from repro.graphs import (
    Graph,
    bisect_graph,
    coarsen,
    compute_gains,
    contract,
    fm_refine_bisection,
    greedy_bfs_bisection,
    heavy_edge_matching,
    maximum_bipartite_matching,
    nested_dissection_partition,
    vertex_separator_from_cut,
)


class TestGraph:
    def test_from_matrix_drops_diagonal(self, grid8):
        g = Graph.from_matrix(grid8)
        for v in range(g.n_vertices):
            assert v not in g.neighbors(v)

    def test_edge_count_grid(self):
        g = Graph.from_matrix(grid_laplacian(4, 4))
        assert g.n_edges == 2 * 4 * 3  # horizontal + vertical edges

    def test_edge_cut_simple(self):
        g = Graph.from_matrix(grid_laplacian(2, 2))
        side = np.array([0, 0, 1, 1])  # cut the two vertical edges
        assert g.edge_cut(side) == 2

    def test_subgraph(self, grid8):
        g = Graph.from_matrix(grid8)
        sub, ids = g.subgraph(np.array([0, 1, 2, 8, 9]))
        assert sub.n_vertices == 5
        # edges preserved among selected vertices: 0-1,1-2,0-8,1-9,8-9
        assert sub.n_edges == 5

    def test_connected_components(self):
        A = sp.block_diag([grid_laplacian(2, 2), grid_laplacian(3, 3)]).tocsr()
        g = Graph.from_matrix(A)
        labels = g.connected_components()
        assert len(set(labels.tolist())) == 2

    def test_vertex_weight_mismatch_rejected(self, grid8):
        with pytest.raises(ValueError):
            Graph.from_matrix(grid8, vertex_weights=np.ones(3, dtype=int))


class TestCoarsening:
    def test_matching_is_symmetric(self, grid16):
        g = Graph.from_matrix(grid16)
        match = heavy_edge_matching(g, seed=0)
        for v in range(g.n_vertices):
            assert match[match[v]] == v

    def test_contract_preserves_total_weight(self, grid16):
        g = Graph.from_matrix(grid16)
        level = contract(g, heavy_edge_matching(g, seed=0))
        assert level.graph.total_vertex_weight == g.total_vertex_weight

    def test_contract_projection_roundtrip(self, grid16):
        g = Graph.from_matrix(grid16)
        level = contract(g, heavy_edge_matching(g, seed=0))
        coarse_side = np.zeros(level.graph.n_vertices, dtype=np.int64)
        coarse_side[::2] = 1
        fine = level.project(coarse_side)
        assert fine.size == g.n_vertices

    def test_coarsen_shrinks(self, grid16):
        g = Graph.from_matrix(grid16)
        levels = coarsen(g, min_vertices=32, seed=0)
        assert levels
        assert levels[-1].graph.n_vertices < g.n_vertices / 2

    def test_cut_preserved_under_projection(self, grid16):
        # edge cut of a projected partition equals the coarse cut
        g = Graph.from_matrix(grid16)
        level = contract(g, heavy_edge_matching(g, seed=1))
        cg = level.graph
        rng = np.random.default_rng(0)
        side = rng.integers(0, 2, cg.n_vertices)
        assert cg.edge_cut(side) == g.edge_cut(level.project(side))

    def test_max_weight_respected(self, grid16):
        g = Graph.from_matrix(grid16)
        match = heavy_edge_matching(g, seed=0, max_weight=1)
        # no pair may exceed weight 1 => nothing matched
        assert np.all(match == np.arange(g.n_vertices))


class TestFM:
    def test_gains_definition(self):
        g = Graph.from_matrix(grid_laplacian(2, 2))
        side = np.array([0, 1, 0, 1])
        gains = compute_gains(g, side)
        # vertex 0 neighbours: 1 (other side), 2 (same side) -> gain 0
        assert gains[0] == 0

    def test_refinement_improves_random_partition(self, grid16):
        g = Graph.from_matrix(grid16)
        rng = np.random.default_rng(0)
        side = rng.integers(0, 2, g.n_vertices)
        cut0 = g.edge_cut(side)
        refined, cut = fm_refine_bisection(
            g, side, max_part_weight=0.55 * g.total_vertex_weight)
        assert cut < cut0
        assert cut == g.edge_cut(refined)

    def test_balance_respected(self, grid16):
        g = Graph.from_matrix(grid16)
        rng = np.random.default_rng(1)
        side = rng.integers(0, 2, g.n_vertices)
        cap = 0.55 * g.total_vertex_weight
        refined, _ = fm_refine_bisection(g, side, max_part_weight=cap)
        w = np.zeros(2)
        np.add.at(w, refined, g.vertex_weights)
        assert w.max() <= cap

    def test_wrong_side_length_rejected(self, grid8):
        g = Graph.from_matrix(grid8)
        with pytest.raises(ValueError):
            fm_refine_bisection(g, np.zeros(3, dtype=int),
                                max_part_weight=10)


class TestBisection:
    def test_grid_cut_near_optimal(self):
        g = Graph.from_matrix(grid_laplacian(16, 16))
        res = bisect_graph(g, epsilon=0.05, seed=0, n_trials=4)
        assert res.cut <= 24  # optimal is 16
        assert res.imbalance <= 0.05 + 1e-9

    def test_asymmetric_target(self):
        g = Graph.from_matrix(grid_laplacian(12, 12))
        res = bisect_graph(g, epsilon=0.08, target0=1 / 3, seed=0)
        frac = res.part_weights[0] / sum(res.part_weights)
        assert abs(frac - 1 / 3) < 0.1

    def test_greedy_bfs_reaches_target(self, grid16):
        g = Graph.from_matrix(grid16)
        side = greedy_bfs_bisection(g, 0.5, seed=0)
        frac = (side == 0).sum() / g.n_vertices
        assert 0.3 < frac < 0.7

    def test_deterministic_given_seed(self, grid16):
        g = Graph.from_matrix(grid16)
        a = bisect_graph(g, seed=7)
        b = bisect_graph(g, seed=7)
        np.testing.assert_array_equal(a.side, b.side)


class TestBipartiteMatching:
    def test_perfect_matching(self):
        adj = [[0], [1], [2]]
        ml, mr = maximum_bipartite_matching(adj, 3)
        assert np.all(ml >= 0) and np.all(mr >= 0)

    def test_koenig_size(self):
        # path a0-b0-a1: max matching 1
        adj = [[0], [0]]
        ml, _ = maximum_bipartite_matching(adj, 1)
        assert (ml >= 0).sum() == 1

    def test_augmenting_path_needed(self):
        # greedy could match a0-b0 leaving a1 unmatched; augmenting fixes
        adj = [[0, 1], [0]]
        ml, _ = maximum_bipartite_matching(adj, 2)
        assert (ml >= 0).sum() == 2


class TestVertexSeparator:
    def test_separates(self, grid16):
        g = Graph.from_matrix(grid16)
        res = bisect_graph(g, seed=0)
        vs = vertex_separator_from_cut(g, res.side)
        # no edge between side0 and side1
        in0 = np.zeros(g.n_vertices, dtype=bool)
        in0[vs.side0] = True
        in1 = np.zeros(g.n_vertices, dtype=bool)
        in1[vs.side1] = True
        for v in vs.side0:
            assert not np.any(in1[g.neighbors(v)])

    def test_separator_not_larger_than_boundary(self):
        g = Graph.from_matrix(grid_laplacian(16, 16))
        res = bisect_graph(g, seed=0)
        vs = vertex_separator_from_cut(g, res.side)
        assert vs.size <= res.cut  # König: cover <= edges

    def test_empty_cut(self):
        A = sp.block_diag([grid_laplacian(3, 3), grid_laplacian(3, 3)]).tocsr()
        g = Graph.from_matrix(A)
        side = np.array([0] * 9 + [1] * 9)
        vs = vertex_separator_from_cut(g, side)
        assert vs.size == 0

    def test_partition_of_vertices(self, grid16):
        g = Graph.from_matrix(grid16)
        res = bisect_graph(g, seed=3)
        vs = vertex_separator_from_cut(g, res.side)
        all_ids = np.concatenate([vs.separator, vs.side0, vs.side1])
        assert sorted(all_ids.tolist()) == list(range(g.n_vertices))


class TestNGD:
    def test_produces_k_parts(self, grid16):
        r = nested_dissection_partition(grid16, 8, seed=0)
        sizes = r.subdomain_sizes()
        assert sizes.size == 8 and np.all(sizes > 0)

    def test_dbbd_valid(self, grid16):
        r = nested_dissection_partition(grid16, 4, seed=0)
        dbbd = build_dbbd(grid16, r.part, 4)  # validates internally
        assert dbbd.separator_size == r.separator_size

    def test_non_power_of_two(self, grid16):
        r = nested_dissection_partition(grid16, 6, seed=1)
        assert np.all(r.subdomain_sizes() > 0)

    def test_k1_no_separator(self, grid8):
        r = nested_dissection_partition(grid8, 1, seed=0)
        assert r.separator_size == 0
        assert np.all(r.part == 0)

    def test_separator_levels_recorded(self, grid16):
        r = nested_dissection_partition(grid16, 4, seed=0)
        assert len(r.levels) >= 2
        assert sum(l.size for l in r.levels) == r.separator_size

    def test_separator_reasonable_size(self):
        A = grid_laplacian(20, 20)
        r = nested_dissection_partition(A, 8, seed=0)
        assert r.separator_size < 0.25 * A.shape[0]
