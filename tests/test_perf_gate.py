"""Tests for the perf-regression gate and its CLI."""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.gate import compare_metrics

REPO = Path(__file__).resolve().parent.parent


def metrics(wall_a=0.10, wall_b=0.20, ops=1000, total=0.30):
    return {
        "schema_version": 1,
        "stages": {
            "stage_a": {"wall_s": wall_a, "calls": 1,
                        "counters": {"ops": ops}},
            "stage_b": {"wall_s": wall_b, "calls": 2, "counters": {}},
        },
        "totals": {"wall_s": total, "counters": {"ops": ops}},
    }


class TestCompareMetrics:
    def test_identical_metrics_pass(self):
        report = compare_metrics(metrics(), metrics())
        assert report.ok
        assert report.regressions == []
        assert report.describe().endswith("perf gate: PASS")

    def test_within_tolerance_passes(self):
        cur = metrics(wall_a=0.13, wall_b=0.25, total=0.38)  # < 1.5x
        assert compare_metrics(cur, metrics()).ok

    def test_wall_time_regression_fails(self):
        cur = metrics(wall_a=0.35)  # 3.5x the 0.10 baseline
        report = compare_metrics(cur, metrics())
        assert not report.ok
        assert any(c.stage == "stage_a" and c.metric == "wall_s"
                   for c in report.regressions)

    def test_baseline_tightened_by_half_fails(self):
        # the acceptance scenario: same run, baseline halved -> ratio 2.0
        cur = metrics()
        tight = copy.deepcopy(metrics())
        for st in tight["stages"].values():
            st["wall_s"] /= 2.0
        tight["totals"]["wall_s"] /= 2.0
        report = compare_metrics(cur, tight)
        assert not report.ok

    def test_counter_regression_uses_tight_tolerance(self):
        cur = metrics(ops=1200)  # 1.2x > ops_tol 1.10
        report = compare_metrics(cur, metrics())
        assert any(c.metric == "ops" and c.regressed
                   for c in report.regressions)
        # but a 20% wall slowdown alone is fine at time_tol=1.5
        assert compare_metrics(metrics(wall_a=0.12), metrics()).ok

    def test_noise_floor_skips_tiny_stages(self):
        base = metrics(wall_a=0.001)
        cur = metrics(wall_a=0.004)  # 4x, but under min_time_s
        report = compare_metrics(cur, base)
        skipped = [c for c in report.checks
                   if c.stage == "stage_a" and c.metric == "wall_s"]
        assert skipped[0].skipped and not skipped[0].regressed
        assert report.ok

    def test_missing_stage_fails(self):
        cur = metrics()
        del cur["stages"]["stage_b"]
        report = compare_metrics(cur, metrics())
        assert not report.ok
        assert report.missing_stages == ["stage_b"]
        assert "stage_b" in report.describe()

    def test_extra_current_stage_fails(self):
        # a stage the baseline has never seen means the pipeline changed
        # shape: fail until the baseline is re-recorded deliberately
        cur = metrics()
        cur["stages"]["new_stage"] = {"wall_s": 9.9, "calls": 1,
                                      "counters": {}}
        report = compare_metrics(cur, metrics())
        assert not report.ok
        assert report.extra_stages == ["new_stage"]
        assert "new_stage" in report.describe()
        assert "not in baseline" in report.describe()

    def test_noise_counters_are_not_gated(self):
        base = metrics()
        base["stages"]["stage_a"]["counters"]["noise:model_skew_x"] = 0.001
        cur = metrics()
        cur["stages"]["stage_a"]["counters"]["noise:model_skew_x"] = 42.0
        report = compare_metrics(cur, base)
        assert report.ok
        assert not any(c.metric.startswith("noise:") for c in report.checks)

    def test_malformed_stage_raises_clear_error(self):
        cur = metrics()
        del cur["stages"]["stage_a"]["wall_s"]
        with pytest.raises(ValueError, match="stage 'stage_a'.*wall_s"):
            compare_metrics(cur, metrics())
        base = metrics()
        base["stages"]["stage_b"]["wall_s"] = None
        with pytest.raises(ValueError, match="baseline"):
            compare_metrics(metrics(), base)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_metrics(metrics(), metrics(), time_tol=0)


class TestAbftBudget:
    def _with_abft(self, m, wall):
        m = copy.deepcopy(m)
        m["stages"]["abft_verify"] = {"wall_s": wall, "calls": 3,
                                      "counters": {"sdc_checks": 3}}
        return m

    def test_under_budget_passes(self):
        cur = self._with_abft(metrics(), 0.02)   # 6.7% of 0.30
        base = self._with_abft(metrics(), 0.02)
        report = compare_metrics(cur, base)
        checks = {(c.stage, c.metric): c for c in report.checks}
        assert ("abft_verify", "overhead_frac") in checks
        assert report.ok

    def test_over_budget_fails(self):
        cur = self._with_abft(metrics(), 0.06)   # 20% of 0.30
        base = self._with_abft(metrics(), 0.06)
        report = compare_metrics(cur, base)
        bad = [c for c in report.regressions
               if (c.stage, c.metric) == ("abft_verify", "overhead_frac")]
        assert bad and not report.ok

    def test_budget_zero_disables_bound(self):
        cur = self._with_abft(metrics(), 0.06)
        base = self._with_abft(metrics(), 0.06)
        assert compare_metrics(cur, base, abft_budget=0.0).ok

    def test_no_abft_stage_no_check(self):
        report = compare_metrics(metrics(), metrics())
        assert not any(c.metric == "overhead_frac" for c in report.checks)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            compare_metrics(metrics(), metrics(), abft_budget=-0.1)

    def test_cli_abft_budget_flag(self, tmp_path):
        cur = self._with_abft(metrics(), 0.06)
        base = self._with_abft(metrics(), 0.06)
        cli = TestPerfGateCli()
        proc = cli._run(tmp_path, cur, base)
        assert proc.returncode == 1
        proc = cli._run(tmp_path, cur, base, "--abft-budget", "0.5")
        assert proc.returncode == 0, proc.stdout


class TestPerfGateCli:
    def _run(self, tmp_path, cur, base, *extra):
        cur_p = tmp_path / "current.json"
        base_p = tmp_path / "baseline.json"
        cur_p.write_text(json.dumps(cur))
        base_p.write_text(json.dumps(base))
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "perf_gate.py"),
             str(cur_p), str(base_p), *extra],
            capture_output=True, text=True)

    def test_exit_zero_on_pass(self, tmp_path):
        proc = self._run(tmp_path, metrics(), metrics())
        assert proc.returncode == 0, proc.stderr
        assert "perf gate: PASS" in proc.stdout

    def test_exit_nonzero_on_regression(self, tmp_path):
        proc = self._run(tmp_path, metrics(wall_a=0.50), metrics())
        assert proc.returncode == 1
        assert "perf gate: FAIL" in proc.stdout

    def test_tolerance_flags_are_honored(self, tmp_path):
        proc = self._run(tmp_path, metrics(wall_a=0.50), metrics(),
                         "--time-tol", "10.0")
        assert proc.returncode == 0, proc.stdout


def test_committed_baseline_is_well_formed():
    """The baseline the CI perf-smoke job diffs against stays valid."""
    path = REPO / "benchmarks" / "baselines" / "smoke.json"
    base = json.loads(path.read_text())
    assert base["schema_version"] == 1
    for required in ("partition", "factor_subdomain", "interface_solve",
                     "schur_assemble", "factor_schur", "gmres", "solve",
                     "abft_verify"):
        assert required in base["stages"], required
    for st in base["stages"].values():
        assert st["wall_s"] >= 0 and st["calls"] >= 1
    assert base["meta"]["converged"] is True
