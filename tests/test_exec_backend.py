"""Tests for the pluggable execution backends of repro.parallel.exec:
ordering/failure contracts, spec parsing, crash recovery, orphan
cleanup, and error pickling across the process boundary."""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.parallel.exec import (
    ENV_BACKEND,
    ENV_WORKERS,
    Executor,
    ProcessBackend,
    SerialBackend,
    TaskOutcome,
    ThreadBackend,
    backend_names,
    get_backend,
    in_worker,
    resolve_backend,
)
from repro.resilience.errors import (
    InjectedFault,
    SingularSubdomainError,
    SolverError,
    WorkerCrashError,
)


# module-level so the process backend can pickle them by reference
def _square(x):
    return x * x


def _sleep_then(payload):
    delay, value = payload
    time.sleep(delay)
    return value


def _raise_solver_error(x):
    raise SingularSubdomainError("pivot vanished", column=x, pivot=0.0,
                                 subdomain=x)


def _die(x):
    os._exit(13)


def _die_if_two(x):
    if x == 2:
        os._exit(13)
    return x * 10


def _pid(_):
    return os.getpid()


def _in_worker_flag(_):
    return in_worker()


BACKENDS = [SerialBackend(), ThreadBackend(workers=2),
            ProcessBackend(workers=2)]


@pytest.fixture(scope="module", autouse=True)
def _close_backends():
    yield
    for b in BACKENDS:
        b.close()


class TestMapContract:
    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_results_in_submission_order(self, backend):
        out = backend.map(_square, list(range(8)))
        assert [o.index for o in out] == list(range(8))
        assert [o.value for o in out] == [i * i for i in range(8)]
        assert all(o.ok for o in out)

    def test_order_survives_out_of_order_completion(self):
        backend = ThreadBackend(workers=4)
        try:
            # later tasks finish first; results must still come back in
            # submission order
            payloads = [(0.05, "slow"), (0.0, "fast1"), (0.0, "fast2")]
            out = backend.map(_sleep_then, payloads)
            assert [o.value for o in out] == ["slow", "fast1", "fast2"]
        finally:
            backend.close()

    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_task_exception_is_captured_not_raised(self, backend):
        out = backend.map(_raise_solver_error, [7])
        assert not out[0].ok and out[0].value is None
        err = out[0].error
        assert isinstance(err, SingularSubdomainError)
        assert err.column == 7 and err.subdomain == 7

    def test_worker_flag_only_set_in_process_workers(self):
        assert not in_worker()
        assert SerialBackend().map(_in_worker_flag, [0])[0].value is False
        backend = BACKENDS[2]
        assert backend.map(_in_worker_flag, [0])[0].value is True

    def test_process_backend_uses_other_processes(self):
        backend = BACKENDS[2]
        pids = {o.value for o in backend.map(_pid, range(4))}
        assert os.getpid() not in pids


class TestCrashRecovery:
    def test_crash_surfaces_as_worker_crash_error(self):
        backend = ProcessBackend(workers=2)
        try:
            out = backend.map(_die, [0])
            assert isinstance(out[0].error, WorkerCrashError)
            assert out[0].error.backend == "process"
        finally:
            backend.close()

    def test_pool_rebuilds_after_crash_and_leaves_no_orphans(self):
        backend = ProcessBackend(workers=2)
        try:
            first = {o.value for o in backend.map(_pid, range(4))}
            out = backend.map(_die_if_two, range(4))
            crashed = [o for o in out if not o.ok]
            assert crashed and all(isinstance(o.error, WorkerCrashError)
                                   for o in crashed)
            # old pool was disposed: its workers are gone...
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and any(
                    _alive(pid) for pid in first):
                time.sleep(0.05)
            assert not any(_alive(pid) for pid in first)
            # ...and the next map transparently gets a fresh pool
            again = backend.map(_square, [3, 4])
            assert [o.value for o in again] == [9, 16]
        finally:
            backend.close()

    def test_close_terminates_workers(self):
        backend = ProcessBackend(workers=2)
        pids = {o.value for o in backend.map(_pid, range(4))}
        backend.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and any(_alive(p) for p in pids):
            time.sleep(0.05)
        assert not any(_alive(p) for p in pids)

    def test_keyboard_interrupt_cancels_and_terminates(self):
        # unit-level check of the BaseException path: pending futures are
        # cancelled and the pool torn down before the interrupt re-raises
        backend = ProcessBackend(workers=2)
        fake = _FakePool()
        backend._pool = fake
        with pytest.raises(KeyboardInterrupt):
            backend.map(_square, [1, 2, 3])
        assert all(f.cancelled for f in fake.futures[1:])
        assert fake.shutdown_called
        assert backend._pool is None  # next map builds a fresh pool


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (OSError, ProcessLookupError):
        return False
    return True


class _FakeFuture:
    def __init__(self, interrupt: bool):
        self.interrupt = interrupt
        self.cancelled = False

    def result(self):
        if self.interrupt:
            raise KeyboardInterrupt
        return None, None, 0.0, os.getpid()

    def cancel(self):
        self.cancelled = True
        return True


class _FakePool:
    def __init__(self):
        self.futures: list[_FakeFuture] = []
        self.shutdown_called = False

    def submit(self, fn, *args):
        f = _FakeFuture(interrupt=not self.futures)
        self.futures.append(f)
        return f

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_called = True


class TestErrorPickling:
    @pytest.mark.parametrize("err", [
        SolverError("base failure", stage="LU(D)", subdomain=3),
        SingularSubdomainError("zero pivot", column=17, pivot=1e-30,
                               subdomain=2),
        InjectedFault("chaos", kind="permanent", stage="Comp(S)",
                      subdomain=1, recovery_cost_s=0.25),
        WorkerCrashError("worker died", backend="process", subdomain=0),
    ], ids=lambda e: type(e).__name__)
    def test_round_trip_preserves_context(self, err):
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is type(err)
        assert back.args == err.args
        assert back.__dict__ == err.__dict__
        assert str(back) == str(err)

    def test_round_trip_through_process_backend(self):
        out = BACKENDS[2].map(_raise_solver_error, [5])
        err = out[0].error
        assert isinstance(err, SingularSubdomainError)
        assert (err.column, err.pivot, err.stage) == (5, 0.0, "LU(D)")


class TestSelection:
    def test_backend_names(self):
        assert backend_names() == ("process", "serial", "thread")

    def test_spec_with_worker_count(self):
        b = get_backend("process:3", fresh=True)
        try:
            assert isinstance(b, ProcessBackend) and b.workers == 3
        finally:
            b.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("mpi")

    def test_shared_instances_are_cached(self):
        assert get_backend("thread", workers=2) is \
            get_backend("thread", workers=2)
        assert get_backend("thread", workers=2) is not \
            get_backend("thread", workers=3)

    def test_fresh_instance_is_private(self):
        b = get_backend("serial", fresh=True)
        assert b is not get_backend("serial")

    def test_resolve_passes_instances_through(self):
        b = SerialBackend()
        assert resolve_backend(b) is b

    def test_resolve_spec_string(self):
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("thread:2").workers == 2

    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None).name == "serial"
        monkeypatch.setenv(ENV_BACKEND, "thread")
        monkeypatch.setenv(ENV_WORKERS, "2")
        b = resolve_backend(None)
        assert b.name == "thread" and b.workers == 2

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ThreadBackend(workers=0)

    def test_serial_backend_is_inline_singleton_width(self):
        b = SerialBackend(workers=8)
        assert b.inline and b.workers == 1
        assert isinstance(b, Executor)

    def test_outcome_ok_property(self):
        assert TaskOutcome(index=0, value=1).ok
        assert not TaskOutcome(index=0, error=RuntimeError()).ok
