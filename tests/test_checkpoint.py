"""Checkpoint/restart + deadline/speculation tests: shard integrity,
identity fingerprints, resume parity across backends, the SIGTERM
snapshot path, straggler mitigation, seeded backoff, and env
validation."""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from tests.conftest import grid_laplacian

from repro.obs import Tracer
from repro.parallel.exec import (
    ProcessBackend,
    SpeculationPolicy,
    ThreadBackend,
    get_backend,
    resolve_backend,
)
from repro.resilience.checkpoint import (
    MANIFEST_NAME,
    CheckpointError,
    CheckpointManager,
    CheckpointPolicy,
    config_fingerprint,
    load_checkpoint,
    matrix_fingerprint,
    pack_sparse,
    truncate_checkpoint,
    unpack_sparse,
)
from repro.resilience.retry import RetryPolicy
from repro.solver import PDSLin, PDSLinConfig
from repro.solver.partasks import (
    ENV_CRASH_SUBDOMAIN,
    ENV_STRAGGLE_S,
    ENV_STRAGGLE_SUBDOMAIN,
    validate_chaos_env,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _cfg(**kw) -> PDSLinConfig:
    kw.setdefault("k", 4)
    kw.setdefault("block_size", 16)
    kw.setdefault("seed", 0)
    return PDSLinConfig(**kw)


def _rhs(A, seed=0):
    return np.random.default_rng(seed).standard_normal(A.shape[0])


def _bound_manager(tmp_path, **policy_kw) -> CheckpointManager:
    m = CheckpointManager(tmp_path,
                          policy=CheckpointPolicy(**policy_kw))
    m.bind(matrix_fp="a" * 32, config_fp="b" * 32, k=2, seed=0)
    return m


# ---------------------------------------------------------------------------
# shard packing + manager mechanics
# ---------------------------------------------------------------------------

class TestShardFormat:
    def test_sparse_round_trip(self):
        A = grid_laplacian(8, 8).tocsr()
        out = {}
        pack_sparse(out, "A", A)
        buf = io.BytesIO()
        np.savez(buf, **out)
        buf.seek(0)
        B = unpack_sparse(np.load(buf), "A").tocsr()
        assert (A != B).nnz == 0
        assert A.dtype == B.dtype

    def test_fingerprints_sensitive_to_content(self):
        A = grid_laplacian(8, 8)
        B = A.copy()
        B[0, 0] += 1e-12
        assert matrix_fingerprint(A) == matrix_fingerprint(A.copy())
        assert matrix_fingerprint(A) != matrix_fingerprint(B.tocsr())
        assert config_fingerprint(_cfg()) == config_fingerprint(_cfg())
        assert config_fingerprint(_cfg()) != config_fingerprint(
            _cfg(drop_schur=0.123))

    def test_manager_requires_bind(self, tmp_path):
        m = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError, match="bind"):
            m.register_partition(np.zeros(4, dtype=np.int64))

    def test_registration_is_idempotent(self, tmp_path):
        m = _bound_manager(tmp_path)
        m.register_subdomain(0, {"x": np.arange(3.0)})
        # already on disk: the thunk must never be evaluated
        m.register_subdomain(0, lambda: pytest.fail("thunk evaluated"))
        st = load_checkpoint(tmp_path)
        assert st.subdomains_done == [0]

    def test_every_k_policy_batches_snapshots(self, tmp_path):
        m = _bound_manager(tmp_path, every=2)
        m.register_subdomain(0, {"x": np.arange(3.0)})
        assert not (tmp_path / MANIFEST_NAME).exists()
        m.register_subdomain(1, {"x": np.arange(4.0)})
        assert (tmp_path / MANIFEST_NAME).exists()
        assert load_checkpoint(tmp_path).subdomains_done == [0, 1]


# ---------------------------------------------------------------------------
# integrity + identity validation
# ---------------------------------------------------------------------------

class TestIntegrity:
    def _write_one(self, tmp_path):
        m = _bound_manager(tmp_path)
        m.register_partition(np.zeros(4, dtype=np.int64))
        m.register_subdomain(0, {"x": np.arange(5.0)})
        m.snapshot()

    def test_corrupt_shard_detected(self, tmp_path):
        self._write_one(tmp_path)
        shard = tmp_path / "sub_0000.npz"
        raw = bytearray(shard.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        shard.write_bytes(bytes(raw))
        st = load_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="integrity"):
            st.load_shard("sub_0000")

    def test_missing_shard_detected(self, tmp_path):
        self._write_one(tmp_path)
        st = load_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="no shard"):
            st.load_shard("sub_0001")

    def test_truncated_manifest_detected(self, tmp_path):
        self._write_one(tmp_path)
        mpath = tmp_path / MANIFEST_NAME
        mpath.write_text(mpath.read_text()[:40])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(tmp_path)

    def test_missing_manifest_key_detected(self, tmp_path):
        self._write_one(tmp_path)
        mpath = tmp_path / MANIFEST_NAME
        manifest = json.loads(mpath.read_text())
        del manifest["shards"]
        mpath.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="missing 'shards'"):
            load_checkpoint(tmp_path)

    def test_version_mismatch_detected(self, tmp_path):
        self._write_one(tmp_path)
        mpath = tmp_path / MANIFEST_NAME
        manifest = json.loads(mpath.read_text())
        manifest["version"] = 99
        mpath.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(tmp_path)

    def test_identity_mismatches_refused(self, tmp_path):
        self._write_one(tmp_path)
        load_checkpoint(tmp_path, matrix_fp="a" * 32,
                        config_fp="b" * 32, k=2)  # the right identity
        with pytest.raises(CheckpointError, match="different matrix"):
            load_checkpoint(tmp_path, matrix_fp="f" * 32)
        with pytest.raises(CheckpointError, match="different solver config"):
            load_checkpoint(tmp_path, config_fp="f" * 32)
        with pytest.raises(CheckpointError, match="k=3"):
            load_checkpoint(tmp_path, k=3)

    def test_resume_with_wrong_matrix_refused(self, tmp_path, grid16):
        b = _rhs(grid16)
        PDSLin(grid16, _cfg(), checkpoint=tmp_path).solve(b)
        other = grid_laplacian(16, 16, diag=5.0)
        with pytest.raises(CheckpointError, match="different matrix"):
            PDSLin(other, _cfg(), resume=tmp_path).solve(_rhs(other))


# ---------------------------------------------------------------------------
# end-to-end checkpoint + resume parity
# ---------------------------------------------------------------------------

class TestResumeParity:
    def test_checkpointed_solve_writes_full_manifest(self, tmp_path,
                                                     grid16):
        tracer = Tracer()
        res = PDSLin(grid16, _cfg(), tracer=tracer,
                     checkpoint=tmp_path).solve(_rhs(grid16))
        assert res.converged
        st = load_checkpoint(tmp_path)
        assert st.partition_done
        assert st.subdomains_done == [0, 1, 2, 3]
        assert st.schur_done
        assert tracer.counters["checkpoint_shards_written"] == 6
        # checkpointing never changes the answer
        ref = PDSLin(grid16, _cfg()).solve(_rhs(grid16))
        assert res.x.tobytes() == ref.x.tobytes()

    @pytest.mark.parametrize("backend", ["serial", "thread:2", "process:2"])
    def test_truncated_resume_bit_identical(self, tmp_path, grid16,
                                            backend):
        b = _rhs(grid16)
        ref = PDSLin(grid16, _cfg(), backend="serial").solve(b)
        PDSLin(grid16, _cfg(), backend=backend,
               checkpoint=tmp_path).solve(b)
        truncate_checkpoint(tmp_path, 2)
        st = load_checkpoint(tmp_path)
        assert st.subdomains_done == [0, 1]
        assert not st.schur_done
        tracer = Tracer()
        res = PDSLin(grid16, _cfg(), backend=backend, resume=tmp_path,
                     checkpoint=tmp_path, tracer=tracer).solve(b)
        assert res.x.tobytes() == ref.x.tobytes()
        assert res.iterations == ref.iterations
        # only the unfinished half was refactored
        assert tracer.counters["checkpoint_subdomains_restored"] == 2
        assert tracer.span_count("factor_subdomain") == 2
        # accuracy certificate survives the restore byte for byte
        assert (res.accuracy is None) == (ref.accuracy is None)
        if res.accuracy is not None:
            assert res.accuracy.to_dict() == ref.accuracy.to_dict()

    def test_full_resume_refactors_nothing(self, tmp_path, grid16):
        b = _rhs(grid16)
        ref = PDSLin(grid16, _cfg(), checkpoint=tmp_path).solve(b)
        tracer = Tracer()
        res = PDSLin(grid16, _cfg(), resume=tmp_path, tracer=tracer,
                     checkpoint=tmp_path).solve(b)
        assert res.x.tobytes() == ref.x.tobytes()
        assert tracer.counters["checkpoint_subdomains_restored"] == 4
        assert tracer.counters["checkpoint_schur_restored"] == 1
        assert tracer.counters["checkpoint_partition_restored"] == 1
        assert tracer.span_count("factor_subdomain") == 0

    def test_update_matrix_invalidates_resume_state(self, tmp_path,
                                                    grid16):
        b = _rhs(grid16)
        solver = PDSLin(grid16, _cfg(), checkpoint=tmp_path)
        solver.solve(b)
        other = grid_laplacian(16, 16, diag=5.0)
        solver.update_matrix(other)
        res = solver.solve(_rhs(other))
        ref = PDSLin(other, _cfg()).solve(_rhs(other))
        assert res.x.tobytes() == ref.x.tobytes()
        # the checkpoint now carries the new matrix's identity
        load_checkpoint(tmp_path, matrix_fp=matrix_fingerprint(other))


# ---------------------------------------------------------------------------
# the SIGTERM snapshot path
# ---------------------------------------------------------------------------

_SIGTERM_SCRIPT = """
import os, signal
import numpy as np
from repro.resilience.checkpoint import CheckpointManager, CheckpointPolicy
m = CheckpointManager({directory!r}, policy=CheckpointPolicy(every=1000))
m.bind(matrix_fp="a" * 32, config_fp="b" * 32, k=2, seed=0)
m.register_partition(np.zeros(4, dtype=np.int64))
m.register_subdomain(0, {{"x": np.arange(3.0)}})
m.arm()
os.kill(os.getpid(), signal.SIGTERM)
raise SystemExit(3)  # unreachable: the re-delivered signal kills us
"""


class TestSigtermSnapshot:
    def test_armed_handler_snapshots_then_dies_by_signal(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-c",
             _SIGTERM_SCRIPT.format(directory=str(tmp_path))],
            env=env, capture_output=True, timeout=120)
        assert proc.returncode == -signal.SIGTERM, proc.stderr.decode()
        # the pending (never count-flushed) work hit disk on the way out
        st = load_checkpoint(tmp_path)
        assert st.partition_done
        assert st.subdomains_done == [0]

    @pytest.mark.slow
    def test_restart_smoke_kill_and_resume(self, tmp_path):
        from repro.resilience.restart_smoke import run_restart_smoke
        rec = run_restart_smoke(backend="serial",
                                directory=str(tmp_path / "ckpt"))
        assert rec["ok"], rec


# ---------------------------------------------------------------------------
# deadlines + speculation
# ---------------------------------------------------------------------------

def _sleep_payload(payload):
    time.sleep(payload)
    return payload


class TestDeadlines:
    def test_deadline_times_out_stragglers_only(self):
        backend = ThreadBackend(workers=2)
        try:
            out = backend.map(_sleep_payload, [0.01, 0.5],
                              deadline_s=0.15)
        finally:
            backend.close()
        assert out[0].ok and out[0].value == 0.01
        assert out[1].timed_out and not out[1].ok
        assert out[1].value is None

    def test_speculation_duplicates_stragglers(self):
        backend = ThreadBackend(workers=2)
        policy = SpeculationPolicy(min_threshold_s=0.05, poll_s=0.01)
        try:
            out = backend.map(_sleep_payload, [0.01, 0.01, 0.01, 0.4],
                              speculation=policy)
        finally:
            backend.close()
        assert [o.value for o in out] == [0.01, 0.01, 0.01, 0.4]
        assert all(o.ok for o in out)
        assert sum(o.duplicates for o in out) >= 1

    def test_speculation_policy_validation(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(quantile=1.5)
        with pytest.raises(ValueError):
            SpeculationPolicy(factor=0.5)
        with pytest.raises(ValueError):
            SpeculationPolicy(max_duplicates=0)
        assert SpeculationPolicy().threshold_s([0.01]) is None
        assert SpeculationPolicy().threshold_s([0.01, 0.01]) == 0.05

    @pytest.mark.slow
    def test_straggler_smoke_drill(self):
        from repro.resilience.chaos import run_straggler_smoke
        run = run_straggler_smoke()
        assert run.ok, run.checks


# ---------------------------------------------------------------------------
# seeded backoff
# ---------------------------------------------------------------------------

class TestBackoff:
    def test_disabled_by_default(self):
        p = RetryPolicy()
        assert p.backoff_s(2) == 0.0

    def test_first_attempt_never_sleeps(self):
        p = RetryPolicy(backoff_base_s=1.0)
        assert p.backoff_s(1) == 0.0

    def test_deterministic_in_seed_and_attempt(self):
        a = RetryPolicy(backoff_base_s=0.1, seed=7)
        b = RetryPolicy(backoff_base_s=0.1, seed=7)
        c = RetryPolicy(backoff_base_s=0.1, seed=8)
        seq_a = [a.backoff_s(n) for n in range(2, 6)]
        seq_b = [b.backoff_s(n) for n in range(2, 6)]
        seq_c = [c.backoff_s(n) for n in range(2, 6)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_capped_and_jitter_bounded(self):
        p = RetryPolicy(backoff_base_s=10.0, backoff_factor=10.0,
                        backoff_max_s=5.0, backoff_jitter=0.0)
        assert p.backoff_s(5) == 5.0
        q = RetryPolicy(backoff_base_s=1.0, backoff_factor=1.0,
                        backoff_jitter=0.5)
        for n in range(2, 8):
            assert 0.5 <= q.backoff_s(n) <= 1.0


# ---------------------------------------------------------------------------
# env validation + shutdown escalation
# ---------------------------------------------------------------------------

def _ignore_sigterm_and_report_pid(_):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    return os.getpid()


class TestEnvValidation:
    def test_workers_must_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            get_backend("thread", fresh=True)
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            get_backend("thread", fresh=True)

    def test_mp_start_must_be_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "bogus")
        with pytest.raises(ValueError, match="REPRO_MP_START"):
            ProcessBackend(workers=1)

    def test_backend_env_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend(None)

    @pytest.mark.parametrize("var", [ENV_CRASH_SUBDOMAIN,
                                     ENV_STRAGGLE_SUBDOMAIN])
    def test_chaos_subdomain_vars_validated(self, monkeypatch, var):
        monkeypatch.setenv(var, "notanint")
        with pytest.raises(ValueError, match=var):
            validate_chaos_env()
        monkeypatch.setenv(var, "-1")
        with pytest.raises(ValueError, match=var):
            validate_chaos_env()

    def test_chaos_straggle_seconds_validated(self, monkeypatch):
        monkeypatch.setenv(ENV_STRAGGLE_S, "fast")
        with pytest.raises(ValueError, match=ENV_STRAGGLE_S):
            validate_chaos_env()
        monkeypatch.setenv(ENV_STRAGGLE_S, "-1")
        with pytest.raises(ValueError, match=ENV_STRAGGLE_S):
            validate_chaos_env()


class TestShutdownEscalation:
    def test_kill_escalation_reaps_sigterm_immune_worker(self,
                                                         monkeypatch):
        backend = ProcessBackend(workers=1)
        monkeypatch.setattr(backend, "_join_grace_s", 0.25)
        [out] = backend.map(_ignore_sigterm_and_report_pid, [None])
        pid = out.value
        assert pid and pid != os.getpid()
        backend.close()
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
