"""Tests for the silent-data-corruption defense (repro.resilience.abft).

Covers the checksum primitives (factor and matrix column sums, the
passive per-solve audit), the seeded bit-flip injector and its
environment seams, tolerance behaviour on the ill-conditioned
``ROBUST_SUITE``, the Krylov drift audits, the sealed-transport layer,
and the end-to-end detection -> recovery drills that CI runs via
``python -m repro.resilience.chaos --scenario bitflip``.
"""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.lu import factorize
from repro.matrices import generate, generate_robust, robust_suite_names
from repro.obs.tracer import Tracer
from repro.parallel.exec import (
    ENV_TRANSPORT_CHECKSUM,
    ProcessBackend,
    SerialBackend,
    transport_checksum_enabled,
)
from repro.resilience import abft
from repro.solver import PDSLin, PDSLinConfig
from repro.solver.bicgstab import bicgstab
from repro.solver.gmres import gmres
from repro.solver.partasks import validate_chaos_env

SEAM_VARS = (abft.ENV_BITFLIP_TARGET, abft.ENV_BITFLIP_COUNT,
             abft.ENV_BITFLIP_SEED, abft.ENV_BITFLIP_SUBDOMAIN,
             ENV_TRANSPORT_CHECKSUM)


@pytest.fixture(autouse=True)
def _clean_seams():
    """Every test starts and ends with the chaos seams unarmed."""
    saved = {name: os.environ.get(name) for name in SEAM_VARS}
    for name in SEAM_VARS:
        os.environ.pop(name, None)
    abft.reset_bitflip_state()
    yield
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    abft.reset_bitflip_state()


def _arm(target, *, seed=0, subdomain=None, count=None):
    os.environ[abft.ENV_BITFLIP_TARGET] = target
    os.environ[abft.ENV_BITFLIP_SEED] = str(seed)
    if subdomain is not None:
        os.environ[abft.ENV_BITFLIP_SUBDOMAIN] = str(subdomain)
    if count is not None:
        os.environ[abft.ENV_BITFLIP_COUNT] = str(count)
    abft.reset_bitflip_state()


def _test_matrix(n=60, seed=3):
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density=0.08, random_state=rng,
                  data_rvs=rng.standard_normal, format="csc")
    A = A + sp.eye(n, format="csc") * float(n)
    return A.tocsc()


# -- mode knob ---------------------------------------------------------------

class TestModeKnob:
    def test_all_modes_accepted(self):
        for mode in abft.ABFT_MODES:
            assert abft.check_abft_mode(mode) == mode

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="abft"):
            abft.check_abft_mode("paranoid")

    def test_mode_predicates(self):
        assert not abft.abft_detect("off")
        assert abft.abft_detect("detect")
        assert abft.abft_detect("detect+recover")
        assert not abft.abft_recover("detect")
        assert abft.abft_recover("detect+recover")

    def test_config_validates_mode(self):
        with pytest.raises(ValueError, match="abft"):
            PDSLinConfig(k=2, abft="bogus")


# -- matrix checksums --------------------------------------------------------

class TestMatrixChecksums:
    def test_roundtrip_clean(self):
        M = _test_matrix().tocsr()
        stored = abft.checksum_matrix(M)
        audit = abft.verify_matrix_checksum(M, stored)
        assert audit.ok and bool(audit)

    def test_data_flip_detected(self):
        M = _test_matrix().tocsr()
        stored = abft.checksum_matrix(M)
        victim = int(np.argmax(np.abs(M.data)))
        M.data[victim:victim + 1].view(np.uint64)[0] ^= np.uint64(1 << 55)
        audit = abft.verify_matrix_checksum(M, stored)
        assert not audit.ok and audit.rel > 1.0
        assert "tolerance" in audit.detail

    def test_stored_vector_flip_detected(self):
        M = _test_matrix().tocsr()
        stored = abft.checksum_matrix(M)
        stored[int(np.argmax(np.abs(stored)))] *= 4.0
        assert not abft.verify_matrix_checksum(M, stored).ok

    def test_canonicalization_does_not_mutate(self):
        # the observer contract: computing a checksum must never sort
        # the caller's matrix in place (that would perturb downstream
        # sparse kernels and break abft=off vs detect bit-parity)
        M = _test_matrix().tocsr()
        M.has_sorted_indices = False
        data_before = M.data.copy()
        idx_before = M.indices.copy()
        abft.checksum_matrix(M)
        assert not M.has_sorted_indices
        assert np.array_equal(M.data, data_before)
        assert np.array_equal(M.indices, idx_before)


# -- factor checksums --------------------------------------------------------

class TestFactorChecksums:
    def _factors(self):
        A = _test_matrix()
        f = factorize(A, diag_pivot_thresh=0.01)
        abft.attach_factor_checksums(f, A)
        return A, f

    def test_clean_factors_verify(self):
        _, f = self._factors()
        audit = abft.verify_factors(f)
        assert audit.ok, audit.detail

    def test_no_checksums_is_vacuously_clean(self):
        A = _test_matrix()
        f = factorize(A, diag_pivot_thresh=0.01)
        assert abft.verify_factors(f).ok

    def test_factor_data_flip_detected(self):
        _, f = self._factors()
        victim = int(np.argmax(np.abs(f.U.data)))
        f.U.data[victim:victim + 1].view(np.uint64)[0] ^= np.uint64(1 << 56)
        audit = abft.verify_factors(f)
        assert not audit.ok and audit.rel > 1.0

    def test_stored_checksum_flip_detected(self):
        _, f = self._factors()
        cs = f.checksums
        cs.colsum_L[int(np.argmax(np.abs(cs.colsum_L)))] += 1.0
        assert not abft.verify_factors(f).ok

    def test_solve_audit_clean_then_corrupt(self):
        A, f = self._factors()
        cs = f.checksums
        b = np.arange(A.shape[0], dtype=np.float64) + 1.0
        x = f.solve(b)
        assert cs.checks >= 1 and cs.violations == 0
        assert np.linalg.norm(A @ x - b) <= 1e-8 * np.linalg.norm(b)
        # a corrupted solution must trip the 1^T A x = 1^T b audit
        bad = x.copy()
        bad[int(np.argmax(np.abs(bad)))] *= 64.0
        cs.audit_solve(f, b, bad)
        assert cs.violations == 1 and cs.worst_rel > 1.0
        cs.reset_counters()
        assert cs.checks == 0 and cs.violations == 0
        assert cs.last_detail == ""

    def test_checksums_survive_pickling(self):
        import pickle
        _, f = self._factors()
        clone = pickle.loads(pickle.dumps(f))
        assert clone.checksums is not None
        assert abft.verify_factors(clone).ok


# -- bit-flip injector -------------------------------------------------------

class TestFlipInjector:
    def test_flip_bits_hits_largest_magnitude(self):
        arr = np.array([1.0, -8.0, 3.0])
        recs = abft.flip_bits([arr], rng=np.random.default_rng(0))
        assert len(recs) == 1
        ai, idx, bit, old, new = recs[0]
        assert (ai, idx) == (0, 1) and old == -8.0
        assert np.isfinite(new) and new != old
        assert bit in abft._FLIP_BITS

    def test_flip_skips_empty_and_non_float(self):
        assert abft.flip_bits([np.array([], dtype=np.float64),
                               np.array([1, 2], dtype=np.int64), None],
                              rng=np.random.default_rng(0)) == []

    def test_unarmed_seam_is_inert(self):
        arr = np.ones(4)
        assert abft.maybe_bitflip("lu", (arr,)) == 0
        assert np.all(arr == 1.0)

    def test_one_shot_and_rearm(self):
        _arm("lu", seed=5)
        arr = np.arange(1.0, 5.0)
        assert abft.maybe_bitflip("lu", (arr,)) == 1
        assert abft.maybe_bitflip("lu", (np.arange(1.0, 5.0),)) == 0
        abft.reset_bitflip_state()
        assert abft.maybe_bitflip("lu", (np.arange(1.0, 5.0),)) == 1

    def test_subdomain_scoping(self):
        _arm("lu", subdomain=2)
        assert abft.maybe_bitflip("lu", (np.ones(3),), subdomain=1) == 0
        assert abft.maybe_bitflip("lu", (np.ones(3),), subdomain=2) == 1

    def test_wrong_target_does_not_fire(self):
        _arm("schur")
        assert abft.maybe_bitflip("lu", (np.ones(3),)) == 0
        assert not abft.bitflip_armed("lu")
        assert abft.bitflip_armed("schur")

    def test_corrupt_shipped_value_deep_copies(self):
        payload = {"x": np.arange(1.0, 9.0), "meta": "keep"}
        seam = abft.BitflipSeam(target="transport", seed=0)
        clone = abft.corrupt_shipped_value(payload, seam)
        assert clone is not None
        assert np.array_equal(payload["x"], np.arange(1.0, 9.0))
        assert not np.array_equal(clone["x"], payload["x"])
        assert clone["meta"] == "keep"

    def test_corrupt_shipped_value_without_floats(self):
        seam = abft.BitflipSeam(target="transport", seed=0)
        assert abft.corrupt_shipped_value({"n": 3, "s": "x"}, seam) is None


# -- environment validation --------------------------------------------------

class TestEnvValidation:
    def test_bad_target_names_variable(self):
        os.environ[abft.ENV_BITFLIP_TARGET] = "ram"
        with pytest.raises(ValueError, match=abft.ENV_BITFLIP_TARGET):
            abft.validate_bitflip_env()

    @pytest.mark.parametrize("var", [abft.ENV_BITFLIP_COUNT,
                                     abft.ENV_BITFLIP_SEED,
                                     abft.ENV_BITFLIP_SUBDOMAIN])
    def test_non_integer_names_variable(self, var):
        os.environ[abft.ENV_BITFLIP_TARGET] = "lu"
        os.environ[var] = "many"
        with pytest.raises(ValueError, match=var):
            abft.validate_bitflip_env()

    def test_zero_count_rejected(self):
        os.environ[abft.ENV_BITFLIP_TARGET] = "lu"
        os.environ[abft.ENV_BITFLIP_COUNT] = "0"
        with pytest.raises(ValueError, match=abft.ENV_BITFLIP_COUNT):
            abft.validate_bitflip_env()

    def test_chaos_env_validation_covers_bitflip(self):
        os.environ[abft.ENV_BITFLIP_TARGET] = "everything"
        with pytest.raises(ValueError, match=abft.ENV_BITFLIP_TARGET):
            validate_chaos_env()

    def test_transport_checksum_env_validated(self):
        os.environ[ENV_TRANSPORT_CHECKSUM] = "yes"
        with pytest.raises(ValueError, match=ENV_TRANSPORT_CHECKSUM):
            transport_checksum_enabled()
        os.environ[ENV_TRANSPORT_CHECKSUM] = "0"
        assert transport_checksum_enabled() is False
        os.environ.pop(ENV_TRANSPORT_CHECKSUM)
        assert transport_checksum_enabled() is True

    def test_unset_seam_is_none(self):
        assert abft.bitflip_seam() is None
        abft.validate_bitflip_env()  # no-op, must not raise


# -- tolerance calibration on the robust suite -------------------------------

class TestRobustSuiteTolerances:
    """The ill-conditioned matrices must not false-positive at attach,
    verify, or solve-audit time — and flips must still be caught."""

    @pytest.mark.parametrize("name", robust_suite_names())
    def test_no_false_positive_on_factors(self, name):
        A = generate_robust(name, scale="tiny").A.tocsc()
        f = factorize(A, diag_pivot_thresh=0.01)
        cs = abft.attach_factor_checksums(f, A)
        audit = abft.verify_factors(f)
        assert audit.ok, f"{name}: {audit.detail}"
        rng = np.random.default_rng(0)
        b = rng.standard_normal(A.shape[0])
        f.solve(b)
        assert cs.violations == 0, cs.last_detail

    @pytest.mark.parametrize("name", robust_suite_names())
    def test_flip_detected_on_robust_factors(self, name):
        A = generate_robust(name, scale="tiny").A.tocsc()
        f = factorize(A, diag_pivot_thresh=0.01)
        abft.attach_factor_checksums(f, A)
        recs = abft.flip_bits([f.U.data], rng=np.random.default_rng(1))
        assert recs, "injector found nothing to flip"
        assert not abft.verify_factors(f).ok

    @pytest.mark.parametrize("backend", ["serial", "thread:2", "process:2"])
    def test_solve_clean_on_all_backends(self, backend):
        gm = generate_robust("graded.laplace", scale="tiny")
        A = gm.A.tocsr()
        rng = np.random.default_rng(0)
        b = rng.standard_normal(A.shape[0])
        tr = Tracer()
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0, abft="detect"),
                        tracer=tr, backend=backend)
        try:
            res = solver.solve(b)
        finally:
            if hasattr(solver.backend, "close"):
                solver.backend.close()
        assert res.converged
        assert tr.counters.get("sdc_checks", 0) > 0
        assert tr.counters.get("sdc_detected", 0) == 0
        assert not any(e.action.startswith("sdc-")
                       for e in res.recovery.events)


# -- Krylov drift audits -----------------------------------------------------

class TestKrylovDrift:
    def _system(self, n=80):
        rng = np.random.default_rng(7)
        A = sp.random(n, n, density=0.1, random_state=rng,
                      data_rvs=rng.standard_normal, format="csr")
        A = A + sp.eye(n, format="csr") * float(n)
        b = rng.standard_normal(n)
        return A, b

    def test_gmres_clean_run_audits_without_detection(self):
        A, b = self._system()
        tr = Tracer()
        res = gmres(lambda v: A @ v, b, tol=1e-10, restart=20, tracer=tr)
        assert res.converged
        assert res.drift_checks >= 1 and not res.drift_detected
        assert tr.counters["gmres_drift_checks"] == res.drift_checks
        assert tr.counters["gmres_drift_detected"] == 0

    def test_bicgstab_clean_run_audits_without_detection(self):
        A, b = self._system()
        tr = Tracer()
        res = bicgstab(lambda v: A @ v, b, tol=1e-10, audit_every=2,
                       tracer=tr)
        assert res.converged
        assert res.drift_checks >= 1 and not res.drift_detected
        assert tr.counters["bicgstab_drift_detected"] == 0

    def test_bicgstab_audit_off_by_default(self):
        A, b = self._system()
        res = bicgstab(lambda v: A @ v, b, tol=1e-10)
        assert res.drift_checks == 0

    def test_bicgstab_detects_inconsistent_operator(self):
        # the operator silently changes mid-iteration — the recursive
        # residual keeps shrinking while the true residual does not,
        # exactly the signature of corrupted Krylov state
        A, b = self._system()
        calls = {"n": 0}

        def lying_matvec(v):
            calls["n"] += 1
            out = A @ v
            if calls["n"] > 6:
                out = out + 50.0 * np.linalg.norm(v)
            return out

        res = bicgstab(lying_matvec, b, tol=1e-12, audit_every=1,
                       maxiter=200)
        assert res.drift_detected and not res.converged


# -- sealed transport --------------------------------------------------------

def _ship_floats(payload):
    """Module-level task (process backends pickle it): returns a float
    array derived from the payload."""
    return np.full(6, float(payload) + 0.5)


class TestSealedTransport:
    def test_process_backend_catches_and_retries(self):
        _arm("transport", seed=0)
        with ProcessBackend(workers=2) as be:
            outcomes = be.map(_ship_floats, [1.0, 2.0, 3.0, 4.0])
        assert all(o.error is None for o in outcomes)
        for i, o in enumerate(outcomes):
            assert np.array_equal(o.value, np.full(6, i + 1.5))
        # one flip per worker process at most; at least one must fire
        assert sum(o.transport_retries for o in outcomes) >= 1

    def test_serial_backend_seals_when_seam_armed(self):
        _arm("transport", seed=0)
        outcomes = SerialBackend().map(_ship_floats, [1.0, 2.0])
        assert all(o.error is None for o in outcomes)
        assert np.array_equal(outcomes[0].value, np.full(6, 1.5))
        assert sum(o.transport_retries for o in outcomes) == 1

    def test_serial_backend_does_not_seal_unarmed(self):
        outcomes = SerialBackend().map(_ship_floats, [1.0])
        assert outcomes[0].transport_retries == 0
        assert np.array_equal(outcomes[0].value, np.full(6, 1.5))

    def test_disabled_checksum_accepts_corruption_silently(self):
        _arm("transport", seed=0)
        os.environ[ENV_TRANSPORT_CHECKSUM] = "0"
        outcomes = SerialBackend().map(_ship_floats, [1.0, 2.0])
        assert all(o.error is None for o in outcomes)
        assert all(o.transport_retries == 0 for o in outcomes)
        got = np.stack([o.value for o in outcomes])
        want = np.stack([np.full(6, 1.5), np.full(6, 2.5)])
        assert not np.array_equal(got, want)  # wrong and nobody noticed


# -- end-to-end drills -------------------------------------------------------

def _smoke_problem():
    gm = generate("tdr190k", scale="tiny")
    A = gm.A.tocsr()
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.shape[0])
    return A, b


def _drill_cfg(mode):
    # condest=False: the condition-driven Schur rebuild would otherwise
    # reassemble S after the injection point and heal the schur drills
    return PDSLinConfig(k=4, seed=0, rhs_ordering="hypergraph",
                        block_size=32, abft=mode, condest=False)


class TestEndToEndDrills:
    def test_bitflip_smoke_serial_all_targets(self):
        from repro.resilience.chaos import run_bitflip_smoke
        run = run_bitflip_smoke(backends=("serial",))
        assert run.ok, run.checks

    def test_bitflip_smoke_process_backend(self):
        from repro.resilience.chaos import run_bitflip_smoke
        run = run_bitflip_smoke(targets=("lu",), backends=("process:2",))
        assert run.ok, run.checks

    def test_detect_only_reports_without_repair(self):
        A, b = _smoke_problem()
        _arm("lu", seed=9, subdomain=1)
        tr = Tracer()
        res = PDSLin(A, _drill_cfg("detect"), tracer=tr).solve(b)
        actions = [e.action for e in res.recovery.events]
        assert tr.counters.get("sdc_detected", 0) >= 1
        assert tr.counters.get("sdc_recovered", 0) == 0
        assert "sdc-detected" in actions
        assert "sdc-unrecoverable" in actions
        assert "sdc-recovered" not in actions
        assert res.degraded  # honesty: corruption reported, not repaired

    def test_recovered_solve_matches_fault_free_bits(self):
        A, b = _smoke_problem()
        ref = PDSLin(A, _drill_cfg("detect+recover")).solve(b)
        _arm("schur", seed=7, subdomain=1)
        tr = Tracer()
        res = PDSLin(A, _drill_cfg("detect+recover"), tracer=tr).solve(b)
        assert tr.counters.get("sdc_recovered", 0) >= 1
        assert not res.degraded and res.certified
        assert res.x.tobytes() == ref.x.tobytes()

    def test_abft_modes_bit_identical_when_clean(self):
        A, b = _smoke_problem()
        xs = [PDSLin(A, _drill_cfg(mode)).solve(b).x.tobytes()
              for mode in abft.ABFT_MODES]
        assert xs[0] == xs[1] == xs[2]
