"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, fm_refine_bisection
from repro.hypergraph import (
    Hypergraph,
    bisection_cut,
    cutsize,
    fm_refine_hypergraph,
    net_connectivities,
    split_by_side,
)
from repro.lu import (
    factorize,
    padded_zeros,
    partition_columns,
    reach,
    solution_pattern,
)
from repro.ordering import elimination_tree, etree_path_closure, postorder
from repro.sparse import edge_incidence_factor, verify_structural_factor
from repro.utils import check_permutation


# -- strategies ---------------------------------------------------------------

@st.composite
def sparse_sym_matrix(draw, max_n=24):
    """Random symmetric sparse matrix with nonzero diagonal."""
    n = draw(st.integers(3, max_n))
    density = draw(st.floats(0.05, 0.35))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density, random_state=rng, format="csr")
    A = A + A.T + sp.eye(n) * (1.0 + rng.random())
    A = A.tocsr()
    A.sum_duplicates()
    return A


@st.composite
def hypergraph_and_partition(draw, max_v=20, max_n=15, max_k=4):
    n_v = draw(st.integers(2, max_v))
    n_n = draw(st.integers(1, max_n))
    k = draw(st.integers(2, max_k))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    ptr = [0]
    pins: list[int] = []
    for _ in range(n_n):
        sz = int(rng.integers(1, min(n_v, 6) + 1))
        pins.extend(rng.choice(n_v, size=sz, replace=False).tolist())
        ptr.append(len(pins))
    H = Hypergraph.from_arrays(ptr, pins, n_v)
    part = rng.integers(0, k, n_v)
    return H, part, k


@st.composite
def lower_triangular(draw, max_n=30):
    n = draw(st.integers(2, max_n))
    density = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 2**31 - 1))
    L = sp.tril(sp.random(n, n, density, random_state=seed), k=-1)
    return (L + sp.eye(n)).tocsc()


# -- hypergraph metric properties ---------------------------------------------

class TestCutMetricProperties:
    @given(hypergraph_and_partition())
    @settings(max_examples=60, deadline=None)
    def test_soed_identity(self, hp):
        """soed == con1 + cnet for unit costs (lambda + [lambda>1] - 1...)"""
        H, part, k = hp
        assert cutsize(H, part, k, "soed") == \
            cutsize(H, part, k, "con1") + cutsize(H, part, k, "cnet")

    @given(hypergraph_and_partition())
    @settings(max_examples=60, deadline=None)
    def test_connectivity_bounds(self, hp):
        H, part, k = hp
        lam = net_connectivities(H, part, k)
        sizes = H.net_sizes()
        assert np.all(lam <= np.minimum(sizes, k))
        assert np.all(lam[sizes > 0] >= 1)

    @given(hypergraph_and_partition())
    @settings(max_examples=40, deadline=None)
    def test_merging_parts_never_increases_cut(self, hp):
        H, part, k = hp
        merged = np.where(part == k - 1, 0, part)
        for metric in ("con1", "cnet", "soed"):
            assert cutsize(H, merged, k, metric) <= cutsize(H, part, k, metric)

    @given(hypergraph_and_partition())
    @settings(max_examples=40, deadline=None)
    def test_split_conserves_pins_con1(self, hp):
        """Net splitting preserves the pin multiset of every net."""
        H, part, _ = hp
        side = (part > 0).astype(np.int64)
        spl = split_by_side(H, side, "con1")
        total_pins = spl.children[0].n_pins + spl.children[1].n_pins
        nonempty = sum(H.net_size(j) for j in range(H.n_nets)
                       if H.net_size(j) > 0)
        assert total_pins == nonempty

    @given(hypergraph_and_partition())
    @settings(max_examples=40, deadline=None)
    def test_split_vertices_partitioned(self, hp):
        H, part, _ = hp
        side = (part > 0).astype(np.int64)
        spl = split_by_side(H, side, "soed")
        n0, n1 = spl.children[0].n_vertices, spl.children[1].n_vertices
        assert n0 + n1 == H.n_vertices
        recon = np.concatenate([spl.vertex_ids[0], spl.vertex_ids[1]])
        assert sorted(recon.tolist()) == list(range(H.n_vertices))

    @given(hypergraph_and_partition())
    @settings(max_examples=30, deadline=None)
    def test_fm_never_worsens(self, hp):
        H, part, _ = hp
        side = (part > 0).astype(np.int64)
        cut0 = bisection_cut(H, side)
        caps = np.full((2, H.n_constraints), float(H.n_vertices))
        _, cut = fm_refine_hypergraph(H, side, caps=caps)
        assert cut <= cut0


# -- e-tree properties ----------------------------------------------------------

class TestEtreeProperties:
    @given(sparse_sym_matrix())
    @settings(max_examples=50, deadline=None)
    def test_postorder_is_permutation(self, A):
        par = elimination_tree(A)
        po = postorder(par)
        check_permutation(po, A.shape[0])

    @given(sparse_sym_matrix())
    @settings(max_examples=50, deadline=None)
    def test_parents_strictly_greater(self, A):
        par = elimination_tree(A)
        n = A.shape[0]
        assert np.all((par == -1) | (par > np.arange(n)))

    @given(sparse_sym_matrix())
    @settings(max_examples=30, deadline=None)
    def test_closure_contains_support_and_is_closed(self, A):
        par = elimination_tree(A)
        n = A.shape[0]
        rng = np.random.default_rng(0)
        supp = rng.choice(n, size=min(3, n), replace=False)
        closed = etree_path_closure(par, supp)
        inset = np.zeros(n, dtype=bool)
        inset[closed] = True
        assert inset[supp].all()
        for v in closed:
            p = par[v]
            assert p == -1 or inset[p]


# -- symbolic/numeric triangular-solve properties --------------------------------

class TestTriangularProperties:
    @given(lower_triangular(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_reach_covers_numeric_nonzeros(self, L, seed):
        n = L.shape[0]
        rng = np.random.default_rng(seed)
        supp = rng.choice(n, size=min(2, n), replace=False)
        b = np.zeros(n)
        b[supp] = 1.0
        x = spla.spsolve_triangular(L.tocsr(), b, lower=True)
        r = set(reach(L, supp).tolist())
        assert set(np.flatnonzero(x != 0.0).tolist()) <= r

    @given(lower_triangular(), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_padding_identity(self, L, B):
        """Eq. (15): total padded == sum_i (lambda_i * B' - |r_i|) where
        B' is each part's actual width."""
        n = L.shape[0]
        E = sp.random(n, 8, 0.3, random_state=1, format="csr")
        G = solution_pattern(L, E)
        parts = partition_columns(np.arange(8), B)
        st_ = padded_zeros(G, parts)
        # brute force per row
        Gd = G.toarray() != 0
        total = 0
        for cols in parts:
            sub = Gd[:, cols]
            active = sub.any(axis=1)
            total += int(active.sum()) * len(cols) - int(sub.sum())
        assert st_.total_padded == total


# -- structural factorization property ------------------------------------------

class TestStructuralProperties:
    @given(sparse_sym_matrix())
    @settings(max_examples=40, deadline=None)
    def test_edge_incidence_always_valid(self, A):
        M = edge_incidence_factor(A)
        assert verify_structural_factor(A, M)


# -- graph FM properties ----------------------------------------------------------

class TestGraphProperties:
    @given(sparse_sym_matrix(max_n=20), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_fm_cut_consistent(self, A, seed):
        g = Graph.from_matrix(A)
        rng = np.random.default_rng(seed)
        side = rng.integers(0, 2, g.n_vertices)
        refined, cut = fm_refine_bisection(
            g, side, max_part_weight=g.total_vertex_weight)
        assert cut == g.edge_cut(refined)
        assert cut <= g.edge_cut(side)


# -- LU properties -----------------------------------------------------------------

class TestLUProperties:
    @given(sparse_sym_matrix(max_n=20), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_reference_lu_solves(self, A, seed):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(A.shape[0])
        f = factorize(A.tocsc(), engine="reference", diag_pivot_thresh=1.0)
        assert f.residual_norm(A, b) < 1e-8
