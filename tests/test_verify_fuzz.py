"""Fuzz harness machinery: case generation determinism, differential
run/shrink/reproducer cycle, and the CLI replay path."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.verify.differential import check_stage_oracles, differential_solve
from repro.verify.fuzz import build_suite_cases, main, random_case
from repro.verify.invariants import VerificationError
from repro.verify.shrink import (
    FuzzCase,
    failure_category,
    load_reproducer,
    run_case,
    save_reproducer,
    shrink_case,
)


@pytest.fixture(scope="module")
def suite_cases():
    return build_suite_cases(0)


class TestCaseGeneration:
    def test_suite_cases_cover_table1(self, suite_cases):
        names = {c.name for c in suite_cases}
        assert {"tdr190k", "dds.quad", "matrix211", "ASIC_680ks",
                "G3_circuit"} <= names

    def test_suite_cases_deterministic(self, suite_cases):
        again = build_suite_cases(0)
        for a, b in zip(suite_cases, again):
            assert a.name == b.name
            assert (a.A != b.A).nnz == 0
            assert np.array_equal(a.b, b.b)

    def test_random_case_deterministic(self, suite_cases):
        c1 = random_case(np.random.default_rng(7), 3, suite_cases)
        c2 = random_case(np.random.default_rng(7), 3, suite_cases)
        assert c1.name == c2.name and c1.k == c2.k and c1.seed == c2.seed
        assert (c1.A != c2.A).nnz == 0

    def test_random_cases_vary(self, suite_cases):
        rng = np.random.default_rng(0)
        kinds = {random_case(rng, i, suite_cases).name.split(":")[0]
                 for i in range(20)}
        assert len(kinds) > 1


class TestRunCase:
    def test_good_case_passes(self, rng):
        A = grid_laplacian(10, 10)
        case = FuzzCase("grid", A, rng.standard_normal(A.shape[0]), k=2)
        ok, cat = run_case(case)
        assert ok and cat == ""

    def test_broken_case_fails_with_category(self, rng):
        n = 40
        A = grid_laplacian(10, 4).tocsr()
        b = rng.standard_normal(n)
        b[0] = np.nan  # poisons the solve; must be reported, not hidden
        ok, cat = run_case(FuzzCase("nan-b", A, b, k=2))
        assert not ok
        assert cat.startswith(("verify:", "exception:"))


class TestFailureCategory:
    def test_verification_error(self):
        cat = failure_category(VerificationError("schur.drop-subset", "x"))
        assert cat == "verify:schur.drop-subset"

    def test_plain_exception(self):
        assert failure_category(ValueError("x")) == "exception:ValueError"


class TestShrink:
    @staticmethod
    def _case(n, k=4):
        A = sp.eye(n, format="csr")
        return FuzzCase("t", A, np.ones(n), k=k)

    def test_shrinks_while_category_preserved(self):
        # an injected failure that persists down to n >= 24
        def still_fails(c):
            return (c.n < 24, "" if c.n < 24 else "verify:synthetic")
        small = shrink_case(self._case(200), "verify:synthetic",
                            still_fails=still_fails)
        assert 24 <= small.n < 200

    def test_reduces_k(self):
        def still_fails(c):
            return (False, "verify:synthetic")
        small = shrink_case(self._case(8, k=8), "verify:synthetic",
                            still_fails=still_fails)
        assert small.k == 2

    def test_rejects_category_change(self):
        # shrinking would flip the category; the original must survive
        def still_fails(c):
            if c.n < 100 or c.k < 4:
                return (False, "exception:ZeroDivisionError")
            return (False, "verify:synthetic")
        small = shrink_case(self._case(100), "verify:synthetic",
                            still_fails=still_fails)
        assert small.n == 100 and small.k == 4


class TestReproducers:
    def test_roundtrip(self, tmp_path, rng):
        A = grid_laplacian(6, 6)
        case = FuzzCase("roundtrip", A, rng.standard_normal(A.shape[0]),
                        k=2, seed=17)
        p = save_reproducer(case, "verify:synthetic",
                            str(tmp_path / "case.npz"))
        loaded, cat = load_reproducer(p)
        assert cat == "verify:synthetic"
        assert loaded.name == "roundtrip"
        assert loaded.k == 2 and loaded.seed == 17
        assert (loaded.A != case.A).nnz == 0
        assert np.array_equal(loaded.b, case.b)

    def test_cli_replay_of_passing_case(self, tmp_path, rng, capsys):
        A = grid_laplacian(8, 8)
        case = FuzzCase("ok", A, rng.standard_normal(A.shape[0]), k=2)
        p = save_reproducer(case, "verify:old", str(tmp_path / "ok.npz"))
        assert main(["--replay", p]) == 0
        assert "passes now" in capsys.readouterr().out


class TestDifferential:
    def test_differential_solve_report(self, rng):
        A = grid_laplacian(12, 12)
        rep = differential_solve(A, rng.standard_normal(A.shape[0]),
                                 k=4, seed=0)
        assert rep.backward_error < 1e-6
        assert rep.oracle_backward_error < 1e-10
        assert rep.converged
        assert rep.n_checks > 0

    def test_stage_oracles_three_way_agreement(self):
        A = grid_laplacian(12, 12)
        rep = check_stage_oracles(A, k=4, seed=0)
        assert rep["dense_vs_implicit"] < 1e-10
        assert rep["dense_vs_assembled"] < 1e-10
        assert "schur.no-drop-identity" in rep["checks_run"]
