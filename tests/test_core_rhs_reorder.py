"""Unit tests for the sparse-RHS reordering algorithms (Section IV)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.rhs_reorder import (
    hypergraph_column_order,
    natural_column_order,
    postorder_column_order,
)
from repro.hypergraph import Hypergraph, cutsize
from repro.lu import padded_zeros


class TestNatural:
    def test_identity(self):
        np.testing.assert_array_equal(natural_column_order(4), [0, 1, 2, 3])

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            natural_column_order(0)


class TestPostorder:
    def test_sorts_by_first_nonzero(self):
        # columns with first nonzeros at rows 3, 0, 2
        E = sp.csr_matrix(np.array([[0.0, 1.0, 0.0],
                                    [0.0, 0.0, 0.0],
                                    [0.0, 0.0, 1.0],
                                    [1.0, 0.0, 0.0]]))
        order = postorder_column_order(E)
        np.testing.assert_array_equal(order, [1, 2, 0])

    def test_empty_columns_last(self):
        E = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        order = postorder_column_order(E)
        np.testing.assert_array_equal(order, [1, 0])

    def test_stable_on_ties(self):
        E = sp.csr_matrix(np.array([[1.0, 1.0, 1.0]]))
        order = postorder_column_order(E)
        np.testing.assert_array_equal(order, [0, 1, 2])


class TestHypergraphOrder:
    def make_g(self):
        """Pattern with two obvious column clusters sharing rows."""
        rows_a = [0, 1, 2, 3]
        cols = []
        r = []
        for j in range(4):           # cluster A: columns 0..3 share rows 0..3
            for i in rows_a:
                r.append(i)
                cols.append(j)
        for j in range(4, 8):        # cluster B: columns 4..7 share rows 4..7
            for i in [4, 5, 6, 7]:
                r.append(i)
                cols.append(j)
        return sp.csr_matrix((np.ones(len(r)), (r, cols)), shape=(8, 8))

    def test_clusters_recovered(self):
        G = self.make_g()
        res = hypergraph_column_order(G, 4, seed=0)
        parts = [set(p.tolist()) for p in res.parts]
        assert {0, 1, 2, 3} in parts and {4, 5, 6, 7} in parts

    def test_zero_padding_for_perfect_clusters(self):
        G = self.make_g()
        res = hypergraph_column_order(G, 4, seed=0)
        stats = padded_zeros(G, res.parts)
        assert stats.total_padded == 0

    def test_parts_have_exact_size(self, grid16):
        # use the grid matrix itself as a pattern
        res = hypergraph_column_order(grid16, 16, seed=0)
        sizes = [p.size for p in res.parts]
        assert all(s == 16 for s in sizes[:-1])
        assert sum(sizes) == grid16.shape[1]

    def test_remainder_part_last(self):
        G = sp.random(30, 25, 0.2, random_state=0, format="csr")
        res = hypergraph_column_order(G, 8, seed=0)
        sizes = [p.size for p in res.parts]
        assert sizes == [8, 8, 8, 1]

    def test_order_is_permutation(self, grid16):
        res = hypergraph_column_order(grid16, 10, seed=0)
        assert sorted(res.order.tolist()) == list(range(grid16.shape[1]))

    def test_single_part_short_circuit(self):
        G = sp.random(10, 5, 0.3, random_state=1, format="csr")
        res = hypergraph_column_order(G, 8, seed=0)
        assert len(res.parts) == 1
        np.testing.assert_array_equal(res.order, np.arange(5))

    def test_quasi_dense_removal_recorded(self):
        G = self.make_g().tolil()
        G[0, :] = 1.0  # make row 0 fully dense
        G = sp.csr_matrix(G)
        res = hypergraph_column_order(G, 4, tau=0.5, seed=0)
        assert res.n_rows_removed_dense >= 1

    def test_quality_insensitive_to_tau(self):
        # removing the dense row should not change the recovered clusters
        # (cluster rows have density 0.5, so tau must sit above that)
        G = self.make_g().tolil()
        G[0, :] = 1.0
        G = sp.csr_matrix(G)
        res = hypergraph_column_order(G, 4, tau=0.9, seed=0)
        parts = [set(p.tolist()) for p in res.parts]
        assert {4, 5, 6, 7} in parts

    def test_padding_equivalence_con1(self):
        """Eq. (15): padded zeros == B * con1 + (n_G*B - nnz) over the
        rows that appear, for exact-size parts."""
        G = sp.random(40, 32, 0.15, random_state=3, format="csr")
        G.data[:] = 1.0
        B = 8
        res = hypergraph_column_order(G, B, seed=1)
        stats = padded_zeros(G, res.parts)
        # evaluate con1 on the row-net hypergraph with the part labels
        H = Hypergraph.row_net_model(G)
        part = np.empty(32, dtype=np.int64)
        for idx, p in enumerate(res.parts):
            part[p] = idx
        con1 = cutsize(H, part, len(res.parts), "con1")
        # Eq (15): sum_i (lambda_i * B - |r_i|) with non-empty rows
        from repro.sparse.patterns import row_nnz
        nz_rows = int((row_nnz(G) > 0).sum())
        expected = con1 * B + nz_rows * B - G.nnz
        assert stats.total_padded == expected
