"""Unit tests for the simulated machine and the two-level cost model."""

import time

import pytest

from repro.parallel import (
    DEFAULT_STAGE_SCALING,
    SimulatedMachine,
    StageScaling,
    TwoLevelModel,
)


class TestSimulatedMachine:
    def test_parallel_stage_is_max(self):
        m = SimulatedMachine(3)
        for ell, dt in enumerate((0.01, 0.03, 0.02)):
            with m.on_process(ell, "work"):
                time.sleep(dt)
        t = m.parallel_stage_time("work")
        times = m.process_stage_times("work")
        assert t == pytest.approx(times.max())
        assert times[1] > times[0]

    def test_serial_stage_adds(self):
        m = SimulatedMachine(2)
        with m.on_root("assemble"):
            time.sleep(0.01)
        assert m.serial_stage_time("assemble") >= 0.009

    def test_breakdown_combines(self):
        m = SimulatedMachine(2)
        with m.on_process(0, "s"):
            time.sleep(0.005)
        with m.on_root("s"):
            time.sleep(0.005)
        br = m.breakdown()
        assert br["s"] >= 0.009

    def test_makespan_sums_stages(self):
        m = SimulatedMachine(1)
        m.processes[0].timer.add("a", 1.0)
        m.processes[0].timer.add("b", 2.0)
        assert m.makespan() == pytest.approx(3.0)

    def test_balance_ratio_times(self):
        m = SimulatedMachine(2)
        m.processes[0].timer.add("s", 1.0)
        m.processes[1].timer.add("s", 4.0)
        assert m.balance_ratio("s") == pytest.approx(4.0)

    def test_balance_ratio_flops(self):
        m = SimulatedMachine(2)
        m.processes[0].ops.add("s", 100)
        m.processes[1].ops.add("s", 300)
        assert m.balance_ratio("s", use_flops=True) == pytest.approx(3.0)

    def test_balance_ratio_over_participating_only(self):
        # a process that never entered the stage is not a worker of the
        # stage: the ratio covers participants only (paper's metric)
        m = SimulatedMachine(2)
        m.processes[0].timer.add("s", 1.0)
        assert m.balance_ratio("s") == pytest.approx(1.0)
        m.processes[1].timer.add("s", 4.0)
        assert m.balance_ratio("s") == pytest.approx(4.0)

    def test_process_out_of_range(self):
        m = SimulatedMachine(2)
        with pytest.raises(IndexError):
            with m.on_process(5, "s"):
                pass

    def test_report_contains_total(self):
        m = SimulatedMachine(1)
        m.processes[0].timer.add("x", 0.5)
        assert "TOTAL" in m.report()


class TestStageScaling:
    def test_single_core_is_t1(self):
        s = StageScaling(serial_fraction=0.1, alpha=0.8,
                         uses_subdomain_cores=True)
        assert s.time(10.0, 1) == pytest.approx(10.0)

    def test_monotone_decreasing(self):
        s = StageScaling(serial_fraction=0.1, alpha=0.8,
                         uses_subdomain_cores=True)
        times = [s.time(10.0, p) for p in (1, 2, 4, 8, 64)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_amdahl_floor(self):
        s = StageScaling(serial_fraction=0.25, alpha=1.0,
                         uses_subdomain_cores=False)
        assert s.time(8.0, 10**6) == pytest.approx(2.0, rel=1e-3)

    def test_invalid_cores(self):
        s = DEFAULT_STAGE_SCALING["LU(D)"]
        with pytest.raises(ValueError):
            s.time(1.0, 0)


class TestTwoLevelModel:
    def make_machine(self):
        m = SimulatedMachine(4)
        for ell in range(4):
            m.processes[ell].timer.add("LU(D)", 2.0)
            m.processes[ell].timer.add("Comp(S)", 3.0)
        m.root.timer.add("LU(S)", 1.0)
        m.root.timer.add("Solve", 1.0)
        return m

    def test_projection_shrinks_with_cores(self):
        m = self.make_machine()
        model = TwoLevelModel(k=4)
        t8 = model.total_time(m, 8)
        t128 = model.total_time(m, 128)
        assert t128 < t8

    def test_subdomain_stages_scale_by_p_over_k(self):
        m = self.make_machine()
        model = TwoLevelModel(k=4)
        p4 = model.project(m, 4)    # 1 core per subdomain
        p32 = model.project(m, 32)  # 8 cores per subdomain
        assert p4["LU(D)"] == pytest.approx(2.0)
        assert p32["LU(D)"] < 1.0

    def test_separator_stages_flatten(self):
        m = self.make_machine()
        model = TwoLevelModel(k=4)
        p_lo = model.project(m, 8)
        p_hi = model.project(m, 1024)
        # Solve has a 40% serial fraction: can't go below 0.4 * t1
        assert p_hi["Solve"] >= 0.4 * 1.0 - 1e-9
        assert p_hi["Solve"] <= p_lo["Solve"]

    def test_unknown_stage_passthrough(self):
        m = SimulatedMachine(2)
        m.root.timer.add("Partition", 5.0)
        model = TwoLevelModel(k=2)
        assert model.project(m, 64)["Partition"] == pytest.approx(5.0)

    def test_cores_per_subdomain_floor(self):
        model = TwoLevelModel(k=8)
        assert model.cores_per_subdomain(4) == 1
        assert model.cores_per_subdomain(64) == 8
