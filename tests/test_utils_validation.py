"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils import (
    as_float_array,
    as_int_array,
    check_csc,
    check_csr,
    check_partition_vector,
    check_permutation,
    check_square,
    fraction,
    nonneg_int,
    positive_int,
    require,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "nope")

    def test_raises_value_error(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_custom_exception(self):
        with pytest.raises(IndexError):
            require(False, "idx", exc=IndexError)


class TestScalarValidators:
    def test_positive_int_accepts(self):
        assert positive_int(3, "x") == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            positive_int(0, "x")

    def test_positive_int_rejects_negative(self):
        with pytest.raises(ValueError):
            positive_int(-2, "x")

    def test_positive_int_rejects_non_integral_float(self):
        with pytest.raises(ValueError):
            positive_int(2.5, "x")

    def test_positive_int_accepts_integral_float(self):
        assert positive_int(4.0, "x") == 4

    def test_nonneg_int_accepts_zero(self):
        assert nonneg_int(0, "x") == 0

    def test_nonneg_int_rejects_negative(self):
        with pytest.raises(ValueError):
            nonneg_int(-1, "x")

    def test_fraction_bounds(self):
        assert fraction(0.5, "f") == 0.5
        assert fraction(0.0, "f") == 0.0
        assert fraction(1.0, "f") == 1.0

    def test_fraction_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            fraction(1.5, "f")
        with pytest.raises(ValueError):
            fraction(-0.1, "f")

    def test_fraction_rejects_nan(self):
        with pytest.raises(ValueError):
            fraction(float("nan"), "f")

    def test_fraction_custom_bounds(self):
        assert fraction(3.0, "f", lo=1.0, hi=5.0) == 3.0


class TestArrayConversions:
    def test_as_int_array_from_list(self):
        out = as_int_array([1, 2, 3])
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_as_int_array_from_integral_floats(self):
        out = as_int_array(np.array([1.0, 2.0]))
        assert out.dtype == np.int64

    def test_as_int_array_rejects_fractional(self):
        with pytest.raises(TypeError):
            as_int_array(np.array([1.5, 2.0]))

    def test_as_float_array(self):
        out = as_float_array([1, 2])
        assert out.dtype == np.float64


class TestMatrixValidators:
    def test_check_square_passes(self):
        check_square(sp.eye(4).tocsr())

    def test_check_square_rejects_rect(self):
        with pytest.raises(ValueError):
            check_square(sp.csr_matrix((3, 4)))

    def test_check_csr_canonicalizes_duplicates(self):
        A = sp.coo_matrix(([1.0, 2.0], ([0, 0], [1, 1])), shape=(2, 2))
        out = check_csr(A)
        assert out.nnz == 1
        assert out[0, 1] == 3.0

    def test_check_csr_rejects_dense(self):
        with pytest.raises(TypeError):
            check_csr(np.eye(3))

    def test_check_csc_returns_csc(self):
        out = check_csc(sp.eye(3).tocsr())
        assert sp.issparse(out) and out.format == "csc"


class TestPartitionVector:
    def test_valid(self):
        p = check_partition_vector(np.array([0, 1, 1, 0]), 4, 2)
        assert p.dtype == np.int64

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            check_partition_vector(np.array([0, 1]), 3, 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_partition_vector(np.array([0, 2]), 2, 2)
        with pytest.raises(ValueError):
            check_partition_vector(np.array([0, -1]), 2, 2)


class TestPermutation:
    def test_identity(self):
        check_permutation(np.arange(5), 5)

    def test_shuffled(self):
        check_permutation(np.array([2, 0, 1]), 3)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            check_permutation(np.array([0, 0, 1]), 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            check_permutation(np.array([0, 1, 3]), 3)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            check_permutation(np.array([0, 1]), 3)

    def test_empty(self):
        check_permutation(np.empty(0, dtype=int), 0)
