"""Unit tests for symmetrization and symmetry diagnostics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import is_structurally_symmetric, symmetrized, symmetry_info


class TestSymmetrized:
    def test_result_is_symmetric(self, unsym50):
        S = symmetrized(unsym50)
        assert (abs(S - S.T)).nnz == 0

    def test_absolute_values(self):
        A = sp.csr_matrix(np.array([[0.0, -2.0], [1.0, 0.0]]))
        S = symmetrized(A)
        assert S[0, 1] == 3.0 and S[1, 0] == 3.0

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            symmetrized(sp.csr_matrix((2, 3)))


class TestStructuralSymmetry:
    def test_symmetric_matrix(self, grid8):
        assert is_structurally_symmetric(grid8)

    def test_pattern_symmetric_value_unsymmetric(self):
        A = sp.csr_matrix(np.array([[1.0, 2.0], [3.0, 1.0]]))
        assert is_structurally_symmetric(A)
        info = symmetry_info(A)
        assert info.pattern_symmetric and not info.value_symmetric

    def test_pattern_unsymmetric(self):
        A = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        assert not is_structurally_symmetric(A)


class TestSymmetryInfo:
    def test_spd_detected(self, grid8):
        info = symmetry_info(grid8, check_definiteness=True)
        assert info.pattern_symmetric and info.value_symmetric
        assert info.positive_definite is True

    def test_indefinite_detected(self):
        A = sp.csr_matrix(np.diag([1.0, -1.0, 2.0]))
        info = symmetry_info(A, check_definiteness=True)
        assert info.positive_definite is False

    def test_unsymmetric_never_posdef(self):
        A = sp.csr_matrix(np.array([[1.0, 2.0], [3.0, 1.0]]))
        info = symmetry_info(A, check_definiteness=True)
        assert info.positive_definite is False

    def test_definiteness_skipped_by_default(self, grid8):
        info = symmetry_info(grid8)
        assert info.positive_definite is None

    def test_table_row_format(self, grid8):
        row = symmetry_info(grid8).table_row()
        assert "pattern=yes" in row and "value=yes" in row
