"""Seeded breakdown and stagnation paths of the Krylov kernels: the
BiCGSTAB rho-restart / breakdown guards and the GMRES stagnation flag
that drive the solver's Krylov recovery ladder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Tracer
from repro.solver.bicgstab import bicgstab
from repro.solver.gmres import gmres


def _dense_op(A):
    return lambda v: A @ v


def _near_skew(n: int, seed: int, diag: float = 0.01) -> np.ndarray:
    """Nearly skew-symmetric: rho = r_hat @ r collapses immediately."""
    rng = np.random.default_rng(seed)
    S = rng.standard_normal((n, n))
    return S - S.T + diag * np.eye(n)


class TestBiCGSTABBreakdown:
    def test_denominator_breakdown_flagged(self):
        # pure rotation: r_hat @ v vanishes on the first step
        A = np.array([[0.0, 1.0], [-1.0, 0.0]])
        res = bicgstab(_dense_op(A), np.array([1.0, 0.0]), maxiter=50)
        assert not res.converged
        assert res.breakdown

    def test_rho_breakdown_restart_then_converge(self):
        # seeded so the recurrence restarts at least once and the fresh
        # shadow residual carries it to convergence
        rng = np.random.default_rng(1)
        S = rng.standard_normal((12, 12))
        A = S - S.T + 0.5 * np.eye(12) + 0.2 * rng.standard_normal((12, 12))
        b = rng.standard_normal(12)
        res = bicgstab(_dense_op(A), b, tol=1e-10, maxiter=300)
        assert res.restarts >= 1
        assert res.converged
        assert np.linalg.norm(A @ res.x - b) <= 1e-9 * np.linalg.norm(b)

    def test_rho_breakdown_restart_budget_exhausts(self):
        # nearly skew-symmetric: every restart collapses again, so the
        # budget (5) runs out and the iteration reports breakdown
        A = _near_skew(12, seed=0)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(12)
        res = bicgstab(_dense_op(A), b, tol=1e-10, maxiter=100)
        assert not res.converged
        assert res.breakdown
        assert res.restarts > 5

    def test_tracer_counters_expose_breakdown(self):
        tracer = Tracer()
        A = _near_skew(12, seed=0)
        b = np.random.default_rng(0).standard_normal(12)
        bicgstab(_dense_op(A), b, tol=1e-10, maxiter=100, tracer=tracer)
        assert tracer.counters["bicgstab_breakdown"] == 1
        assert tracer.counters["bicgstab_restarts"] > 5
        assert tracer.counters["bicgstab_converged"] == 0

    def test_healthy_solve_reports_no_breakdown(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((10, 10)) + 10.0 * np.eye(10)
        b = rng.standard_normal(10)
        res = bicgstab(_dense_op(A), b, tol=1e-12, maxiter=200)
        assert res.converged
        assert not res.breakdown
        assert res.restarts == 0


class TestGMRESStagnation:
    def test_shift_matrix_stagnates_under_restart(self):
        """The n-cycle shift matrix makes no residual progress until the
        Krylov space reaches dimension n; with restart < n every cycle
        repeats the same stall, which the stagnation flag reports."""
        n = 20
        C = np.zeros((n, n))
        for i in range(n):
            C[i, (i + 1) % n] = 1.0
        e1 = np.zeros(n)
        e1[0] = 1.0
        res = gmres(_dense_op(C), e1, restart=5, maxiter=15)
        assert not res.converged
        assert res.stagnated

    def test_progressing_non_convergence_not_stagnated(self):
        """Running out of iterations while still reducing the residual
        is a budget problem, not a preconditioner problem — the flag
        stays off so recovery does not rebuild S~ for nothing."""
        rng = np.random.default_rng(0)
        n = 40
        A = rng.standard_normal((n, n)) + 6.0 * np.eye(n)
        b = rng.standard_normal(n)
        res = gmres(_dense_op(A), b, tol=1e-14, restart=4, maxiter=8)
        assert not res.converged
        assert res.residual_norms[-1] < res.residual_norms[0]
        assert not res.stagnated

    def test_converged_solve_never_stagnated(self):
        rng = np.random.default_rng(5)
        A = rng.standard_normal((15, 15)) + 8.0 * np.eye(15)
        b = rng.standard_normal(15)
        res = gmres(_dense_op(A), b, tol=1e-12, restart=15, maxiter=100)
        assert res.converged
        assert not res.stagnated
        assert np.linalg.norm(A @ res.x - b) <= 1e-11 * np.linalg.norm(b)
