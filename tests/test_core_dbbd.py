"""Unit tests for DBBD forms and partition statistics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import SEPARATOR, build_dbbd


def chain_partition():
    """1-D chain of 5 vertices split as [0,1 | 2 | 3,4] (2 parts + sep)."""
    A = sp.diags([np.ones(4), 2 * np.ones(5), np.ones(4)], [-1, 0, 1]).tocsr()
    part = np.array([0, 0, SEPARATOR, 1, 1])
    return A, part


class TestBuild:
    def test_valid_partition(self):
        A, part = chain_partition()
        p = build_dbbd(A, part, 2)
        assert p.separator_size == 1
        np.testing.assert_array_equal(p.subdomain_vertices(0), [0, 1])
        np.testing.assert_array_equal(p.subdomain_vertices(1), [3, 4])

    def test_invalid_separator_detected(self):
        A, _ = chain_partition()
        bad = np.array([0, 0, 1, 1, 1])  # edge 1-2 couples parts 0 and 1
        with pytest.raises(AssertionError):
            build_dbbd(A, bad, 2)

    def test_validation_skippable(self):
        A, _ = chain_partition()
        bad = np.array([0, 0, 1, 1, 1])
        p = build_dbbd(A, bad, 2, validate=False)
        assert p.k == 2

    def test_part_out_of_range(self):
        A, _ = chain_partition()
        with pytest.raises(ValueError):
            build_dbbd(A, np.array([0, 0, 2, 1, 1]), 2)

    def test_wrong_length(self):
        A, _ = chain_partition()
        with pytest.raises(ValueError):
            build_dbbd(A, np.array([0, 0, -1]), 2)


class TestBlocks:
    def test_block_shapes(self):
        A, part = chain_partition()
        p = build_dbbd(A, part, 2)
        assert p.D(0).shape == (2, 2)
        assert p.E(0).shape == (2, 1)
        assert p.F(1).shape == (1, 2)
        assert p.C().shape == (1, 1)

    def test_block_values(self):
        A, part = chain_partition()
        p = build_dbbd(A, part, 2)
        assert p.E(0).toarray()[1, 0] == 1.0  # vertex 1 - separator 2
        assert p.E(0).toarray()[0, 0] == 0.0
        assert p.C().toarray()[0, 0] == 2.0

    def test_permuted_matrix_is_dbbd(self, grid16):
        from repro.graphs import nested_dissection_partition
        r = nested_dissection_partition(grid16, 4, seed=0)
        p = build_dbbd(grid16, r.part, 4)
        P = p.permuted()
        # off-diagonal cross-subdomain blocks must be empty
        ext = p.block_extents
        for i in range(4):
            for j in range(4):
                if i == j:
                    continue
                blk = P[ext[i]:ext[i + 1], ext[j]:ext[j + 1]]
                assert blk.nnz == 0

    def test_perm_is_permutation(self, grid16):
        from repro.graphs import nested_dissection_partition
        r = nested_dissection_partition(grid16, 4, seed=0)
        p = build_dbbd(grid16, r.part, 4)
        assert sorted(p.perm.tolist()) == list(range(grid16.shape[0]))

    def test_subdomain_index_out_of_range(self):
        A, part = chain_partition()
        p = build_dbbd(A, part, 2)
        with pytest.raises(IndexError):
            p.D(5)


class TestStats:
    def test_stats_fields(self):
        A, part = chain_partition()
        p = build_dbbd(A, part, 2)
        s = p.subdomain_stats(0)
        assert s.dim == 2
        assert s.nnz_D == 4  # 2 diag + 2 offdiag within [0,1]
        assert s.ncol_E == 1
        assert s.nnz_E == 1

    def test_quality_ratios(self):
        A, part = chain_partition()
        p = build_dbbd(A, part, 2)
        q = p.quality()
        assert q.dim_ratio == 1.0
        assert q.separator_size == 1

    def test_quality_infinite_ratio_on_empty_interface(self):
        # a part with no connection to the separator
        A = sp.eye(4).tocsr()
        part = np.array([0, 0, 1, 1])
        p = build_dbbd(A, part, 2)
        q = p.quality()
        assert q.ncol_E_ratio == 1.0  # 0/0 -> 1.0 by convention

    def test_as_dict_keys(self):
        A, part = chain_partition()
        q = build_dbbd(A, part, 2).quality().as_dict()
        assert set(q) == {"separator_size", "dim(D)", "nnz(D)", "col(E)",
                          "nnz(E)"}
