"""Batched multi-RHS solves (``PDSLin.solve_block``).

The parity contract under test: column ``j`` of ``solve_block(B)`` is
bit-identical to ``solve(B[:, j])`` on direct paths (and everywhere
with Krylov seeding off), equally certified on seeded-Krylov paths;
the batched path keeps that contract across execution backends, under
the ABFT ladder, through checkpoint/resume, and after
``update_matrix``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian, random_unsymmetric

from repro.numerics.refine import refine, refine_block
from repro.obs import Tracer
from repro.resilience import abft
from repro.resilience.checkpoint import (
    SOLVE_PHASE_FIELDS,
    config_fingerprint,
)
from repro.solver import PDSLin, PDSLinConfig

NRHS = 5

SEAM_VARS = (abft.ENV_BITFLIP_TARGET, abft.ENV_BITFLIP_COUNT,
             abft.ENV_BITFLIP_SEED, abft.ENV_BITFLIP_SUBDOMAIN)


@pytest.fixture(autouse=True)
def _clean_seams():
    saved = {name: os.environ.get(name) for name in SEAM_VARS}
    for name in SEAM_VARS:
        os.environ.pop(name, None)
    abft.reset_bitflip_state()
    yield
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    abft.reset_bitflip_state()


def _cfg(**kw) -> PDSLinConfig:
    kw.setdefault("k", 4)
    kw.setdefault("block_size", 16)
    kw.setdefault("seed", 0)
    return PDSLinConfig(**kw)


def _block(A, p=NRHS, seed=0):
    return np.random.default_rng(seed).standard_normal((A.shape[0], p))


def _per_column(A, B, **kw):
    solver = PDSLin(A, _cfg(**kw))
    return [solver.solve(B[:, j]) for j in range(B.shape[1])]


class TestParity:
    def test_seed_off_bit_identical(self):
        A = grid_laplacian(16, 16)
        B = _block(A)
        cols = _per_column(A, B)
        blk = PDSLin(A, _cfg(krylov_seed=False)).solve_block(B)
        for j in range(NRHS):
            assert blk[j].x.tobytes() == cols[j].x.tobytes()
            assert blk[j].iterations == cols[j].iterations
            assert blk[j].certified == cols[j].certified

    def test_seeded_first_column_bitwise_rest_certified(self):
        A = random_unsymmetric(120, 0.06, seed=2)
        B = _block(A)
        cols = _per_column(A, B)
        blk = PDSLin(A, _cfg()).solve_block(B)
        # column 0 has no seed: bit-identical to the scalar solve
        assert blk[0].x.tobytes() == cols[0].x.tobytes()
        for j in range(NRHS):
            assert blk[j].converged
            assert blk[j].certified == cols[j].certified
            assert blk[j].residual_norm < 1e-10

    def test_block_gmres_equally_certified(self):
        A = grid_laplacian(16, 16)
        B = _block(A)
        cols = _per_column(A, B)
        blk = PDSLin(A, _cfg(block_gmres=True)).solve_block(B)
        for j in range(NRHS):
            assert blk[j].converged
            assert blk[j].certified == cols[j].certified
            assert blk[j].residual_norm < 1e-10

    def test_direct_path_k1_bit_identical(self):
        # k=1: no separator — the pure batched-triangular-solve path
        A = grid_laplacian(8, 8)
        B = _block(A)
        cols = _per_column(A, B, k=1)
        blk = PDSLin(A, _cfg(k=1)).solve_block(B)
        for j in range(NRHS):
            assert blk[j].schur_size == 0
            assert blk[j].x.tobytes() == cols[j].x.tobytes()

    def test_solve_multiple_delegates_to_block(self):
        A = grid_laplacian(12, 12)
        B = _block(A)
        multi = PDSLin(A, _cfg()).solve_multiple(B)
        blk = PDSLin(A, _cfg()).solve_block(B)
        for r_m, r_b in zip(multi, blk):
            assert r_m.x.tobytes() == r_b.x.tobytes()

    def test_throughput_counter_and_span(self):
        A = grid_laplacian(12, 12)
        tr = Tracer()
        PDSLin(A, _cfg(), tracer=tr).solve_block(_block(A))
        assert tr.counters.get("noise:rhs_per_s", 0.0) > 0.0
        assert "solve_block" in {s.name for s in tr.spans}

    def test_empty_block(self):
        A = grid_laplacian(8, 8)
        assert PDSLin(A, _cfg()).solve_block(
            np.empty((A.shape[0], 0))) == []

    def test_validation(self):
        A = grid_laplacian(8, 8)
        solver = PDSLin(A, _cfg())
        with pytest.raises(ValueError):
            solver.solve_block(np.ones(A.shape[0]))  # 1-D
        with pytest.raises(ValueError):
            solver.solve_block(np.ones((3, 2)))      # wrong n
        bad = np.ones((A.shape[0], 2)) * np.nan
        with pytest.raises(ValueError):
            solver.solve_block(bad)
        with pytest.raises(ValueError):
            solver.solve_multiple(np.ones(A.shape[0]))


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["thread:2", "process:2"])
    def test_block_solve_matches_serial_bitwise(self, backend):
        A = grid_laplacian(16, 16)
        B = _block(A)
        ref = PDSLin(A, _cfg()).solve_block(B)
        solver = PDSLin(A, _cfg(), backend=backend)
        try:
            par = solver.solve_block(B)
        finally:
            if hasattr(solver.backend, "close"):
                solver.backend.close()
        for j in range(NRHS):
            assert par[j].x.tobytes() == ref[j].x.tobytes()
            assert par[j].iterations == ref[j].iterations

    def test_process_backend_with_abft_matches_serial(self):
        A = random_unsymmetric(100, 0.08, seed=7)
        B = _block(A)
        cfg = dict(abft="detect+recover")
        ref = PDSLin(A, _cfg(**cfg)).solve_block(B)
        tr = Tracer()
        solver = PDSLin(A, _cfg(**cfg), tracer=tr, backend="process:2")
        try:
            par = solver.solve_block(B)
        finally:
            solver.backend.close()
        for j in range(NRHS):
            assert par[j].x.tobytes() == ref[j].x.tobytes()
        # the workers' solve audits were folded back and swept clean
        assert tr.counters.get("sdc_checks", 0) > 0
        assert tr.counters.get("sdc_detected", 0) == 0


class TestAbftInterplay:
    def test_krylov_flip_detected_and_recovered(self):
        A = grid_laplacian(16, 16)
        B = _block(A)
        os.environ[abft.ENV_BITFLIP_TARGET] = "krylov"
        os.environ[abft.ENV_BITFLIP_SEED] = "3"
        abft.reset_bitflip_state()
        tr = Tracer()
        solver = PDSLin(A, _cfg(abft="detect+recover"), tracer=tr)
        res = solver.solve_block(B)
        assert tr.counters.get("sdc_detected", 0) >= 1
        assert tr.counters.get("sdc_recovered", 0) >= 1
        for r in res:
            assert r.converged
            assert r.residual_norm < 1e-10

    def test_factor_corruption_swept_and_refactorized(self):
        A = grid_laplacian(16, 16)
        B = _block(A)
        tr = Tracer()
        solver = PDSLin(A, _cfg(abft="detect+recover"), tracer=tr)
        solver.setup()
        clean = PDSLin(A, _cfg()).solve_block(B)
        # corrupt one subdomain's factors after setup: only the
        # solve-phase checksum sweep can catch this. Drop the SuperLU
        # handle so the solves actually run through the corrupted
        # explicit L/U data (the handle keeps its own pristine copy)
        s = solver.subdomains[1]
        recs = abft.flip_bits([s.factors.U.data],
                              rng=np.random.default_rng(5))
        assert recs
        s.factors.handle = None
        s.handle_thresh = None
        res = solver.solve_block(B)
        actions = {e.action for e in solver.recovery.events}
        assert "sdc-detected" in actions
        assert "sdc-recovered" in actions
        for j, r in enumerate(res):
            assert r.converged
            assert r.residual_norm < 1e-10
            # the redone pass runs on pristine refactorized factors
            assert np.allclose(r.x, clean[j].x)


class TestCheckpointAndReuse:
    def test_fingerprint_invariant_to_solve_phase_fields(self):
        base = config_fingerprint(_cfg())
        assert config_fingerprint(_cfg(krylov_seed=False)) == base
        assert config_fingerprint(_cfg(block_gmres=True)) == base
        assert "krylov_seed" in SOLVE_PHASE_FIELDS
        assert "block_gmres" in SOLVE_PHASE_FIELDS

    def test_resume_then_solve_block_bit_parity(self, tmp_path):
        A = grid_laplacian(16, 16)
        B = _block(A)
        ref = PDSLin(A, _cfg(), checkpoint=tmp_path).solve_block(B)
        resumed = PDSLin(A, _cfg(), resume=tmp_path).solve_block(B)
        for j in range(NRHS):
            assert resumed[j].x.tobytes() == ref[j].x.tobytes()

    def test_update_matrix_then_solve_block(self):
        A = grid_laplacian(12, 12)
        A2 = (A * 1.5).tocsr()
        B = _block(A)
        solver = PDSLin(A, _cfg())
        solver.solve_block(B)
        res2 = solver.update_matrix(A2).solve_block(B)
        ref = PDSLin(A2, _cfg()).solve_block(B)
        for j in range(NRHS):
            assert res2[j].x.tobytes() == ref[j].x.tobytes()


class TestRefineBlock:
    def _system(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        A = sp.random(n, n, density=0.2, random_state=rng,
                      format="csc") + sp.eye(n) * 5.0
        A = A.tocsc()
        B = rng.standard_normal((n, 4))
        lu = sp.linalg.splu(A)
        return A, B, lu

    def test_matches_per_column_refine_bitwise(self):
        A, B, lu = self._system()
        X0 = np.zeros_like(B)
        # splu.solve is columnwise bit-deterministic, so block refine
        # must reproduce scalar refine exactly
        Xb, accs = refine_block(A, B, X0, lu.solve, maxiter=3)
        for j in range(B.shape[1]):
            xj, acc = refine(A, B[:, j], X0[:, j], lu.solve, maxiter=3)
            np.testing.assert_array_equal(Xb[:, j], xj)
            assert accs[j].refine_steps == acc.refine_steps
            assert accs[j].berr == acc.berr
            assert accs[j].certified == acc.certified

    def test_maxiter_zero_spends_no_solves(self):
        A, B, _ = self._system()
        calls = []

        def solve_block(R):
            calls.append(R.shape)
            return R

        X, accs = refine_block(A, B, B.copy(), solve_block, maxiter=0)
        assert calls == []
        assert all(a.refine_steps == 0 for a in accs)

    def test_empty_block(self):
        A, B, lu = self._system()
        X, accs = refine_block(A, B[:, :0], B[:, :0].copy(), lu.solve)
        assert X.shape[1] == 0 and accs == []

    def test_nonfinite_correction_stagnates_column(self):
        A, B, lu = self._system()

        def poisoned(R):
            D = lu.solve(R)
            D[:, 0] = np.nan  # first active column gets a bad correction
            return D

        X, accs = refine_block(A, B, np.zeros_like(B), poisoned, maxiter=3)
        assert accs[0].stagnated
        assert np.isfinite(X).all()  # best iterate (x0) returned, not NaN
