"""Edge cases and failure injection across modules."""

import numpy as np
import pytest
import scipy.sparse as sp
from tests.conftest import grid_laplacian

from repro.core import build_dbbd, rhb_partition
from repro.graphs import Graph, nested_dissection_partition
from repro.hypergraph import Hypergraph, bisect_hypergraph, cutsize
from repro.lu import (
    GilbertPeierlsLU,
    SupernodalLower,
    blocked_triangular_solve,
    detect_supernodes,
    factorize,
    partition_columns,
    solution_pattern,
)
from repro.ordering import elimination_tree, minimum_degree, postorder
from repro.solver import PDSLin, PDSLinConfig


class TestDegenerateGraphs:
    def test_single_vertex_graph(self):
        A = sp.csr_matrix(np.array([[2.0]]))
        g = Graph.from_matrix(A)
        assert g.n_vertices == 1 and g.n_edges == 0
        assert elimination_tree(A)[0] == -1

    def test_empty_hypergraph_bisect(self):
        H = Hypergraph.from_arrays([0], [], 4)
        res = bisect_hypergraph(H, seed=0)
        assert res.cut == 0

    def test_disconnected_matrix_partition(self):
        A = sp.block_diag([grid_laplacian(5, 5)] * 4).tocsr()
        r = nested_dissection_partition(A, 4, seed=0)
        build_dbbd(A, r.part, 4)
        # ideally the components become the parts with tiny separator
        assert r.separator_size <= 10

    def test_diagonal_matrix_rhb(self):
        A = (2.0 * sp.eye(40)).tocsr()
        r = rhb_partition(A, 4, seed=0)
        assert r.separator_size == 0
        sizes = np.bincount(r.col_part, minlength=4)
        assert np.all(sizes > 0)

    def test_dense_matrix_partition(self):
        # fully dense: any k-way partition needs a huge separator; the
        # machinery must still produce a *valid* DBBD
        A = sp.csr_matrix(np.ones((20, 20)) + 20 * np.eye(20))
        r = rhb_partition(A, 2, seed=0)
        d = build_dbbd(A, r.col_part, 2, validate=True)
        assert d.separator_size >= 10

    def test_path_graph_ngd(self):
        n = 33
        A = (sp.diags([np.ones(n - 1), 2 * np.ones(n), np.ones(n - 1)],
                      [-1, 0, 1])).tocsr()
        r = nested_dissection_partition(A, 4, seed=0)
        # a path needs exactly k-1 separator vertices
        assert r.separator_size <= 6
        build_dbbd(A, r.part, 4)


class TestDegenerateLU:
    def test_1x1_matrix(self):
        A = sp.csc_matrix(np.array([[3.0]]))
        f = factorize(A)
        assert f.solve(np.array([6.0]))[0] == pytest.approx(2.0)

    def test_identity_supernodes(self):
        snl = SupernodalLower.from_csc(sp.eye(5).tocsc(), unit_diagonal=True)
        X = np.arange(10.0).reshape(5, 2)
        Y = X.copy()
        snl.solve_inplace(Y)
        np.testing.assert_array_equal(X, Y)

    def test_empty_rhs_block(self):
        A = grid_laplacian(5, 5).tocsc()
        f = factorize(A, diag_pivot_thresh=0.0)
        E = sp.csr_matrix((25, 0))
        G = solution_pattern(f.L, E)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
        res = blocked_triangular_solve(snl, E, G, [])
        assert res.X.shape == (25, 0)
        assert res.padding.total_padded == 0

    def test_reference_lu_1x1_zero(self):
        with pytest.raises(RuntimeError):
            GilbertPeierlsLU(sp.csc_matrix((1, 1)))

    def test_missing_diagonal_supernode_rejected(self):
        # strictly lower factor without stored diagonal
        L = sp.csc_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            SupernodalLower.from_csc(L, unit_diagonal=True)


class TestSolverFailureModes:
    def test_k_larger_than_reasonable(self, rng):
        # k close to n: many singleton subdomains; must still work
        A = grid_laplacian(6, 6)
        b = rng.standard_normal(36)
        res = PDSLin(A, PDSLinConfig(k=8, seed=0)).solve(b)
        assert res.residual_norm < 1e-7

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            PDSLin(sp.csr_matrix((3, 4)), PDSLinConfig(k=2))

    def test_setup_idempotent_solves(self, rng):
        A = grid_laplacian(8, 8)
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0))
        solver.setup()
        b1 = rng.standard_normal(64)
        b2 = rng.standard_normal(64)
        r1 = solver.solve(b1)
        r2 = solver.solve(b2)
        assert r1.residual_norm < 1e-8 and r2.residual_norm < 1e-8

    def test_singular_subdomain_recovers_degraded(self):
        # a structurally singular matrix (zero row/column) used to abort
        # the subdomain factorization; the recovery ladder now survives
        # it via static pivot perturbation — and the result says so
        # (degraded + perturbation count) instead of claiming health
        A = grid_laplacian(6, 6).tolil()
        A[7, :] = 0.0
        A[:, 7] = 0.0
        A = sp.csr_matrix(A)
        solver = PDSLin(A, PDSLinConfig(k=2, seed=0))
        result = solver.solve(np.ones(36))
        assert result.degraded
        assert result.recovery.perturbed_pivots >= 1
        assert result.recovery.actions().get("static-pivot", 0) >= 1
        # the true residual is reported honestly (the system is singular,
        # so no accurate solution exists)
        assert result.residual_norm > 1e-8


class TestMetricEdgeCases:
    def test_net_with_all_vertices(self):
        H = Hypergraph.from_arrays([0, 5], [0, 1, 2, 3, 4], 5)
        part = np.array([0, 0, 1, 1, 2])
        assert cutsize(H, part, 3, "con1") == 2
        assert cutsize(H, part, 3, "cnet") == 1
        assert cutsize(H, part, 3, "soed") == 3

    def test_empty_net_ignored(self):
        H = Hypergraph.from_arrays([0, 0, 2], [0, 1], 2)
        part = np.array([0, 1])
        assert cutsize(H, part, 2, "con1") == 1  # only the real net

    def test_partition_columns_block_larger_than_m(self):
        parts = partition_columns(np.arange(3), 10)
        assert len(parts) == 1 and parts[0].size == 3

    def test_detect_supernodes_empty(self):
        assert detect_supernodes(sp.csc_matrix((0, 0))) == []


class TestOrderingEdgeCases:
    def test_minimum_degree_complete_graph(self):
        A = sp.csr_matrix(np.ones((6, 6)))
        order = minimum_degree(A)
        assert sorted(order.tolist()) == list(range(6))

    def test_postorder_forest(self):
        # two independent trees
        parent = np.array([1, -1, 3, -1])
        po = postorder(parent)
        assert sorted(po.tolist()) == [0, 1, 2, 3]
        pos = {v: i for i, v in enumerate(po)}
        assert pos[0] < pos[1] and pos[2] < pos[3]

    def test_etree_of_empty_matrix(self):
        par = elimination_tree(sp.csr_matrix((0, 0)))
        assert par.size == 0
