"""Unit tests for the LU substrate: symbolic reach, numeric engines,
supernodes, and the blocked triangular solver."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from tests.conftest import random_spd

from repro.lu import (
    GilbertPeierlsLU,
    SupernodalLower,
    blocked_triangular_solve,
    detect_supernodes,
    factorize,
    lu_flop_count,
    padded_zeros,
    partition_columns,
    reach,
    solution_pattern,
    toposorted_reach,
)


def lower_tri(n, density, seed):
    L = sp.tril(sp.random(n, n, density, random_state=seed), k=-1)
    return (L + sp.eye(n)).tocsc()


class TestReach:
    def test_matches_numeric_pattern(self):
        L = lower_tri(30, 0.1, 0)
        b = np.zeros(30)
        b[3] = 1.0
        r = reach(L, np.array([3]))
        x = spla.spsolve_triangular(L.tocsr(), b, lower=True)
        np.testing.assert_array_equal(np.flatnonzero(x != 0), r)

    def test_toposorted_dependency_order(self):
        L = lower_tri(40, 0.12, 1)
        topo = toposorted_reach(L, np.array([0, 5]))
        pos = {v: i for i, v in enumerate(topo)}
        for j in topo:
            col = L.indices[L.indptr[j]:L.indptr[j + 1]]
            for i in col:
                if i > j and i in pos:
                    assert pos[j] < pos[i]

    def test_multiple_support(self):
        L = lower_tri(20, 0.15, 2)
        r1 = set(reach(L, np.array([2])).tolist())
        r2 = set(reach(L, np.array([7])).tolist())
        r12 = set(reach(L, np.array([2, 7])).tolist())
        assert r12 == r1 | r2

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            reach(sp.eye(3).tocsc(), np.array([5]))

    def test_solution_pattern_covers_numeric(self):
        L = lower_tri(40, 0.1, 3)
        B = sp.random(40, 10, 0.08, random_state=4, format="csr")
        G = solution_pattern(L, B)
        X = spla.spsolve_triangular(L.tocsr(), B.toarray(), lower=True)
        violating = (np.abs(X) > 0) & (G.toarray() == 0)
        assert not violating.any()


class TestNumericLU:
    @pytest.mark.parametrize("engine", ["scipy", "reference"])
    def test_factorization_identity(self, engine, spd60):
        f = factorize(spd60.tocsc(), engine=engine, diag_pivot_thresh=0.5)
        LU = (f.L @ f.U).toarray()
        Ap = spd60.toarray()[np.ix_(f.perm_r, f.perm_c)]
        assert np.abs(LU - Ap).max() < 1e-10

    @pytest.mark.parametrize("engine", ["scipy", "reference"])
    def test_solve_residual(self, engine, unsym50, rng):
        f = factorize(unsym50.tocsc(), engine=engine, diag_pivot_thresh=1.0)
        b = rng.standard_normal(50)
        assert f.residual_norm(unsym50, b) < 1e-10

    def test_engines_agree_with_diagonal_pivoting(self, spd60, rng):
        b = rng.standard_normal(60)
        xs = factorize(spd60.tocsc(), engine="scipy",
                       diag_pivot_thresh=0.0).solve(b)
        xr = factorize(spd60.tocsc(), engine="reference",
                       diag_pivot_thresh=0.0).solve(b)
        np.testing.assert_allclose(xs, xr, rtol=1e-8, atol=1e-10)

    def test_reference_partial_pivoting_stability(self):
        # a matrix needing pivoting: tiny diagonal entry
        A = sp.csc_matrix(np.array([[1e-14, 1.0], [1.0, 1.0]]))
        f = GilbertPeierlsLU(A, pivot_threshold=1.0).factors
        b = np.array([1.0, 2.0])
        x = f.solve(b)
        np.testing.assert_allclose(A @ x, b, atol=1e-12)

    def test_reference_singular_detected(self):
        A = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(RuntimeError):
            GilbertPeierlsLU(A)

    def test_col_perm_applied(self, spd60, rng):
        perm = rng.permutation(60)
        f = factorize(spd60, col_perm=perm)
        b = rng.standard_normal(60)
        # f solves the permuted system
        Ap = spd60[perm][:, perm]
        x = f.solve(b)
        np.testing.assert_allclose(Ap @ x, b, atol=1e-9)

    def test_flop_count_positive(self, spd60):
        f = factorize(spd60.tocsc())
        assert lu_flop_count(f) > 0

    def test_fill_nnz(self, grid8):
        f = factorize(grid8.tocsc(), diag_pivot_thresh=0.0)
        assert f.fill_nnz >= grid8.nnz - grid8.shape[0]

    def test_unknown_engine(self, spd60):
        with pytest.raises(ValueError):
            factorize(spd60, engine="cuda")

    def test_keep_handle_solve(self, spd60, rng):
        f = factorize(spd60.tocsc(), keep_handle=True)
        assert f.handle is not None
        b = rng.standard_normal(60)
        np.testing.assert_allclose(spd60 @ f.solve(b), b, atol=1e-9)


class TestSupernodes:
    def test_dense_lower_is_one_supernode(self):
        L = sp.csc_matrix(np.tril(np.ones((6, 6))))
        sn = detect_supernodes(L)
        assert sn == [(0, 6)]

    def test_identity_all_singletons(self):
        sn = detect_supernodes(sp.eye(5).tocsc())
        assert sn == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_max_size_respected(self):
        L = sp.csc_matrix(np.tril(np.ones((10, 10))))
        sn = detect_supernodes(L, max_size=4)
        assert all(c1 - c0 <= 4 for c0, c1 in sn)

    def test_ranges_cover_all_columns(self, grid16):
        f = factorize(grid16.tocsc(), diag_pivot_thresh=0.0)
        sn = detect_supernodes(f.L)
        assert sn[0][0] == 0 and sn[-1][1] == grid16.shape[0]
        for (a0, a1), (b0, b1) in zip(sn, sn[1:]):
            assert a1 == b0

    def test_repack_solve_matches_dense(self, grid16, rng):
        f = factorize(grid16.tocsc(), diag_pivot_thresh=0.0)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
        X = rng.standard_normal((grid16.shape[0], 3))
        Xref = spla.spsolve_triangular(f.L.tocsr(), X, lower=True,
                                       unit_diagonal=True)
        Xcopy = X.copy()
        snl.solve_inplace(Xcopy)
        np.testing.assert_allclose(Xcopy, Xref, atol=1e-10)

    def test_non_unit_diagonal_solve(self, grid16, rng):
        f = factorize(grid16.tocsc(), diag_pivot_thresh=0.0)
        UT = f.U.T.tocsc()
        snl = SupernodalLower.from_csc(UT, unit_diagonal=False)
        X = rng.standard_normal((grid16.shape[0], 2))
        Xref = spla.spsolve_triangular(UT.tocsr(), X, lower=True)
        Xc = X.copy()
        snl.solve_inplace(Xc)
        np.testing.assert_allclose(Xc, Xref, atol=1e-8)

    def test_active_cols_skip_is_exact(self, grid16, rng):
        # with a sparse RHS whose reach is the active set, skipping
        # inactive supernodes changes nothing
        f = factorize(grid16.tocsc(), diag_pivot_thresh=0.0)
        n = grid16.shape[0]
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
        b = np.zeros((n, 1))
        b[n // 2, 0] = 1.0
        from repro.lu import reach
        act = np.zeros(n, dtype=bool)
        act[reach(f.L, np.array([n // 2]))] = True
        full = b.copy()
        snl.solve_inplace(full)
        skipped = b.copy()
        snl.solve_inplace(skipped, active_cols=act)
        np.testing.assert_allclose(skipped, full, atol=1e-12)

    def test_flops_reported(self, grid16, rng):
        f = factorize(grid16.tocsc(), diag_pivot_thresh=0.0)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
        X = rng.standard_normal((grid16.shape[0], 4))
        flops = snl.solve_inplace(X)
        assert flops > 0

    def test_wrong_shape_rejected(self, grid16):
        f = factorize(grid16.tocsc(), diag_pivot_thresh=0.0)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
        with pytest.raises(ValueError):
            snl.solve_inplace(np.zeros(5))


class TestBlockedSolve:
    def setup_problem(self, seed=0):
        A = random_spd(80, 0.06, seed=seed)
        f = factorize(A.tocsc(), diag_pivot_thresh=0.0)
        E = sp.random(80, 24, 0.05, random_state=seed + 1, format="csr")
        Ep = f.permute_rows(E)
        G = solution_pattern(f.L, Ep)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
        return f, Ep, G, snl

    def test_matches_dense_reference(self):
        f, Ep, G, snl = self.setup_problem()
        parts = partition_columns(np.arange(24), 6)
        res = blocked_triangular_solve(snl, Ep, G, parts)
        ref = spla.spsolve_triangular(f.L.tocsr(), Ep.toarray(), lower=True,
                                      unit_diagonal=True)
        np.testing.assert_allclose(res.X.toarray(), ref, atol=1e-10)

    def test_column_order_irrelevant_to_values(self):
        f, Ep, G, snl = self.setup_problem()
        rng = np.random.default_rng(0)
        order = rng.permutation(24)
        parts = partition_columns(order, 7)
        res = blocked_triangular_solve(snl, Ep, G, parts)
        ref = spla.spsolve_triangular(f.L.tocsr(), Ep.toarray(), lower=True,
                                      unit_diagonal=True)
        np.testing.assert_allclose(res.X.toarray(), ref, atol=1e-10)

    def test_drop_tol_thresholds(self):
        f, Ep, G, snl = self.setup_problem()
        parts = partition_columns(np.arange(24), 6)
        dense = blocked_triangular_solve(snl, Ep, G, parts, drop_tol=0.0)
        dropped = blocked_triangular_solve(snl, Ep, G, parts, drop_tol=0.5)
        assert dropped.X.nnz < dense.X.nnz

    def test_padding_stats_eq13(self):
        G = sp.csr_matrix(np.array([[1, 0, 1, 0],
                                    [0, 1, 0, 0],
                                    [0, 0, 0, 0]], dtype=float))
        parts = [np.array([0, 1]), np.array([2, 3])]
        st = padded_zeros(G, parts)
        # part {0,1}: rows 0,1 active -> 2*2 entries, 2 nonzeros -> 2 padded
        # part {2,3}: row 0 active -> 1*2 entries, 1 nonzero -> 1 padded
        assert st.per_part_padded == (2, 1)
        assert st.total_block_entries == 6
        assert st.fraction == pytest.approx(0.5)

    def test_smaller_blocks_less_padding(self):
        f, Ep, G, snl = self.setup_problem(seed=2)
        fr = []
        for B in (2, 8, 24):
            parts = partition_columns(np.arange(24), B)
            st = padded_zeros(G, parts)
            fr.append(st.fraction)
        assert fr[0] <= fr[1] <= fr[2]

    def test_block_size_one_no_padding(self):
        f, Ep, G, snl = self.setup_problem(seed=3)
        parts = partition_columns(np.arange(24), 1)
        st = padded_zeros(G, parts)
        assert st.total_padded == 0

    def test_partition_columns_remainder(self):
        parts = partition_columns(np.arange(10), 4)
        assert [p.size for p in parts] == [4, 4, 2]

    def test_partition_columns_bad_block(self):
        with pytest.raises(ValueError):
            partition_columns(np.arange(4), 0)

    def test_flops_scale_with_padding(self):
        # a bad ordering (interleaved clusters) must cost more flops than
        # a good one (clusters contiguous) at the same block size
        f, Ep, G, snl = self.setup_problem(seed=4)
        good = partition_columns(np.arange(24), 6)
        rng = np.random.default_rng(1)
        bad = partition_columns(rng.permutation(24), 6)
        fg = blocked_triangular_solve(snl, Ep, G, good).flops
        fb = blocked_triangular_solve(snl, Ep, G, bad).flops
        st_g = padded_zeros(G, good).total_padded
        st_b = padded_zeros(G, bad).total_padded
        if st_b > st_g:  # random is worse (overwhelmingly likely)
            assert fb >= fg
