"""Tests for the consolidated runtime-options API surface:
RuntimeOptions + deprecation shims, BlockResult list compatibility,
and the repro.solve / repro.serve entry points."""

import dataclasses
import warnings

import numpy as np
import pytest

import repro
from repro.matrices import generate
from repro.obs.tracer import Tracer
from repro.solver import (
    BlockResult,
    PDSLin,
    PDSLinConfig,
    PDSLinResult,
    RuntimeOptions,
)


@pytest.fixture(scope="module")
def system():
    gm = generate("tdr190k", "tiny")
    rng = np.random.default_rng(0)
    return gm.A, rng.standard_normal(gm.A.shape[0])


def _cfg():
    return PDSLinConfig(k=4, seed=0)


class TestRuntimeOptions:
    def test_runtime_keyword_emits_no_warning(self, system):
        A, b = system
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            solver = PDSLin(A, _cfg(),
                            runtime=RuntimeOptions(tracer=Tracer()))
            assert solver.solve(b).converged

    def test_legacy_kwarg_warns_and_still_works(self, system):
        A, b = system
        with pytest.warns(DeprecationWarning, match="tracer"):
            legacy = PDSLin(A, _cfg(), tracer=Tracer())
        modern = PDSLin(A, _cfg(), runtime=RuntimeOptions(tracer=Tracer()))
        assert legacy.solve(b).x.tobytes() == modern.solve(b).x.tobytes()

    def test_warning_names_every_legacy_kwarg(self, system):
        A, _ = system
        with pytest.warns(DeprecationWarning) as rec:
            PDSLin(A, _cfg(), backend="serial", verify=False)
        message = str(rec[0].message)
        assert "backend" in message and "verify" in message
        assert "RuntimeOptions" in message

    def test_explicit_kwarg_overrides_runtime_field(self, system):
        A, _ = system
        with pytest.warns(DeprecationWarning):
            solver = PDSLin(A, _cfg(),
                            runtime=RuntimeOptions(verify=False),
                            verify=True)
        assert solver.runtime.verify is True
        assert solver.verifier.__class__.__name__ == "Verifier"

    def test_every_legacy_kwarg_is_a_runtime_field(self):
        assert set(RuntimeOptions.field_names()) == {
            "tracer", "backend", "verify", "fault_plan", "retry_policy",
            "checkpoint", "checkpoint_policy", "resume",
            "task_deadline_s", "speculation"}

    def test_runtime_options_are_reusable(self, system):
        A, b = system
        rt = RuntimeOptions(backend="serial")
        r1 = PDSLin(A, _cfg(), runtime=rt).solve(b)
        r2 = PDSLin(A, _cfg(), runtime=rt).solve(b)
        assert r1.x.tobytes() == r2.x.tobytes()

    def test_invalid_deadline_still_rejected(self, system):
        A, _ = system
        with pytest.raises(ValueError, match="task_deadline_s"):
            PDSLin(A, _cfg(),
                   runtime=RuntimeOptions(task_deadline_s=-1.0))


class TestBlockResult:
    @pytest.fixture(scope="class")
    def block(self, system):
        A, _ = system
        rng = np.random.default_rng(1)
        B = rng.standard_normal((A.shape[0], 3))
        solver = PDSLin(A, _cfg())
        return solver.solve_block(B), B

    def test_is_sequence_of_results(self, block):
        blk, B = block
        assert len(blk) == 3
        assert all(isinstance(r, PDSLinResult) for r in blk)
        assert isinstance(blk[0], PDSLinResult)
        assert isinstance(blk[1:], list)

    def test_list_equality_preserved(self, block):
        blk, _ = block
        assert blk == list(blk)
        assert blk == blk
        assert not (blk == ["something else"])

    def test_unpacking_and_comprehensions(self, block):
        blk, _ = block
        first, *rest = blk
        assert isinstance(first, PDSLinResult) and len(rest) == 2
        assert [r.converged for r in blk] == [True, True, True]

    def test_X_matches_columns(self, block):
        blk, B = block
        assert blk.X.shape == B.shape
        for j, r in enumerate(blk):
            assert np.array_equal(blk.X[:, j], r.x)

    def test_aggregates(self, block):
        blk, _ = block
        assert blk.converged and blk.nrhs == 3
        assert blk.residual_norms == [r.residual_norm for r in blk]
        assert blk.degraded == any(r.degraded for r in blk)

    def test_aggregate_accuracy_is_worst_column(self, block):
        blk, _ = block
        accs = [r.accuracy for r in blk]
        assert all(a is not None for a in accs)
        agg = blk.accuracy
        assert agg.berr == max(a.berr for a in accs)
        assert agg.certified == all(a.certified for a in accs)

    def test_empty_block(self, system):
        A, _ = system
        blk = PDSLin(A, _cfg()).solve_block(
            np.empty((A.shape[0], 0)))
        assert len(blk) == 0 and blk == []
        assert blk.X.shape == (A.shape[0], 0)
        assert blk.accuracy is None

    def test_solve_multiple_returns_block_result(self, system):
        A, _ = system
        rng = np.random.default_rng(2)
        B = rng.standard_normal((A.shape[0], 2))
        blk = PDSLin(A, _cfg()).solve_multiple(B)
        assert isinstance(blk, BlockResult) and len(blk) == 2


class TestTopLevelAPI:
    def test_solve_matches_class_api(self, system):
        A, b = system
        r = repro.solve(A, b, k=4, seed=0)
        ref = PDSLin(A, _cfg()).solve(b)
        assert r.x.tobytes() == ref.x.tobytes()

    def test_solve_block_path(self, system):
        A, _ = system
        rng = np.random.default_rng(3)
        B = rng.standard_normal((A.shape[0], 2))
        blk = repro.solve(A, B, k=4, seed=0)
        assert isinstance(blk, BlockResult) and blk.converged

    def test_option_routing(self, system):
        A, b = system
        # k -> config, backend -> runtime, both loose
        r = repro.solve(A, b, k=4, seed=0, backend="serial")
        assert r.converged

    def test_unknown_option_rejected(self, system):
        A, b = system
        with pytest.raises(TypeError, match="bogus"):
            repro.solve(A, b, bogus=1)

    def test_conflicting_config_rejected(self, system):
        A, b = system
        with pytest.raises(TypeError, match="config="):
            repro.solve(A, b, config=_cfg(), k=8)
        with pytest.raises(TypeError, match="runtime="):
            repro.solve(A, b, runtime=RuntimeOptions(), backend="serial")

    def test_serve_round_trip(self, system):
        A, b = system
        with repro.serve(config=_cfg()) as svc:
            assert svc.solve(A, b).converged
        assert svc.closed

    def test_config_runtime_split_is_exhaustive(self):
        """No field name may ever live in both dataclasses — routing
        by name depends on it."""
        cfg_fields = {f.name for f in dataclasses.fields(PDSLinConfig)}
        overlap = cfg_fields & set(RuntimeOptions.field_names())
        assert not overlap
