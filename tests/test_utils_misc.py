"""Unit tests for timers, op counters, and RNG plumbing."""

import time

import numpy as np
import pytest

from repro.utils import (
    OpCounter,
    StageTimer,
    Timer,
    format_seconds,
    gemm_flops,
    lu_flops_from_counts,
    rng_from,
    spawn,
    trsv_flops,
)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running


class TestStageTimer:
    def test_records_stage(self):
        st = StageTimer()
        with st.stage("a"):
            pass
        assert st.get("a") >= 0.0
        assert st.counts["a"] == 1

    def test_nested_stages_record_both_keys(self):
        st = StageTimer()
        with st.stage("outer"):
            with st.stage("inner"):
                pass
        assert "outer/inner" in st.totals
        assert "inner" in st.totals

    def test_add_external(self):
        st = StageTimer()
        st.add("x", 1.5)
        st.add("x", 0.5)
        assert st.get("x") == pytest.approx(2.0)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTimer().add("x", -1.0)

    def test_merge(self):
        a, b = StageTimer(), StageTimer()
        a.add("s", 1.0)
        b.add("s", 2.0)
        b.add("t", 3.0)
        a.merge(b)
        assert a.get("s") == pytest.approx(3.0)
        assert a.get("t") == pytest.approx(3.0)

    def test_report_contains_stage(self):
        st = StageTimer()
        st.add("mystage", 0.1)
        assert "mystage" in st.report()

    def test_sibling_stages_attributed_separately(self):
        """Each closing stage must read *its own* span record, not a
        sibling's — two stages under the same parent must produce two
        distinct path keys with one count each."""
        st = StageTimer()
        with st.stage("outer"):
            with st.stage("a"):
                pass
            with st.stage("b"):
                pass
        assert st.counts["outer/a"] == 1
        assert st.counts["outer/b"] == 1
        assert st.counts["outer"] == 1

    def test_deep_nesting_paths(self):
        st = StageTimer()
        with st.stage("lu"):
            with st.stage("solve"):
                with st.stage("scatter"):
                    pass
        assert "lu/solve/scatter" in st.totals
        assert "lu/solve" in st.totals
        # flat names accumulate too, for the per-stage view
        assert {"lu", "solve", "scatter"} <= set(st.totals)

    def test_repeated_stage_accumulates(self):
        st = StageTimer()
        for _ in range(3):
            with st.stage("s"):
                pass
        assert st.counts["s"] == 3
        assert st.get("s") >= 0.0

    def test_nested_same_name_gets_both_keys(self):
        st = StageTimer()
        with st.stage("s"):
            with st.stage("s"):
                pass
        assert st.counts["s/s"] == 1
        assert st.counts["s"] == 2  # once flat from inner, once as outer

    def test_merge_preserves_counts_and_spans(self):
        a, b = StageTimer(), StageTimer()
        with a.stage("x"):
            pass
        with b.stage("x"):
            pass
        with b.stage("y"):
            pass
        n_spans = len(a.tracer.spans) + len(b.tracer.spans)
        a.merge(b)
        assert a.counts["x"] == 2
        assert a.counts["y"] == 1
        assert len(a.tracer.spans) == n_spans
        # totals stay consistent with the merged span records
        from collections import defaultdict
        by_path = defaultdict(float)
        for rec in a.tracer.spans:
            by_path[rec.path] += rec.wall_s
        for path, tot in by_path.items():
            assert a.totals[path] == pytest.approx(tot)

    def test_merge_is_additive_not_destructive(self):
        a, b = StageTimer(), StageTimer()
        a.add("s", 1.0)
        b.add("s", 2.0)
        a.merge(b)
        a.merge(StageTimer())  # merging an empty ledger changes nothing
        assert a.get("s") == pytest.approx(3.0)
        assert b.get("s") == pytest.approx(2.0)  # source untouched


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-6).endswith("us")

    def test_milliseconds(self):
        assert format_seconds(5e-3).endswith("ms")

    def test_seconds(self):
        assert format_seconds(2.0) == "2.000s"


class TestOpCounter:
    def test_add_and_total(self):
        oc = OpCounter()
        oc.add("gemm", 100)
        oc.add("gemm", 50)
        oc.add("trsv", 10)
        assert oc.get("gemm") == 150
        assert oc.total == 160

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().add("x", -1)

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add("k", 1)
        b.add("k", 2)
        a.merge(b)
        assert a.get("k") == 3

    def test_flop_formulas(self):
        assert gemm_flops(2, 3, 4) == 48
        assert trsv_flops(10, 3) == 60
        assert lu_flops_from_counts([2, 0], [3, 1]) == 2 + 12

    def test_report_sorted_by_size(self):
        oc = OpCounter()
        oc.add("small", 1)
        oc.add("big", 100)
        rep = oc.report()
        assert rep.index("big") < rep.index("small")


class TestPrng:
    def test_rng_from_int_deterministic(self):
        a = rng_from(7).random()
        b = rng_from(7).random()
        assert a == b

    def test_rng_from_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert rng_from(g) is g

    def test_spawn_children_differ(self):
        kids = spawn(0, 3)
        vals = [k.random() for k in kids]
        assert len(set(vals)) == 3

    def test_spawn_deterministic(self):
        v1 = [k.random() for k in spawn(42, 2)]
        v2 = [k.random() for k in spawn(42, 2)]
        assert v1 == v2

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)
