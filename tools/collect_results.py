#!/usr/bin/env python
"""Collect archived bench outputs into one markdown appendix.

Reads every ``benchmarks/results/*.txt`` produced by
``pytest benchmarks/ --benchmark-only`` and writes
``benchmarks/results/ALL_RESULTS.md`` — the raw-measurements appendix
referenced from EXPERIMENTS.md.

Usage:  python tools/collect_results.py [results_dir]
"""

from __future__ import annotations

import sys
from datetime import date
from pathlib import Path

ORDER = [
    "table1", "fig1", "fig3_a", "fig3_b", "fig3_c", "fig3_d",
    "table2", "table3",
    "fig4_tdr190k", "fig4_dds_quad", "fig4_dds_linear", "fig4_matrix211",
    "fig5_tdr190k", "fig5_dds_quad", "fig5_dds_linear", "fig5_matrix211",
    "quasidense", "scaling", "ablation_weights", "ablation_fm",
    "solver_options",
]


def main(results_dir: str | None = None) -> int:
    root = Path(results_dir) if results_dir else \
        Path(__file__).resolve().parent.parent / "benchmarks" / "results"
    if not root.is_dir():
        print(f"no results directory at {root}", file=sys.stderr)
        return 1
    files = {p.stem: p for p in root.glob("*.txt")}
    names = [n for n in ORDER if n in files]
    names += sorted(set(files) - set(ORDER))
    out = [f"# Raw benchmark outputs ({date.today().isoformat()})", ""]
    for name in names:
        out.append(f"## {name}")
        out.append("")
        out.append("```")
        out.append(files[name].read_text().rstrip())
        out.append("```")
        out.append("")
    target = root / "ALL_RESULTS.md"
    target.write_text("\n".join(out))
    print(f"wrote {target} ({len(names)} sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
