#!/usr/bin/env python
"""Record the perf-smoke baseline for the CI perf gate.

Runs the :mod:`repro.obs.smoke` scenario N times, takes the per-stage
*median* wall time (single-shot timings are noisy; counters are
deterministic and must agree across runs), and writes the result as
``benchmarks/baselines/smoke.json``. Commit the output; the CI
perf-smoke job diffs every fresh run against it via
``tools/perf_gate.py``.

Usage::

    PYTHONPATH=src python tools/record_baseline.py --runs 5
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

if __package__ in (None, ""):
    # allow running as a plain script: put src/ on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.gate import NOISE_COUNTER_PREFIX
from repro.obs.smoke import MULTIRHS_NRHS, run_multirhs_smoke, run_smoke

BASELINE_DIR = Path(__file__).resolve().parent.parent / \
    "benchmarks" / "baselines"
DEFAULT_OUTS = {"smoke": BASELINE_DIR / "smoke.json",
                "multirhs": BASELINE_DIR / "multirhs.json"}


def _deterministic(counters: dict) -> dict:
    """Drop ``noise:``-prefixed counters: they carry wall-clock skew and
    legitimately differ across identical runs."""
    return {name: v for name, v in counters.items()
            if not name.startswith(NOISE_COUNTER_PREFIX)}


def record(runs: int, *, scale: str, k: int, seed: int,
           scenario: str = "smoke",
           nrhs: int = MULTIRHS_NRHS) -> dict:
    """Median-of-N scenario metrics (see module docstring)."""
    if runs <= 0:
        raise ValueError("runs must be positive")
    if scenario == "multirhs":
        samples = [run_multirhs_smoke(scale=scale, k=k, seed=seed,
                                      nrhs=nrhs).metrics
                   for _ in range(runs)]
    else:
        samples = [run_smoke(scale=scale, k=k, seed=seed).metrics
                   for _ in range(runs)]
    base = samples[0]
    base_counters = _deterministic(base["totals"]["counters"])
    for other in samples[1:]:
        if _deterministic(other["totals"]["counters"]) != base_counters:
            raise RuntimeError(
                f"op counters differ across identical runs; the "
                f"{scenario} scenario is not deterministic — refusing "
                f"to record")
    out = {k_: v for k_, v in base.items() if k_ != "stages"}
    out["stages"] = {}
    for name, st in base["stages"].items():
        walls = [s["stages"][name]["wall_s"] for s in samples]
        out["stages"][name] = {
            "wall_s": round(statistics.median(walls), 9),
            "calls": st["calls"],
            "counters": _deterministic(st["counters"]),
        }
    out["totals"] = {
        "wall_s": round(statistics.median(
            s["totals"]["wall_s"] for s in samples), 9),
        "counters": base_counters,
    }
    out["meta"] = dict(base.get("meta", {}), baseline_runs=runs)
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--runs", type=int, default=5,
                    help="number of smoke runs to take the median over")
    ap.add_argument("--scenario", choices=("smoke", "multirhs"),
                    default="smoke")
    ap.add_argument("--scale", default="tiny")
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--nrhs", type=int, default=MULTIRHS_NRHS)
    ap.add_argument("--out", default=None,
                    help="output path (default: benchmarks/baselines/"
                         "<scenario>.json)")
    args = ap.parse_args(argv)
    baseline = record(args.runs, scale=args.scale, k=args.k, seed=args.seed,
                      scenario=args.scenario, nrhs=args.nrhs)
    out = Path(args.out) if args.out else DEFAULT_OUTS[args.scenario]
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    total = baseline["totals"]["wall_s"]
    print(f"recorded {out} (median of {args.runs} runs, "
          f"total {total:.3f}s, {len(baseline['stages'])} stages)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
