#!/usr/bin/env python
"""CI perf gate: diff a fresh metrics.json against a committed baseline.

Usage::

    PYTHONPATH=src python -m repro.obs.smoke --metrics /tmp/metrics.json
    PYTHONPATH=src python tools/perf_gate.py /tmp/metrics.json \
        benchmarks/baselines/smoke.json

Exits 0 when every stage's wall time and op counters are within
tolerance of the baseline, nonzero otherwise. Wall times gate at
``--time-tol`` (default 1.5 = 50% slack, stages under ``--min-time``
seconds skipped as noise); deterministic counters gate at the tighter
``--ops-tol``. Re-record the baseline with ``tools/record_baseline.py``
after an intentional perf change.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):
    # allow running as a plain script: put src/ on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import load_metrics
from repro.obs.gate import (
    DEFAULT_ABFT_BUDGET,
    DEFAULT_MIN_TIME_S,
    DEFAULT_OPS_TOL,
    DEFAULT_TIME_TOL,
    compare_metrics,
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="fresh metrics.json to check")
    ap.add_argument("baseline", help="committed baseline metrics.json")
    ap.add_argument("--time-tol", type=float, default=DEFAULT_TIME_TOL,
                    help="allowed wall-time ratio current/baseline "
                         "(default %(default)s)")
    ap.add_argument("--ops-tol", type=float, default=DEFAULT_OPS_TOL,
                    help="allowed counter ratio current/baseline "
                         "(default %(default)s)")
    ap.add_argument("--min-time", type=float, default=DEFAULT_MIN_TIME_S,
                    help="baseline stages shorter than this many seconds "
                         "are not gated on wall time (default %(default)s)")
    ap.add_argument("--abft-budget", type=float, default=DEFAULT_ABFT_BUDGET,
                    help="max fraction of total wall time the abft_verify "
                         "integrity audits may take in the fresh run; 0 "
                         "disables the bound (default %(default)s)")
    args = ap.parse_args(argv)
    try:
        current = load_metrics(args.current)
        baseline = load_metrics(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"perf_gate: cannot read metrics: {exc}", file=sys.stderr)
        return 2
    report = compare_metrics(current, baseline,
                             time_tol=args.time_tol, ops_tol=args.ops_tol,
                             min_time_s=args.min_time,
                             abft_budget=args.abft_budget)
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
