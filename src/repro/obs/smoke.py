"""The perf-smoke scenario: one small traced end-to-end solve.

This is the workload the CI perf gate runs and the baseline recorder
samples: a tiny Table-I matrix through the full PDSLin pipeline —
partition, subdomain LU, interface solves, Schur assembly + LU, GMRES —
with a live :class:`repro.obs.Tracer` attached. Run directly
(``PYTHONPATH=src python -m repro.obs.smoke --metrics m.json``) to
produce the ``metrics.json`` / Chrome-trace artifacts.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs.export import (
    export_chrome_trace,
    format_stage_summary,
    stage_metrics,
    write_metrics,
)
from repro.obs.tracer import Tracer

__all__ = ["SmokeRun", "run_smoke", "run_multirhs_smoke",
           "SMOKE_MATRIX", "SMOKE_SCALE", "MULTIRHS_NRHS"]

SMOKE_MATRIX = "tdr190k"
SMOKE_SCALE = "tiny"
MULTIRHS_NRHS = 16


@dataclass
class SmokeRun:
    """A completed smoke solve with its tracer and accounting."""

    tracer: Tracer
    metrics: dict
    converged: bool
    iterations: int
    residual_norm: float

    @property
    def meta(self) -> dict:
        return self.metrics.get("meta", {})


def run_smoke(*, name: str = SMOKE_MATRIX, scale: str = SMOKE_SCALE,
              k: int = 4, seed: int = 0,
              rhs_ordering: str = "hypergraph",
              checkpoint: bool = True) -> SmokeRun:
    """Solve the smoke system once under a fresh tracer.

    Deterministic given ``seed``: the matrix, right-hand side and every
    op-count metric are reproducible; only wall times vary run to run.
    The solve checkpoints into a throwaway directory by default so the
    checkpoint-write path (shard packing, blake2b digests, the manifest)
    is part of the gated perf surface; its shard/snapshot counters are
    deterministic, its byte counter rides under the ``noise:`` prefix.
    """
    # imported here so `repro.obs` stays free of solver dependencies
    import tempfile

    from repro.matrices import generate
    from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions

    gm = generate(name, scale)
    A = gm.A.tocsr()
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(A.shape[0])
    tracer = Tracer()
    cfg = PDSLinConfig(k=k, seed=seed, rhs_ordering=rhs_ordering,
                       block_size=32)
    if checkpoint:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-ckpt-") as d:
            solver = PDSLin(A, cfg, runtime=RuntimeOptions(
                tracer=tracer, checkpoint=d))
            result = solver.solve(b)
    else:
        solver = PDSLin(A, cfg, runtime=RuntimeOptions(tracer=tracer))
        result = solver.solve(b)
    metrics = stage_metrics(tracer)
    metrics["meta"] = {
        "scenario": "smoke", "matrix": name, "scale": scale, "k": k,
        "seed": seed, "rhs_ordering": rhs_ordering,
        "n": int(A.shape[0]), "nnz": int(A.nnz),
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
    }
    return SmokeRun(tracer=tracer, metrics=metrics,
                    converged=bool(result.converged),
                    iterations=int(result.iterations),
                    residual_norm=float(result.residual_norm))


def run_multirhs_smoke(*, name: str = SMOKE_MATRIX,
                       scale: str = SMOKE_SCALE, k: int = 4, seed: int = 0,
                       nrhs: int = MULTIRHS_NRHS,
                       rhs_ordering: str = "hypergraph") -> SmokeRun:
    """The multi-RHS smoke scenario: one setup, one batched
    ``solve_block`` over ``nrhs`` columns, under a fresh tracer.

    This is what the CI ``multirhs-bench`` job gates: the per-stage
    wall times of the batched path (``solve_block``, ``solve_fanout``,
    ``refine_block``) plus its deterministic op counters. The block
    throughput counter rides under the ``noise:`` prefix
    (``noise:rhs_per_s``) so it is exported but not gated."""
    from repro.matrices import generate
    from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions

    gm = generate(name, scale)
    A = gm.A.tocsr()
    rng = np.random.default_rng(seed)
    B = rng.standard_normal((A.shape[0], nrhs))
    tracer = Tracer()
    cfg = PDSLinConfig(k=k, seed=seed, rhs_ordering=rhs_ordering,
                       block_size=32)
    solver = PDSLin(A, cfg, runtime=RuntimeOptions(tracer=tracer))
    solver.setup()
    results = solver.solve_block(B)
    converged = bool(all(r.converged for r in results))
    metrics = stage_metrics(tracer)
    metrics["meta"] = {
        "scenario": "multirhs", "matrix": name, "scale": scale, "k": k,
        "seed": seed, "nrhs": nrhs, "rhs_ordering": rhs_ordering,
        "n": int(A.shape[0]), "nnz": int(A.nnz),
        "converged": converged,
        "iterations": int(max(r.iterations for r in results)),
    }
    return SmokeRun(tracer=tracer, metrics=metrics,
                    converged=converged,
                    iterations=int(max(r.iterations for r in results)),
                    residual_norm=float(max(r.residual_norm
                                            for r in results)))


def main(argv: list[str] | None = None) -> int:
    """CLI: run a smoke scenario and write the perf artifacts."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", default="metrics.json",
                    help="output path for metrics.json")
    ap.add_argument("--trace", default=None,
                    help="optional output path for the Chrome-trace JSON")
    ap.add_argument("--scenario", choices=("smoke", "multirhs"),
                    default="smoke")
    ap.add_argument("--scale", default=SMOKE_SCALE)
    ap.add_argument("--matrix", default=SMOKE_MATRIX)
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--nrhs", type=int, default=MULTIRHS_NRHS,
                    help="columns in the multirhs scenario")
    args = ap.parse_args(argv)
    if args.scenario == "multirhs":
        run = run_multirhs_smoke(name=args.matrix, scale=args.scale,
                                 k=args.k, seed=args.seed, nrhs=args.nrhs)
    else:
        run = run_smoke(name=args.matrix, scale=args.scale, k=args.k,
                        seed=args.seed)
    for out in (args.metrics, args.trace):
        if out:
            Path(out).parent.mkdir(parents=True, exist_ok=True)
    write_metrics(run.tracer, args.metrics, meta=run.meta)
    if args.trace:
        export_chrome_trace(run.tracer, args.trace)
    print(format_stage_summary(run.tracer))
    print(f"converged={run.converged} iterations={run.iterations} "
          f"residual={run.residual_norm:.2e}")
    print(f"wrote {args.metrics}" + (f" and {args.trace}" if args.trace else ""))
    return 0 if run.converged else 1


if __name__ == "__main__":
    raise SystemExit(main())
