"""Observability layer: tracing, counters, perf artifacts, perf gate.

``repro.obs`` is the instrumentation subsystem every stage of the
pipeline reports through:

- :class:`Tracer` / :data:`NULL_TRACER` — nested spans + named
  counters; disabled tracing is a strict no-op;
- :mod:`repro.obs.events` — the trace-event model shared with the
  simulated machine's exporter (:mod:`repro.parallel.trace`);
- :mod:`repro.obs.export` — Chrome-trace JSON, flat ``metrics.json``,
  human summaries;
- :mod:`repro.obs.gate` — the perf-regression comparison used by
  ``tools/perf_gate.py``;
- :mod:`repro.obs.smoke` — the CI perf-smoke scenario (imported
  explicitly; it pulls in the solver stack).
"""

from repro.obs.events import TraceEvent, chrome_trace_dict, write_chrome_trace
from repro.obs.export import (
    export_chrome_trace,
    format_stage_summary,
    load_metrics,
    stage_metrics,
    write_metrics,
)
from repro.obs.gate import GateCheck, GateReport, compare_metrics
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "SpanRecord",
    "TraceEvent", "chrome_trace_dict", "write_chrome_trace",
    "export_chrome_trace", "stage_metrics", "write_metrics",
    "load_metrics", "format_stage_summary",
    "GateCheck", "GateReport", "compare_metrics",
]
