"""Exporters for a traced run.

Three views of one :class:`repro.obs.Tracer`:

- :func:`export_chrome_trace` — the spans as a Chrome-trace JSON
  (shared event model with the simulated machine's exporter);
- :func:`stage_metrics` / :func:`write_metrics` — a flat
  ``metrics.json`` (stage name -> wall seconds, call count, counters)
  that :mod:`tools.perf_gate` diffs against committed baselines;
- :func:`format_stage_summary` — the human rendering used by
  :func:`repro.solver.report.run_report`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.obs.events import write_chrome_trace
from repro.obs.tracer import Tracer

__all__ = ["export_chrome_trace", "stage_metrics", "write_metrics",
           "load_metrics", "format_stage_summary", "METRICS_SCHEMA_VERSION"]

METRICS_SCHEMA_VERSION = 1


def export_chrome_trace(tracer: Tracer,
                        path_or_file: Union[str, Path, TextIO]) -> dict:
    """Write the tracer's spans as Trace Event Format JSON."""
    return write_chrome_trace(tracer.events(), path_or_file,
                              process_name="repro.obs")


def stage_metrics(tracer: Tracer) -> dict:
    """Aggregate spans by stage name.

    Returns ``{"stages": {name: {"wall_s", "calls", "counters"}},
    "totals": {"wall_s", "counters"}}``. Total wall time sums the
    top-level spans only, so nesting never double-counts.
    """
    stages: dict[str, dict] = {}
    for rec in tracer.spans:
        st = stages.setdefault(rec.name,
                               {"wall_s": 0.0, "calls": 0, "counters": {}})
        st["wall_s"] += rec.wall_s
        st["calls"] += 1
        for k, v in rec.counters.items():
            st["counters"][k] = st["counters"].get(k, 0) + v
    for st in stages.values():
        st["wall_s"] = round(st["wall_s"], 9)
    total_wall = sum(rec.wall_s for rec in tracer.iter_roots())
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "stages": stages,
        "totals": {"wall_s": round(total_wall, 9),
                   "counters": dict(tracer.counters)},
    }


def write_metrics(tracer: Tracer, path: Union[str, Path], *,
                  meta: dict | None = None) -> dict:
    """Serialize :func:`stage_metrics` (plus optional run metadata)."""
    m = stage_metrics(tracer)
    if meta:
        m["meta"] = dict(meta)
    with open(path, "w") as f:
        json.dump(m, f, indent=2, sort_keys=True)
    return m


def load_metrics(path: Union[str, Path]) -> dict:
    """Read a metrics.json written by :func:`write_metrics`."""
    with open(path) as f:
        return json.load(f)


def format_stage_summary(tracer: Tracer, *, top: int = 12) -> str:
    """Readable per-stage table, longest wall time first."""
    m = stage_metrics(tracer)
    rows = sorted(m["stages"].items(), key=lambda kv: -kv[1]["wall_s"])[:top]
    if not rows:
        return "(no spans recorded)"
    width = max(len(name) for name, _ in rows)
    lines = []
    for name, st in rows:
        counters = "  ".join(f"{k}={int(v) if float(v).is_integer() else v}"
                             for k, v in sorted(st["counters"].items()))
        lines.append(f"{name:<{width}}  {st['wall_s']:.4f}s  "
                     f"(x{st['calls']})" + (f"  {counters}" if counters else ""))
    lines.append(f"{'TOTAL':<{width}}  {m['totals']['wall_s']:.4f}s")
    return "\n".join(lines)
