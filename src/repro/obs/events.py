"""Shared trace-event model and Chrome-trace rendering.

Both the real wall-clock tracer (:mod:`repro.obs.tracer`) and the
simulated machine (:mod:`repro.parallel.trace`) describe a run as a
flat list of :class:`TraceEvent` — a named interval on a named track —
and render it through :func:`chrome_trace_dict`. One event model means
a simulated schedule and a measured run can be inspected with the same
tooling (``chrome://tracing`` / Perfetto) and diffed event for event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, TextIO, Union

__all__ = ["TraceEvent", "chrome_trace_dict", "write_chrome_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One named interval on one track (Chrome "complete" event).

    ``ts_us``/``dur_us`` are microseconds relative to an arbitrary
    epoch; ``track`` names the lane the event renders in (a simulated
    process, a thread, or just ``"main"``).
    """

    name: str
    ts_us: float
    dur_us: float
    track: str = "main"
    args: dict = field(default_factory=dict)


def _track_ids(events: Iterable[TraceEvent],
               track_order: Sequence[str] | None) -> dict[str, int]:
    """Assign stable tids: explicit order first, then first appearance."""
    tids: dict[str, int] = {}
    for t in track_order or ():
        tids.setdefault(t, len(tids))
    for e in events:
        tids.setdefault(e.track, len(tids))
    return tids


def chrome_trace_dict(events: Sequence[TraceEvent], *,
                      process_name: str = "repro",
                      track_order: Sequence[str] | None = None) -> dict:
    """Render events as a Trace Event Format dict.

    Tracks named in ``track_order`` get the lowest thread ids (and
    appear in the trace even when they carry no events); remaining
    tracks are numbered in order of first appearance.
    """
    tids = _track_ids(events, track_order)
    meta: list[dict] = [{"name": "process_name", "ph": "M", "pid": 0,
                         "args": {"name": process_name}}]
    meta.extend({"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                 "args": {"name": track}}
                for track, tid in tids.items())
    xs = [{"name": e.name, "ph": "X", "ts": e.ts_us, "dur": e.dur_us,
           "pid": 0, "tid": tids[e.track], "args": dict(e.args)}
          for e in events]
    return {"traceEvents": meta + xs, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[TraceEvent],
                       path_or_file: Union[str, Path, TextIO], *,
                       process_name: str = "repro",
                       track_order: Sequence[str] | None = None) -> dict:
    """Serialize :func:`chrome_trace_dict` to a path or file object."""
    trace = chrome_trace_dict(events, process_name=process_name,
                              track_order=track_order)
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w") as f:
            json.dump(trace, f)
    else:
        json.dump(trace, path_or_file)
    return trace
