"""Perf-regression gate: diff fresh metrics against a baseline.

Wall times are compared as ratios against ``time_tol`` (1.5 = allow
50% slowdown before failing; stages shorter than ``min_time_s`` in the
baseline are too noisy to gate on and are skipped). Counters — op
counts, padded zeros, iterations — are deterministic for a fixed seed,
so they get the much tighter ``ops_tol``. A stage present in the
baseline but absent from the fresh run fails the gate — and so does a
stage present in the fresh run but absent from the baseline: either
way the pipeline changed shape and the baseline must be re-recorded
deliberately. Counters prefixed ``noise:`` (wall-clock/model skew
recorded by :func:`repro.parallel.costmodel.record_model_skew`) are
machine noise by construction and are never gated.

The ABFT checksum audits (``abft_verify`` spans) additionally gate on
an *absolute* budget: their summed wall time in the fresh run must stay
under ``abft_budget`` (default 10%) of the run's total — integrity
checking is supposed to be cheap insurance, and this bound keeps a
future "verify everything twice" regression from hiding inside the
ordinary 1.5x wall-time slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GateCheck", "GateReport", "compare_metrics",
           "DEFAULT_TIME_TOL", "DEFAULT_OPS_TOL", "DEFAULT_MIN_TIME_S",
           "DEFAULT_ABFT_BUDGET", "ABFT_STAGE", "NOISE_COUNTER_PREFIX"]

DEFAULT_TIME_TOL = 1.5
DEFAULT_OPS_TOL = 1.10
DEFAULT_MIN_TIME_S = 0.005
#: Ceiling on the fraction of total wall time the ABFT integrity
#: audits may consume in the fresh run.
DEFAULT_ABFT_BUDGET = 0.10
#: Stage name the solver's checksum audits report under.
ABFT_STAGE = "abft_verify"
#: Counters whose names start with this prefix are measurement noise
#: (real-vs-modeled wall-clock skew, etc.): excluded from gating and
#: from baseline determinism checks.
NOISE_COUNTER_PREFIX = "noise:"


@dataclass(frozen=True)
class GateCheck:
    """One comparison: a stage wall time or a stage counter."""

    stage: str
    metric: str              # "wall_s" or a counter name
    baseline: float
    current: float
    tolerance: float
    regressed: bool
    skipped: bool = False    # below the noise floor, not gated

    @property
    def ratio(self) -> float:
        if self.baseline <= 0:
            return float("inf") if self.current > 0 else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        flag = ("SKIP" if self.skipped else
                "FAIL" if self.regressed else "ok")
        return (f"[{flag:>4}] {self.stage}/{self.metric}: "
                f"{self.baseline:g} -> {self.current:g} "
                f"(x{self.ratio:.3f}, tol x{self.tolerance:g})")


@dataclass
class GateReport:
    """All checks plus the verdict."""

    checks: list[GateCheck]
    missing_stages: list[str]
    extra_stages: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing_stages and not self.extra_stages and \
            not any(c.regressed for c in self.checks)

    @property
    def regressions(self) -> list[GateCheck]:
        return [c for c in self.checks if c.regressed]

    def describe(self) -> str:
        lines = [c.describe() for c in self.checks]
        lines.extend(f"[FAIL] stage {s!r} in baseline but not in current run"
                     " — pipeline lost a stage; re-record the baseline if"
                     " intentional" for s in self.missing_stages)
        lines.extend(f"[FAIL] stage {s!r} in current run but not in baseline"
                     " — pipeline grew a stage; re-record the baseline if"
                     " intentional" for s in self.extra_stages)
        n_shape = len(self.missing_stages) + len(self.extra_stages)
        verdict = "PASS" if self.ok else \
            f"FAIL ({len(self.regressions) + n_shape} regressions)"
        lines.append(f"perf gate: {verdict}")
        return "\n".join(lines)


def _wall_s(name: str, st: dict, which: str) -> float:
    """Extract a stage's wall time, failing with a clear message (not a
    ``KeyError``) when a metrics file is malformed."""
    try:
        return float(st["wall_s"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"malformed {which} metrics: stage {name!r} has no usable "
            f"'wall_s' entry ({exc!r})") from exc


def _check(stage: str, metric: str, base: float, cur: float,
           tol: float, *, floor: float = 0.0) -> GateCheck:
    if base < floor:
        return GateCheck(stage, metric, base, cur, tol,
                         regressed=False, skipped=True)
    return GateCheck(stage, metric, base, cur, tol,
                     regressed=cur > tol * base + 1e-12)


def compare_metrics(current: dict, baseline: dict, *,
                    time_tol: float = DEFAULT_TIME_TOL,
                    ops_tol: float = DEFAULT_OPS_TOL,
                    min_time_s: float = DEFAULT_MIN_TIME_S,
                    abft_budget: float = DEFAULT_ABFT_BUDGET) -> GateReport:
    """Gate ``current`` metrics against ``baseline`` (both are
    :func:`repro.obs.export.stage_metrics`-shaped dicts).

    ``abft_budget`` bounds the fresh run's ``abft_verify`` wall time as
    a fraction of its total wall time (see the module docstring); pass
    0 to disable the bound.
    """
    if time_tol <= 0 or ops_tol <= 0:
        raise ValueError("tolerances must be positive ratios")
    if abft_budget < 0:
        raise ValueError("abft_budget must be >= 0")
    checks: list[GateCheck] = []
    missing: list[str] = []
    cur_stages = current.get("stages", {})
    base_stages = baseline.get("stages", {})
    for name, base_st in sorted(base_stages.items()):
        cur_st = cur_stages.get(name)
        if cur_st is None:
            missing.append(name)
            continue
        checks.append(_check(name, "wall_s",
                             _wall_s(name, base_st, "baseline"),
                             _wall_s(name, cur_st, "current"), time_tol,
                             floor=min_time_s))
        cur_counters = cur_st.get("counters", {})
        for cname, bval in sorted(base_st.get("counters", {}).items()):
            if cname.startswith(NOISE_COUNTER_PREFIX):
                continue
            checks.append(_check(name, cname, float(bval),
                                 float(cur_counters.get(cname, 0.0)),
                                 ops_tol))
    extra = sorted(set(cur_stages) - set(base_stages))
    base_total = float(baseline.get("totals", {}).get("wall_s", 0.0))
    cur_total = float(current.get("totals", {}).get("wall_s", 0.0))
    if base_total > 0:
        checks.append(_check("TOTAL", "wall_s", base_total, cur_total,
                             time_tol, floor=min_time_s))
    abft_wall = float(cur_stages.get(ABFT_STAGE, {}).get("wall_s", 0.0))
    if abft_budget > 0 and cur_total > 0 and ABFT_STAGE in cur_stages:
        frac = abft_wall / cur_total
        checks.append(GateCheck(ABFT_STAGE, "overhead_frac",
                                baseline=abft_budget,
                                current=round(frac, 6), tolerance=1.0,
                                regressed=frac > abft_budget))
    return GateReport(checks=checks, missing_stages=missing,
                      extra_stages=extra)
