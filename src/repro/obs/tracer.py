"""Nested-span tracer with named counters.

The repo-wide instrumentation primitive: every pipeline stage opens a
span (``with tracer.span("factor_subdomain", l=l): ...``) and reports
quantities through counters (``tracer.count("lu_flops", n)``). Spans
nest; wall time comes from ``time.perf_counter``; counters attach to
the innermost open span and accumulate globally.

Disabled tracing is a true no-op: :data:`NULL_TRACER` hands out one
shared null context manager, so instrumented code pays a single
attribute lookup and call per span — no conditionals in hot loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs.events import TraceEvent

__all__ = ["SpanRecord", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class SpanRecord:
    """One closed span: where it sat in the tree, when, and what it
    counted while it was the innermost open span."""

    name: str
    path: str                 # "/".join of enclosing span names
    start_s: float            # relative to the tracer's epoch
    end_s: float
    depth: int
    attrs: dict = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return self.end_s - self.start_s


class _OpenSpan:
    """Context manager for one span occurrence (internal)."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "counters")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self._start = 0.0

    def __enter__(self) -> "_OpenSpan":
        self._tracer._stack.append(self)
        self._start = time.perf_counter() - self._tracer._epoch
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter() - self._tracer._epoch
        tr = self._tracer
        popped = tr._stack.pop()
        if popped is not self:  # pragma: no cover - misuse guard
            raise RuntimeError(f"span {self.name!r} closed out of order")
        path = "/".join([s.name for s in tr._stack] + [self.name])
        tr.spans.append(SpanRecord(
            name=self.name, path=path, start_s=self._start, end_s=end,
            depth=len(tr._stack), attrs=self.attrs, counters=self.counters))


class Tracer:
    """Collects nested :class:`SpanRecord` and named counters.

    One tracer instruments one run; pass it to :class:`repro.solver.PDSLin`
    and the kernels it drives. Export through :mod:`repro.obs.export`.
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[_OpenSpan] = []

    def span(self, name: str, **attrs) -> _OpenSpan:
        """Context manager recording one occurrence of stage ``name``."""
        return _OpenSpan(self, name, attrs)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (global + innermost span)."""
        self.counters[name] = self.counters.get(name, 0) + value
        if self._stack:
            c = self._stack[-1].counters
            c[name] = c.get(name, 0) + value

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def now(self) -> float:
        """Seconds since this tracer's epoch (span-timestamp clock)."""
        return time.perf_counter() - self._epoch

    def merge(self, spans, counters, *, offset_s: float = 0.0,
              track: str | None = None) -> None:
        """Fold spans/counters recorded by another tracer into this one.

        Used to merge the local tracers of worker processes back into
        the parent trace: the child spans' timestamps (relative to the
        child's epoch, which starts at task entry) are rebased by
        ``offset_s`` — typically ``parent.now()`` at dispatch — and a
        ``track`` attribute may be stamped on so each worker renders on
        its own Chrome-trace track. Counters add into the *global*
        totals only; they are not re-attached to any currently open
        parent span (the child spans already carry them).
        """
        for rec in spans:
            attrs = dict(rec.attrs)
            if track is not None:
                attrs.setdefault("track", track)
            self.spans.append(SpanRecord(
                name=rec.name, path=rec.path,
                start_s=rec.start_s + offset_s, end_s=rec.end_s + offset_s,
                depth=rec.depth, attrs=attrs, counters=dict(rec.counters)))
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def span_count(self, name: str) -> int:
        """Number of closed spans named ``name``, merged worker spans
        included. The restart/parity checks use this to prove a resumed
        run redid only the unfinished subdomains."""
        return sum(1 for s in self.spans if s.name == name)

    def events(self) -> List[TraceEvent]:
        """The recorded spans as shared-model trace events.

        A span opened with a ``track`` attribute renders on that track;
        everything else lands on ``"main"``. Counters ride along in
        ``args``.
        """
        out: List[TraceEvent] = []
        for rec in self.spans:
            args = {k: v for k, v in rec.attrs.items() if k != "track"}
            args.update(rec.counters)
            out.append(TraceEvent(
                name=rec.name, ts_us=rec.start_s * 1e6,
                dur_us=rec.wall_s * 1e6,
                track=str(rec.attrs.get("track", "main")), args=args))
        out.sort(key=lambda e: e.ts_us)
        return out

    def iter_roots(self) -> Iterator[SpanRecord]:
        """Top-level spans only (depth 0), in completion order."""
        return (s for s in self.spans if s.depth == 0)


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a constant-time no-op."""

    enabled = False
    spans: tuple = ()
    counters: Dict[str, float] = {}

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def now(self) -> float:
        return 0.0

    def merge(self, spans, counters, *, offset_s: float = 0.0,
              track: str | None = None) -> None:
        return None

    def span_count(self, name: str) -> int:
        return 0

    @property
    def depth(self) -> int:
        return 0

    def events(self) -> list:
        return []

    def iter_roots(self) -> Iterator[SpanRecord]:
        return iter(())


NULL_TRACER = NullTracer()
