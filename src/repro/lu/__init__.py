"""Sparse LU substrate: symbolic reach, numeric factorization
(reference Gilbert-Peierls + SuperLU bridge), supernode detection, and
the blocked multi-RHS sparse triangular solver with padding."""

from repro.lu.cache import SymbolicCache, pattern_fingerprint
from repro.lu.numeric import (
    GilbertPeierlsLU,
    LUFactors,
    attach_handle,
    factorize,
    lu_flop_count,
)
from repro.lu.supernodes import (
    SupernodalLower,
    detect_supernodes,
    relaxed_supernodes,
)
from repro.lu.symbolic import (
    factor_etree,
    reach,
    solution_pattern,
    toposorted_reach,
)
from repro.lu.triangular import (
    BlockedSolveResult,
    PaddingStats,
    blocked_triangular_solve,
    padded_zeros,
    partition_columns,
)

__all__ = [
    "reach", "toposorted_reach", "solution_pattern", "factor_etree",
    "LUFactors", "GilbertPeierlsLU", "factorize", "lu_flop_count",
    "attach_handle", "SymbolicCache", "pattern_fingerprint",
    "detect_supernodes", "relaxed_supernodes", "SupernodalLower",
    "PaddingStats", "BlockedSolveResult", "partition_columns",
    "blocked_triangular_solve", "padded_zeros",
]
