"""Sparse LU substrate: symbolic reach, numeric factorization
(reference Gilbert-Peierls + SuperLU bridge), supernode detection, and
the blocked multi-RHS sparse triangular solver with padding."""

from repro.lu.symbolic import reach, toposorted_reach, solution_pattern, factor_etree
from repro.lu.numeric import LUFactors, GilbertPeierlsLU, factorize, lu_flop_count
from repro.lu.supernodes import detect_supernodes, relaxed_supernodes, SupernodalLower
from repro.lu.triangular import (
    PaddingStats,
    BlockedSolveResult,
    partition_columns,
    blocked_triangular_solve,
    padded_zeros,
)

__all__ = [
    "reach", "toposorted_reach", "solution_pattern", "factor_etree",
    "LUFactors", "GilbertPeierlsLU", "factorize", "lu_flop_count",
    "detect_supernodes", "relaxed_supernodes", "SupernodalLower",
    "PaddingStats", "BlockedSolveResult", "partition_columns",
    "blocked_triangular_solve", "padded_zeros",
]
