"""Supernode detection and supernodal repacking of triangular factors.

A (strict) supernode of a lower-triangular factor is a maximal range of
consecutive columns with identical below-diagonal structure, giving a
dense trapezoidal block. The blocked multi-RHS triangular solver of
:mod:`repro.lu.triangular` operates supernode-by-supernode with dense
kernels, which is exactly why the paper pads the sparse right-hand
sides: all columns of a block must share one nonzero pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.utils import OpCounter, check_csc

__all__ = ["detect_supernodes", "relaxed_supernodes", "SupernodalLower"]


def _check_ranges(snodes: list[tuple[int, int]], n: int) -> None:
    prev = 0
    for c0, c1 in snodes:
        if c0 != prev or c1 <= c0:
            raise ValueError(f"supernode ranges must tile [0, {n}); "
                             f"got ({c0}, {c1}) after {prev}")
        prev = c1
    if prev != n:
        raise ValueError(f"supernode ranges must end at {n}, got {prev}")


def relaxed_supernodes(L: sp.spmatrix, *, max_size: int = 64,
                       relax: float = 0.2) -> list[tuple[int, int]]:
    """Amalgamated supernode ranges (relaxed supernodes).

    Starting from the strict supernodes, greedily merge consecutive
    ranges while the fraction of explicit zeros the merged dense block
    would store stays at most ``relax``. Fewer, larger blocks mean fewer
    dense-kernel invocations per solve at the cost of padded numeric
    work — the intra-factor analogue of the RHS padding trade-off.
    """
    L = check_csc(L)
    if not (0.0 <= relax < 1.0):
        raise ValueError("relax must be in [0, 1)")
    strict = detect_supernodes(L, max_size=max_size)
    col_nnz = np.diff(L.indptr)

    def entries(c0: int, c1: int) -> int:
        return int(col_nnz[c0:c1].sum())

    def block_cells(c0: int, c1: int) -> int:
        """Dense cells of the merged block: triangle + union-below rows."""
        w = c1 - c0
        rows = np.unique(L.indices[L.indptr[c0]:L.indptr[c1]])
        nbelow = int((rows >= c1).sum())
        return w * (w + 1) // 2 + nbelow * w

    merged: list[tuple[int, int]] = []
    cur0, cur1 = strict[0] if strict else (0, 0)
    for c0, c1 in strict[1:]:
        if c1 - cur0 <= max_size:
            cells = block_cells(cur0, c1)
            stored = entries(cur0, c1)
            if cells > 0 and (cells - stored) / cells <= relax:
                cur1 = c1
                continue
        merged.append((cur0, cur1))
        cur0, cur1 = c0, c1
    if cur1 > cur0:
        merged.append((cur0, cur1))
    return merged


def detect_supernodes(L: sp.spmatrix, *, max_size: int = 64) -> list[tuple[int, int]]:
    """Column ranges ``[c0, c1)`` of the strict supernodes of ``L``.

    Column j+1 extends the current supernode iff its row structure is
    exactly the current column's minus its own diagonal row, and the
    supernode is below ``max_size``.
    """
    L = check_csc(L)
    n = L.shape[1]
    if n == 0:
        return []
    snodes: list[tuple[int, int]] = []
    start = 0
    prev_rows = L.indices[L.indptr[0]:L.indptr[1]]
    for j in range(1, n):
        rows = L.indices[L.indptr[j]:L.indptr[j + 1]]
        joined = False
        if j - start < max_size and prev_rows.size == rows.size + 1:
            if np.array_equal(prev_rows[1:], rows):
                joined = True
        if not joined:
            snodes.append((start, j))
            start = j
        prev_rows = rows
    snodes.append((start, n))
    return snodes


@dataclass
class SupernodalLower:
    """Dense-repacked supernodal form of a lower-triangular matrix.

    Attributes
    ----------
    snodes:
        Column ranges, ascending.
    diag_blocks:
        Per supernode: dense (w, w) lower-triangular diagonal block.
    below_rows / below_blocks:
        Per supernode: row positions below the block and the dense
        (nbelow, w) coefficient panel updating them.
    unit_diagonal:
        True for L factors (implicit 1s), False for U^T solves.
    """

    n: int
    snodes: list[tuple[int, int]]
    diag_blocks: list[np.ndarray]
    below_rows: list[np.ndarray]
    below_blocks: list[np.ndarray]
    unit_diagonal: bool
    nnz: int = field(default=0)

    @classmethod
    def from_csc(cls, L: sp.spmatrix, *, unit_diagonal: bool,
                 max_supernode: int = 64,
                 snodes: list[tuple[int, int]] | None = None
                 ) -> "SupernodalLower":
        """Repack a lower-triangular CSC matrix into supernodal blocks.

        ``snodes`` overrides detection — pass ranges from
        :func:`relaxed_supernodes` to amalgamate; columns inside a range
        may then have *subsets* of the union row pattern, and the
        missing entries are stored as explicit zeros (structural
        padding, traded for fewer/larger dense kernels).
        """
        L = check_csc(L)
        n = L.shape[0]
        if snodes is None:
            snodes = detect_supernodes(L, max_size=max_supernode)
        else:
            _check_ranges(snodes, n)
        diag_blocks: list[np.ndarray] = []
        below_rows: list[np.ndarray] = []
        below_blocks: list[np.ndarray] = []
        for c0, c1 in snodes:
            w = c1 - c0
            # union of below-block rows over the range's columns
            pieces = [L.indices[L.indptr[c]:L.indptr[c + 1]]
                      for c in range(c0, c1)]
            for c in range(c0, c1):
                rr = pieces[c - c0]
                if rr.size == 0 or rr[0] != c:
                    raise ValueError(
                        f"column {c} must store its diagonal entry")
            allrows = np.unique(np.concatenate(pieces))
            below = allrows[allrows >= c1]
            slot = {int(r): i for i, r in enumerate(below)}
            D = np.zeros((w, w))
            Bm = np.zeros((below.size, w))
            for t in range(w):
                col = c0 + t
                rr = pieces[t]
                vv = L.data[L.indptr[col]:L.indptr[col + 1]]
                in_block = rr < c1
                D[rr[in_block] - c0, t] = vv[in_block]
                for r, v in zip(rr[~in_block], vv[~in_block]):
                    Bm[slot[int(r)], t] = v
            if unit_diagonal:
                np.fill_diagonal(D, 1.0)
            diag_blocks.append(D)
            below_rows.append(below.astype(np.int64))
            below_blocks.append(Bm)
        return cls(n=n, snodes=snodes, diag_blocks=diag_blocks,
                   below_rows=below_rows, below_blocks=below_blocks,
                   unit_diagonal=unit_diagonal, nnz=int(L.nnz))

    @property
    def n_supernodes(self) -> int:
        return len(self.snodes)

    def solve_inplace(self, X: np.ndarray, *,
                      active_cols: np.ndarray | None = None,
                      ops: OpCounter | None = None) -> int:
        """Forward solve ``L X = B`` in place on a dense (n, B) array.

        ``active_cols`` (bool, length n) marks factor columns known to
        carry nonzeros (the padded union pattern); inactive supernodes
        are skipped, which is what makes sparse right-hand sides cheap.
        Returns the flop count.
        """
        if X.ndim != 2 or X.shape[0] != self.n:
            raise ValueError(f"X must be (n, B) with n={self.n}")
        nrhs = X.shape[1]
        flops = 0
        for s, (c0, c1) in enumerate(self.snodes):
            if active_cols is not None and not active_cols[c0:c1].any():
                continue
            w = c1 - c0
            xb = X[c0:c1]
            if w == 1:
                if not self.unit_diagonal:
                    xb /= self.diag_blocks[s][0, 0]
            else:
                X[c0:c1] = sla.solve_triangular(
                    self.diag_blocks[s], xb, lower=True,
                    unit_diagonal=self.unit_diagonal, check_finite=False)
            br = self.below_rows[s]
            if br.size:
                X[br] -= self.below_blocks[s] @ X[c0:c1]
                flops += 2 * br.size * w * nrhs
            flops += w * w * nrhs
        if ops is not None:
            ops.add("supernodal_trsolve", flops)
        return flops
