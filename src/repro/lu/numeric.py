"""Sparse LU factorization.

Two engines behind one interface:

- :class:`GilbertPeierlsLU` — a from-scratch left-looking column LU with
  threshold partial pivoting and a symbolic reach per column (the
  textbook Gilbert-Peierls algorithm). Reference implementation; used
  in tests and for small subdomains.
- :func:`factorize` — the production path: pre-orders with a caller
  permutation, then delegates the numeric kernel to SuperLU via
  ``scipy.sparse.linalg.splu`` in symmetric-pattern mode with diagonal
  pivoting preference, playing the role SuperLU_DIST plays for PDSLin.

Both produce an :class:`LUFactors` exposing L, U and the permutations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.errors import SingularSubdomainError
from repro.utils import (
    OpCounter,
    check_csc,
    check_csr,
    check_finite,
    check_permutation,
)

__all__ = ["LUFactors", "GilbertPeierlsLU", "factorize", "lu_flop_count",
           "attach_handle"]


@dataclass
class LUFactors:
    """LU factorization ``A[perm_r_orig, :][:, col_perm] = L U`` exposed as
    factored-position matrices.

    ``L`` is unit lower triangular CSC, ``U`` upper triangular CSC, both
    indexed in factored positions. ``perm_r[k]`` is the original row
    sitting at factored position k; ``perm_c`` likewise for columns.
    """

    L: sp.csc_matrix
    U: sp.csc_matrix
    perm_r: np.ndarray
    perm_c: np.ndarray
    handle: object | None = None  # SuperLU object for fast repeated solves
    # ABFT record (repro.resilience.abft.FactorChecksums) — plain
    # arrays, so unlike the handle it pickles along with the factors
    checksums: object | None = None

    def __getstate__(self) -> dict:
        """Pickle without the SuperLU handle (a C object that cannot
        cross process boundaries). :func:`attach_handle` restores an
        equivalent handle on the receiving side."""
        state = self.__dict__.copy()
        state["handle"] = None
        return state

    @property
    def n(self) -> int:
        return self.L.shape[0]

    @property
    def fill_nnz(self) -> int:
        return int(self.L.nnz + self.U.nnz - self.n)

    def permute_rows(self, B: sp.spmatrix) -> sp.csr_matrix:
        """Return ``P_r B``: row k of the result is original row
        ``perm_r[k]`` of B, aligned with L's numbering."""
        B = check_csr(B)
        return B[self.perm_r].tocsr()

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Dense solve ``A x = b`` through both factors (``A`` being the
        matrix handed to the factorization, i.e. already pre-permuted).

        Uses the retained SuperLU handle when available (the hot path in
        the Schur matvec); otherwise performs two sparse triangular
        solves through the explicit factors.
        """
        b = np.asarray(b, dtype=np.float64)
        if self.handle is not None:
            x = self.handle.solve(b)  # type: ignore[attr-defined]
        else:
            y = spla.spsolve_triangular(self.L, b[self.perm_r], lower=True,
                                        unit_diagonal=True)
            z = spla.spsolve_triangular(self.U, y, lower=False)
            x = np.empty_like(z)
            x[self.perm_c] = z
        if self.checksums is not None:
            # passive ABFT audit (1^T A x = 1^T b): counts checks and
            # violations on the record; the solver sweeps them after
            # the stage. Identical for handle and explicit paths.
            self.checksums.audit_solve(self, b, x)
        return x

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        """Dense solve ``A^T x = b`` through the same factors.

        Needed by the Hager-Higham condition estimator, which requires
        both ``A^{-1} v`` and ``A^{-T} v`` products. With
        ``A^{-1} = P_c^T U^{-1} L^{-1} P_r`` this is
        ``A^{-T} = P_r^T L^{-T} U^{-T} P_c``.
        """
        b = np.asarray(b, dtype=np.float64)
        if self.handle is not None:
            return self.handle.solve(b, trans="T")  # type: ignore[attr-defined]
        y = spla.spsolve_triangular(self.U.T.tocsr(), b[self.perm_c],
                                    lower=True)
        z = spla.spsolve_triangular(self.L.T.tocsr(), y, lower=False,
                                    unit_diagonal=True)
        x = np.empty_like(z)
        x[self.perm_r] = z
        return x

    def residual_norm(self, A: sp.spmatrix, b: np.ndarray) -> float:
        x = self.solve(b)
        return float(np.linalg.norm(A @ x - b) / max(np.linalg.norm(b), 1e-300))


def lu_flop_count(f: LUFactors) -> int:
    """Standard flop estimate from factor column/row counts."""
    lc = np.diff(f.L.indptr) - 1          # below-diagonal entries per column
    uc = np.diff(f.U.tocsr().indptr) - 1  # right-of-diagonal per row
    return int(np.sum(lc + 2 * lc * uc))


class GilbertPeierlsLU:
    """Left-looking sparse LU with threshold partial pivoting.

    State is kept in *original row ids*; ``row_map`` translates a
    pivoted original row to its factored position. Column j:

    1. symbolic: DFS from the pivoted support of A[:, j] over factored
       L columns -> dependency-ordered reach;
    2. numeric: sparse lower solve along the reach;
    3. pivot: largest candidate within ``pivot_threshold`` of the max,
       preferring the diagonal.

    A singular pivot raises :class:`SingularSubdomainError` (with the
    failing column, best pivot magnitude and ``subdomain`` context) —
    unless ``static_pivoting`` is on, in which case tiny or missing
    pivots are replaced by ``sqrt(eps) * max|A|`` (the SuperLU_DIST
    static-pivoting strategy: trade exactness for a usable, slightly
    perturbed factorization) and counted in ``self.perturbations``.
    """

    def __init__(self, A: sp.spmatrix, *, pivot_threshold: float = 1.0,
                 static_pivoting: bool = False, subdomain: int | None = None,
                 ops: OpCounter | None = None):
        A = check_csc(A).astype(np.float64)
        if A.shape[0] != A.shape[1]:
            raise ValueError("A must be square")
        if not (0.0 <= pivot_threshold <= 1.0):
            raise ValueError("pivot_threshold must be in [0, 1]")
        n = A.shape[0]
        a_max = float(np.abs(A.data).max()) if A.nnz else 1.0
        # static pivot replacement magnitude (SuperLU_DIST uses the same)
        perturb = np.sqrt(np.finfo(np.float64).eps) * max(a_max, 1e-300)
        self.perturbations = 0
        row_map = np.full(n, -1, dtype=np.int64)   # original row -> position
        perm_r = np.empty(n, dtype=np.int64)       # position -> original row
        # L columns: (original row ids, values); U columns: (positions, values)
        Lrows: list[np.ndarray] = []
        Lvals: list[np.ndarray] = []
        Urows: list[np.ndarray] = []
        Uvals: list[np.ndarray] = []
        flops = 0

        def reach_topo(support_rows: np.ndarray) -> list[int]:
            visited = np.zeros(n, dtype=bool)
            out: list[int] = []
            for r in support_rows:
                start = row_map[r]
                if start < 0 or visited[start]:
                    continue
                stack = [(int(start), 0)]
                visited[start] = True
                while stack:
                    node, ptr = stack.pop()
                    rows = Lrows[node]
                    advanced = False
                    while ptr < rows.size:
                        child = row_map[rows[ptr]]
                        ptr += 1
                        if child >= 0 and not visited[child]:
                            visited[child] = True
                            stack.append((node, ptr))
                            stack.append((int(child), 0))
                            advanced = True
                            break
                    if not advanced:
                        out.append(node)
        # reverse postorder = dependency order
                # (column k finalized before any column it updates)
            out.reverse()
            return out

        for j in range(n):
            a_rows = A.indices[A.indptr[j]:A.indptr[j + 1]]
            a_vals = A.data[A.indptr[j]:A.indptr[j + 1]]
            x: dict[int, float] = {}
            for r, v in zip(a_rows.tolist(), a_vals.tolist()):
                x[r] = x.get(r, 0.0) + v
            topo = reach_topo(a_rows[row_map[a_rows] >= 0])
            for k in topo:
                pr = int(perm_r[k])
                xk = x.get(pr, 0.0)
                if xk == 0.0:
                    continue
                rr = Lrows[k]
                vv = Lvals[k]
                for t in range(rr.size):
                    orig = int(rr[t])
                    x[orig] = x.get(orig, 0.0) - vv[t] * xk
                flops += 2 * rr.size
            u_pos: list[int] = []
            u_val: list[float] = []
            c_rows: list[int] = []
            c_vals: list[float] = []
            for r, v in x.items():
                k = row_map[r]
                if k >= 0:
                    u_pos.append(int(k))
                    u_val.append(v)
                else:
                    c_rows.append(r)
                    c_vals.append(v)
            if not c_rows:
                if not static_pivoting:
                    raise SingularSubdomainError(
                        f"structurally singular at column {j}: no "
                        f"unfactored rows in the column pattern",
                        column=j, pivot=0.0, subdomain=subdomain)
                # conjure a pivot row: the diagonal row if still free,
                # else the lowest-numbered free row
                prow = j if row_map[j] < 0 \
                    else int(np.flatnonzero(row_map < 0)[0])
                c_rows = [prow]
                c_vals = [0.0]
            cv = np.abs(np.asarray(c_vals))
            absmax = float(cv.max())
            if absmax == 0.0 and not static_pivoting:
                raise SingularSubdomainError(
                    f"numerically singular at column {j}: all candidate "
                    f"pivots are zero", column=j, pivot=0.0,
                    subdomain=subdomain)
            pivot_idx = -1
            for t, r in enumerate(c_rows):
                if r == j and cv[t] >= pivot_threshold * absmax:
                    pivot_idx = t
                    break
            if pivot_idx < 0:
                pivot_idx = int(np.argmax(cv))
            prow, pval = c_rows[pivot_idx], c_vals[pivot_idx]
            if static_pivoting and abs(pval) < perturb:
                pval = perturb if pval >= 0.0 else -perturb
                self.perturbations += 1
            perm_r[j] = prow
            row_map[prow] = j
            u_pos.append(j)
            u_val.append(pval)
            lr = np.asarray([r for t, r in enumerate(c_rows) if t != pivot_idx],
                            dtype=np.int64)
            lv = np.asarray([c_vals[t] / pval for t in range(len(c_rows))
                             if t != pivot_idx])
            flops += lv.size
            Lrows.append(lr)
            Lvals.append(lv)
            order = np.argsort(u_pos)
            Urows.append(np.asarray(u_pos, dtype=np.int64)[order])
            Uvals.append(np.asarray(u_val)[order])

        # assemble CSC factors in factored positions
        Lptr = [0]
        Lidx: list[int] = []
        Ldat: list[float] = []
        for jcol in range(n):
            pos = row_map[Lrows[jcol]]
            order = np.argsort(pos)
            Lidx.append(jcol)
            Ldat.append(1.0)
            Lidx.extend(pos[order].tolist())
            Ldat.extend(Lvals[jcol][order].tolist())
            Lptr.append(len(Lidx))
        Uptr = [0]
        Uidx: list[int] = []
        Udat: list[float] = []
        for jcol in range(n):
            Uidx.extend(Urows[jcol].tolist())
            Udat.extend(Uvals[jcol].tolist())
            Uptr.append(len(Uidx))
        self.factors = LUFactors(
            L=sp.csc_matrix((Ldat, Lidx, Lptr), shape=(n, n)),
            U=sp.csc_matrix((Udat, Uidx, Uptr), shape=(n, n)),
            perm_r=perm_r,
            perm_c=np.arange(n, dtype=np.int64),
        )
        self.flops = flops
        if ops is not None:
            ops.add("lu", flops)


def factorize(A: sp.spmatrix, *, col_perm: np.ndarray | None = None,
              diag_pivot_thresh: float = 0.01,
              engine: str = "scipy", keep_handle: bool = False,
              tracer: Tracer = NULL_TRACER) -> LUFactors:
    """Factorize ``A`` with an optional caller-supplied symmetric
    pre-permutation (e.g. minimum degree + e-tree postorder).

    ``engine="scipy"`` uses SuperLU with ``permc_spec='NATURAL'`` so the
    caller's ordering is respected; ``engine="reference"`` uses
    :class:`GilbertPeierlsLU`. A low ``diag_pivot_thresh`` keeps row
    pivoting close to the diagonal so the factor structure follows the
    e-tree prediction, mirroring the static-pivoting configuration of
    SuperLU_DIST inside PDSLin. The returned permutations are relative
    to the *pre-permuted* matrix; callers track ``col_perm`` themselves.

    ``tracer`` records one ``factorize`` span with ``lu_fill_nnz`` and
    ``lu_flops`` counters. Matrices containing NaN/Inf are rejected with
    a ``ValueError`` up front rather than propagating silently through
    the factors.
    """
    with tracer.span("factorize", engine=engine):
        f = _factorize(A, col_perm=col_perm,
                       diag_pivot_thresh=diag_pivot_thresh,
                       engine=engine, keep_handle=keep_handle)
        tracer.count("lu_fill_nnz", f.fill_nnz)
        tracer.count("lu_flops", lu_flop_count(f))
    return f


def attach_handle(f: LUFactors, A: sp.spmatrix, *,
                  diag_pivot_thresh: float) -> LUFactors:
    """Re-attach a SuperLU handle to factors that crossed a process
    boundary (pickling strips it — see ``LUFactors.__getstate__``).

    ``A`` must be the exact pre-permuted matrix the factors came from
    and ``diag_pivot_thresh`` the threshold of the rung that produced
    them; SuperLU is deterministic on identical input, so re-running it
    yields a handle whose solves are bit-identical to the one the worker
    held. The pivot orders are cross-checked and a mismatch raises —
    silently attaching a different factorization would break the
    bit-parity contract of the parallel backends.
    """
    lu = spla.splu(check_csc(A).astype(np.float64), permc_spec="NATURAL",
                   diag_pivot_thresh=diag_pivot_thresh,
                   options={"SymmetricMode": True})
    pr = np.empty(f.n, dtype=np.int64)
    pr[lu.perm_r] = np.arange(f.n)
    if not (np.array_equal(pr, f.perm_r)
            and np.array_equal(np.asarray(lu.perm_c, dtype=np.int64),
                               f.perm_c)):
        raise RuntimeError(
            "attach_handle: refactorization pivot order differs from the "
            "shipped factors; refusing to attach a mismatched handle")
    f.handle = lu
    return f


def _factorize(A: sp.spmatrix, *, col_perm: np.ndarray | None,
               diag_pivot_thresh: float, engine: str,
               keep_handle: bool) -> LUFactors:
    A = check_csc(A).astype(np.float64)
    check_finite(A, "A")
    n = A.shape[0]
    if col_perm is not None:
        col_perm = check_permutation(col_perm, n, "col_perm")
        A = A[col_perm][:, col_perm].tocsc()
    if engine == "reference":
        return GilbertPeierlsLU(A, pivot_threshold=diag_pivot_thresh).factors
    if engine == "scipy":
        lu = spla.splu(A, permc_spec="NATURAL",
                       diag_pivot_thresh=diag_pivot_thresh,
                       options={"SymmetricMode": True})
        # scipy exposes perm_r as "row i of A goes to position perm_r[i]";
        # invert to our position -> original convention
        pr = np.empty(n, dtype=np.int64)
        pr[lu.perm_r] = np.arange(n)
        return LUFactors(L=lu.L.tocsc(), U=lu.U.tocsc(),
                         perm_r=pr,
                         perm_c=np.asarray(lu.perm_c, dtype=np.int64),
                         handle=lu if keep_handle else None)
    raise ValueError(f"unknown engine {engine!r}")
