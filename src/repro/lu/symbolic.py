"""Symbolic sparse triangular-solve machinery.

Two predictors of the nonzero pattern of ``L^{-1} b`` for sparse ``b``:

- :func:`reach` / :func:`solution_pattern` — exact reachability in the
  DAG of a concrete lower-triangular factor (Gilbert-Peierls), used to
  build the pattern matrix ``G`` whose row-net hypergraph drives the
  Section IV-B reordering;
- e-tree fill paths (:func:`repro.ordering.etree_path_closure`) — the
  structural upper bound the Section IV-A postorder heuristic relies on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils import as_int_array, check_csc

__all__ = ["reach", "solution_pattern", "toposorted_reach", "factor_etree"]


def factor_etree(L: sp.spmatrix) -> np.ndarray:
    """Elimination tree of the factor pattern with the *ancestor
    guarantee*: for every stored entry ``L[i, j]`` (``i > j``), ``i`` is
    an ancestor of ``j`` in the returned tree.

    That guarantee is what makes the fill-path closure of
    :func:`solution_pattern` a safe superset of the exact reach: every
    DAG edge of the triangular solve climbs toward an ancestor, so the
    reach of any support column is contained in its path to the root
    (Gilbert's theorem, the paper's Section IV-A model).

    For a factor with Cholesky-like structure (every below-diagonal row
    index of column ``j`` already an ancestor of the first one) this is
    the classical elimination tree — the first below-diagonal entry per
    column. For general LU factors under pivoting that shortcut
    *under*-approximates (a column may hit a row off its first-parent
    path), so the tree is built with Liu's algorithm over the pattern:
    rows in increasing order, climbing with path compression and
    grafting every terminating subtree under the current row.
    """
    L = check_csc(L)
    n = L.shape[0]
    Lr = sp.tril(L, -1, format="csr")
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = Lr.indptr, Lr.indices
    for i in range(n):
        for j in indices[indptr[i]:indptr[i + 1]].tolist():
            r = j
            while ancestor[r] != -1 and ancestor[r] != i:
                t = ancestor[r]
                ancestor[r] = i  # path compression
                r = t
            if ancestor[r] == -1:
                ancestor[r] = i
                parent[r] = i
    return parent


def _dfs_reach(indptr: np.ndarray, indices: np.ndarray, support: np.ndarray,
               n: int) -> list[int]:
    """Iterative DFS in the column DAG of L; returns reverse-topological
    output (roots last), i.e. increasing dependency order when reversed."""
    visited = np.zeros(n, dtype=bool)
    out: list[int] = []
    for s in support:
        if visited[s]:
            continue
        # stack holds (node, next pin offset)
        stack = [(int(s), indptr[s])]
        visited[s] = True
        while stack:
            node, ptr = stack.pop()
            advanced = False
            while ptr < indptr[node + 1]:
                child = indices[ptr]
                ptr += 1
                if child > node and not visited[child]:
                    visited[child] = True
                    stack.append((node, ptr))
                    stack.append((int(child), indptr[child]))
                    advanced = True
                    break
            if not advanced:
                out.append(node)
    return out


def reach(L: sp.spmatrix, support: np.ndarray) -> np.ndarray:
    """Sorted nonzero row set of ``L^{-1} b`` with ``supp(b) = support``.

    ``L`` must be lower triangular (pattern-wise); entries on or above
    the diagonal are ignored as graph edges but the diagonal is assumed
    nonzero.
    """
    return np.asarray(sorted(toposorted_reach(L, support)), dtype=np.int64)


def toposorted_reach(L: sp.spmatrix, support: np.ndarray) -> list[int]:
    """Reach set in dependency order (each column before any column it
    updates), as needed by a sparse-RHS numeric solve."""
    L = check_csc(L)
    n = L.shape[0]
    support = as_int_array(support, "support")
    if support.size and (support.min() < 0 or support.max() >= n):
        raise IndexError("support index out of range")
    rev = _dfs_reach(L.indptr, L.indices, support, n)
    rev.reverse()
    return rev


def solution_pattern(L: sp.spmatrix, B: sp.spmatrix, *,
                     method: str = "reach") -> sp.csr_matrix:
    """Pattern of ``L^{-1} B`` for sparse ``B`` (the matrix ``G`` of the
    paper's Section IV-B).

    ``method="reach"`` runs one exact DAG reach per column (ground
    truth). ``method="etree"`` closes each column's support along the
    factor e-tree fill paths instead — the paper's Section IV-A
    prediction. For Cholesky-structure factors the closure is a superset
    of the exact reach (equal in the typical case), and it costs
    O(output) instead of a DFS over the factor per column, which is what
    makes large interface blocks tractable.
    """
    L = check_csc(L)
    Bc = B.tocsc()
    Bc.sum_duplicates()
    Bc.sort_indices()
    n, m = Bc.shape
    if L.shape[0] != n:
        raise ValueError("dimension mismatch between L and B")
    if method not in ("reach", "etree"):
        raise ValueError(f"method must be 'reach' or 'etree', got {method!r}")
    col_ptr = [0]
    rows: list[np.ndarray] = []
    if method == "etree":
        parent = factor_etree(L).tolist()
        mark = np.full(n, -1, dtype=np.int64)
        for j in range(m):
            out: list[int] = []
            for s in Bc.indices[Bc.indptr[j]:Bc.indptr[j + 1]].tolist():
                v = s
                while v >= 0 and mark[v] != j:
                    mark[v] = j
                    out.append(v)
                    v = parent[v]
            out.sort()
            r = np.asarray(out, dtype=np.int64)
            rows.append(r)
            col_ptr.append(col_ptr[-1] + r.size)
    else:
        for j in range(m):
            supp = Bc.indices[Bc.indptr[j]:Bc.indptr[j + 1]]
            r = reach(L, supp)
            rows.append(r)
            col_ptr.append(col_ptr[-1] + r.size)
    indices = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    G = sp.csc_matrix((np.ones(indices.size, dtype=np.int8), indices,
                       np.asarray(col_ptr, dtype=np.int64)), shape=(n, m))
    return G.tocsr()
