"""Blocked sparse triangular solution with multiple sparse right-hand
sides (the computation of ``G = L^{-1} P E`` in Eq. (5) of the paper).

The RHS columns are grouped into parts of ``B`` columns (after one of
the Section IV reorderings); each part is solved *simultaneously*: the
union of the columns' solution patterns is the padded pattern, the
symbolic step runs once per part, and the numeric work is dense over
the padded block — zeros padded into columns that lack a row are pure
overhead, which is exactly what the reordering minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.lu.supernodes import SupernodalLower
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils import OpCounter, Timer, check_csr

__all__ = ["PaddingStats", "BlockedSolveResult", "partition_columns",
           "blocked_triangular_solve", "padded_zeros"]


@dataclass(frozen=True)
class PaddingStats:
    """Padded-zero accounting per Eq. (13)-(15) of the paper."""

    total_padded: int
    total_block_entries: int
    per_part_padded: tuple[int, ...]
    per_part_entries: tuple[int, ...]

    @property
    def fraction(self) -> float:
        """Fraction of the padded blocks that is padding (Fig. 4 y-axis)."""
        if self.total_block_entries == 0:
            return 0.0
        return self.total_padded / self.total_block_entries


def partition_columns(order: np.ndarray, block_size: int) -> list[np.ndarray]:
    """Chop an ordered column list into consecutive parts of ``block_size``
    (the last part takes the remainder, as in the paper)."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    order = np.asarray(order, dtype=np.int64)
    return [order[i:i + block_size] for i in range(0, order.size, block_size)]


def padded_zeros(G: sp.spmatrix, parts: list[np.ndarray]) -> PaddingStats:
    """Evaluate Eq. (14) for a column partition of the pattern ``G``.

    For part V_l and row i with at least one nonzero among V_l's
    columns, ``|V_l| - |r_i ∩ V_l|`` zeros are padded.
    """
    Gc = G.tocsc()
    Gc.sum_duplicates()
    n = Gc.shape[0]
    padded: list[int] = []
    entries: list[int] = []
    for cols in parts:
        counts = np.zeros(n, dtype=np.int64)
        for j in cols:
            rows = Gc.indices[Gc.indptr[j]:Gc.indptr[j + 1]]
            counts[rows] += 1
        active = counts > 0
        n_active = int(active.sum())
        block = n_active * len(cols)
        pad = block - int(counts.sum())
        padded.append(pad)
        entries.append(block)
    return PaddingStats(total_padded=int(sum(padded)),
                        total_block_entries=int(sum(entries)),
                        per_part_padded=tuple(padded),
                        per_part_entries=tuple(entries))


@dataclass
class BlockedSolveResult:
    """Solution of a blocked multi-RHS triangular solve.

    ``X`` holds the (thresholded) solution in the original column order
    of ``E``; padding and flops describe the work actually done.
    """

    X: sp.csc_matrix
    padding: PaddingStats
    flops: int
    seconds: float
    n_parts: int


def blocked_triangular_solve(snl: SupernodalLower, E: sp.spmatrix,
                             G_pattern: sp.spmatrix,
                             parts: list[np.ndarray], *,
                             drop_tol: float = 0.0,
                             ops: OpCounter | None = None,
                             tracer: Tracer = NULL_TRACER) -> BlockedSolveResult:
    """Solve ``L X = E`` part by part with padding.

    Parameters
    ----------
    snl:
        Supernodal repack of the lower-triangular factor.
    E:
        (n, m) sparse RHS block, already row-permuted to factored
        positions.
    G_pattern:
        Symbolic solution pattern of ``L^{-1} E`` (rows x m); provides
        the padded union pattern per part.
    parts:
        Column groups in solve order (original column indices of E).
    drop_tol:
        Entries with magnitude below ``drop_tol * max|column|`` are
        discarded from the returned solution (the W~/G~ thresholding of
        the paper's preconditioner construction).
    tracer:
        Records one ``blocked_trsolve`` span with ``padded_zeros``,
        ``block_entries`` and ``trsolve_flops`` counters.
    """
    E = check_csr(E).tocsc()
    Gc = G_pattern.tocsc()
    Gc.sum_duplicates()
    n, m = E.shape
    if snl.n != n:
        raise ValueError("factor and RHS dimensions differ")
    with tracer.span("blocked_trsolve", n_parts=len(parts), nrhs=m):
        timer = Timer().start()
        total_flops = 0
        # one sweep over G_pattern per part: the active-row mask drives
        # the numeric solve and yields the Eq. (14) padding accounting
        # at the same time (identical to the padded_zeros oracle)
        per_padded: list[int] = []
        per_entries: list[int] = []
        out_cols: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for cols in parts:
            bsz = len(cols)
            active = np.zeros(n, dtype=bool)
            nnz_part = 0
            for j in cols:
                rows = Gc.indices[Gc.indptr[j]:Gc.indptr[j + 1]]
                active[rows] = True
                nnz_part += rows.size
            block = int(np.count_nonzero(active)) * bsz
            per_padded.append(block - nnz_part)
            per_entries.append(block)
            if bsz == 0:
                continue
            X = np.zeros((n, bsz))
            for t, j in enumerate(cols):
                rr = E.indices[E.indptr[j]:E.indptr[j + 1]]
                X[rr, t] = E.data[E.indptr[j]:E.indptr[j + 1]]
            total_flops += snl.solve_inplace(X, active_cols=active, ops=None)
            rows_active = np.flatnonzero(active)
            sub = X[rows_active]
            for t, j in enumerate(cols):
                colv = sub[:, t]
                nzmask = colv != 0.0
                if drop_tol > 0.0 and np.any(nzmask):
                    thresh = drop_tol * np.abs(colv).max()
                    nzmask &= np.abs(colv) >= thresh
                out_cols[int(j)] = (rows_active[nzmask], colv[nzmask])
        pad_stats = PaddingStats(total_padded=int(sum(per_padded)),
                                 total_block_entries=int(sum(per_entries)),
                                 per_part_padded=tuple(per_padded),
                                 per_part_entries=tuple(per_entries))
        seconds = timer.stop()
        tracer.count("padded_zeros", pad_stats.total_padded)
        tracer.count("block_entries", pad_stats.total_block_entries)
        tracer.count("trsolve_flops", total_flops)
    indptr = [0]
    indices: list[np.ndarray] = []
    data: list[np.ndarray] = []
    for j in range(m):
        rr, vv = out_cols.get(j, (np.empty(0, dtype=np.int64), np.empty(0)))
        indices.append(rr)
        data.append(vv)
        indptr.append(indptr[-1] + rr.size)
    X = sp.csc_matrix((np.concatenate(data) if data else np.empty(0),
                       np.concatenate(indices) if indices else np.empty(0, np.int64),
                       np.asarray(indptr, dtype=np.int64)), shape=(n, m))
    if ops is not None:
        ops.add("blocked_trsolve", total_flops)
    return BlockedSolveResult(X=X, padding=pad_stats, flops=total_flops,
                              seconds=seconds, n_parts=len(parts))
