"""Symbolic-analysis cache keyed by sparsity pattern.

The expensive combinatorial pre-work of the numeric phases — the
per-subdomain fill-reducing ordering (minimum degree + e-tree
postorder) and the minimum-degree permutation of the approximate Schur
complement — depends only on the *pattern* of the matrix, never its
values. Time-stepping and Newton loops call
:meth:`repro.solver.PDSLin.update_matrix` with fresh values on a fixed
pattern, so these analyses are pure re-computation; the
:class:`SymbolicCache` memoizes them under a pattern fingerprint.

The cached functions are deterministic functions of the pattern (plus
the hashed configuration tags), so cache hits cannot change results —
serial and parallel backends share one parent-side cache and stay
bit-identical.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable

import numpy as np
import scipy.sparse as sp

__all__ = ["pattern_fingerprint", "SymbolicCache"]


def pattern_fingerprint(A: sp.spmatrix, *tags: Any) -> str:
    """Digest of the sparsity structure of ``A`` plus config ``tags``.

    Hashes shape + CSR ``indptr``/``indices`` (values excluded on
    purpose); extra ``tags`` distinguish analyses that share a pattern
    but differ in configuration (ordering method, seed, ...).
    """
    A = A.tocsr()
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indices, dtype=np.int64).tobytes())
    for tag in tags:
        h.update(repr(tag).encode())
        h.update(b"\x00")
    return h.hexdigest()


class SymbolicCache:
    """A small LRU of symbolic-analysis results.

    ``get_or_compute`` is the main entry point; ``hits``/``misses``
    feed the ``symbolic_cache_hit``/``symbolic_cache_miss`` tracer
    counters of the solver.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> Any:
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        value = self.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        self._data.clear()
