"""Recursive Hypergraph Bisection (RHB) — the paper's Algorithm (Fig. 2).

RHB permutes ``A`` (symmetrized) into doubly-bordered block-diagonal
form through the column-net hypergraph of a structural factor ``M``
with ``str(A) = str(M^T M)``:

1. form the column-net model of the current submatrix ``M(R, C)``;
2. from the second bisection on, derive dynamic vertex weights from the
   previous bisections (w1/w2 schemes of :mod:`repro.core.weights`);
3. bisect the rows with the multilevel multi-constraint hypergraph
   bisector;
4. descend the columns via net splitting (con1/soed) or net discarding
   (cnet), accumulating cut nets as separator columns;
5. recurse until ``k`` leaf parts exist.

A column (net) cut at any level becomes a separator vertex of ``A``;
each remaining column belongs to the leaf part holding all its rows.
The result converts directly into a :class:`repro.core.dbbd.DBBDPartition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from repro.core.dbbd import SEPARATOR, DBBDPartition, build_dbbd
from repro.core.weights import WeightScheme, compute_vertex_weights
from repro.hypergraph import (
    Hypergraph,
    bisect_hypergraph,
    initial_net_costs,
    split_by_side,
)
from repro.hypergraph.metrics import CutMetric
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sparse.patterns import row_nnz
from repro.sparse.structural import edge_incidence_factor
from repro.sparse.symmetrize import is_structurally_symmetric, symmetrized
from repro.utils import (
    SeedLike,
    Timer,
    check_csr,
    fraction,
    positive_int,
    rng_from,
)

__all__ = ["RHBResult", "rhb_partition"]


@dataclass
class RHBResult:
    """Outcome of RHB.

    Attributes
    ----------
    col_part:
        Part id per column of M (= vertex of A): [0, k) or -1 (separator).
    row_part:
        Leaf part id per row of M.
    k, metric, scheme:
        Configuration echoes.
    cut_costs:
        Metric cost charged at each bisection, recursion (pre)order.
    bisection_seconds / bisection_depths:
        Wall time and tree depth of each bisection, enabling the
        parallel-partitioning projection the paper lists as future work
        (:meth:`parallel_partition_seconds`).
    """

    col_part: np.ndarray
    row_part: np.ndarray
    k: int
    metric: CutMetric
    scheme: WeightScheme
    cut_costs: list[int] = field(default_factory=list)
    bisection_seconds: list[float] = field(default_factory=list)
    bisection_depths: list[int] = field(default_factory=list)

    @property
    def serial_partition_seconds(self) -> float:
        return float(sum(self.bisection_seconds))

    def parallel_partition_seconds(self, n_processes: int | None = None) -> float:
        """Projected wall time of a parallel RHB.

        The bisections at tree depth d are independent, so with enough
        processes the depth-d level costs its *maximum* bisection time;
        with ``n_processes`` limited, each level costs
        ``ceil(level_count / n_processes)`` rounds of its maximum (a
        simple bulk-synchronous bound). This is the projection for the
        paper's "investigate a parallel partitioner" future work.
        """
        if not self.bisection_seconds:
            return 0.0
        levels: dict[int, list[float]] = {}
        for t, d in zip(self.bisection_seconds, self.bisection_depths):
            levels.setdefault(d, []).append(t)
        total = 0.0
        for d in sorted(levels):
            ts = levels[d]
            if n_processes is None or n_processes >= len(ts):
                total += max(ts)
            else:
                rounds = -(-len(ts) // n_processes)
                total += rounds * max(ts)
        return total

    @property
    def separator_size(self) -> int:
        return int(np.count_nonzero(self.col_part == SEPARATOR))

    @property
    def total_cut_cost(self) -> int:
        return int(sum(self.cut_costs))

    def to_dbbd(self, A: sp.spmatrix, *, validate: bool = True) -> DBBDPartition:
        """Assemble the DBBD partition of ``A`` induced by ``col_part``."""
        return build_dbbd(A, self.col_part, self.k, validate=validate)


def rhb_partition(A: sp.spmatrix, k: int, *,
                  M: sp.spmatrix | None = None,
                  metric: CutMetric = "soed",
                  scheme: WeightScheme = "w1",
                  epsilon: float = 0.1,
                  seed: SeedLike = None,
                  n_trials: int = 4,
                  fm_passes: int = 8,
                  tracer: Tracer = NULL_TRACER,
                  verify=None,
                  backend=None) -> RHBResult:
    """Run RHB on ``A`` producing ``k`` subdomains plus separator.

    Parameters
    ----------
    A:
        Square sparse matrix; symmetrized internally (the paper works on
        ``|A| + |A|^T``).
    M:
        Structural factor with ``str(A) = str(M^T M)``. If omitted, the
        universal edge-incidence factor is used. FEM applications should
        pass their element-node incidence matrix (fewer, denser rows
        give the dynamic weights more signal).
    metric:
        ``"con1"``, ``"cnet"`` or ``"soed"`` (paper's most effective:
        soed/cnet with the single-constraint w1 scheme).
    scheme:
        Vertex-weight scheme; see :mod:`repro.core.weights`.
    epsilon:
        Allowed imbalance per bisection, Eq. (6).
    tracer:
        Records an ``rhb_partition`` span with one nested ``rhb_bisect``
        span per bisection (``depth`` attribute, ``cut_cost`` counter).
    verify:
        A :class:`repro.verify.Verifier` (or True for the default one)
        arms the partitioning invariant checks: dynamic vertex weights
        are recomputed from their Section III-C definitions at every
        bisection, and at the end the accumulated recursive cut cost
        must telescope to the flat unit-cost metric on the final row
        partition and every interior column must be consistent with its
        rows' leaf part.
    """
    k = positive_int(k, "k")
    epsilon = fraction(epsilon, "epsilon")
    A = check_csr(A)
    if not is_structurally_symmetric(A):
        A = symmetrized(A)
    if M is None:
        M = edge_incidence_factor(A)
    M = check_csr(M)
    if M.shape[1] != A.shape[0]:
        raise ValueError(
            f"M has {M.shape[1]} columns but A is {A.shape[0]}x{A.shape[0]}")
    rng = rng_from(seed)
    if verify is True:
        from repro.verify.invariants import Verifier
        verify = Verifier()
    verifier = verify if (verify is not None
                          and getattr(verify, "enabled", False)) else None

    n_rows, n_cols = M.shape
    H0 = Hypergraph.column_net_model(M)
    H0 = replace(H0, net_costs=initial_net_costs(H0.n_nets, metric))
    w2_full = row_nnz(M).astype(np.int64)

    col_part = np.full(n_cols, SEPARATOR, dtype=np.int64)
    row_part = np.zeros(n_rows, dtype=np.int64)
    is_sep = np.zeros(n_cols, dtype=bool)
    cut_costs: list[int] = []
    bis_seconds: list[float] = []
    bis_depths: list[int] = []

    def recurse(H: Hypergraph, row_ids: np.ndarray, k_here: int, low: int,
                depth: int) -> None:
        if k_here == 1 or H.n_vertices == 0:
            row_part[row_ids] = low
            for nid in np.unique(H.net_ids):
                if not is_sep[nid]:
                    col_part[nid] = low
            return
        weights = compute_vertex_weights(H, scheme, w2_full[row_ids],
                                         first_bisection=(depth == 0),
                                         net_internal=~is_sep[H.net_ids])
        if verifier is not None:
            verifier.after_weights(H, scheme, weights, w2_full[row_ids],
                                   first_bisection=(depth == 0),
                                   net_internal=~is_sep[H.net_ids])
        Hw = replace(H, vertex_weights=weights, _vtx_ptr=H.vtx_ptr,
                     _vtx_nets=H.vtx_nets)
        k_left = k_here // 2
        with tracer.span("rhb_bisect", depth=depth,
                         n_vertices=H.n_vertices):
            timer = Timer().start()
            res = bisect_hypergraph(Hw, epsilon=epsilon,
                                    target0=k_left / k_here, seed=rng,
                                    n_trials=n_trials, fm_passes=fm_passes,
                                    backend=backend)
            split = split_by_side(H, res.side, metric)
            bis_seconds.append(timer.stop())
            tracer.count("cut_cost", split.cut_cost)
        bis_depths.append(depth)
        is_sep[split.cut_net_ids] = True
        cut_costs.append(split.cut_cost)
        recurse(split.children[0], row_ids[split.vertex_ids[0]],
                k_left, low, depth + 1)
        recurse(split.children[1], row_ids[split.vertex_ids[1]],
                k_here - k_left, low + k_left, depth + 1)

    with tracer.span("rhb_partition", k=k, metric=metric, scheme=scheme):
        recurse(H0, np.arange(n_rows, dtype=np.int64), k, 0, 0)
        # columns cut anywhere stay separator even if a fragment reached
        # a leaf
        col_part[is_sep] = SEPARATOR
    if verifier is not None:
        verifier.after_rhb(H0, row_part, col_part, k, metric,
                           int(sum(cut_costs)))
    return RHBResult(col_part=col_part, row_part=row_part, k=k,
                     metric=metric, scheme=scheme, cut_costs=cut_costs,
                     bisection_seconds=bis_seconds,
                     bisection_depths=bis_depths)
