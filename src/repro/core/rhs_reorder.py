"""Sparse right-hand-side reordering for blocked triangular solution
(paper Section IV).

Three column orderings of the RHS block ``E`` (equivalently of the
solution pattern ``G = str(L^{-1} P E)``):

- **natural** — the order the columns arrive in (in the paper, the
  nested-dissection order of the global matrix);
- **postorder** (Section IV-A) — rows of ``D``/``E`` permuted so the
  e-tree of ``D`` is postordered, then columns sorted by first-nonzero
  row index: consecutive columns start near each other in the tree, so
  their fill paths overlap;
- **hypergraph** (Section IV-B) — the row-net hypergraph of ``G`` is
  partitioned into parts of exactly ``B`` columns minimizing
  connectivity-1, which the paper shows equals the number of padded
  zeros up to the constant ``n_G B - nnz(G)`` (Eq. 15). Empty and
  quasi-dense rows may be removed first (Section V-B(c)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.hypergraph import Hypergraph, bisect_hypergraph, split_by_side
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sparse.quasidense import filter_quasi_dense_rows
from repro.utils import SeedLike, Timer, check_csr, positive_int, rng_from

__all__ = [
    "natural_column_order",
    "postorder_column_order",
    "hypergraph_column_order",
    "HypergraphOrderResult",
]


def natural_column_order(n_cols: int) -> np.ndarray:
    """Identity ordering (baseline)."""
    return np.arange(positive_int(n_cols, "n_cols"), dtype=np.int64)


def postorder_column_order(E: sp.spmatrix) -> np.ndarray:
    """Sort columns of ``E`` by ascending first-nonzero row index.

    ``E`` must already be row-permuted so that the factor's e-tree is
    postordered (the caller permutes D and E together). Empty columns
    sort last, keeping their relative order. Ties keep original order
    (stable sort).
    """
    E = check_csr(E).tocsc()
    E.sum_duplicates()
    E.sort_indices()
    m = E.shape[1]
    first = np.full(m, np.iinfo(np.int64).max, dtype=np.int64)
    for j in range(m):
        lo, hi = E.indptr[j], E.indptr[j + 1]
        if hi > lo:
            first[j] = E.indices[lo]
    return np.argsort(first, kind="stable").astype(np.int64)


@dataclass
class HypergraphOrderResult:
    """Hypergraph ordering output with provenance.

    ``order`` concatenates the parts; ``parts`` lists each part's
    original column ids (full parts of B first, remainder last);
    timing and filtering statistics support the Section V-B(c) study.
    """

    order: np.ndarray
    parts: list[np.ndarray]
    partition_seconds: float
    n_rows_used: int
    n_rows_removed_dense: int
    n_rows_removed_empty: int


def _quota_recursive(H: Hypergraph, vertex_ids: np.ndarray,
                     quotas: list[int], seed: SeedLike,
                     n_trials: int, out: list[np.ndarray]) -> None:
    """Recursive bisection into parts of exact sizes ``quotas``."""
    if len(quotas) == 1:
        out.append(np.sort(vertex_ids))
        return
    half = len(quotas) // 2
    q0 = int(sum(quotas[:half]))
    total = H.n_vertices
    res = bisect_hypergraph(H, epsilon=0.02, target0=max(0.02, min(0.98, q0 / total)),
                            seed=seed, n_trials=n_trials, quota0=q0)
    split = split_by_side(H, res.side, metric="con1")
    _quota_recursive(split.children[0], vertex_ids[split.vertex_ids[0]],
                     quotas[:half], seed, n_trials, out)
    _quota_recursive(split.children[1], vertex_ids[split.vertex_ids[1]],
                     quotas[half:], seed, n_trials, out)


def hypergraph_column_order(G: sp.spmatrix, block_size: int, *,
                            tau: float | None = None,
                            seed: SeedLike = None,
                            n_trials: int = 2,
                            tracer: Tracer = NULL_TRACER) -> HypergraphOrderResult:
    """Partition the columns of pattern ``G`` into parts of exactly
    ``block_size`` columns minimizing padded zeros (row-net model,
    connectivity-1 objective; Eq. (15) reduction).

    Parameters
    ----------
    G:
        (n_rows, n_cols) solution pattern.
    tau:
        If given, quasi-dense rows (density >= tau) and empty rows are
        removed before partitioning — same quality, far cheaper
        (Section V-B(c)).
    tracer:
        Records one ``rhs_hypergraph_order`` span with row-filtering
        counters.
    """
    G = check_csr(G)
    B = positive_int(block_size, "block_size")
    rng = rng_from(seed)
    n_rows, n_cols = G.shape
    with tracer.span("rhs_hypergraph_order", n_cols=n_cols, block=B):
        timer = Timer().start()
        removed_dense = removed_empty = 0
        Guse = G
        if tau is not None:
            filt = filter_quasi_dense_rows(G, tau)
            Guse = filt.kept
            removed_dense = int(filt.dense_rows.size)
            removed_empty = int(filt.empty_rows.size)
        tracer.count("rows_removed_dense", removed_dense)
        tracer.count("rows_removed_empty", removed_empty)
        m_full = n_cols // B
        quotas = [B] * m_full
        rem = n_cols - m_full * B
        if rem:
            quotas.append(rem)
        if not quotas or len(quotas) == 1:
            order = np.arange(n_cols, dtype=np.int64)
            return HypergraphOrderResult(order=order,
                                         parts=[order.copy()] if n_cols else [],
                                         partition_seconds=timer.stop(),
                                         n_rows_used=Guse.shape[0],
                                         n_rows_removed_dense=removed_dense,
                                         n_rows_removed_empty=removed_empty)
        H = Hypergraph.row_net_model(Guse)
        parts: list[np.ndarray] = []
        _quota_recursive(H, np.arange(n_cols, dtype=np.int64), quotas, rng,
                         n_trials, parts)
        # keep the remainder part last; full parts keep recursion order
        order = np.concatenate(parts)
        seconds = timer.stop()
    return HypergraphOrderResult(order=order, parts=parts,
                                 partition_seconds=seconds,
                                 n_rows_used=Guse.shape[0],
                                 n_rows_removed_dense=removed_dense,
                                 n_rows_removed_empty=removed_empty)
