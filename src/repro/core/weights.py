"""Dynamic vertex-weight schemes for RHB (paper Section III-C).

At every bisection step RHB re-derives vertex weights from the *current*
sub-hypergraph — this is what distinguishes it from a standard static
partitioning:

- ``w1(i) = nnz(M_l(i, :))`` — row i's nonzeros restricted to the
  current part's column set. ``sum_i w1(i)^2`` upper-bounds
  ``nnz(D_l)`` of the induced subdomain, so balancing w1 balances
  subdomain nonzeros after the next bisection.
- ``w2(i) = nnz(M(i, :))`` — row i's nonzeros in the whole matrix
  (static). ``sum_i (w2(i)^2 - w1(i)^2)`` bounds the nonzeros row i can
  contribute to interfaces/separator, so pairing w2 with w1 balances
  interface nonzeros.

Schemes:

- ``"unit"``      — unit weights everywhere (a standard partitioner);
- ``"w1"``        — single constraint, dynamic w1 (the paper's best);
- ``"w1w2"``      — multi-constraint (w1, w2);
- ``"w2"``        — single static w2 (ablation only; the paper notes
  this is equivalent to standard weighting and does not evaluate it).

The first bisection always uses unit weights (no prior information).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["WeightScheme", "compute_vertex_weights", "VALID_SCHEMES"]

WeightScheme = Literal["unit", "w1", "w1w2", "w2"]
VALID_SCHEMES = ("unit", "w1", "w1w2", "w2")


def current_w1(H: Hypergraph,
               net_internal: np.ndarray | None = None) -> np.ndarray:
    """w1 per vertex: ``nnz(M_l(i, :))`` = the number of *internal*
    columns of the current part containing row i.

    Under net splitting (con1/soed) every original column survives as a
    fragment, so the raw vertex degree never changes; the paper's w1
    counts only columns that have not been cut into the border yet.
    ``net_internal`` (bool per net of ``H``) marks those; None counts
    every net (correct for cnet, where cut nets are discarded).
    """
    if net_internal is None:
        return np.diff(H.vtx_ptr).astype(np.int64)
    if net_internal.shape != (H.n_nets,):
        raise ValueError("net_internal must have one entry per net")
    w = np.zeros(H.n_vertices, dtype=np.int64)
    net_of_pin = np.repeat(np.arange(H.n_nets), H.net_sizes())
    keep = net_internal[net_of_pin]
    np.add.at(w, H.pins[keep], 1)
    return w


def compute_vertex_weights(H: Hypergraph, scheme: WeightScheme,
                           global_row_nnz: np.ndarray, *,
                           first_bisection: bool,
                           net_internal: np.ndarray | None = None) -> np.ndarray:
    """(n, C) weight array for the bisection at this recursion node.

    Parameters
    ----------
    H:
        Current sub-hypergraph (vertices = rows of M in this part).
    global_row_nnz:
        w2 values for the vertices of ``H`` (already subset to this
        node's rows).
    first_bisection:
        Unit weights are used regardless of scheme on the first
        bisection, as in the paper.
    """
    if scheme not in VALID_SCHEMES:
        raise ValueError(f"scheme must be one of {VALID_SCHEMES}, got {scheme!r}")
    n = H.n_vertices
    if global_row_nnz.shape != (n,):
        raise ValueError("global_row_nnz must have one entry per vertex")
    if scheme == "unit" or first_bisection:
        return np.ones((n, 1), dtype=np.int64)
    if scheme == "w1":
        return np.maximum(current_w1(H, net_internal), 1).reshape(n, 1)
    if scheme == "w2":
        return np.maximum(global_row_nnz.astype(np.int64), 1).reshape(n, 1)
    # w1w2: multi-constraint
    w1 = np.maximum(current_w1(H, net_internal), 1)
    w2 = np.maximum(global_row_nnz.astype(np.int64), 1)
    return np.stack([w1, w2], axis=1)
