"""Post-hoc DBBD partition refinement (extension).

The paper's conclusion notes the RHB prototype leaves further quality on
the table. This module adds the classical *separator trimming* pass used
by nested-dissection codes: a separator vertex whose non-separator
neighbours all lie in a single subdomain (or none) is not actually
needed to separate anything and can be absorbed, shrinking the separator
— and therefore the Schur complement — for free. Moves are chosen
smallest-subdomain-first so trimming also nudges the balance.

Applies to partitions from either NGD or RHB; ablated in
``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp

from repro.core.dbbd import SEPARATOR
from repro.sparse.symmetrize import is_structurally_symmetric, symmetrized
from repro.utils import as_int_array, check_csr, check_square

__all__ = ["trim_separator"]


def trim_separator(A: sp.spmatrix, part: np.ndarray, k: int, *,
                   balance_weight: bool = True,
                   max_rounds: int = 10) -> np.ndarray:
    """Absorb unnecessary separator vertices into subdomains.

    Parameters
    ----------
    A:
        Square sparse matrix (symmetrized internally).
    part:
        Vertex partition: [0, k) or -1 (separator). Not modified.
    balance_weight:
        Process candidates smallest-target-subdomain first so absorption
        also improves |V_l| balance.
    max_rounds:
        Trimming exposes new candidates (two adjacent separator vertices
        may both become absorbable only one at a time); rounds repeat
        until a fixpoint or this cap.

    Returns
    -------
    A new part array with the same invariant (no edge couples two
    subdomains) and a separator no larger than the input's.
    """
    A = check_csr(A)
    check_square(A)
    if not is_structurally_symmetric(A):
        A = symmetrized(A)
    n = A.shape[0]
    part = as_int_array(part, "part").copy()
    if part.shape != (n,):
        raise ValueError("part must have one entry per vertex")
    indptr, indices = A.indptr, A.indices
    sizes = np.zeros(k, dtype=np.int64)
    np.add.at(sizes, part[part >= 0], 1)

    def touched_parts(v: int) -> set[int]:
        out: set[int] = set()
        for p in range(indptr[v], indptr[v + 1]):
            u = indices[p]
            if u != v and part[u] >= 0:
                out.add(int(part[u]))
        return out

    for _ in range(max_rounds):
        moved = 0
        # candidates ordered by target subdomain size (heap keeps order
        # as sizes change during the pass)
        heap: list[tuple[int, int, int]] = []
        for v in np.flatnonzero(part == SEPARATOR):
            tp = touched_parts(int(v))
            if len(tp) <= 1:
                target = min(tp) if tp else int(np.argmin(sizes))
                key = int(sizes[target]) if balance_weight else 0
                heapq.heappush(heap, (key, int(v), target))
        while heap:
            _, v, target = heapq.heappop(heap)
            if part[v] != SEPARATOR:
                continue
            tp = touched_parts(v)
            if len(tp) > 1:
                continue  # situation changed since the scan
            if tp:
                target = min(tp)
            part[v] = target
            sizes[target] += 1
            moved += 1
        if moved == 0:
            break
    return part
