"""Doubly-bordered block-diagonal (DBBD) forms and partition statistics.

Given a vertex partition of a square matrix ``A`` into ``k`` subdomains
plus a separator (part id -1), this module assembles the block structure
of Eq. (1) of the paper:

    [ D_1          E_1 ]
    [      ...     ... ]
    [          D_k E_k ]
    [ F_1  ... F_k  C  ]

and computes the per-subdomain quantities the paper balances and
reports: dim(D_l), nnz(D_l), number of nonzero columns of E_l
("col(E)"), and nnz(E_l) — plus max/min balance ratios and the
separator size (Fig. 3 and Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.sparse.patterns import col_nnz
from repro.utils import as_int_array, check_csr, check_square

__all__ = ["DBBDPartition", "SubdomainStats", "PartitionQuality", "build_dbbd"]

SEPARATOR = -1


@dataclass(frozen=True)
class SubdomainStats:
    """Per-subdomain structural statistics (paper Table II columns)."""

    dim: int          # n_{D_l}
    nnz_D: int        # nnz(D_l)
    ncol_E: int       # number of nonzero columns of E_l
    nnz_E: int        # nnz(E_l)
    nrow_F: int       # number of nonzero rows of F_l
    nnz_F: int        # nnz(F_l)


def _ratio(values: np.ndarray) -> float:
    """max/min with care for zero minima (returns inf then)."""
    mx, mn = float(np.max(values)), float(np.min(values))
    if mn == 0.0:
        return float("inf") if mx > 0 else 1.0
    return mx / mn


@dataclass(frozen=True)
class PartitionQuality:
    """Balance ratios (Wmax/Wmin, as plotted in Fig. 3) and separator size."""

    separator_size: int
    dim_ratio: float
    nnz_D_ratio: float
    ncol_E_ratio: float
    nnz_E_ratio: float

    def as_dict(self) -> dict[str, float]:
        return {
            "separator_size": float(self.separator_size),
            "dim(D)": self.dim_ratio,
            "nnz(D)": self.nnz_D_ratio,
            "col(E)": self.ncol_E_ratio,
            "nnz(E)": self.nnz_E_ratio,
        }


@dataclass
class DBBDPartition:
    """A k-way DBBD partition of a square matrix.

    ``part[v]`` in [0, k) or -1 for separator vertices. The permutation
    orders subdomain vertices part by part, separator last, preserving
    original relative order inside each group.
    """

    A: sp.csr_matrix
    part: np.ndarray
    k: int
    perm: np.ndarray = field(init=False)
    block_extents: np.ndarray = field(init=False)  # k+2 offsets

    def __post_init__(self) -> None:
        self.A = check_csr(self.A)
        check_square(self.A)
        n = self.A.shape[0]
        self.part = as_int_array(self.part, "part")
        if self.part.shape != (n,):
            raise ValueError("part must have one entry per row of A")
        if self.part.size and (self.part.min() < SEPARATOR
                               or self.part.max() >= self.k):
            raise ValueError("part entries must be in {-1} U [0, k)")
        groups = [np.flatnonzero(self.part == ell) for ell in range(self.k)]
        sep = np.flatnonzero(self.part == SEPARATOR)
        self.perm = np.concatenate(groups + [sep]) if n else np.empty(0, np.int64)
        sizes = np.asarray([g.size for g in groups] + [sep.size], dtype=np.int64)
        self.block_extents = np.concatenate([[0], np.cumsum(sizes)])

    # -- views ----------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def separator_vertices(self) -> np.ndarray:
        return np.flatnonzero(self.part == SEPARATOR)

    @property
    def separator_size(self) -> int:
        return int(self.separator_vertices.size)

    def subdomain_vertices(self, ell: int) -> np.ndarray:
        self._check_ell(ell)
        return np.flatnonzero(self.part == ell)

    def subdomain_sizes(self) -> np.ndarray:
        sizes = np.zeros(self.k, dtype=np.int64)
        interior = self.part >= 0
        np.add.at(sizes, self.part[interior], 1)
        return sizes

    def _check_ell(self, ell: int) -> None:
        if not (0 <= ell < self.k):
            raise IndexError(f"subdomain index {ell} out of range [0, {self.k})")

    def permuted(self) -> sp.csr_matrix:
        """The full matrix in DBBD order."""
        return self.A[self.perm][:, self.perm].tocsr()

    def D(self, ell: int) -> sp.csr_matrix:
        v = self.subdomain_vertices(ell)
        return self.A[v][:, v].tocsr()

    def E(self, ell: int) -> sp.csr_matrix:
        v = self.subdomain_vertices(ell)
        return self.A[v][:, self.separator_vertices].tocsr()

    def F(self, ell: int) -> sp.csr_matrix:
        v = self.subdomain_vertices(ell)
        return self.A[self.separator_vertices][:, v].tocsr()

    def C(self) -> sp.csr_matrix:
        s = self.separator_vertices
        return self.A[s][:, s].tocsr()

    # -- statistics -------------------------------------------------------------

    def subdomain_stats(self, ell: int) -> SubdomainStats:
        D, E, F = self.D(ell), self.E(ell), self.F(ell)
        return SubdomainStats(
            dim=D.shape[0],
            nnz_D=int(D.nnz),
            ncol_E=int(np.count_nonzero(col_nnz(E))),
            nnz_E=int(E.nnz),
            nrow_F=int(np.count_nonzero(np.diff(F.indptr))),
            nnz_F=int(F.nnz),
        )

    def all_stats(self) -> list[SubdomainStats]:
        return [self.subdomain_stats(ell) for ell in range(self.k)]

    def quality(self) -> PartitionQuality:
        stats = self.all_stats()
        dims = np.asarray([s.dim for s in stats], dtype=np.float64)
        nnzD = np.asarray([s.nnz_D for s in stats], dtype=np.float64)
        ncolE = np.asarray([s.ncol_E for s in stats], dtype=np.float64)
        nnzE = np.asarray([s.nnz_E for s in stats], dtype=np.float64)
        return PartitionQuality(
            separator_size=self.separator_size,
            dim_ratio=_ratio(dims),
            nnz_D_ratio=_ratio(nnzD),
            ncol_E_ratio=_ratio(ncolE),
            nnz_E_ratio=_ratio(nnzE),
        )

    def validate(self) -> None:
        """Check the defining DBBD invariant: no nonzero directly couples
        two different subdomains. Explicitly stored zeros are ignored —
        partitioners operate on the numerical pattern."""
        A = self.A.tocoo()
        pi, pj = self.part[A.row], self.part[A.col]
        bad = (pi >= 0) & (pj >= 0) & (pi != pj) & (A.data != 0)
        if np.any(bad):
            idx = int(np.flatnonzero(bad)[0])
            raise AssertionError(
                f"entry ({A.row[idx]}, {A.col[idx]}) couples subdomains "
                f"{pi[idx]} and {pj[idx]}; separator is incomplete")

    def validate_exact(self) -> None:
        """Exact-tiling invariant: reassembling the D/E/F/C blocks as a
        block matrix must reproduce the permuted matrix entry for entry
        — no nonzero lost, duplicated or displaced. O(k^2) block
        handling plus one sparse subtraction; intended for verification
        runs, not the production path."""
        blocks: list[list[sp.spmatrix | None]] = \
            [[None] * (self.k + 1) for _ in range(self.k + 1)]
        for ell in range(self.k):
            blocks[ell][ell] = self.D(ell)
            blocks[ell][self.k] = self.E(ell)
            blocks[self.k][ell] = self.F(ell)
        blocks[self.k][self.k] = self.C()
        sizes = np.diff(self.block_extents)
        for i in range(self.k + 1):
            for j in range(self.k + 1):
                if blocks[i][j] is None:
                    blocks[i][j] = sp.csr_matrix(
                        (int(sizes[i]), int(sizes[j])))
        tiled = sp.bmat(blocks, format="csr")
        diff = (tiled - self.permuted()).tocsr()
        err = float(np.abs(diff.data).max()) if diff.nnz else 0.0
        if err != 0.0:
            raise AssertionError(
                f"DBBD blocks do not tile A exactly (max discrepancy "
                f"{err:g})")


def build_dbbd(A: sp.spmatrix, part: np.ndarray, k: int, *,
               validate: bool = True) -> DBBDPartition:
    """Construct (and by default validate) a DBBD partition."""
    p = DBBDPartition(A=check_csr(A), part=as_int_array(part, "part"), k=k)
    if validate:
        p.validate()
    return p
