"""The paper's contributions: RHB partitioning (Section III), DBBD
forms, and sparse-RHS reordering for triangular solution (Section IV)."""

from repro.core.dbbd import (
    SEPARATOR,
    DBBDPartition,
    PartitionQuality,
    SubdomainStats,
    build_dbbd,
)
from repro.core.refine import trim_separator
from repro.core.rhb import RHBResult, rhb_partition
from repro.core.rhs_reorder import (
    HypergraphOrderResult,
    hypergraph_column_order,
    natural_column_order,
    postorder_column_order,
)
from repro.core.weights import (
    VALID_SCHEMES,
    WeightScheme,
    compute_vertex_weights,
)

__all__ = [
    "DBBDPartition", "SubdomainStats", "PartitionQuality", "build_dbbd",
    "SEPARATOR",
    "WeightScheme", "compute_vertex_weights", "VALID_SCHEMES",
    "RHBResult", "rhb_partition",
    "trim_separator",
    "natural_column_order", "postorder_column_order",
    "hypergraph_column_order", "HypergraphOrderResult",
]
