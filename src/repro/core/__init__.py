"""The paper's contributions: RHB partitioning (Section III), DBBD
forms, and sparse-RHS reordering for triangular solution (Section IV)."""

from repro.core.dbbd import (
    DBBDPartition,
    SubdomainStats,
    PartitionQuality,
    build_dbbd,
    SEPARATOR,
)
from repro.core.weights import WeightScheme, compute_vertex_weights, VALID_SCHEMES
from repro.core.rhb import RHBResult, rhb_partition
from repro.core.refine import trim_separator
from repro.core.rhs_reorder import (
    natural_column_order,
    postorder_column_order,
    hypergraph_column_order,
    HypergraphOrderResult,
)

__all__ = [
    "DBBDPartition", "SubdomainStats", "PartitionQuality", "build_dbbd",
    "SEPARATOR",
    "WeightScheme", "compute_vertex_weights", "VALID_SCHEMES",
    "RHBResult", "rhb_partition",
    "trim_separator",
    "natural_column_order", "postorder_column_order",
    "hypergraph_column_order", "HypergraphOrderResult",
]
