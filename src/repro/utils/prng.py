"""Deterministic randomness plumbing.

Every randomized heuristic in the library (coarsening tie-breaks, initial
partitions, generators) accepts a ``seed`` argument which may be an int,
a :class:`numpy.random.Generator`, or ``None``. :func:`rng_from` converts
any of those into a Generator; :func:`spawn` derives independent child
streams so nested components do not share state accidentally.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["SeedLike", "rng_from", "spawn"]

SeedLike = Union[int, np.random.Generator, None]


def rng_from(seed: SeedLike) -> np.random.Generator:
    """Return a Generator for ``seed`` (int, Generator or None)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Children are independent of each other and of the parent stream's
    subsequent draws; derivation is deterministic given ``seed``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = rng_from(seed)
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
