"""Shared utilities: validation, timing, deterministic RNG, flop counting."""

from repro.utils.opcount import (
    OpCounter,
    gemm_flops,
    lu_flops_from_counts,
    trsv_flops,
)
from repro.utils.prng import SeedLike, rng_from, spawn
from repro.utils.timing import StageTimer, Timer, format_seconds
from repro.utils.validation import (
    as_float_array,
    as_int_array,
    check_csc,
    check_csr,
    check_finite,
    check_partition_vector,
    check_permutation,
    check_square,
    fraction,
    nonneg_int,
    positive_int,
    require,
)

__all__ = [
    "require", "as_int_array", "as_float_array", "check_square", "check_csr",
    "check_csc", "check_finite", "check_partition_vector", "check_permutation",
    "positive_int",
    "nonneg_int", "fraction",
    "Timer", "StageTimer", "format_seconds",
    "SeedLike", "rng_from", "spawn",
    "OpCounter", "gemm_flops", "trsv_flops", "lu_flops_from_counts",
]
