"""Shared utilities: validation, timing, deterministic RNG, flop counting."""

from repro.utils.validation import (
    require,
    as_int_array,
    as_float_array,
    check_square,
    check_csr,
    check_csc,
    check_partition_vector,
    check_permutation,
    positive_int,
    nonneg_int,
    fraction,
)
from repro.utils.timing import Timer, StageTimer, format_seconds
from repro.utils.prng import SeedLike, rng_from, spawn
from repro.utils.opcount import OpCounter, gemm_flops, trsv_flops, lu_flops_from_counts

__all__ = [
    "require", "as_int_array", "as_float_array", "check_square", "check_csr",
    "check_csc", "check_partition_vector", "check_permutation", "positive_int",
    "nonneg_int", "fraction",
    "Timer", "StageTimer", "format_seconds",
    "SeedLike", "rng_from", "spawn",
    "OpCounter", "gemm_flops", "trsv_flops", "lu_flops_from_counts",
]
