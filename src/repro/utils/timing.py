"""Timers and a hierarchical stage ledger.

The paper reports per-stage times (LU(D), Comp(S), LU(S), Solve) and
per-process balance. ``StageTimer`` records named wall-clock intervals,
supports nesting, and exposes per-stage totals; the parallel simulator
(:mod:`repro.parallel`) aggregates these per simulated process.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["Timer", "StageTimer", "format_seconds"]


def format_seconds(s: float) -> str:
    """Human-readable seconds with adaptive precision."""
    if s < 1e-3:
        return f"{s * 1e6:.1f}us"
    if s < 1.0:
        return f"{s * 1e3:.2f}ms"
    return f"{s:.3f}s"


@dataclass
class Timer:
    """A simple accumulating wall-clock timer."""

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        dt = time.perf_counter() - self._start
        self.elapsed += dt
        self._start = None
        return dt

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class StageTimer:
    """Accumulates wall time per named stage, supporting nesting.

    Nested stages record under ``outer/inner`` keys as well as their own
    flat name, so both views are available.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _stack: List[str] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage occurrence."""
        self._stack.append(name)
        key = "/".join(self._stack)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._stack.pop()
            for k in (key, name) if key != name else (name,):
                self.totals[k] = self.totals.get(k, 0.0) + dt
                self.counts[k] = self.counts.get(k, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def get(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def merge(self, other: "StageTimer") -> None:
        """Accumulate another ledger into this one."""
        for k, v in other.totals.items():
            self.totals[k] = self.totals.get(k, 0.0) + v
        for k, c in other.counts.items():
            self.counts[k] = self.counts.get(k, 0) + c

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self.totals.items())

    def report(self) -> str:
        """Multi-line report of stage totals, longest first."""
        rows = sorted(self.totals.items(), key=lambda kv: -kv[1])
        width = max((len(k) for k, _ in rows), default=0)
        return "\n".join(f"{k:<{width}}  {format_seconds(v)}  (x{self.counts[k]})"
                         for k, v in rows)
