"""Timers and a hierarchical stage ledger.

The paper reports per-stage times (LU(D), Comp(S), LU(S), Solve) and
per-process balance. ``StageTimer`` records named wall-clock intervals,
supports nesting, and exposes per-stage totals; the parallel simulator
(:mod:`repro.parallel`) aggregates these per simulated process.

Measurement is delegated to the observability layer: each
``StageTimer`` owns a :class:`repro.obs.Tracer`, so the per-process
ledgers of the simulated machine carry full span records (not just
totals) and export through the same event model as real traced runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.obs.tracer import Tracer

__all__ = ["Timer", "StageTimer", "format_seconds"]


def format_seconds(s: float) -> str:
    """Human-readable seconds with adaptive precision."""
    if s < 1e-3:
        return f"{s * 1e6:.1f}us"
    if s < 1.0:
        return f"{s * 1e3:.2f}ms"
    return f"{s:.3f}s"


@dataclass
class Timer:
    """A simple accumulating wall-clock timer."""

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        dt = time.perf_counter() - self._start
        self.elapsed += dt
        self._start = None
        return dt

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class StageTimer:
    """Accumulates wall time per named stage, supporting nesting.

    Nested stages record under ``outer/inner`` keys as well as their own
    flat name, so both views are available. The underlying measurements
    are spans on ``self.tracer``, available for event-level export.
    """

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage occurrence."""
        span = self.tracer.span(name)
        span.__enter__()
        try:
            yield
        finally:
            span.__exit__(None, None, None)
            rec = self.tracer.spans[-1]
            for k in (rec.path, name) if rec.path != name else (name,):
                self.totals[k] = self.totals.get(k, 0.0) + rec.wall_s
                self.counts[k] = self.counts.get(k, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def get(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def merge(self, other: "StageTimer") -> None:
        """Accumulate another ledger into this one (totals view only;
        the other tracer's span records keep their own epoch)."""
        self.tracer.spans.extend(other.tracer.spans)
        for k, v in other.totals.items():
            self.totals[k] = self.totals.get(k, 0.0) + v
        for k, c in other.counts.items():
            self.counts[k] = self.counts.get(k, 0) + c

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self.totals.items())

    def report(self) -> str:
        """Multi-line report of stage totals, longest first."""
        rows = sorted(self.totals.items(), key=lambda kv: -kv[1])
        width = max((len(k) for k, _ in rows), default=0)
        return "\n".join(f"{k:<{width}}  {format_seconds(v)}  (x{self.counts[k]})"
                         for k, v in rows)
