"""Floating-point operation accounting.

Wall-clock time in pure Python is dominated by interpreter overhead, so
the simulated-parallel cost model (:mod:`repro.parallel`) prefers flop
counts, which are machine-independent and deterministic. Kernels in
:mod:`repro.lu` and :mod:`repro.solver` report their flops through an
:class:`OpCounter`.

Conventions (matching standard sparse direct-method accounting):

- LU factorization of a column with ``l`` entries below the diagonal and
  ``u`` entries to the right of the diagonal: ``l`` divisions plus
  ``2*l*u`` multiply-adds.
- Triangular solve touching ``nnz`` factor entries for ``m`` right-hand
  sides: ``2 * nnz * m`` flops.
- Dense GEMM (m,k)x(k,n): ``2*m*k*n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["OpCounter", "lu_flops_from_counts", "gemm_flops", "trsv_flops"]


def gemm_flops(m: int, k: int, n: int) -> int:
    """Flops for a dense (m,k) @ (k,n) multiply-accumulate."""
    return 2 * m * k * n


def trsv_flops(nnz_factor: int, nrhs: int = 1) -> int:
    """Flops for a sparse triangular solve touching ``nnz_factor`` entries."""
    return 2 * nnz_factor * nrhs


def lu_flops_from_counts(l_counts, u_counts) -> int:
    """Flops for a sparse LU given per-column below-diagonal and
    right-of-diagonal counts (see module docstring)."""
    total = 0
    for l, u in zip(l_counts, u_counts):
        total += l + 2 * l * u
    return int(total)


@dataclass
class OpCounter:
    """Accumulates flop counts per named kernel."""

    flops: Dict[str, int] = field(default_factory=dict)

    def add(self, kernel: str, count: int) -> None:
        if count < 0:
            raise ValueError("flop count must be non-negative")
        self.flops[kernel] = self.flops.get(kernel, 0) + int(count)

    def get(self, kernel: str) -> int:
        return self.flops.get(kernel, 0)

    @property
    def total(self) -> int:
        return sum(self.flops.values())

    def merge(self, other: "OpCounter") -> None:
        for k, v in other.flops.items():
            self.flops[k] = self.flops.get(k, 0) + v

    def report(self) -> str:
        rows = sorted(self.flops.items(), key=lambda kv: -kv[1])
        width = max((len(k) for k, _ in rows), default=0)
        return "\n".join(f"{k:<{width}}  {v:,} flops" for k, v in rows)
