"""Input validation helpers shared across the library.

These helpers centralize the defensive checks used at public API
boundaries so that error messages are consistent and cheap paths stay
cheap (validation of O(1) properties only; structural O(n) validation is
opt-in via ``check_*`` functions).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "require",
    "as_int_array",
    "as_float_array",
    "check_square",
    "check_csr",
    "check_csc",
    "check_partition_vector",
    "check_permutation",
    "check_finite",
    "positive_int",
    "nonneg_int",
    "fraction",
]


def require(cond: bool, message: str, exc: type[Exception] = ValueError) -> None:
    """Raise ``exc(message)`` unless ``cond`` is true."""
    if not cond:
        raise exc(message)


def positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    iv = int(value)
    if iv != value or iv <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return iv


def nonneg_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    iv = int(value)
    if iv != value or iv < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return iv


def fraction(value: Any, name: str, *, lo: float = 0.0, hi: float = 1.0) -> float:
    """Validate that ``value`` lies in the closed interval [lo, hi]."""
    fv = float(value)
    if not (lo <= fv <= hi) or not np.isfinite(fv):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return fv


def as_int_array(values: Iterable[int] | np.ndarray, name: str = "array") -> np.ndarray:
    """Convert to a contiguous int64 ndarray, rejecting non-integral input."""
    arr = np.ascontiguousarray(values)
    if arr.dtype.kind not in "iu":
        if arr.dtype.kind == "f" and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def as_float_array(values: Iterable[float] | np.ndarray,
                   name: str = "array") -> np.ndarray:
    """Convert to a contiguous float64 ndarray."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.dtype.kind != "f":
        raise TypeError(f"{name} must be a float array, got dtype {arr.dtype}")
    return arr


def check_square(A: sp.spmatrix, name: str = "A") -> None:
    """Require a square sparse matrix."""
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"{name} must be square, got shape {A.shape}")


def check_csr(A: Any, name: str = "A") -> sp.csr_matrix:
    """Return ``A`` as canonical CSR (sorted indices, no duplicates)."""
    if not sp.issparse(A):
        raise TypeError(f"{name} must be a scipy sparse matrix, got {type(A).__name__}")
    A = A.tocsr()
    A.sum_duplicates()
    A.sort_indices()
    return A


def check_csc(A: Any, name: str = "A") -> sp.csc_matrix:
    """Return ``A`` as canonical CSC (sorted indices, no duplicates)."""
    if not sp.issparse(A):
        raise TypeError(f"{name} must be a scipy sparse matrix, got {type(A).__name__}")
    A = A.tocsc()
    A.sum_duplicates()
    A.sort_indices()
    return A


def check_finite(values: Any, name: str = "array") -> Any:
    """Reject NaN/Inf entries in a dense array or a sparse matrix's data.

    Returns ``values`` unchanged so the check composes in call chains.
    The scan is O(nnz)/O(n) — cheap relative to any factorization — and
    turns silent NaN propagation into an immediate, located error.
    """
    data = values.data if sp.issparse(values) else np.asarray(values)
    if data.size and data.dtype.kind in "fc" and \
            not np.all(np.isfinite(data)):
        bad = int(np.count_nonzero(~np.isfinite(data)))
        raise ValueError(f"{name} contains {bad} non-finite (NaN/Inf) "
                         f"entr{'y' if bad == 1 else 'ies'}")
    return values


def check_partition_vector(part: np.ndarray, n: int, k: int,
                           name: str = "part") -> np.ndarray:
    """Validate a part-assignment vector: length n, entries in [0, k)."""
    part = as_int_array(part, name)
    if part.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {part.shape}")
    if part.size and (part.min() < 0 or part.max() >= k):
        raise ValueError(f"{name} entries must be in [0, {k}), got range "
                         f"[{part.min()}, {part.max()}]")
    return part


def check_permutation(perm: Sequence[int] | np.ndarray, n: int,
                      name: str = "perm") -> np.ndarray:
    """Validate that ``perm`` is a permutation of range(n)."""
    perm = as_int_array(perm, name)
    if perm.shape != (n,):
        raise ValueError(f"{name} must have length {n}, got {perm.shape}")
    seen = np.zeros(n, dtype=bool)
    if n:
        if perm.min() < 0 or perm.max() >= n:
            raise ValueError(f"{name} entries out of range [0, {n})")
        seen[perm] = True
        if not seen.all():
            raise ValueError(f"{name} is not a permutation (has duplicates)")
    return perm
