"""Top-level convenience entry points: :func:`repro.solve` and
:func:`repro.serve`.

``solve`` is the one-shot path — build, set up, and run a
:class:`~repro.solver.PDSLin` for a single system (or block of
right-hand sides) without touching the class API::

    import repro
    result = repro.solve(A, b, k=8, partitioner="rhb", backend="process:2")

Keyword options are routed by name: fields of
:class:`~repro.solver.PDSLinConfig` (``k``, ``drop_schur``,
``partitioner``, ...) configure the numerics; fields of
:class:`~repro.solver.RuntimeOptions` (``backend``, ``tracer``,
``checkpoint``, ...) configure the run. An explicit ``config=`` /
``runtime=`` object wins over loose keywords for the same field —
mixing both raises.

``serve`` is the long-lived path: it starts a
:class:`repro.service.SolverService` (session cache + micro-batching
request queue) and returns it::

    with repro.serve(backend="process:4") as svc:
        fut = svc.submit(A, b)
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.solver import (
    BlockResult,
    PDSLin,
    PDSLinConfig,
    PDSLinResult,
    RuntimeOptions,
)

if TYPE_CHECKING:
    from repro.service import SolverService

__all__ = ["solve", "serve"]

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(PDSLinConfig))
_RUNTIME_FIELDS = frozenset(RuntimeOptions.field_names())


def _route_options(config: Optional[PDSLinConfig],
                   runtime: Optional[RuntimeOptions],
                   options: dict) -> tuple[PDSLinConfig, RuntimeOptions]:
    """Split loose keywords into config/runtime fields by name."""
    cfg_kw = {k: v for k, v in options.items() if k in _CONFIG_FIELDS}
    rt_kw = {k: v for k, v in options.items() if k in _RUNTIME_FIELDS}
    unknown = set(options) - _CONFIG_FIELDS - _RUNTIME_FIELDS
    if unknown:
        raise TypeError(
            f"unknown option(s) {sorted(unknown)}; valid names are the "
            f"fields of PDSLinConfig and RuntimeOptions")
    if config is not None and cfg_kw:
        raise TypeError(
            f"pass {sorted(cfg_kw)} inside config=, not alongside it")
    if runtime is not None and rt_kw:
        raise TypeError(
            f"pass {sorted(rt_kw)} inside runtime=, not alongside it")
    cfg = config if config is not None else PDSLinConfig(**cfg_kw)
    rt = runtime if runtime is not None else RuntimeOptions(**rt_kw)
    return cfg, rt


def solve(A: sp.spmatrix, b: np.ndarray, *,
          M: Optional[sp.spmatrix] = None,
          config: Optional[PDSLinConfig] = None,
          runtime: Optional[RuntimeOptions] = None,
          **options) -> Union[PDSLinResult, BlockResult]:
    """Solve ``A x = b`` with the full hybrid pipeline in one call.

    A 1-D ``b`` returns a :class:`~repro.solver.PDSLinResult`; a 2-D
    ``(n, nrhs)`` block returns a :class:`~repro.solver.BlockResult`
    via the batched multi-RHS path. See the module docstring for how
    ``**options`` are routed.
    """
    cfg, rt = _route_options(config, runtime, options)
    solver = PDSLin(A, cfg, M=M, runtime=rt)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 2:
        return solver.solve_block(b)
    return solver.solve(b)


def serve(**kwargs) -> "SolverService":
    """Start a :class:`repro.service.SolverService` — the long-lived,
    session-cached, micro-batching front end. All keywords are
    forwarded (``config=``, ``backend=``, ``cache_bytes=``,
    ``batch_window_s=``, ``max_pending=``, ``tracer=``, ...)."""
    from repro.service import SolverService

    return SolverService(**kwargs)
