"""Quasi-dense row detection and removal (paper Section V-B(c)).

A row of the solution-vector pattern ``G`` is *quasi-dense* when its
density (fraction of nonzero columns) is at least a threshold ``tau``.
The paper observes that removing empty and quasi-dense rows before
building the row-net hypergraph cuts the partitioning time by factors up
to 4 with essentially no loss of partition quality until ``tau`` becomes
too small (< 0.1).

Rationale: a quasi-dense row corresponds to a net connecting nearly all
vertices — it is cut under any partition and contributes an (almost)
constant amount of padding, so it carries no signal for the partitioner
while dominating its run time. Empty rows never cause padding at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.patterns import row_nnz
from repro.utils import check_csr, fraction

__all__ = ["QuasiDenseFilter", "filter_quasi_dense_rows"]


@dataclass(frozen=True)
class QuasiDenseFilter:
    """Result of filtering a matrix's rows by density.

    Attributes
    ----------
    kept:
        CSR matrix containing only the retained rows (original column
        count preserved).
    kept_rows:
        Original indices of retained rows.
    dense_rows:
        Original indices of removed quasi-dense rows.
    empty_rows:
        Original indices of removed empty rows.
    tau:
        Density threshold used.
    """

    kept: sp.csr_matrix
    kept_rows: np.ndarray
    dense_rows: np.ndarray
    empty_rows: np.ndarray
    tau: float

    @property
    def n_removed(self) -> int:
        return int(self.dense_rows.size + self.empty_rows.size)

    @property
    def removed_fraction(self) -> float:
        total = self.kept_rows.size + self.n_removed
        return self.n_removed / total if total else 0.0


def filter_quasi_dense_rows(G: sp.spmatrix, tau: float = 0.4) -> QuasiDenseFilter:
    """Split rows of ``G`` into kept / quasi-dense / empty sets.

    Parameters
    ----------
    G:
        Pattern matrix whose rows are hypergraph nets (e.g. the symbolic
        solution pattern of Section IV-B).
    tau:
        Density threshold in (0, 1]; a row with
        ``nnz(row) / ncols >= tau`` is quasi-dense.
    """
    G = check_csr(G)
    tau = fraction(tau, "tau")
    if tau == 0.0:
        raise ValueError("tau must be positive (tau=0 would drop every row)")
    n_cols = G.shape[1]
    counts = row_nnz(G)
    empty = counts == 0
    dense = ~empty & (counts >= tau * n_cols) if n_cols else np.zeros_like(empty)
    keep = ~empty & ~dense
    kept_rows = np.flatnonzero(keep)
    return QuasiDenseFilter(
        kept=G[kept_rows].tocsr(),
        kept_rows=kept_rows,
        dense_rows=np.flatnonzero(dense),
        empty_rows=np.flatnonzero(empty),
        tau=tau,
    )
