"""Structural factorization ``str(A) = str(M^T M)``.

RHB (Section III-C of the paper) partitions the column-net hypergraph of
a matrix ``M`` whose structural product reproduces the pattern of the
symmetrized input ``A``. The paper uses the decomposition of
Catalyurek/Aykanat/Kayaaslan; here we provide:

- :func:`edge_incidence_factor` — the universal decomposition in which
  each off-diagonal pair {i, j} of ``A`` becomes a row of ``M`` with two
  nonzeros. Always valid for any structurally symmetric ``A``.
- :func:`clique_factor` — a greedy clique-cover decomposition that merges
  edges into larger cliques (one row per clique), producing fewer, denser
  rows. FEM-type matrices admit much smaller factors this way, and the
  dynamic RHB weights ``w1``/``w2`` become more informative.
- :func:`verify_structural_factor` — checks ``str(M^T M) == str(A)``
  modulo the diagonal.

Generators in :mod:`repro.matrices` that assemble from elements supply
their native element-node incidence matrix, which is the exact
decomposition the paper had in mind for FEM problems.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.patterns import boolean_product_pattern, pattern_of
from repro.sparse.symmetrize import is_structurally_symmetric, symmetrized
from repro.utils import check_csr, check_square

__all__ = ["edge_incidence_factor", "clique_factor", "verify_structural_factor"]


def _upper_edges(A: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    """Strictly-upper-triangular nonzero coordinates of ``A``."""
    U = sp.triu(A, k=1).tocoo()
    return U.row.astype(np.int64), U.col.astype(np.int64)


def edge_incidence_factor(A: sp.spmatrix) -> sp.csr_matrix:
    """Edge-vertex incidence factor of (the symmetrization of) ``A``.

    Returns ``M`` with one row per off-diagonal pair {i, j} (entries in
    columns i and j) plus one singleton row per isolated vertex, so that
    ``str(M^T M)`` equals ``str(|A|+|A|^T)`` with a full diagonal.
    """
    A = check_csr(A)
    check_square(A)
    if not is_structurally_symmetric(A):
        A = symmetrized(A)
    n = A.shape[0]
    ei, ej = _upper_edges(A)
    touched = np.zeros(n, dtype=bool)
    touched[ei] = True
    touched[ej] = True
    isolated = np.flatnonzero(~touched)
    m = ei.size + isolated.size
    rows = np.concatenate([np.arange(ei.size), np.arange(ei.size),
                           np.arange(ei.size, m)])
    cols = np.concatenate([ei, ej, isolated])
    data = np.ones(rows.size, dtype=np.int8)
    M = sp.csr_matrix((data, (rows, cols)), shape=(m, n))
    M.sum_duplicates()
    M.sort_indices()
    return M


def clique_factor(A: sp.spmatrix, *, max_clique: int = 32) -> sp.csr_matrix:
    """Greedy clique-cover structural factor of ``A``.

    Covers the edges of graph(A) with cliques: repeatedly take an
    uncovered edge {i, j} and greedily extend it with common neighbours
    until no vertex is adjacent to all clique members (or the clique
    reaches ``max_clique``). Each clique becomes one row of ``M``.
    The result satisfies ``str(M^T M) == str(A)`` (mod diagonal) because
    every clique is a subset of a neighbourhood intersection, so no
    spurious off-diagonals are introduced, and every edge is covered.
    """
    A = check_csr(A)
    check_square(A)
    if not is_structurally_symmetric(A):
        A = symmetrized(A)
    n = A.shape[0]
    indptr, indices = A.indptr, A.indices
    adj = [set(indices[indptr[i]:indptr[i + 1]]) - {i} for i in range(n)]
    covered: set[tuple[int, int]] = set()
    cliques: list[list[int]] = []
    ei, ej = _upper_edges(A)
    for i, j in zip(ei.tolist(), ej.tolist()):
        if (i, j) in covered:
            continue
        clique = [i, j]
        common = adj[i] & adj[j]
        while common and len(clique) < max_clique:
            # prefer the common neighbour covering the most uncovered edges
            best, best_score = -1, -1
            for v in common:
                score = sum(1 for u in clique
                            if (min(u, v), max(u, v)) not in covered)
                if score > best_score:
                    best, best_score = v, score
            if best_score <= 0:
                break
            clique.append(best)
            common &= adj[best]
        for a_idx in range(len(clique)):
            for b_idx in range(a_idx + 1, len(clique)):
                a, b = clique[a_idx], clique[b_idx]
                covered.add((min(a, b), max(a, b)))
        cliques.append(clique)
    touched = np.zeros(n, dtype=bool)
    for c in cliques:
        touched[c] = True
    for v in np.flatnonzero(~touched):
        cliques.append([int(v)])
    rows = np.concatenate(
        [np.full(len(c), r, dtype=np.int64)
         for r, c in enumerate(cliques)]) if cliques else np.empty(0, np.int64)
    cols = np.concatenate([np.asarray(c, dtype=np.int64) for c in cliques]) \
        if cliques else np.empty(0, np.int64)
    M = sp.csr_matrix((np.ones(rows.size, dtype=np.int8), (rows, cols)),
                      shape=(len(cliques), n))
    M.sum_duplicates()
    M.sort_indices()
    return M


def verify_structural_factor(A: sp.spmatrix, M: sp.spmatrix) -> bool:
    """True iff ``str(M^T M)`` equals ``str(|A|+|A|^T)`` off the diagonal
    and covers its diagonal."""
    A = symmetrized(check_csr(A))
    P = boolean_product_pattern(M.T.tocsr(), M)
    if P.shape != A.shape:
        return False
    def off(X: sp.spmatrix) -> sp.csr_matrix:
        C = X.tocoo()
        keep = C.row != C.col
        return pattern_of(sp.csr_matrix(
            (C.data[keep], (C.row[keep], C.col[keep])), shape=C.shape))

    PA, PP = off(A), off(P)
    if not (np.array_equal(PA.indptr, PP.indptr)
            and np.array_equal(PA.indices, PP.indices)):
        return False
    return bool(np.all(P.diagonal() > 0))
