"""Structure-only sparse matrix operations.

The partitioning and symbolic-factorization layers operate on nonzero
*patterns*, not values. This module provides canonical pattern
representations and the handful of pattern algebra operations the rest
of the library needs (boolean products, row/column counts, submatrix
pattern extraction), all built on CSR index arrays so they vectorize.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils import as_int_array, check_csr

__all__ = [
    "pattern_of",
    "pattern_equal",
    "row_nnz",
    "col_nnz",
    "nonzero_rows",
    "nonzero_cols",
    "boolean_product_pattern",
    "extract_submatrix",
    "pattern_union",
    "drop_explicit_zeros",
    "density_of_rows",
]


def pattern_of(A: sp.spmatrix) -> sp.csr_matrix:
    """Return the boolean nonzero pattern of ``A`` as CSR with data == 1.

    Explicitly stored zeros are dropped first so the pattern reflects
    actual nonzeros.
    """
    A = check_csr(A)
    A = drop_explicit_zeros(A)
    P = A.copy()
    P.data = np.ones_like(P.data, dtype=np.int8)
    return P


def drop_explicit_zeros(A: sp.csr_matrix) -> sp.csr_matrix:
    """Remove explicitly stored zero entries."""
    A = check_csr(A)
    if A.nnz and np.any(A.data == 0):
        A = A.copy()
        A.eliminate_zeros()
    return A


def pattern_equal(A: sp.spmatrix, B: sp.spmatrix) -> bool:
    """True iff A and B have identical nonzero patterns."""
    A, B = pattern_of(A), pattern_of(B)
    if A.shape != B.shape or A.nnz != B.nnz:
        return False
    return (np.array_equal(A.indptr, B.indptr)
            and np.array_equal(A.indices, B.indices))


def row_nnz(A: sp.spmatrix) -> np.ndarray:
    """Number of stored nonzeros in each row."""
    A = drop_explicit_zeros(check_csr(A))
    return np.diff(A.indptr)


def col_nnz(A: sp.spmatrix) -> np.ndarray:
    """Number of stored nonzeros in each column."""
    A = drop_explicit_zeros(check_csr(A))
    return np.bincount(A.indices, minlength=A.shape[1]).astype(np.int64)


def nonzero_rows(A: sp.spmatrix) -> np.ndarray:
    """Indices of rows with at least one nonzero."""
    return np.flatnonzero(row_nnz(A) > 0)


def nonzero_cols(A: sp.spmatrix) -> np.ndarray:
    """Indices of columns with at least one nonzero."""
    return np.flatnonzero(col_nnz(A) > 0)


def boolean_product_pattern(A: sp.spmatrix, B: sp.spmatrix) -> sp.csr_matrix:
    """Pattern of the boolean matrix product ``A @ B``.

    Uses integer arithmetic on the 0/1 patterns; overflow-safe because
    counts are bounded by the inner dimension.
    """
    PA = pattern_of(A).astype(np.int64)
    PB = pattern_of(B).astype(np.int64)
    C = PA @ PB
    return pattern_of(C)


def pattern_union(A: sp.spmatrix, B: sp.spmatrix) -> sp.csr_matrix:
    """Pattern of the elementwise union of two equal-shape matrices."""
    if A.shape != B.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {B.shape}")
    return pattern_of(pattern_of(A) + pattern_of(B))


def extract_submatrix(A: sp.spmatrix, rows: np.ndarray,
                      cols: np.ndarray) -> sp.csr_matrix:
    """Extract ``A[rows, :][:, cols]`` efficiently as CSR."""
    A = check_csr(A)
    rows = as_int_array(rows, "rows")
    cols = as_int_array(cols, "cols")
    return A[rows][:, cols].tocsr()


def density_of_rows(A: sp.spmatrix) -> np.ndarray:
    """Per-row density nnz(row)/ncols (used by quasi-dense filtering)."""
    A = check_csr(A)
    n_cols = A.shape[1]
    if n_cols == 0:
        return np.zeros(A.shape[0])
    return row_nnz(A) / float(n_cols)
