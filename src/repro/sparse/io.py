"""Minimal Matrix Market I/O.

A self-contained coordinate-format reader/writer so generated test
problems can be persisted and exchanged without relying on
``scipy.io``. Supports ``matrix coordinate real|integer|pattern
general|symmetric`` which covers every matrix class used by the paper's
experiments.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np
import scipy.sparse as sp

from repro.utils import check_csr

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER = "%%MatrixMarket"


def _open(path_or_file: Union[str, Path, TextIO], mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_matrix_market(path_or_file: Union[str, Path, TextIO]) -> sp.csr_matrix:
    """Read a Matrix Market coordinate file into CSR."""
    f, should_close = _open(path_or_file, "r")
    try:
        header = f.readline().strip()
        if not header.startswith(_HEADER):
            raise ValueError(f"not a MatrixMarket file (header {header!r})")
        parts = header.split()
        if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
            raise ValueError(f"unsupported MatrixMarket header: {header!r}")
        field, symmetry = parts[3], parts[4]
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        dims = line.split()
        if len(dims) != 3:
            raise ValueError(f"bad size line: {line!r}")
        nrows, ncols, nnz = (int(x) for x in dims)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        for idx in range(nnz):
            toks = f.readline().split()
            if len(toks) < 2:
                raise ValueError(f"truncated file at entry {idx}")
            rows[idx] = int(toks[0]) - 1
            cols[idx] = int(toks[1]) - 1
            if field != "pattern":
                vals[idx] = float(toks[2])
        if symmetry == "symmetric":
            off = rows != cols
            rows = np.concatenate([rows, cols[off]])
            cols = np.concatenate([cols, rows[: nnz][off]])
            vals = np.concatenate([vals, vals[off]])
        A = sp.csr_matrix((vals, (rows, cols)), shape=(nrows, ncols))
        A.sum_duplicates()
        A.sort_indices()
        return A
    finally:
        if should_close:
            f.close()


def write_matrix_market(path_or_file: Union[str, Path, TextIO],
                        A: sp.spmatrix, *, comment: str = "") -> None:
    """Write ``A`` as a general real coordinate Matrix Market file."""
    A = check_csr(A).tocoo()
    f, should_close = _open(path_or_file, "w")
    try:
        f.write(f"{_HEADER} matrix coordinate real general\n")
        for line in comment.splitlines():
            f.write(f"% {line}\n")
        f.write(f"{A.shape[0]} {A.shape[1]} {A.nnz}\n")
        buf = io.StringIO()
        for i, j, v in zip(A.row, A.col, A.data):
            buf.write(f"{i + 1} {j + 1} {float(v)!r}\n")
        f.write(buf.getvalue())
    finally:
        if should_close:
            f.close()
