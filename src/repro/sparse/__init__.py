"""Sparse-matrix substrate: pattern algebra, symmetrization, structural
factorization, quasi-dense filtering, Matrix Market I/O."""

from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.patterns import (
    boolean_product_pattern,
    col_nnz,
    density_of_rows,
    drop_explicit_zeros,
    extract_submatrix,
    nonzero_cols,
    nonzero_rows,
    pattern_equal,
    pattern_of,
    pattern_union,
    row_nnz,
)
from repro.sparse.quasidense import QuasiDenseFilter, filter_quasi_dense_rows
from repro.sparse.structural import (
    clique_factor,
    edge_incidence_factor,
    verify_structural_factor,
)
from repro.sparse.symmetrize import (
    SymmetryInfo,
    is_structurally_symmetric,
    symmetrized,
    symmetry_info,
)

__all__ = [
    "pattern_of", "pattern_equal", "row_nnz", "col_nnz", "nonzero_rows",
    "nonzero_cols", "boolean_product_pattern", "pattern_union",
    "extract_submatrix", "drop_explicit_zeros", "density_of_rows",
    "symmetrized", "is_structurally_symmetric", "SymmetryInfo", "symmetry_info",
    "edge_incidence_factor", "clique_factor", "verify_structural_factor",
    "QuasiDenseFilter", "filter_quasi_dense_rows",
    "read_matrix_market", "write_matrix_market",
]
