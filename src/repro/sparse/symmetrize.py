"""Symmetrization and symmetry diagnostics.

The paper's partitioning algorithms work on the symmetrized matrix
``|A| + |A|^T`` (Section III); Table I reports pattern/value symmetry of
the test matrices. Both live here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.patterns import pattern_of
from repro.utils import check_csr, check_square

__all__ = ["symmetrized", "SymmetryInfo", "symmetry_info", "is_structurally_symmetric"]


def symmetrized(A: sp.spmatrix) -> sp.csr_matrix:
    """Return ``|A| + |A|^T`` in canonical CSR form.

    Explicitly stored zeros are eliminated so downstream structure-based
    code (graphs, hypergraphs, e-trees) sees the numerical pattern.
    """
    A = check_csr(A)
    check_square(A)
    M = abs(A) + abs(A).T
    M = M.tocsr()
    M.eliminate_zeros()
    M.sum_duplicates()
    M.sort_indices()
    return M


def is_structurally_symmetric(A: sp.spmatrix) -> bool:
    """True iff the nonzero pattern of ``A`` equals that of ``A^T``."""
    A = check_csr(A)
    check_square(A)
    P = pattern_of(A)
    PT = pattern_of(A.T.tocsr())
    return (np.array_equal(P.indptr, PT.indptr)
            and np.array_equal(P.indices, PT.indices))


@dataclass(frozen=True)
class SymmetryInfo:
    """Symmetry diagnostics matching the Table I columns of the paper."""

    pattern_symmetric: bool
    value_symmetric: bool
    positive_definite: bool | None  # None if not tested (expensive)

    def table_row(self) -> str:
        fmt = lambda b: "yes" if b else "no"
        pd = "?" if self.positive_definite is None else fmt(self.positive_definite)
        return (f"pattern={fmt(self.pattern_symmetric)} "
                f"value={fmt(self.value_symmetric)} posdef={pd}")


def symmetry_info(A: sp.spmatrix, *, check_definiteness: bool = False,
                  tol: float = 1e-12) -> SymmetryInfo:
    """Compute pattern/value symmetry and (optionally) positive definiteness.

    Definiteness is tested via the smallest eigenvalue estimate of the
    symmetric part using a few Lanczos iterations; only meaningful for
    value-symmetric matrices and skipped by default because it is
    relatively expensive.
    """
    A = check_csr(A)
    check_square(A)
    pat = is_structurally_symmetric(A)
    if pat:
        D = (A - A.T).tocsr()
        scale = max(abs(A).max(), 1.0) if A.nnz else 1.0
        val = bool(D.nnz == 0 or np.max(np.abs(D.data)) <= tol * scale)
    else:
        val = False
    posdef: bool | None = None
    if check_definiteness:
        if not val:
            posdef = False
        elif A.shape[0] <= 2:
            posdef = bool(np.all(np.linalg.eigvalsh(A.toarray()) > 0))
        else:
            from scipy.sparse.linalg import eigsh
            try:
                lam = eigsh(A.asfptype(), k=1, which="SA",
                            return_eigenvectors=False, maxiter=2000, tol=1e-6)
                posdef = bool(lam[0] > 0)
            except Exception:
                posdef = None
    return SymmetryInfo(pattern_symmetric=pat, value_symmetric=val,
                        positive_definite=posdef)
