"""Direct k-way greedy refinement of hypergraph partitions.

Recursive bisection optimizes each cut in isolation; a direct k-way pass
over the final partition can still improve the global connectivity
metrics (METIS/hMETIS-style greedy boundary refinement). For every
boundary vertex we evaluate the exact metric delta of moving it to each
part its nets touch, and apply the best strictly-improving feasible
move; passes repeat until no move helps.

Exact per-move deltas (net j, cost c, moving v from a to b, where
``pi[j, p]`` counts j's pins in part p):

- con1: +c when v is a's last pin and b already holds one
        (lambda drops), -c when a keeps pins and b had none
        (lambda grows);
- cnet: +c when the move makes j internal to b, -c when it cuts a
        previously-internal net;
- soed: the sum of both.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import CutMetric
from repro.utils import SeedLike, check_partition_vector, fraction, rng_from

__all__ = ["kway_refine", "kway_move_gain"]


def _pin_counts(H: Hypergraph, part: np.ndarray, k: int) -> np.ndarray:
    pi = np.zeros((H.n_nets, k), dtype=np.int64)
    np.add.at(pi, (H.net_of_pin, part[H.pins]), 1)
    return pi


def kway_move_gain(H: Hypergraph, pi: np.ndarray, sizes: np.ndarray,
                   v: int, a: int, b: int, metric: CutMetric) -> int:
    """Exact metric delta (positive = improvement) of moving ``v`` from
    part ``a`` to part ``b`` given pin counts ``pi`` and net sizes."""
    gain = 0
    con1 = metric in ("con1", "soed")
    cnet = metric in ("cnet", "soed")
    for j in H.vertex_net_list(v):
        c = int(H.net_costs[j])
        pa, pb = pi[j, a], pi[j, b]
        if con1:
            if pa == 1 and pb > 0:
                gain += c
            elif pa > 1 and pb == 0:
                gain -= c
        if cnet:
            sz = sizes[j]
            if pa == sz and sz > 1:
                gain -= c            # was internal to a, now cut
            elif pa == 1 and pb == sz - 1 and sz > 1:
                gain += c            # was cut, becomes internal to b
    return gain


def kway_refine(H: Hypergraph, part: np.ndarray, k: int, *,
                metric: CutMetric = "con1", epsilon: float = 0.05,
                max_passes: int = 4, seed: SeedLike = 0) -> np.ndarray:
    """Greedy k-way boundary refinement; returns an improved copy of
    ``part`` (never worse under the chosen metric, balance respected)."""
    part = check_partition_vector(part, H.n_vertices, k).copy()
    epsilon = fraction(epsilon, "epsilon")
    rng = rng_from(seed)
    pi = _pin_counts(H, part, k)
    sizes = H.net_sizes()
    totals = H.total_weight().astype(np.float64)
    caps = (1.0 + epsilon) * totals / k
    W = np.zeros((k, H.n_constraints), dtype=np.int64)
    np.add.at(W, part, H.vertex_weights)

    for _ in range(max_passes):
        # boundary vertices: touching a net with pins in >1 part
        lam = (pi > 0).sum(axis=1)
        cut_nets = np.flatnonzero(lam > 1)
        if cut_nets.size == 0:
            break
        on_boundary = np.zeros(H.n_vertices, dtype=bool)
        for j in cut_nets:
            on_boundary[H.net_pins(j)] = True
        candidates = np.flatnonzero(on_boundary)
        rng.shuffle(candidates)
        improved = False
        for v in candidates:
            a = int(part[v])
            # candidate targets: parts the vertex's nets already touch
            targets: set[int] = set()
            for j in H.vertex_net_list(v):
                targets.update(np.flatnonzero(pi[j] > 0).tolist())
            targets.discard(a)
            best_b, best_gain = -1, 0
            wv = H.vertex_weights[v]
            for b in targets:
                if np.any(W[b] + wv > caps):
                    continue
                gain = kway_move_gain(H, pi, sizes, int(v), a, b, metric)
                if gain > best_gain or (gain == best_gain > 0 and b < best_b):
                    best_b, best_gain = b, gain
            if best_gain > 0:
                for j in H.vertex_net_list(v):
                    pi[j, a] -= 1
                    pi[j, best_b] += 1
                W[a] -= wv
                W[best_b] += wv
                part[v] = best_b
                improved = True
        if not improved:
            break
    return part
