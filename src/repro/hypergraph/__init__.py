"""Hypergraph substrate: data structure, matrix models, cut metrics,
multilevel bisection with multi-constraint FM, and the net
splitting/discarding machinery for recursive bisection."""

from repro.hypergraph.bisect import (
    HBisectionResult,
    bisect_hypergraph,
    enforce_exact_quota,
)
from repro.hypergraph.coarsen import (
    HCoarseLevel,
    coarsen_hypergraph,
    contract_hypergraph,
    heavy_connectivity_matching,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.kway import kway_move_gain, kway_refine
from repro.hypergraph.metrics import (
    CutMetric,
    cutsize,
    imbalance,
    net_connectivities,
    part_weights,
)
from repro.hypergraph.netops import (
    BisectionSplit,
    initial_net_costs,
    split_by_side,
)
from repro.hypergraph.partitioner import KWayPartition, partition_hypergraph
from repro.hypergraph.refine import (
    bisection_cut,
    fm_refine_hypergraph,
    hypergraph_gains,
)

__all__ = [
    "Hypergraph",
    "CutMetric", "net_connectivities", "cutsize", "imbalance", "part_weights",
    "HCoarseLevel", "heavy_connectivity_matching", "contract_hypergraph",
    "coarsen_hypergraph",
    "fm_refine_hypergraph", "bisection_cut", "hypergraph_gains",
    "HBisectionResult", "bisect_hypergraph", "enforce_exact_quota",
    "BisectionSplit", "split_by_side", "initial_net_costs",
    "KWayPartition", "partition_hypergraph",
    "kway_refine", "kway_move_gain",
]
