"""Hypergraph substrate: data structure, matrix models, cut metrics,
multilevel bisection with multi-constraint FM, and the net
splitting/discarding machinery for recursive bisection."""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import (
    CutMetric,
    net_connectivities,
    cutsize,
    imbalance,
    part_weights,
)
from repro.hypergraph.coarsen import (
    HCoarseLevel,
    heavy_connectivity_matching,
    contract_hypergraph,
    coarsen_hypergraph,
)
from repro.hypergraph.refine import (
    fm_refine_hypergraph,
    bisection_cut,
    hypergraph_gains,
)
from repro.hypergraph.bisect import (
    HBisectionResult,
    bisect_hypergraph,
    enforce_exact_quota,
)
from repro.hypergraph.netops import BisectionSplit, split_by_side, initial_net_costs
from repro.hypergraph.partitioner import KWayPartition, partition_hypergraph
from repro.hypergraph.kway import kway_refine, kway_move_gain

__all__ = [
    "Hypergraph",
    "CutMetric", "net_connectivities", "cutsize", "imbalance", "part_weights",
    "HCoarseLevel", "heavy_connectivity_matching", "contract_hypergraph",
    "coarsen_hypergraph",
    "fm_refine_hypergraph", "bisection_cut", "hypergraph_gains",
    "HBisectionResult", "bisect_hypergraph", "enforce_exact_quota",
    "BisectionSplit", "split_by_side", "initial_net_costs",
    "KWayPartition", "partition_hypergraph",
    "kway_refine", "kway_move_gain",
]
