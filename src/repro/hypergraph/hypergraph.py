"""Hypergraph data structure (CSR pin storage).

A hypergraph ``H = (V, N)`` stores nets as a CSR array of pins
(net -> vertices) plus the transposed incidence (vertex -> nets),
multi-constraint vertex weights (an ``(n, C)`` array) and per-net costs.

Column-net / row-net models of sparse matrices (Section II of the
paper) are provided as constructors: in the column-net model of an
``m x n`` matrix the *rows* are vertices and the *columns* are nets,
with vertex ``r_i`` a pin of net ``c_j`` iff ``M[i, j] != 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.utils import as_int_array, check_csr

__all__ = ["Hypergraph"]


@dataclass
class Hypergraph:
    """Hypergraph in dual CSR form.

    Attributes
    ----------
    net_ptr, pins:
        CSR of nets: net j's pins are ``pins[net_ptr[j]:net_ptr[j+1]]``.
    vertex_weights:
        ``(n_vertices, C)`` int array; column c is the c-th balance
        constraint.
    net_costs:
        Cost per net (>= 0). The soed construction manipulates these.
    net_ids:
        Identity of each net in the *original* hypergraph — preserved
        through splitting/contraction so separator nets can be traced
        back to matrix columns.
    """

    net_ptr: np.ndarray
    pins: np.ndarray
    vertex_weights: np.ndarray
    net_costs: np.ndarray
    net_ids: np.ndarray
    _vtx_ptr: np.ndarray | None = field(default=None, repr=False)
    _vtx_nets: np.ndarray | None = field(default=None, repr=False)
    _net_of_pin: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.net_ptr = as_int_array(self.net_ptr, "net_ptr")
        self.pins = as_int_array(self.pins, "pins")
        vw = np.ascontiguousarray(self.vertex_weights, dtype=np.int64)
        if vw.ndim == 1:
            vw = vw.reshape(-1, 1)  # flat vector = single constraint
        elif vw.ndim != 2:
            raise ValueError("vertex_weights must be 1-D or (n, C)")
        self.vertex_weights = vw
        self.net_costs = np.ascontiguousarray(self.net_costs, dtype=np.int64)
        self.net_ids = as_int_array(self.net_ids, "net_ids")
        if self.net_ptr[0] != 0 or np.any(np.diff(self.net_ptr) < 0):
            raise ValueError("net_ptr must be a non-decreasing CSR pointer")
        if self.pins.size != self.net_ptr[-1]:
            raise ValueError("pins length mismatch with net_ptr")
        if self.net_costs.size != self.n_nets or self.net_ids.size != self.n_nets:
            raise ValueError("net_costs/net_ids must have one entry per net")
        if self.pins.size and self.pins.max() >= self.n_vertices:
            raise ValueError("pin index out of range")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_arrays(cls, net_ptr, pins, n_vertices: int, *,
                    vertex_weights=None, net_costs=None) -> "Hypergraph":
        net_ptr = as_int_array(net_ptr, "net_ptr")
        pins = as_int_array(pins, "pins")
        n_nets = net_ptr.size - 1
        vw = (np.ones((n_vertices, 1), dtype=np.int64) if vertex_weights is None
              else np.atleast_2d(np.asarray(vertex_weights, dtype=np.int64)))
        if vw.shape[0] != n_vertices:
            vw = vw.T
        nc = (np.ones(n_nets, dtype=np.int64) if net_costs is None
              else np.asarray(net_costs, dtype=np.int64))
        return cls(net_ptr=net_ptr, pins=pins, vertex_weights=vw,
                   net_costs=nc, net_ids=np.arange(n_nets, dtype=np.int64))

    @classmethod
    def column_net_model(cls, M: sp.spmatrix, *, vertex_weights=None,
                         net_costs=None) -> "Hypergraph":
        """Column-net hypergraph of ``M``: vertices = rows, nets = columns."""
        M = check_csr(M)
        C = M.tocsc()
        C.sum_duplicates()
        C.sort_indices()
        return cls.from_arrays(C.indptr, C.indices, M.shape[0],
                               vertex_weights=vertex_weights,
                               net_costs=net_costs)

    @classmethod
    def row_net_model(cls, M: sp.spmatrix, *, vertex_weights=None,
                      net_costs=None) -> "Hypergraph":
        """Row-net hypergraph of ``M``: vertices = columns, nets = rows."""
        M = check_csr(M)
        return cls.from_arrays(M.indptr, M.indices, M.shape[1],
                               vertex_weights=vertex_weights,
                               net_costs=net_costs)

    # -- basic properties --------------------------------------------------

    @property
    def n_nets(self) -> int:
        return self.net_ptr.size - 1

    @property
    def n_vertices(self) -> int:
        return self.vertex_weights.shape[0]

    @property
    def n_pins(self) -> int:
        return self.pins.size

    @property
    def n_constraints(self) -> int:
        return self.vertex_weights.shape[1]

    def net_pins(self, j: int) -> np.ndarray:
        return self.pins[self.net_ptr[j]:self.net_ptr[j + 1]]

    def net_size(self, j: int) -> int:
        return int(self.net_ptr[j + 1] - self.net_ptr[j])

    def net_sizes(self) -> np.ndarray:
        return np.diff(self.net_ptr)

    def total_weight(self) -> np.ndarray:
        """Per-constraint total vertex weight, shape (C,)."""
        return self.vertex_weights.sum(axis=0)

    # -- vertex -> nets incidence (lazy) ------------------------------------

    def _build_incidence(self) -> None:
        n = self.n_vertices
        counts = np.bincount(self.pins, minlength=n)
        vtx_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=vtx_ptr[1:])
        order = np.argsort(self.pins, kind="stable")
        self._vtx_ptr = vtx_ptr
        self._vtx_nets = self.net_of_pin[order]

    @property
    def vtx_ptr(self) -> np.ndarray:
        if self._vtx_ptr is None:
            self._build_incidence()
        return self._vtx_ptr  # type: ignore[return-value]

    @property
    def vtx_nets(self) -> np.ndarray:
        if self._vtx_nets is None:
            self._build_incidence()
        return self._vtx_nets  # type: ignore[return-value]

    @property
    def net_of_pin(self) -> np.ndarray:
        """Net index of every pin (parallel to ``pins``), cached."""
        if self._net_of_pin is None:
            self._net_of_pin = np.repeat(np.arange(self.n_nets),
                                         self.net_sizes())
        return self._net_of_pin

    def vertex_net_list(self, v: int) -> np.ndarray:
        return self.vtx_nets[self.vtx_ptr[v]:self.vtx_ptr[v + 1]]

    def vertex_degree(self, v: int) -> int:
        return int(self.vtx_ptr[v + 1] - self.vtx_ptr[v])

    # -- conversions ---------------------------------------------------------

    def to_incidence_matrix(self) -> sp.csr_matrix:
        """(n_nets x n_vertices) boolean incidence matrix."""
        data = np.ones(self.n_pins, dtype=np.int8)
        return sp.csr_matrix((data, self.pins.copy(), self.net_ptr.copy()),
                             shape=(self.n_nets, self.n_vertices))

    def validate(self) -> None:
        """O(pins) structural validation (no duplicate pins in a net)."""
        for j in range(self.n_nets):
            p = self.net_pins(j)
            if np.unique(p).size != p.size:
                raise ValueError(f"net {j} has duplicate pins")
        if np.any(self.net_costs < 0):
            raise ValueError("net costs must be non-negative")
        if np.any(self.vertex_weights < 0):
            raise ValueError("vertex weights must be non-negative")
