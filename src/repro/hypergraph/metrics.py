"""Cutsize metrics: connectivity-1, cut-net, sum-of-external-degrees.

Implements Eqs. (7)-(9) of the paper. All three take a k-way part
assignment of the vertices and reduce over nets using each net's
connectivity ``lambda(j)`` (number of parts its pins touch).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.utils import check_partition_vector

__all__ = ["CutMetric", "net_connectivities", "cutsize", "imbalance",
           "part_weights"]

CutMetric = Literal["con1", "cnet", "soed"]

_VALID_METRICS = ("con1", "cnet", "soed")


def net_connectivities(H: Hypergraph, part: np.ndarray, k: int) -> np.ndarray:
    """lambda(j) for every net under the given k-way part assignment.

    Empty nets have connectivity 0.
    """
    part = check_partition_vector(part, H.n_vertices, k)
    lam = np.zeros(H.n_nets, dtype=np.int64)
    if H.n_pins == 0:
        return lam
    net_of_pin = np.repeat(np.arange(H.n_nets), H.net_sizes())
    pin_parts = part[H.pins]
    # count distinct (net, part) pairs
    keys = net_of_pin * np.int64(k) + pin_parts
    lam_flat = np.unique(keys)
    np.add.at(lam, lam_flat // k, 1)
    return lam


def cutsize(H: Hypergraph, part: np.ndarray, k: int,
            metric: CutMetric = "con1", *, verify: bool = False) -> int:
    """Cutsize of a k-way partition under the chosen metric.

    - ``con1``: sum of cost(j) * (lambda(j) - 1)           (Eq. 7)
    - ``cnet``: sum of cost(j) over nets with lambda > 1   (Eq. 8)
    - ``soed``: sum of cost(j) * lambda(j) over cut nets   (Eq. 9)

    Note: the *recursive-bisection* soed implementation in
    :mod:`repro.hypergraph.bisect` realizes this metric through the
    cost-2/halve-on-cut construction described in Section III-C;
    this function is the direct (flat) definition used to verify it.

    ``verify=True`` cross-checks the vectorized connectivity reduction
    against the plain-loop reference of :mod:`repro.verify.oracles`
    (including the soed = con1 + cnet identity) and raises
    :class:`repro.verify.VerificationError` on disagreement.
    """
    if metric not in _VALID_METRICS:
        raise ValueError(f"metric must be one of {_VALID_METRICS}, got {metric!r}")
    lam = net_connectivities(H, part, k)
    c = H.net_costs
    if metric == "con1":
        val = int((c * np.maximum(lam - 1, 0)).sum())
    elif metric == "cnet":
        val = int(c[lam > 1].sum())
    else:
        val = int((c * lam)[lam > 1].sum())
    if verify:
        from repro.verify.invariants import VerificationError
        from repro.verify.oracles import cut_metrics_reference
        ref = cut_metrics_reference(H, part, k)
        if val != ref[metric]:
            raise VerificationError(
                "metrics.cutsize",
                f"vectorized {metric} = {val} disagrees with the "
                f"plain-loop reference {ref[metric]}")
        if ref["soed"] != ref["con1"] + ref["cnet"]:
            raise VerificationError(
                "metrics.soed-identity",
                f"soed {ref['soed']} != con1 {ref['con1']} + cnet "
                f"{ref['cnet']}")
    return val


def part_weights(H: Hypergraph, part: np.ndarray, k: int) -> np.ndarray:
    """(k, C) per-part per-constraint weights."""
    part = check_partition_vector(part, H.n_vertices, k)
    W = np.zeros((k, H.n_constraints), dtype=np.int64)
    np.add.at(W, part, H.vertex_weights)
    return W


def imbalance(H: Hypergraph, part: np.ndarray, k: int) -> np.ndarray:
    """Per-constraint imbalance (Wmax - Wavg)/Wavg, Eq. (6). Shape (C,)."""
    W = part_weights(H, part, k)
    wavg = W.sum(axis=0) / float(k)
    out = np.zeros(H.n_constraints)
    nz = wavg > 0
    out[nz] = (W.max(axis=0)[nz] - wavg[nz]) / wavg[nz]
    return out
