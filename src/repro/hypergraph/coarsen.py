"""Hypergraph coarsening by heavy-connectivity matching (HCM).

Vertices sharing many (cheap-to-cut) nets are matched and contracted,
PaToH-style. Coarse nets are deduplicated: pins map through the
contraction, single-pin nets are dropped (they can never be cut, and a
projected fine partition keeps their pins together), and identical nets
merge with summed costs — all exact transformations for every cut
metric used here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.utils import SeedLike, rng_from

__all__ = ["HCoarseLevel", "heavy_connectivity_matching", "contract_hypergraph",
           "coarsen_hypergraph"]


@dataclass
class HCoarseLevel:
    """One coarsening step: coarse hypergraph plus fine->coarse map."""

    hypergraph: Hypergraph
    fine_to_coarse: np.ndarray

    def project(self, coarse_side: np.ndarray) -> np.ndarray:
        return coarse_side[self.fine_to_coarse]


def heavy_connectivity_matching(H: Hypergraph, seed: SeedLike = None, *,
                                max_net_size: int = 200,
                                max_weight: np.ndarray | None = None) -> np.ndarray:
    """Match vertices by shared-net connectivity.

    Score(u, v) = sum over shared nets of cost/(|net| - 1); nets larger
    than ``max_net_size`` are skipped when scoring (they carry little
    locality signal and dominate cost). ``max_weight`` (shape (C,))
    caps each matched pair's combined weight per constraint.
    """
    rng = rng_from(seed)
    n = H.n_vertices
    # hot loops over pins: plain Python containers beat per-element
    # numpy indexing by a wide margin here
    match = [-1] * n
    score = [0.0] * n
    vtx_ptr = H.vtx_ptr.tolist()
    vtx_nets = H.vtx_nets.tolist()
    net_ptr = H.net_ptr.tolist()
    pins = H.pins.tolist()
    sizes = H.net_sizes().tolist()
    costs = H.net_costs.tolist()
    vw = H.vertex_weights.tolist()
    mw = None if max_weight is None else np.asarray(max_weight).ravel().tolist()
    n_c = H.n_constraints
    order = rng.permutation(n).tolist()
    for v in order:
        if match[v] >= 0:
            continue
        touched: list[int] = []
        for q in range(vtx_ptr[v], vtx_ptr[v + 1]):
            j = vtx_nets[q]
            sz = sizes[j]
            if sz < 2 or sz > max_net_size:
                continue
            w = costs[j] / (sz - 1.0)
            for p in range(net_ptr[j], net_ptr[j + 1]):
                u = pins[p]
                if u == v or match[u] >= 0:
                    continue
                if score[u] == 0.0:
                    touched.append(u)
                score[u] += w
        best, best_s = -1, 0.0
        wv = vw[v]
        for u in touched:
            ok = True
            if mw is not None:
                wu = vw[u]
                for c_i in range(n_c):
                    if wv[c_i] + wu[c_i] > mw[c_i]:
                        ok = False
                        break
            if ok and (score[u] > best_s or (score[u] == best_s and u < best)):
                best, best_s = u, score[u]
            score[u] = 0.0
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return np.asarray(match, dtype=np.int64)


def contract_hypergraph(H: Hypergraph, match: np.ndarray) -> HCoarseLevel:
    """Contract matched pairs; dedupe pins, drop trivial nets, merge
    identical nets."""
    n = H.n_vertices
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    nc = 0
    for v in range(n):
        if fine_to_coarse[v] >= 0:
            continue
        fine_to_coarse[v] = nc
        u = match[v]
        if u != v and u >= 0:
            fine_to_coarse[u] = nc
        nc += 1
    cvw = np.zeros((nc, H.n_constraints), dtype=np.int64)
    np.add.at(cvw, np.asarray(fine_to_coarse), H.vertex_weights)

    # vectorized pin mapping + per-net dedup via a single lexsort
    f2c = np.asarray(fine_to_coarse)
    nop = H.net_of_pin
    mapped = f2c[H.pins]
    order = np.lexsort((mapped, nop))
    nn, mm = nop[order], mapped[order]
    keep_pin = np.ones(mm.size, dtype=bool)
    if mm.size:
        keep_pin[1:] = (nn[1:] != nn[:-1]) | (mm[1:] != mm[:-1])
    nn_u, mm_u = nn[keep_pin], mm[keep_pin]
    per_net = np.bincount(nn_u, minlength=H.n_nets)
    ptr_all = np.zeros(H.n_nets + 1, dtype=np.int64)
    np.cumsum(per_net, out=ptr_all[1:])

    seen: dict[bytes, int] = {}
    new_ptr = [0]
    new_pins: list[np.ndarray] = []
    new_costs: list[int] = []
    new_ids: list[int] = []
    total = 0
    costs = H.net_costs
    ids = H.net_ids
    for j in range(H.n_nets):
        lo, hi = ptr_all[j], ptr_all[j + 1]
        if hi - lo <= 1:
            continue
        block = mm_u[lo:hi]
        key = block.tobytes()
        idx = seen.get(key)
        if idx is not None:
            new_costs[idx] += int(costs[j])
            continue
        seen[key] = len(new_costs)
        new_pins.append(block)
        total += block.size
        new_ptr.append(total)
        new_costs.append(int(costs[j]))
        new_ids.append(int(ids[j]))
    pins_arr = (np.concatenate(new_pins) if new_pins
                else np.empty(0, dtype=np.int64))
    coarse = Hypergraph(
        net_ptr=np.asarray(new_ptr, dtype=np.int64),
        pins=pins_arr.astype(np.int64, copy=False),
        vertex_weights=cvw,
        net_costs=np.asarray(new_costs, dtype=np.int64),
        net_ids=np.asarray(new_ids, dtype=np.int64),
    )
    return HCoarseLevel(hypergraph=coarse, fine_to_coarse=fine_to_coarse)


def coarsen_hypergraph(H: Hypergraph, *, min_vertices: int = 96,
                       max_levels: int = 40, reduction_floor: float = 0.95,
                       seed: SeedLike = None,
                       max_weight: np.ndarray | None = None) -> list[HCoarseLevel]:
    """Match-and-contract until small or stalled; finest level first."""
    rng = rng_from(seed)
    levels: list[HCoarseLevel] = []
    cur = H
    for _ in range(max_levels):
        if cur.n_vertices <= min_vertices:
            break
        match = heavy_connectivity_matching(cur, rng, max_weight=max_weight)
        level = contract_hypergraph(cur, match)
        if level.hypergraph.n_vertices >= reduction_floor * cur.n_vertices:
            break
        levels.append(level)
        cur = level.hypergraph
    return levels
