"""Standalone k-way hypergraph partitioning (PaToH-style public API).

RHB (:mod:`repro.core.rhb`) drives the bisector with *dynamic* weights
and metric-specific net descent. This module exposes the conventional
static partitioner built from the same machinery: recursive bisection of
a weighted hypergraph into ``k`` parts under a global imbalance bound,
followed by optional direct k-way FM refinement
(:mod:`repro.hypergraph.kway`). This is what "a standard partitioning
method with static vertex weights" means in the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.hypergraph.bisect import bisect_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import CutMetric, cutsize, imbalance
from repro.hypergraph.netops import initial_net_costs, split_by_side
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils import SeedLike, fraction, positive_int, rng_from

__all__ = ["KWayPartition", "partition_hypergraph"]


@dataclass(frozen=True)
class KWayPartition:
    """A k-way vertex partition with its scores."""

    part: np.ndarray
    k: int
    metric: CutMetric
    cut: int
    imbalance: np.ndarray  # per constraint


def partition_hypergraph(H: Hypergraph, k: int, *,
                         metric: CutMetric = "con1",
                         epsilon: float = 0.05,
                         seed: SeedLike = None,
                         n_trials: int = 4,
                         fm_passes: int = 8,
                         refine_kway: bool = True,
                         tracer: Tracer = NULL_TRACER) -> KWayPartition:
    """Partition the vertices of ``H`` into ``k`` parts.

    Recursive bisection with net splitting (con1/soed) or discarding
    (cnet); the reported cut is evaluated with the *flat* metric
    definition (Eqs. 7-9) on the final partition, so it is directly
    comparable across methods.

    ``refine_kway`` runs a direct k-way FM pass on the flat partition
    afterwards (see :func:`repro.hypergraph.kway.kway_refine`).

    ``tracer`` records a ``partition_hypergraph`` span (with nested
    ``bisect`` spans per recursion node) and a ``cut`` counter.
    """
    k = positive_int(k, "k")
    epsilon = fraction(epsilon, "epsilon")
    rng = rng_from(seed)
    part = np.zeros(H.n_vertices, dtype=np.int64)
    H0 = replace(H, net_costs=initial_net_costs(H.n_nets, metric))

    def recurse(sub: Hypergraph, ids: np.ndarray, k_here: int,
                low: int, depth: int) -> None:
        if k_here == 1 or sub.n_vertices == 0:
            part[ids] = low
            return
        k_left = k_here // 2
        with tracer.span("bisect", depth=depth, n_vertices=sub.n_vertices):
            res = bisect_hypergraph(sub, epsilon=epsilon,
                                    target0=k_left / k_here, seed=rng,
                                    n_trials=n_trials, fm_passes=fm_passes)
            spl = split_by_side(sub, res.side, metric)
        recurse(spl.children[0], ids[spl.vertex_ids[0]], k_left, low,
                depth + 1)
        recurse(spl.children[1], ids[spl.vertex_ids[1]],
                k_here - k_left, low + k_left, depth + 1)

    with tracer.span("partition_hypergraph", k=k, metric=metric):
        recurse(H0, np.arange(H.n_vertices, dtype=np.int64), k, 0, 0)
        out = part
        if refine_kway and k > 2:
            from repro.hypergraph.kway import kway_refine
            out = kway_refine(H, out, k, metric=metric, epsilon=epsilon)
        cut = cutsize(H, out, k, metric)
        tracer.count("cut", cut)
    return KWayPartition(part=out, k=k, metric=metric, cut=cut,
                         imbalance=imbalance(H, out, k))
