"""Fiduccia-Mattheyses refinement for hypergraph bisections.

Implements the canonical FM cell-move algorithm with the original
critical-net gain-update rules, generalized to:

- weighted nets (net costs, as required by the soed construction);
- multi-constraint vertex weights with per-side caps (the RHB
  multi-constraint bisection of Section III-C);
- lazy max-gain heap with rollback to the best prefix of each pass.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.utils import as_int_array

__all__ = ["fm_refine_hypergraph", "bisection_cut", "hypergraph_gains"]


def bisection_cut(H: Hypergraph, side: np.ndarray) -> int:
    """Total cost of nets with pins on both sides.

    One vectorized reduction over the per-net side counts: a net is cut
    exactly when it has pins on side 0 *and* side 1 (empty nets have
    neither, so they contribute nothing).
    """
    side = as_int_array(side, "side")
    sigma = _side_counts(H, side)
    return int(H.net_costs[(sigma[0] > 0) & (sigma[1] > 0)].sum())


def hypergraph_gains(H: Hypergraph, side: np.ndarray,
                     sigma: np.ndarray) -> np.ndarray:
    """Initial FM gains given per-net side counts ``sigma`` (2, n_nets).

    Vectorized over pins: a pin (v in net j) contributes +cost(j) when v
    is the only pin of j on its side and j is cut (moving v uncuts it),
    and -cost(j) when j lies entirely on v's side with other pins
    (moving v cuts it).
    """
    n = H.n_vertices
    if H.n_pins == 0:
        return np.zeros(n, dtype=np.int64)
    nop = H.net_of_pin
    s_pin = side[H.pins]
    sig_own = sigma[s_pin, nop]
    sig_other = sigma[1 - s_pin, nop]
    c = H.net_costs[nop]
    contrib = np.where((sig_own == 1) & (sig_other > 0), c, 0) \
        - np.where((sig_other == 0) & (sig_own > 1), c, 0)
    # accumulate in int64: np.bincount(weights=...) sums in float64,
    # which silently rounds once net costs exceed 2^53
    gains = np.zeros(n, dtype=np.int64)
    np.add.at(gains, H.pins, contrib.astype(np.int64, copy=False))
    return gains


def _side_counts(H: Hypergraph, side: np.ndarray) -> np.ndarray:
    sigma = np.zeros((2, H.n_nets), dtype=np.int64)
    np.add.at(sigma, (side[H.pins], H.net_of_pin), 1)
    return sigma


def fm_refine_hypergraph(H: Hypergraph, side: np.ndarray, *,
                         caps: np.ndarray,
                         max_passes: int = 8,
                         stall_limit: int = 300) -> tuple[np.ndarray, int]:
    """Refine a 0/1 side assignment; returns ``(side, cut)``.

    Parameters
    ----------
    caps:
        ``(2, C)`` array of per-side per-constraint weight ceilings.
    """
    side = as_int_array(side, "side").copy()
    n = H.n_vertices
    caps = np.atleast_2d(np.asarray(caps, dtype=np.float64))
    if caps.shape != (2, H.n_constraints):
        raise ValueError(f"caps must have shape (2, {H.n_constraints})")
    W_arr = np.zeros((2, H.n_constraints), dtype=np.int64)
    np.add.at(W_arr, side, H.vertex_weights)
    sigma = _side_counts(H, side)
    cut = int(H.net_costs[(sigma[0] > 0) & (sigma[1] > 0)].sum())
    vtx_ptr, vtx_nets = H.vtx_ptr, H.vtx_nets
    net_ptr, pins = H.net_ptr, H.pins
    costs = H.net_costs
    # hot-loop state in plain Python containers: C is 1 or 2, so numpy
    # reductions per candidate move cost far more than they save
    n_c = H.n_constraints
    W: list[list[int]] = W_arr.tolist()
    caps_l: list[list[float]] = caps.tolist()
    vw_l: list[list[int]] = H.vertex_weights.tolist()

    # everything the move loop touches lives in plain Python containers;
    # per-element numpy indexing would dominate the runtime otherwise
    side_l: list[int] = side.tolist()
    sig = [sigma[0].tolist(), sigma[1].tolist()]
    vtx_ptr_l = vtx_ptr.tolist()
    vtx_nets_l = vtx_nets.tolist()
    net_ptr_l = net_ptr.tolist()
    pins_l = pins.tolist()
    costs_l = costs.tolist()
    heappush, heappop = heapq.heappush, heapq.heappop

    for _ in range(max_passes):
        sigma[0] = np.asarray(sig[0], dtype=np.int64)
        sigma[1] = np.asarray(sig[1], dtype=np.int64)
        gains: list[int] = hypergraph_gains(
            H, np.asarray(side_l, dtype=np.int64), sigma).tolist()
        locked = bytearray(n)
        heap = [(-gains[v], v) for v in range(n)]
        heapq.heapify(heap)
        best_cut = cur_cut = cut
        trail: list[int] = []
        best_len = 0
        stall = 0
        sig0, sig1 = sig
        while heap and stall < stall_limit:
            ng_, v = heappop(heap)
            if locked[v] or -ng_ != gains[v]:
                continue
            s = side_l[v]
            t = 1 - s
            wv = vw_l[v]
            Wt, Ws, ct, cs = W[t], W[s], caps_l[t], caps_l[s]
            feasible = True
            for c_i in range(n_c):
                if Wt[c_i] + wv[c_i] > ct[c_i]:
                    feasible = False
                    break
            if not feasible:
                for c_i in range(n_c):
                    if Ws[c_i] > cs[c_i]:
                        feasible = True
                        break
            if not feasible:
                continue
            locked[v] = 1
            sig_s = sig0 if s == 0 else sig1
            sig_t = sig1 if s == 0 else sig0
            # canonical FM critical-net updates around the move of v
            for q in range(vtx_ptr_l[v], vtx_ptr_l[v + 1]):
                j = vtx_nets_l[q]
                c = costs_l[j]
                # before the move
                if sig_t[j] == 0:
                    cur_cut += c  # net becomes cut
                    for p in range(net_ptr_l[j], net_ptr_l[j + 1]):
                        u = pins_l[p]
                        if u != v and not locked[u]:
                            gains[u] += c
                            heappush(heap, (-gains[u], u))
                elif sig_t[j] == 1:
                    for p in range(net_ptr_l[j], net_ptr_l[j + 1]):
                        u = pins_l[p]
                        if side_l[u] == t and not locked[u]:
                            gains[u] -= c
                            heappush(heap, (-gains[u], u))
                            break
                sig_s[j] -= 1
                sig_t[j] += 1
                # after the move
                if sig_s[j] == 0:
                    cur_cut -= c  # net now entirely on t (uncut)
                    for p in range(net_ptr_l[j], net_ptr_l[j + 1]):
                        u = pins_l[p]
                        if u != v and not locked[u]:
                            gains[u] -= c
                            heappush(heap, (-gains[u], u))
                elif sig_s[j] == 1:
                    for p in range(net_ptr_l[j], net_ptr_l[j + 1]):
                        u = pins_l[p]
                        if side_l[u] == s and not locked[u]:
                            gains[u] += c
                            heappush(heap, (-gains[u], u))
                            break
            side_l[v] = t
            for c_i in range(n_c):
                Ws[c_i] -= wv[c_i]
                Wt[c_i] += wv[c_i]
            trail.append(v)
            if cur_cut < best_cut:
                best_cut = cur_cut
                best_len = len(trail)
                stall = 0
            else:
                stall += 1
        # rollback moves after the best prefix (also restores sigma)
        for v in trail[best_len:]:
            t = side_l[v]
            s = 1 - t
            side_l[v] = s
            wv = vw_l[v]
            for c_i in range(n_c):
                W[t][c_i] -= wv[c_i]
                W[s][c_i] += wv[c_i]
            sig_t = sig0 if t == 0 else sig1
            sig_s = sig1 if t == 0 else sig0
            for q in range(vtx_ptr_l[v], vtx_ptr_l[v + 1]):
                j = vtx_nets_l[q]
                sig_t[j] -= 1
                sig_s[j] += 1
        if best_cut >= cut:
            break
        cut = best_cut
    return np.asarray(side_l, dtype=np.int64), cut
