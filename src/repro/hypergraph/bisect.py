"""Multilevel hypergraph bisection.

Coarsen by heavy-connectivity matching, build an initial bisection on
the coarsest hypergraph (BFS net-expansion growth and random balanced
assignments), refine with FM during uncoarsening. Supports:

- multi-constraint vertex weights with per-side caps;
- asymmetric target fractions (for non-power-of-two recursion);
- optional *exact* vertex-count quotas (`quota0`), used by the sparse
  right-hand-side reordering of Section IV-B where every part must hold
  exactly ``B`` columns (paper sets the imbalance to zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hypergraph.coarsen import coarsen_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.refine import (
    _side_counts,
    bisection_cut,
    fm_refine_hypergraph,
    hypergraph_gains,
)
from repro.resilience.errors import WorkerCrashError
from repro.utils import SeedLike, fraction, rng_from, spawn

__all__ = ["HBisectionResult", "bisect_hypergraph", "enforce_exact_quota"]


@dataclass(frozen=True)
class HBisectionResult:
    """0/1 side assignment with cut cost and per-side weights (2, C)."""

    side: np.ndarray
    cut: int
    part_weights: np.ndarray


def _grow_bfs(H: Hypergraph, target0: float, seed: SeedLike) -> np.ndarray:
    """Grow side 0 from a random seed vertex by net expansion."""
    rng = rng_from(seed)
    n = H.n_vertices
    side = np.ones(n, dtype=np.int64)
    if n == 0:
        return side
    # balance on the first constraint (the primary one)
    w = H.vertex_weights[:, 0]
    goal = target0 * max(1, int(w.sum()))
    start = int(rng.integers(n))
    seen = np.zeros(n, dtype=bool)
    seen[start] = True
    queue = [start]
    head = 0
    acc = 0
    while acc < goal:
        if head >= len(queue):
            rest = np.flatnonzero(~seen)
            if rest.size == 0:
                break
            nxt = int(rest[rng.integers(rest.size)])
            seen[nxt] = True
            queue.append(nxt)
        v = queue[head]
        head += 1
        side[v] = 0
        acc += int(w[v])
        for j in H.vertex_net_list(v):
            if H.net_size(j) > 500:
                continue
            for u in H.net_pins(j):
                if not seen[u]:
                    seen[u] = True
                    queue.append(int(u))
    return side


def _random_balanced(H: Hypergraph, target0: float, seed: SeedLike) -> np.ndarray:
    rng = rng_from(seed)
    n = H.n_vertices
    order = rng.permutation(n)
    side = np.ones(n, dtype=np.int64)
    w = H.vertex_weights[:, 0]
    goal = target0 * max(1, int(w.sum()))
    acc = 0
    for v in order:
        if acc >= goal:
            break
        side[v] = 0
        acc += int(w[v])
    return side


def enforce_exact_quota(H: Hypergraph, side: np.ndarray, quota0: int) -> np.ndarray:
    """Move minimum-damage vertices across the cut until side 0 holds
    exactly ``quota0`` vertices.

    Vertices are chosen by FM gain (highest gain first), so the repair
    degrades the cut as little as possible. Used with unit weights.
    """
    side = side.copy()
    count0 = int(np.count_nonzero(side == 0))
    if count0 == quota0:
        return side
    src = 0 if count0 > quota0 else 1
    deficit = abs(count0 - quota0)
    sigma = _side_counts(H, side)
    gains = hypergraph_gains(H, side, sigma)
    candidates = np.flatnonzero(side == src)
    order = candidates[np.argsort(-gains[candidates], kind="stable")]
    for v in order[:deficit]:
        s, t = src, 1 - src
        for j in H.vertex_net_list(v):
            sigma[s, j] -= 1
            sigma[t, j] += 1
        side[v] = t
    return side


@dataclass
class _TrialTask:
    """One shippable bisection trial: the multilevel state plus a
    pre-drawn child generator, so a trial is a pure function of its
    payload and runs identically on any execution backend."""

    H: Hypergraph
    levels: List
    caps: np.ndarray
    target0: float
    fm_passes: int
    quota0: Optional[int]
    rng: np.random.Generator


def _run_trial(task: _TrialTask) -> HBisectionResult:
    """One initial-bisection + uncoarsening-refinement trial."""
    H, levels, caps = task.H, task.levels, task.caps
    coarsest = levels[-1].hypergraph if levels else H
    child = task.rng
    if child.random() < 0.5 or coarsest.n_vertices < 4:
        side = _grow_bfs(coarsest, task.target0, child)
    else:
        side = _random_balanced(coarsest, task.target0, child)
    side, _ = fm_refine_hypergraph(coarsest, side, caps=caps,
                                   max_passes=task.fm_passes)
    for i in range(len(levels) - 1, -1, -1):
        side = levels[i].project(side)
        fine_H = H if i == 0 else levels[i - 1].hypergraph
        side, _ = fm_refine_hypergraph(fine_H, side, caps=caps,
                                       max_passes=task.fm_passes)
    if task.quota0 is not None:
        side = enforce_exact_quota(H, side, task.quota0)
    cut = bisection_cut(H, side)
    W = np.zeros((2, H.n_constraints), dtype=np.int64)
    np.add.at(W, side, H.vertex_weights)
    return HBisectionResult(side=side, cut=cut, part_weights=W)


def bisect_hypergraph(H: Hypergraph, *, epsilon: float = 0.05,
                      target0: float = 0.5, seed: SeedLike = None,
                      n_trials: int = 4, coarsen_min: int = 96,
                      fm_passes: int = 8,
                      quota0: int | None = None,
                      backend=None) -> HBisectionResult:
    """Multilevel bisection of ``H``.

    Parameters
    ----------
    epsilon:
        Per-constraint allowed imbalance, Eq. (6).
    target0:
        Weight fraction destined for side 0 (first constraint; remaining
        constraints use the same fraction).
    quota0:
        If given, side 0 must contain exactly this many vertices
        (unit-weight use case); enforced after refinement.
    backend:
        Optional :class:`repro.parallel.exec.Executor`; a non-inline
        backend runs the trials concurrently. Each trial owns a
        pre-drawn child generator and the winner is reduced in trial
        order, so the result is bit-identical to the serial loop.
    """
    epsilon = fraction(epsilon, "epsilon")
    target0 = fraction(target0, "target0", lo=0.02, hi=0.98)
    rng = rng_from(seed)
    totals = H.total_weight().astype(np.float64)
    caps = np.vstack([(1.0 + epsilon) * target0 * totals,
                      (1.0 + epsilon) * (1.0 - target0) * totals])
    max_cw = np.maximum(1, np.ceil(caps.max(axis=0) / 8.0)).astype(np.int64)
    levels = coarsen_hypergraph(H, min_vertices=coarsen_min, seed=rng,
                                max_weight=max_cw)

    tasks = [_TrialTask(H=H, levels=levels, caps=caps, target0=target0,
                        fm_passes=fm_passes, quota0=quota0, rng=child)
             for child in spawn(rng, max(1, n_trials))]
    if backend is not None and not backend.inline and len(tasks) > 1:
        results = []
        for task, out in zip(tasks, backend.map(_run_trial, tasks)):
            if isinstance(out.error, WorkerCrashError):
                # the shipped generator was a pickled copy, so the
                # parent's is still pristine: rerun inline, bit-identical
                results.append(_run_trial(task))
            elif out.error is not None:
                raise out.error
            else:
                results.append(out.value)
    else:
        results = [_run_trial(t) for t in tasks]

    best: HBisectionResult | None = None
    for cand in results:
        if best is None or _better(cand, best, caps):
            best = cand
    assert best is not None
    return best


def _better(a: HBisectionResult, b: HBisectionResult, caps: np.ndarray) -> bool:
    fa = bool(np.all(a.part_weights <= caps))
    fb = bool(np.all(b.part_weights <= caps))
    if fa != fb:
        return fa
    if a.cut != b.cut:
        return a.cut < b.cut
    return a.part_weights.max() < b.part_weights.max()
