"""Net splitting and net discarding for recursive bisection.

Recursive bisection realizes the three cut metrics through how cut nets
descend into the two sub-hypergraphs (Section III-C of the paper):

- **con1** — *net splitting* (Catalyurek-Aykanat): a cut net continues
  into both sides with its pins restricted and its cost unchanged; each
  further cut of a fragment adds the cost again, so the accumulated
  total per original net is cost * (lambda - 1).
- **cnet** — *net discarding*: a cut net is charged once and removed.
- **soed** — the paper's construction: nets start with cost 2; when a
  net is cut, both fragments continue with cost ceil(cost/2) = 1, so
  the accumulated total is 2 + (lambda - 2) = lambda per cut net.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import CutMetric
from repro.utils import as_int_array

__all__ = ["BisectionSplit", "split_by_side", "initial_net_costs"]


def initial_net_costs(n_nets: int, metric: CutMetric) -> np.ndarray:
    """Top-level net costs for a metric (2 for soed, else 1)."""
    if metric == "soed":
        return np.full(n_nets, 2, dtype=np.int64)
    return np.ones(n_nets, dtype=np.int64)


@dataclass
class BisectionSplit:
    """Result of splitting a hypergraph along a bisection.

    ``vertex_ids[s]`` maps side-s sub-vertex index -> parent vertex
    index; ``children[s]`` is the side-s sub-hypergraph whose
    ``net_ids`` still refer to the *original* top-level nets.
    ``cut_net_ids`` lists original ids of nets cut by this bisection
    (charged once here; under con1/soed they also continue as
    fragments).
    """

    children: tuple[Hypergraph, Hypergraph]
    vertex_ids: tuple[np.ndarray, np.ndarray]
    cut_net_ids: np.ndarray
    cut_cost: int


def split_by_side(H: Hypergraph, side: np.ndarray,
                  metric: CutMetric) -> BisectionSplit:
    """Split ``H`` into two sub-hypergraphs according to ``side``.

    Vertices descend to their side. Uncut nets descend with cost and id
    unchanged (including single-pin nets, which keep column-to-part
    tracking exact). Cut nets follow the metric rule described in the
    module docstring.
    """
    side = as_int_array(side, "side")
    n = H.n_vertices
    if side.shape != (n,):
        raise ValueError("side must have one entry per vertex")
    ids0 = np.flatnonzero(side == 0)
    ids1 = np.flatnonzero(side == 1)
    local = np.empty(n, dtype=np.int64)
    local[ids0] = np.arange(ids0.size)
    local[ids1] = np.arange(ids1.size)

    ptr: list[list[int]] = [[0], [0]]
    pins: list[list[int]] = [[], []]
    costs: list[list[int]] = [[], []]
    nids: list[list[int]] = [[], []]
    cut_ids: list[int] = []
    cut_cost = 0

    def emit(s: int, net_pins: np.ndarray, cost: int, nid: int) -> None:
        pins[s].extend(local[net_pins].tolist())
        ptr[s].append(len(pins[s]))
        costs[s].append(cost)
        nids[s].append(nid)

    for j in range(H.n_nets):
        p = H.net_pins(j)
        if p.size == 0:
            continue
        sides_here = side[p]
        c = int(H.net_costs[j])
        nid = int(H.net_ids[j])
        if sides_here.min() == sides_here.max():
            emit(int(sides_here[0]), p, c, nid)
            continue
        # net is cut at this bisection
        cut_ids.append(nid)
        cut_cost += c
        if metric == "cnet":
            continue
        child_cost = (c + 1) // 2 if metric == "soed" else c
        emit(0, p[sides_here == 0], child_cost, nid)
        emit(1, p[sides_here == 1], child_cost, nid)

    children = []
    for s, ids in ((0, ids0), (1, ids1)):
        children.append(Hypergraph(
            net_ptr=np.asarray(ptr[s], dtype=np.int64),
            pins=np.asarray(pins[s], dtype=np.int64),
            vertex_weights=H.vertex_weights[ids].copy(),
            net_costs=np.asarray(costs[s], dtype=np.int64),
            net_ids=np.asarray(nids[s], dtype=np.int64),
        ))
    return BisectionSplit(
        children=(children[0], children[1]),
        vertex_ids=(ids0, ids1),
        cut_net_ids=np.asarray(cut_ids, dtype=np.int64),
        cut_cost=cut_cost,
    )
