"""Unstructured 2-D FEM matrices (Delaunay P1 triangles).

The structured hex generators produce regular stencils; real PDSLin
inputs come from unstructured meshes. This generator triangulates random
points in a disk / square / annulus (scipy.spatial.Delaunay), assembles
the P1 stiffness + mass operators with the standard linear-triangle
element matrices, and exposes the triangle-node incidence as the
structural factor for RHB. The annulus domain gives the non-convex,
hole-ridden geometry where partitioners genuinely differ.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.spatial import Delaunay

from repro.matrices.cavity import GeneratedMatrix
from repro.matrices.grids import incidence_from_connectivity
from repro.utils import SeedLike, positive_int, rng_from

__all__ = ["random_delaunay_mesh", "p1_assemble", "unstructured_matrix"]

_DOMAINS = ("square", "disk", "annulus")


def random_delaunay_mesh(n_points: int, *, domain: str = "disk",
                         seed: SeedLike = 0
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Sample points in the domain and triangulate.

    Returns ``(points (n, 2), triangles (m, 3))``. Sliver triangles along
    curved boundaries and triangles spanning the annulus hole are
    removed by a centroid test.
    """
    n_points = positive_int(n_points, "n_points")
    if domain not in _DOMAINS:
        raise ValueError(f"domain must be one of {_DOMAINS}, got {domain!r}")
    rng = rng_from(seed)
    if domain == "square":
        pts = rng.random((n_points, 2))
    else:
        # rejection-free radial sampling (uniform over the region)
        theta = rng.random(n_points) * 2 * np.pi
        if domain == "disk":
            r = np.sqrt(rng.random(n_points))
        else:  # annulus with inner radius 0.45
            r_in2 = 0.45 ** 2
            r = np.sqrt(r_in2 + (1.0 - r_in2) * rng.random(n_points))
        pts = 0.5 + 0.5 * np.stack([r * np.cos(theta),
                                    r * np.sin(theta)], axis=1)
    tri = Delaunay(pts)
    cells = tri.simplices.astype(np.int64)
    if domain != "square":
        centroids = pts[cells].mean(axis=1)
        d = np.linalg.norm(centroids - 0.5, axis=1)
        keep = d <= 0.5
        if domain == "annulus":
            # triangles spanning the hole have centroids inside it
            keep &= d >= 0.45 * 0.5
        cells = cells[keep]
    # drop unreferenced points and renumber
    used = np.unique(cells)
    renum = np.full(n_points, -1, dtype=np.int64)
    renum[used] = np.arange(used.size)
    return pts[used], renum[cells]


def p1_assemble(points: np.ndarray, tris: np.ndarray, *,
                mass_coeff: float = 0.0,
                conductivity: np.ndarray | None = None) -> sp.csr_matrix:
    """Assemble ``K + mass_coeff * M`` for linear triangles.

    Standard formulas: for a triangle with vertices p0, p1, p2 and area
    A, the stiffness block is ``(grad_i . grad_j) * A`` with constant
    basis gradients, and the consistent mass block is
    ``A / 12 * (1 + delta_ij)``. ``conductivity`` scales each element's
    stiffness (material field).
    """
    pts = np.asarray(points, dtype=np.float64)
    tris = np.asarray(tris, dtype=np.int64)
    ne = tris.shape[0]
    cond = (np.ones(ne) if conductivity is None
            else np.asarray(conductivity, dtype=np.float64))
    if cond.shape != (ne,):
        raise ValueError("conductivity must have one entry per triangle")
    p0, p1, p2 = pts[tris[:, 0]], pts[tris[:, 1]], pts[tris[:, 2]]
    # edge vectors and areas (vectorized over elements)
    d1, d2 = p1 - p0, p2 - p0
    det = d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]
    area = 0.5 * np.abs(det)
    if np.any(area < 1e-14):
        keep = area >= 1e-14
        tris, p0, p1, p2 = tris[keep], p0[keep], p1[keep], p2[keep]
        d1, d2, det, area, cond = (d1[keep], d2[keep], det[keep],
                                   area[keep], cond[keep])
        ne = tris.shape[0]
    # gradients of barycentric basis functions
    inv_det = 1.0 / det
    b = np.stack([p1[:, 1] - p2[:, 1], p2[:, 1] - p0[:, 1],
                  p0[:, 1] - p1[:, 1]], axis=1) * inv_det[:, None]
    c = np.stack([p2[:, 0] - p1[:, 0], p0[:, 0] - p2[:, 0],
                  p1[:, 0] - p0[:, 0]], axis=1) * inv_det[:, None]
    Ke = (b[:, :, None] * b[:, None, :] + c[:, :, None] * c[:, None, :]) \
        * (area * cond)[:, None, None]
    if mass_coeff != 0.0:
        Mref = (np.ones((3, 3)) + np.eye(3)) / 12.0
        Ke = Ke + mass_coeff * area[:, None, None] * Mref[None]
    rows = np.repeat(tris, 3, axis=1).ravel()
    cols = np.tile(tris, (1, 3)).ravel()
    A = sp.csr_matrix((Ke.ravel(), (rows, cols)),
                      shape=(pts.shape[0], pts.shape[0]))
    A.sum_duplicates()
    A.sort_indices()
    return A


def unstructured_matrix(n_points: int, *, domain: str = "annulus",
                        shift: float = 1.1, seed: SeedLike = 0,
                        name: str = "unstructured") -> GeneratedMatrix:
    """Shifted indefinite Helmholtz-like operator on an unstructured
    triangulation, with the triangle incidence as structural factor."""
    rng = rng_from(seed)
    pts, tris = random_delaunay_mesh(n_points, domain=domain, seed=rng)
    cond = 0.5 + rng.random(tris.shape[0])
    K = p1_assemble(pts, tris, conductivity=cond)
    M = p1_assemble(pts, tris, mass_coeff=1.0, conductivity=np.zeros(
        tris.shape[0]))
    ratio = K.diagonal().mean() / max(M.diagonal().mean(), 1e-300)
    A = (K - shift * ratio * M).tocsr()
    A.sum_duplicates()
    A.sort_indices()
    Minc = incidence_from_connectivity(tris, pts.shape[0])
    return GeneratedMatrix(
        name=name, A=A, M=Minc, source="unstructured",
        description=(f"P1 Delaunay {domain}, {pts.shape[0]} nodes, "
                     f"{tris.shape[0]} triangles, sigma={shift}"))
