"""Ill-conditioned stress matrices for the numerics layer.

These generators produce systems that are *globally* solvable but
defeat the default hybrid pipeline unless the robustness layer
(:mod:`repro.numerics`) is on:

- :func:`graded_matrix` — a well-conditioned FD operator wrapped in a
  geometrically graded diagonal scaling spanning ``decades`` orders of
  magnitude (the classic boundary-layer / multi-physics unit mismatch).
  Relative-residual convergence tests and threshold dropping both go
  blind at this dynamic range; Ruiz equilibration removes it exactly.
- :func:`shifted_circuit_matrix` — an ASIC-style circuit whose row
  order has been cyclically shifted on a subset of nodes, leaving
  near-zero (``weak``) diagonal pivots where the shift passed through.
  Diagonal-preference LU commits to those pivots and pays in accuracy;
  maximum-product matching permutes the large entries back first.

Both return the same :class:`GeneratedMatrix` record as the Table-I
suite and are registered in ``repro.matrices.suite.ROBUST_SUITE``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.matrices.cavity import GeneratedMatrix
from repro.matrices.circuit import asic_like_matrix
from repro.matrices.grids import fd_laplacian_3d
from repro.utils import SeedLike, fraction, positive_int, rng_from

__all__ = ["graded_matrix", "shifted_circuit_matrix"]


def graded_matrix(nx: int, ny: int, nz: int = 1, *, decades: float = 8.0,
                  seed: SeedLike = 0,
                  name: str = "graded") -> GeneratedMatrix:
    """Geometrically graded diagonal scaling of an FD Laplacian.

    Row/column ``i`` of the base operator is scaled by
    ``10**(-decades * i / (n-1))`` — a geometric progression, so the
    symmetric system ``D A D`` carries ``2 * decades`` orders of
    magnitude of artificial conditioning on top of the (benign) grid
    operator. A solver that equilibrates sees the base operator again.
    """
    positive_int(nx, "nx")
    positive_int(ny, "ny")
    positive_int(nz, "nz")
    if decades < 0:
        raise ValueError("decades must be >= 0")
    rng = rng_from(seed)
    base = fd_laplacian_3d(nx, ny, nz)
    n = base.shape[0]
    expo = -decades * np.arange(n) / max(n - 1, 1)
    d = 10.0 ** expo
    # small multiplicative jitter so rows at the same grading level do
    # not scale identically (exact degeneracy is unrealistically kind)
    d *= 1.0 + 0.1 * rng.random(n)
    Dd = sp.diags(d)
    A = (Dd @ base @ Dd).tocsr()
    A.sum_duplicates()
    A.sort_indices()
    return GeneratedMatrix(
        name=name, A=A, M=None,
        source="synthetic: graded FD Laplacian",
        description=(f"{nx}x{ny}x{nz} FD Laplacian under a geometric "
                     f"diagonal grading spanning {decades:g} decades"))


def shifted_circuit_matrix(n: int, *, shift_fraction: float = 0.15,
                           weak: float = 1e-14, seed: SeedLike = 0,
                           name: str = "circuit.shifted") -> GeneratedMatrix:
    """Near-singular circuit variant: cyclically shifted rows.

    Starts from :func:`repro.matrices.circuit.asic_like_matrix`, then
    applies a cyclic row shift over a random subset of
    ``shift_fraction * n`` nodes and adds ``weak * I``. Where the shift
    passed through, the structurally present diagonal entry is ~``weak``
    while the dominant entry sits off-diagonal — the exact failure mode
    MC64-style static-pivot matching exists for. The matrix stays
    nonsingular (a row permutation of a nonsingular matrix, plus a tiny
    shift).
    """
    n = positive_int(n, "n")
    fraction(shift_fraction, "shift_fraction")
    if weak < 0:
        raise ValueError("weak must be >= 0")
    rng = rng_from(seed)
    gm = asic_like_matrix(n, seed=seed, name=name)
    m = max(2, int(round(shift_fraction * n)))
    rows = np.sort(rng.choice(n, size=m, replace=False))
    perm = np.arange(n)
    perm[rows] = np.roll(rows, 1)  # one m-cycle over the chosen rows
    A = gm.A.tocsr()[perm].tocsr()
    A = (A + weak * sp.eye(n, format="csr")).tocsr()
    A.sum_duplicates()
    A.sort_indices()
    return GeneratedMatrix(
        name=name, A=A, M=None,
        source="synthetic: shifted ASIC circuit",
        description=(f"ASIC-like circuit on {n} nodes with a cyclic row "
                     f"shift over {m} nodes leaving ~{weak:g} diagonal "
                     f"pivots"))
