"""Fusion-simulation-like test matrix (matrix211 analogue).

matrix211 (Tokamak / extended-MHD, CEMM) is pattern-unsymmetric,
value-unsymmetric, with ~70 nonzeros per row — multiple coupled fields
per mesh node plus convection-like one-directional couplings. We build
a 3-D Q1 hex FEM operator with ``d`` dofs per node, an unsymmetric
inter-field coupling block, plus a directional advection term that is
assembled one-sidedly to break pattern symmetry.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.matrices.cavity import GeneratedMatrix
from repro.matrices.grids import HexMesh, assemble_fem, hex_element_matrices
from repro.utils import SeedLike, rng_from

__all__ = ["fusion_matrix"]


def fusion_matrix(nx: int, ny: int, nz: int, *, dofs: int = 2,
                  advection: float = 0.4, seed: SeedLike = 0,
                  name: str = "fusion") -> GeneratedMatrix:
    """Multi-field unsymmetric operator on an (nx, ny, nz) hex mesh.

    ``dofs`` fields per node (2 gives ~54 nnz/row interior on a 3-D
    mesh, in matrix211's range); ``advection`` scales the unsymmetric
    directional term.
    """
    mesh = HexMesh(nx, ny, nz)
    K, Mm = hex_element_matrices()
    rng = rng_from(seed)
    # unsymmetric field-coupling block, diagonally dominant
    C = np.eye(dofs) + 0.3 * rng.standard_normal((dofs, dofs)) / max(dofs, 1)
    np.fill_diagonal(C, 1.0 + np.abs(np.diag(C)))
    A = assemble_fem(mesh, K + 0.15 * Mm, dofs_per_node=dofs, dof_coupling=C)
    # one-sided advection: upwind coupling reaching the +2x neighbour,
    # which lies OUTSIDE the element stencil -> pattern-unsymmetric
    # matrix, like matrix211
    n_nodes = mesh.n_nodes
    i = np.arange(n_nodes)
    has_right = (i % mesh.nx) < mesh.nx - 2
    src = i[has_right]
    dst = src + 2
    rows = (src[:, None] * dofs + np.arange(dofs)[None, :]).ravel()
    cols = (dst[:, None] * dofs + np.arange(dofs)[None, :]).ravel()
    vals = advection * (1.0 + 0.1 * rng.standard_normal(rows.size))
    Adv = sp.csr_matrix((vals, (rows, cols)), shape=A.shape)
    A = (A + Adv).tocsr()
    A.sum_duplicates()
    A.sort_indices()
    # structural factor: element incidence + one 2-pin row per advection
    # coupling so str(M^T M) covers the symmetrized pattern
    Minc = mesh.incidence_matrix(dofs_per_node=dofs)
    ne = Minc.shape[0]
    adv_rows = np.repeat(np.arange(rows.size), 2) + ne
    adv_cols = np.stack([rows, cols], axis=1).ravel()
    Madv = sp.csr_matrix((np.ones(adv_cols.size, dtype=np.int8),
                          (adv_rows - ne, adv_cols)),
                         shape=(rows.size, A.shape[0]))
    M_struct = sp.vstack([Minc, Madv]).tocsr()
    return GeneratedMatrix(
        name=name, A=A, M=M_struct,
        source="fusion",
        description=(f"{dofs}-field Q1 hex FEM {nx}x{ny}x{nz} with "
                     f"one-sided advection {advection}"),
    )
