"""Synthetic test-matrix generators mirroring the paper's Table I
(accelerator cavity, fusion, circuit families)."""

from repro.matrices.grids import HexMesh, hex_element_matrices, assemble_fem, fd_laplacian_3d
from repro.matrices.cavity import GeneratedMatrix, cavity_matrix, dds_like_matrix
from repro.matrices.fusion import fusion_matrix
from repro.matrices.circuit import asic_like_matrix, g3_like_matrix
from repro.matrices.unstructured import (
    random_delaunay_mesh,
    p1_assemble,
    unstructured_matrix,
)
from repro.matrices.suite import SUITE, generate, suite_names, table1_metadata

__all__ = [
    "HexMesh", "hex_element_matrices", "assemble_fem", "fd_laplacian_3d",
    "GeneratedMatrix", "cavity_matrix", "dds_like_matrix",
    "fusion_matrix", "asic_like_matrix", "g3_like_matrix",
    "random_delaunay_mesh", "p1_assemble", "unstructured_matrix",
    "SUITE", "generate", "suite_names", "table1_metadata",
]
