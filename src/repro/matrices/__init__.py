"""Synthetic test-matrix generators mirroring the paper's Table I
(accelerator cavity, fusion, circuit families)."""

from repro.matrices.cavity import (
    GeneratedMatrix,
    cavity_matrix,
    dds_like_matrix,
)
from repro.matrices.circuit import asic_like_matrix, g3_like_matrix
from repro.matrices.fusion import fusion_matrix
from repro.matrices.graded import graded_matrix, shifted_circuit_matrix
from repro.matrices.grids import (
    HexMesh,
    assemble_fem,
    fd_laplacian_3d,
    hex_element_matrices,
)
from repro.matrices.suite import (
    ROBUST_SUITE,
    SUITE,
    generate,
    generate_robust,
    robust_suite_names,
    suite_names,
    table1_metadata,
)
from repro.matrices.unstructured import (
    p1_assemble,
    random_delaunay_mesh,
    unstructured_matrix,
)

__all__ = [
    "HexMesh", "hex_element_matrices", "assemble_fem", "fd_laplacian_3d",
    "GeneratedMatrix", "cavity_matrix", "dds_like_matrix",
    "fusion_matrix", "asic_like_matrix", "g3_like_matrix",
    "graded_matrix", "shifted_circuit_matrix",
    "random_delaunay_mesh", "p1_assemble", "unstructured_matrix",
    "SUITE", "ROBUST_SUITE", "generate", "generate_robust",
    "suite_names", "robust_suite_names", "table1_metadata",
]
