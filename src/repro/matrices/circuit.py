"""Circuit-simulation-like test matrices (ASIC_680ks / G3_circuit
analogues).

- :func:`asic_like_matrix` — extremely sparse network (nnz/row ~ 2-4):
  a long chain/tree of device connections plus a handful of *hub* nets
  (power/clock rails) touching a sizeable fraction of the nodes. The
  hubs produce the quasi-dense interface rows that motivate the paper's
  Section V-B(c) filtering and make separators tiny for good partitions
  (the paper's RHB shrinks n_S from 9200 to 1100 on ASIC_680ks).
- :func:`g3_like_matrix` — symmetric positive definite grid conductance
  network (G3_circuit analogue, nnz/row ~ 5).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.matrices.cavity import GeneratedMatrix
from repro.matrices.grids import fd_laplacian_3d
from repro.utils import SeedLike, fraction, positive_int, rng_from

__all__ = ["asic_like_matrix", "g3_like_matrix"]


def asic_like_matrix(n: int, *, n_hubs: int = 4, hub_fraction: float = 0.08,
                     extra_edge_prob: float = 0.3, seed: SeedLike = 0,
                     name: str = "asic") -> GeneratedMatrix:
    """Sparse unsymmetric-valued circuit network with hub rails.

    Parameters
    ----------
    n:
        Number of circuit nodes.
    n_hubs:
        Number of rail nodes, each connected to ``hub_fraction`` of all
        nodes (quasi-dense rows/columns).
    extra_edge_prob:
        Expected number of extra random local edges per node.
    """
    n = positive_int(n, "n")
    hub_fraction = fraction(hub_fraction, "hub_fraction")
    rng = rng_from(seed)
    src: list[np.ndarray] = []
    dst: list[np.ndarray] = []
    # chain backbone (device strings)
    i = np.arange(n - 1)
    src.append(i)
    dst.append(i + 1)
    # local random extras with geometric-ish locality
    n_extra = rng.poisson(extra_edge_prob * n)
    a = rng.integers(0, n, size=n_extra)
    off = rng.geometric(0.05, size=n_extra)
    b = np.clip(a + off, 0, n - 1)
    keep = a != b
    src.append(a[keep])
    dst.append(b[keep])
    # hub rails
    hubs = rng.choice(n, size=min(n_hubs, n), replace=False)
    for h in hubs:
        m = max(1, int(hub_fraction * n))
        targets = rng.choice(n, size=m, replace=False)
        targets = targets[targets != h]
        src.append(np.full(targets.size, h))
        dst.append(targets)
    s = np.concatenate(src)
    d = np.concatenate(dst)
    g = 0.5 + rng.random(s.size)  # conductances
    # symmetric pattern, slightly unsymmetric values (controlled sources)
    skew = 1.0 + 0.2 * rng.standard_normal(s.size)
    rows = np.concatenate([s, d])
    cols = np.concatenate([d, s])
    vals = np.concatenate([-g * skew, -g / skew])
    A = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    A.sum_duplicates()
    # diagonal: row-sum dominance + ground leak
    diag = np.abs(A).sum(axis=1).A1 + 0.01
    A = (A + sp.diags(diag)).tocsr()
    A.sort_indices()
    return GeneratedMatrix(
        name=name, A=A, M=None, source="circuit",
        description=(f"circuit network n={n}, {n_hubs} hubs @ "
                     f"{hub_fraction:.0%}, unsymmetric values"),
    )


def g3_like_matrix(nx: int, ny: int, nz: int = 1, *, seed: SeedLike = 0,
                   name: str = "g3") -> GeneratedMatrix:
    """SPD grid conductance network (G3_circuit analogue)."""
    rng = rng_from(seed)
    A = fd_laplacian_3d(nx, ny, nz)
    n = A.shape[0]
    # random positive conductance scaling, kept symmetric via D A D
    d = np.sqrt(0.5 + rng.random(n))
    Dd = sp.diags(d)
    A = (Dd @ A @ Dd + 0.05 * sp.eye(n)).tocsr()
    A.sum_duplicates()
    A.sort_indices()
    return GeneratedMatrix(
        name=name, A=A, M=None, source="circuit",
        description=f"SPD grid conductance network {nx}x{ny}x{nz}",
    )
