"""Structured-mesh assembly primitives.

Hexahedral Q1 finite-element meshes on structured 3-D grids (and their
2-D quad degenerations) with:

- element-node incidence matrices — the natural structural factor
  ``str(A) = str(M^T M)`` that RHB consumes for FEM problems;
- reference element stiffness/mass matrices for Laplace + mass
  operators, assembled into global sparse matrices;
- plain finite-difference stencils (7-point) for the sparser families.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils import positive_int

__all__ = ["HexMesh", "hex_element_matrices", "assemble_fem",
           "assemble_from_connectivity", "incidence_from_connectivity",
           "carve_nodes", "fd_laplacian_3d"]


@dataclass(frozen=True)
class HexMesh:
    """Structured grid of (nx, ny, nz) *nodes* (nz=1 degenerates to 2-D)."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        positive_int(self.nx, "nx")
        positive_int(self.ny, "ny")
        positive_int(self.nz, "nz")

    @property
    def n_nodes(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def n_elements(self) -> int:
        if self.nx < 2 or self.ny < 2:
            return 0
        return (self.nx - 1) * (self.ny - 1) * max(self.nz - 1, 1)

    def node_id(self, i: int, j: int, k: int) -> int:
        return (k * self.ny + j) * self.nx + i

    def element_nodes(self) -> np.ndarray:
        """(n_elements, nodes_per_element) connectivity.

        3-D meshes give 8-node hexes; nz == 1 gives 4-node quads.
        """
        nx, ny, nz = self.nx, self.ny, self.nz
        if nx < 2 or ny < 2:
            raise ValueError("mesh needs at least 2 nodes per in-plane axis")
        ii, jj = np.meshgrid(np.arange(nx - 1), np.arange(ny - 1),
                             indexing="ij")
        ii, jj = ii.ravel(), jj.ravel()
        if nz == 1:
            base = jj * nx + ii
            quad = np.stack([base, base + 1, base + nx, base + nx + 1], axis=1)
            return quad.astype(np.int64)
        cells = []
        for k in range(nz - 1):
            base = (k * ny + jj) * nx + ii
            up = base + nx * ny
            cells.append(np.stack([base, base + 1, base + nx, base + nx + 1,
                                   up, up + 1, up + nx, up + nx + 1], axis=1))
        return np.concatenate(cells, axis=0).astype(np.int64)

    def incidence_matrix(self, dofs_per_node: int = 1) -> sp.csr_matrix:
        """Element-(node x dof) incidence: one row per element, a pin for
        every dof of every node of the element. ``str(M^T M)`` is
        exactly the FEM sparsity pattern."""
        return incidence_from_connectivity(self.element_nodes(),
                                           self.n_nodes, dofs_per_node)

    def node_coords(self) -> np.ndarray:
        """(n_nodes, 3) coordinates in [0, 1]^3 (z = 0 when nz == 1)."""
        ax = lambda n: (np.arange(n) / max(n - 1, 1))
        zz, yy, xx = np.meshgrid(ax(self.nz), ax(self.ny), ax(self.nx),
                                 indexing="ij")
        return np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)


def hex_element_matrices() -> tuple[np.ndarray, np.ndarray]:
    """Reference 8-node hexahedron stiffness and (consistent) mass
    matrices for the unit cube, from 2x2x2 Gauss quadrature of the
    trilinear basis."""
    gp = np.array([-1.0, 1.0]) / np.sqrt(3.0)
    corners = np.array([[i, j, k] for k in (-1, 1) for j in (-1, 1)
                        for i in (-1, 1)], dtype=np.float64)
    # reorder to match element_nodes order: (i fastest, then j, then k)
    corners = np.array([[-1, -1, -1], [1, -1, -1], [-1, 1, -1], [1, 1, -1],
                        [-1, -1, 1], [1, -1, 1], [-1, 1, 1], [1, 1, 1]],
                       dtype=np.float64)
    K = np.zeros((8, 8))
    Mm = np.zeros((8, 8))
    for gx in gp:
        for gy in gp:
            for gz in gp:
                xi = np.array([gx, gy, gz])
                N = np.prod(1.0 + corners * xi, axis=1) / 8.0
                dN = np.empty((8, 3))
                for a in range(3):
                    terms = 1.0 + corners * xi
                    prod = np.ones(8)
                    for b in range(3):
                        prod *= corners[:, a] / 8.0 if a == b else terms[:, b]
                    dN[:, a] = prod
                # unit cube: jacobian = I/2 per axis (xi in [-1,1] -> x in [0,1])
                J = 0.5
                grad = dN / J
                detJ = J ** 3
                K += detJ * (grad @ grad.T)
                Mm += detJ * np.outer(N, N)
    return K, Mm


def assemble_from_connectivity(conn: np.ndarray, n_nodes: int,
                               Ke: np.ndarray, *,
                               dofs_per_node: int = 1,
                               dof_coupling: np.ndarray | None = None
                               ) -> sp.csr_matrix:
    """Assemble ``sum_e C (x) Ke`` over an explicit element list.

    ``conn`` is (n_elements, nodes_per_element); used directly by the
    carved-domain generators where only a subset of a box mesh's
    elements exists.
    """
    d = positive_int(dofs_per_node, "dofs_per_node")
    C = np.eye(d) if dof_coupling is None else np.asarray(dof_coupling,
                                                          dtype=np.float64)
    if C.shape != (d, d):
        raise ValueError(f"dof_coupling must be ({d}, {d})")
    npe = conn.shape[1]
    if Ke.shape != (npe, npe):
        raise ValueError(f"Ke must be ({npe}, {npe}) for this mesh")
    block = np.kron(Ke, C)  # (npe*d, npe*d)
    # global dof indices per element
    edofs = (conn[:, :, None] * d + np.arange(d)[None, None, :]) \
        .reshape(conn.shape[0], npe * d)
    ne, w = edofs.shape
    rows = np.repeat(edofs, w, axis=1).ravel()
    cols = np.tile(edofs, (1, w)).ravel()
    vals = np.tile(block.ravel(), ne)
    A = sp.csr_matrix((vals, (rows, cols)),
                      shape=(n_nodes * d, n_nodes * d))
    A.sum_duplicates()
    A.sort_indices()
    return A


def assemble_fem(mesh: HexMesh, Ke: np.ndarray, *,
                 dofs_per_node: int = 1,
                 dof_coupling: np.ndarray | None = None) -> sp.csr_matrix:
    """Assemble ``sum_e C (x) Ke`` over the full mesh.

    ``dof_coupling`` (d, d) couples the dofs of a node (kron structure);
    identity by default.
    """
    return assemble_from_connectivity(mesh.element_nodes(), mesh.n_nodes,
                                      Ke, dofs_per_node=dofs_per_node,
                                      dof_coupling=dof_coupling)


def incidence_from_connectivity(conn: np.ndarray, n_nodes: int,
                                dofs_per_node: int = 1) -> sp.csr_matrix:
    """Element-(node x dof) incidence for an explicit element list."""
    ne, npe = conn.shape
    d = positive_int(dofs_per_node, "dofs_per_node")
    rows = np.repeat(np.arange(ne), npe * d)
    cols = (conn[:, :, None] * d + np.arange(d)[None, None, :]).reshape(-1)
    M = sp.csr_matrix((np.ones(rows.size, dtype=np.int8), (rows, cols)),
                      shape=(ne, n_nodes * d))
    M.sum_duplicates()
    M.sort_indices()
    return M


def carve_nodes(mesh: HexMesh, node_mask: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
    """Restrict a box mesh to the elements whose nodes all satisfy
    ``node_mask``; returns (renumbered connectivity, kept node ids).

    Raises if the carve removes every element.
    """
    if node_mask.shape != (mesh.n_nodes,):
        raise ValueError("node_mask must have one entry per node")
    conn = mesh.element_nodes()
    keep_elem = node_mask[conn].all(axis=1)
    conn = conn[keep_elem]
    if conn.size == 0:
        raise ValueError("carve removed every element")
    kept_nodes = np.unique(conn)
    renum = np.full(mesh.n_nodes, -1, dtype=np.int64)
    renum[kept_nodes] = np.arange(kept_nodes.size)
    return renum[conn], kept_nodes


def fd_laplacian_3d(nx: int, ny: int, nz: int = 1) -> sp.csr_matrix:
    """7-point (5-point in 2-D) finite-difference Laplacian."""
    def lap1(n: int) -> sp.csr_matrix:
        return sp.diags([-np.ones(n - 1), 2 * np.ones(n), -np.ones(n - 1)],
                        [-1, 0, 1], format="csr")
    Ix, Iy, Iz = (sp.eye(positive_int(v, nm), format="csr")
                  for v, nm in ((nx, "nx"), (ny, "ny"), (nz, "nz")))
    A = sp.kron(Iz, sp.kron(Iy, lap1(nx)))
    A = A + sp.kron(Iz, sp.kron(lap1(ny), Ix))
    if nz > 1:
        A = A + sp.kron(lap1(nz), sp.kron(Iy, Ix))
    return A.tocsr()
