"""The test-matrix suite mirroring the paper's Table I.

Each entry names a generator configuration that reproduces the
*structural class* of one of the paper's matrices at a laptop-friendly
scale (see DESIGN.md substitutions). ``scale`` picks "tiny" (tests),
"small" (quick benches) or "medium" (full benches).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.matrices.cavity import (
    GeneratedMatrix,
    cavity_matrix,
    dds_like_matrix,
)
from repro.matrices.circuit import asic_like_matrix, g3_like_matrix
from repro.matrices.fusion import fusion_matrix
from repro.matrices.graded import graded_matrix, shifted_circuit_matrix

__all__ = ["SUITE", "ROBUST_SUITE", "generate", "generate_robust",
           "suite_names", "robust_suite_names", "table1_metadata"]

_SCALES = ("tiny", "small", "medium")

# name -> scale -> constructor
SUITE: Dict[str, Dict[str, Callable[[], GeneratedMatrix]]] = {
    # tdr190k analogue: symmetric indefinite cavity FEM
    "tdr190k": {
        "tiny": lambda: cavity_matrix(12, 12, 12, name="tdr190k"),
        "small": lambda: cavity_matrix(18, 18, 18, name="tdr190k"),
        "medium": lambda: cavity_matrix(28, 28, 28, name="tdr190k"),
    },
    # tdr455k analogue: same family, larger
    "tdr455k": {
        "tiny": lambda: cavity_matrix(14, 13, 13, name="tdr455k"),
        "small": lambda: cavity_matrix(22, 20, 20, name="tdr455k"),
        "medium": lambda: cavity_matrix(34, 30, 30, name="tdr455k"),
    },
    "dds.quad": {
        "tiny": lambda: dds_like_matrix(12, 11, 11, variant="quad",
                                        name="dds.quad"),
        "small": lambda: dds_like_matrix(17, 16, 16, variant="quad",
                                         name="dds.quad"),
        "medium": lambda: dds_like_matrix(26, 24, 24, variant="quad",
                                          name="dds.quad"),
    },
    "dds.linear": {
        "tiny": lambda: dds_like_matrix(13, 12, 12, variant="linear",
                                        name="dds.linear"),
        "small": lambda: dds_like_matrix(18, 17, 17, variant="linear",
                                         name="dds.linear"),
        "medium": lambda: dds_like_matrix(28, 26, 25, variant="linear",
                                          name="dds.linear"),
    },
    # matrix211 analogue: unsymmetric multi-field fusion operator
    "matrix211": {
        "tiny": lambda: fusion_matrix(6, 6, 5, dofs=2, name="matrix211"),
        "small": lambda: fusion_matrix(10, 9, 9, dofs=2, name="matrix211"),
        "medium": lambda: fusion_matrix(16, 15, 14, dofs=2, name="matrix211"),
    },
    # ASIC_680ks analogue: very sparse circuit with hub rails
    "ASIC_680ks": {
        "tiny": lambda: asic_like_matrix(600, name="ASIC_680ks"),
        "small": lambda: asic_like_matrix(4000, name="ASIC_680ks"),
        "medium": lambda: asic_like_matrix(20000, name="ASIC_680ks"),
    },
    # G3_circuit analogue: SPD grid conductance network
    "G3_circuit": {
        "tiny": lambda: g3_like_matrix(25, 25, name="G3_circuit"),
        "small": lambda: g3_like_matrix(70, 70, name="G3_circuit"),
        "medium": lambda: g3_like_matrix(160, 150, name="G3_circuit"),
    },
}


# numerics stress suite (separate from Table I: these matrices are
# *designed* to defeat the default pipeline unless repro.numerics is on)
ROBUST_SUITE: Dict[str, Dict[str, Callable[[], GeneratedMatrix]]] = {
    "graded.laplace": {
        "tiny": lambda: graded_matrix(14, 14, 1, decades=8.0,
                                      name="graded.laplace"),
        "small": lambda: graded_matrix(11, 11, 10, decades=8.0,
                                       name="graded.laplace"),
        "medium": lambda: graded_matrix(22, 22, 20, decades=8.0,
                                        name="graded.laplace"),
    },
    "circuit.shifted": {
        "tiny": lambda: shifted_circuit_matrix(500,
                                               name="circuit.shifted"),
        "small": lambda: shifted_circuit_matrix(3000,
                                                name="circuit.shifted"),
        "medium": lambda: shifted_circuit_matrix(15000,
                                                 name="circuit.shifted"),
    },
}


def suite_names() -> list[str]:
    """Names of the Table-I suite matrices."""
    return list(SUITE)


def robust_suite_names() -> list[str]:
    """Names of the numerics stress-suite matrices."""
    return list(ROBUST_SUITE)


def generate_robust(name: str, scale: str = "small") -> GeneratedMatrix:
    """Instantiate a numerics stress matrix at the requested scale."""
    if name not in ROBUST_SUITE:
        raise KeyError(f"unknown matrix {name!r}; choose from "
                       f"{robust_suite_names()}")
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {_SCALES}, got {scale!r}")
    return ROBUST_SUITE[name][scale]()


def generate(name: str, scale: str = "small") -> GeneratedMatrix:
    """Instantiate a suite matrix at the requested scale."""
    if name not in SUITE:
        raise KeyError(f"unknown matrix {name!r}; choose from {suite_names()}")
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {_SCALES}, got {scale!r}")
    return SUITE[name][scale]()


def table1_metadata(scale: str = "small", *,
                    check_definiteness: bool = False) -> list[dict]:
    """Rows of the Table-I reproduction: name, source, n, nnz/n,
    pattern/value symmetry (and optionally positive definiteness)."""
    from repro.sparse import symmetry_info

    rows = []
    for name in suite_names():
        gm = generate(name, scale)
        info = symmetry_info(gm.A, check_definiteness=check_definiteness)
        rows.append({
            "name": gm.name,
            "source": gm.source,
            "n": gm.n,
            "nnz/n": round(gm.nnz_per_row, 1),
            "pattern_symmetric": info.pattern_symmetric,
            "value_symmetric": info.value_symmetric,
            "positive_definite": info.positive_definite,
        })
    return rows
