"""Accelerator-cavity-like test matrices (tdr190k / tdr455k / dds.*).

The paper's cavity matrices come from finite-element discretizations of
Maxwell eigenproblems in accelerator cavities: symmetric pattern and
values, *not* positive definite (shifted operators), ~16-42 nonzeros
per row. We reproduce the structural class with Q1 hexahedral FEM
assemblies of a shifted Helmholtz-like operator

    A = K - sigma * M_mass

on a 3-D box mesh; ``sigma`` sits inside the spectrum making A highly
indefinite, which is exactly the regime PDSLin targets. The generator
returns the element-node incidence for RHB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.matrices.grids import (
    HexMesh,
    assemble_from_connectivity,
    carve_nodes,
    hex_element_matrices,
    incidence_from_connectivity,
)
from repro.utils import SeedLike, rng_from

__all__ = ["GeneratedMatrix", "cavity_matrix", "dds_like_matrix"]


@dataclass
class GeneratedMatrix:
    """A generated test system: matrix, structural factor, metadata."""

    name: str
    A: sp.csr_matrix
    M: sp.csr_matrix | None  # structural factor for RHB (None = use edges)
    source: str
    description: str

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def nnz_per_row(self) -> float:
        return self.A.nnz / max(self.n, 1)


def _cavity_domain_mask(mesh: HexMesh, cells: int) -> np.ndarray:
    """Node mask of an accelerator-cavity-like domain: a tube along x
    whose radius bulges sinusoidally (``cells`` RF cells). The resulting
    irregular geometry is what defeats perfectly symmetric partitions —
    a plain box mesh lets any partitioner find the ideal octant split
    and hides the balance effects the paper measures."""
    xyz = mesh.node_coords()
    dy = xyz[:, 1] - 0.5
    dz = (xyz[:, 2] - 0.5) if mesh.nz > 1 else np.zeros(mesh.n_nodes)
    radius = 0.30 + 0.20 * (0.5 + 0.5 * np.cos(2 * np.pi * cells * xyz[:, 0]))
    return dy * dy + dz * dz <= radius * radius


def cavity_matrix(nx: int, ny: int, nz: int, *, shift: float = 1.2,
                  jitter: float = 0.02, cells: int = 3, carve: bool = True,
                  seed: SeedLike = 0,
                  name: str = "cavity") -> GeneratedMatrix:
    """Shifted indefinite FEM operator on an accelerator-cavity domain
    carved from an (nx, ny, nz)-node hex mesh.

    ``shift`` multiplies the mean Ritz scale so a slice of the spectrum
    goes negative; ``jitter`` perturbs material coefficients to avoid
    perfect-lattice degeneracies; ``cells`` controls how many RF-cell
    bulges the carved tube has (``carve=False`` keeps the full box).
    """
    mesh = HexMesh(nx, ny, nz)
    K, Mm = hex_element_matrices()
    if carve and min(nx, ny) >= 5:
        conn, _ = carve_nodes(mesh, _cavity_domain_mask(mesh, cells))
        n_nodes = int(conn.max()) + 1
    else:
        conn, n_nodes = mesh.element_nodes(), mesh.n_nodes
    A = assemble_from_connectivity(conn, n_nodes, K)
    Mass = assemble_from_connectivity(conn, n_nodes, Mm)
    rng = rng_from(seed)
    if jitter > 0.0:
        # symmetric diagonal perturbation (material inhomogeneity)
        d = 1.0 + jitter * rng.standard_normal(A.shape[0])
        Dj = sp.diags(d)
        A = (Dj @ A @ Dj).tocsr()
    # scale the shift by the mean diagonal ratio so indefiniteness is
    # mesh-size independent
    ratio = A.diagonal().mean() / Mass.diagonal().mean()
    A = (A - shift * ratio * Mass).tocsr()
    A.sum_duplicates()
    A.sort_indices()
    return GeneratedMatrix(
        name=name, A=A, M=incidence_from_connectivity(conn, n_nodes),
        source="cavity",
        description=(f"shifted Q1 hex FEM {nx}x{ny}x{nz} "
                     f"({'carved cavity' if carve else 'box'}), "
                     f"sigma={shift}"),
    )


def dds_like_matrix(nx: int, ny: int, nz: int, *, variant: str = "quad",
                    seed: SeedLike = 0,
                    name: str | None = None) -> GeneratedMatrix:
    """dds.quad / dds.linear analogues.

    ``variant="quad"`` keeps the full Q1 hex coupling (~27 nnz/row,
    toward dds.quad's 42); ``variant="linear"`` sparsifies the element
    coupling to face neighbours (~16 nnz/row like dds.linear).
    """
    if variant not in ("quad", "linear"):
        raise ValueError("variant must be 'quad' or 'linear'")
    gm = cavity_matrix(nx, ny, nz, shift=0.9, seed=seed,
                       name=name or f"dds.{variant}")
    if variant == "linear":
        # drop the weakest corner couplings to thin the stencil toward
        # dds.linear's ~16 nnz/row (hex corner couplings sit near
        # 0.12 * max, edge couplings near 0.3 * max)
        A = gm.A.tocoo()
        scale = np.abs(A.data).max()
        keep = (np.abs(A.data) >= 0.2 * scale) | (A.row == A.col)
        # keep symmetric: an entry stays iff its transpose stays; the
        # magnitude criterion is symmetric for symmetric values
        A2 = sp.csr_matrix((A.data[keep], (A.row[keep], A.col[keep])),
                           shape=A.shape)
        A2.sum_duplicates()
        A2.sort_indices()
        gm = GeneratedMatrix(name=gm.name, A=A2, M=None,
                             source="cavity",
                             description=gm.description + " (thinned)")
    return gm
