"""Simulated distributed execution: per-process ledgers, stage
makespans, balance ratios, and the two-level core-count projection."""

from repro.parallel.costmodel import (
    DEFAULT_STAGE_SCALING,
    StageScaling,
    TwoLevelModel,
)
from repro.parallel.machine import RECOVER_STAGE, ProcessLedger, SimulatedMachine
from repro.parallel.trace import (
    STAGE_ORDER,
    export_chrome_trace,
    machine_events,
)

__all__ = [
    "ProcessLedger", "SimulatedMachine", "RECOVER_STAGE",
    "StageScaling", "TwoLevelModel", "DEFAULT_STAGE_SCALING",
    "export_chrome_trace", "machine_events", "STAGE_ORDER",
]
