"""Parallel execution layer: the simulated distributed machine
(per-process ledgers, stage makespans, balance ratios, the two-level
core-count projection) and the real execution backends
(serial/thread/process) that run the per-subdomain work."""

from repro.parallel.costmodel import (
    DEFAULT_STAGE_SCALING,
    StageScaling,
    TwoLevelModel,
    record_model_skew,
)
from repro.parallel.exec import (
    Executor,
    ProcessBackend,
    SerialBackend,
    TaskOutcome,
    ThreadBackend,
    backend_names,
    get_backend,
    resolve_backend,
)
from repro.parallel.machine import RECOVER_STAGE, ProcessLedger, SimulatedMachine
from repro.parallel.trace import (
    STAGE_ORDER,
    export_chrome_trace,
    machine_events,
)

__all__ = [
    "ProcessLedger", "SimulatedMachine", "RECOVER_STAGE",
    "StageScaling", "TwoLevelModel", "DEFAULT_STAGE_SCALING",
    "record_model_skew",
    "Executor", "SerialBackend", "ThreadBackend", "ProcessBackend",
    "TaskOutcome", "resolve_backend", "get_backend", "backend_names",
    "export_chrome_trace", "machine_events", "STAGE_ORDER",
]
