"""Simulated distributed execution: per-process ledgers, stage
makespans, balance ratios, and the two-level core-count projection."""

from repro.parallel.machine import ProcessLedger, SimulatedMachine
from repro.parallel.costmodel import StageScaling, TwoLevelModel, DEFAULT_STAGE_SCALING
from repro.parallel.trace import export_chrome_trace, STAGE_ORDER

__all__ = [
    "ProcessLedger", "SimulatedMachine",
    "StageScaling", "TwoLevelModel", "DEFAULT_STAGE_SCALING",
    "export_chrome_trace", "STAGE_ORDER",
]
