"""Backend parity check: serial vs parallel, bit for bit.

The execution backends of :mod:`repro.parallel.exec` promise *bit
parity*: ``PDSLin`` must produce byte-identical solutions regardless of
where the per-subdomain work ran. This module checks that promise over
the Table-I matrix suite and is wired into CI as the ``backend-parity``
job::

    python -m repro.parallel.parity --scale tiny --workers 4

For every suite matrix it runs one solve on the serial backend and one
on the backend under test (fresh solver instances, same seed), then
compares the solution bytes (``x.tobytes()``), iteration counts and
residual norms. The exit status is the number of mismatching matrices,
so CI fails loudly on the first parity break.

``--resume`` switches to *checkpoint-resume* parity: a checkpointed
solve is truncated to half its completed subdomains
(:func:`repro.resilience.checkpoint.truncate_checkpoint` fabricates the
interrupted run), resumed on the backend under test, and must be
byte-identical to the uninterrupted serial run — while provably
refactoring only the unfinished subdomains (tracer span counts).
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.matrices.suite import generate, suite_names
from repro.parallel.exec import get_backend
from repro.solver import PDSLin, PDSLinConfig, RuntimeOptions


def check_matrix(name: str, scale: str, backend, *, k: int = 4,
                 seed: int = 0) -> dict:
    """Solve one suite system serially and on ``backend``; compare."""
    gm = generate(name, scale)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(gm.A.shape[0])
    cfg = dict(k=k, seed=seed)
    ref = PDSLin(gm.A, PDSLinConfig(**cfg), M=gm.M,
                 runtime=RuntimeOptions(backend="serial")).solve(b)
    par = PDSLin(gm.A, PDSLinConfig(**cfg), M=gm.M,
                 runtime=RuntimeOptions(backend=backend)).solve(b)
    return {
        "matrix": name,
        "n": gm.A.shape[0],
        "bit_identical": ref.x.tobytes() == par.x.tobytes(),
        "iterations": (ref.iterations, par.iterations),
        "residual": (ref.residual_norm, par.residual_norm),
        "max_abs_diff": float(np.max(np.abs(ref.x - par.x)))
        if ref.x.shape == par.x.shape else float("inf"),
    }


def check_resume(name: str, scale: str, backend, *, k: int = 4,
                 seed: int = 0) -> dict:
    """Resume parity: a checkpointed solve truncated to ``k // 2``
    completed subdomains and resumed on ``backend`` must be
    byte-identical to an uninterrupted serial run."""
    from repro.obs.tracer import Tracer
    from repro.resilience.checkpoint import truncate_checkpoint

    gm = generate(name, scale)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(gm.A.shape[0])
    cfg = dict(k=k, seed=seed)
    ref = PDSLin(gm.A, PDSLinConfig(**cfg), M=gm.M,
                 runtime=RuntimeOptions(backend="serial")).solve(b)
    keep = max(1, k // 2)
    with tempfile.TemporaryDirectory(prefix="repro-parity-") as d:
        PDSLin(gm.A, PDSLinConfig(**cfg), M=gm.M,
               runtime=RuntimeOptions(backend=backend, checkpoint=d)).solve(b)
        truncate_checkpoint(d, keep)
        tracer = Tracer()
        res = PDSLin(gm.A, PDSLinConfig(**cfg), M=gm.M,
                     runtime=RuntimeOptions(backend=backend, resume=d,
                                            checkpoint=d,
                                            tracer=tracer)).solve(b)
        restored = int(tracer.counters.get("checkpoint_subdomains_restored",
                                           0))
        refactored = tracer.span_count("factor_subdomain")
    return {
        "matrix": name,
        "n": gm.A.shape[0],
        "bit_identical": ref.x.tobytes() == res.x.tobytes()
        and restored == keep and refactored == k - keep,
        "iterations": (ref.iterations, res.iterations),
        "residual": (ref.residual_norm, res.residual_norm),
        "max_abs_diff": float(np.max(np.abs(ref.x - res.x)))
        if ref.x.shape == res.x.shape else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="bit-parity check: serial vs parallel PDSLin backends")
    ap.add_argument("--scale", default="tiny",
                    choices=("tiny", "small", "medium"))
    ap.add_argument("--backend", default="process",
                    choices=("thread", "process"))
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--k", type=int, default=4,
                    help="number of subdomains (default 4)")
    ap.add_argument("--matrices", nargs="*", default=None,
                    help="subset of suite matrices (default: all)")
    ap.add_argument("--resume", action="store_true",
                    help="check checkpoint-resume parity instead: a "
                         "truncated checkpoint resumed on the backend "
                         "must be byte-identical to an uninterrupted "
                         "serial run")
    args = ap.parse_args(argv)

    names = args.matrices or suite_names()
    backend = get_backend(args.backend, workers=args.workers)
    check = check_resume if args.resume else check_matrix
    mode = "resume" if args.resume else "parallel"
    failures = 0
    for name in names:
        r = check(name, args.scale, backend, k=args.k)
        ok = r["bit_identical"] and r["iterations"][0] == r["iterations"][1]
        failures += 0 if ok else 1
        status = "OK " if ok else "FAIL"
        print(f"[{status}] {r['matrix']:<12} n={r['n']:<7} "
              f"iters={r['iterations'][0]}/{r['iterations'][1]} "
              f"max|dx|={r['max_abs_diff']:.2e}")
    tag = f"{backend.name}:{backend.workers} {mode}"
    if failures:
        print(f"parity FAILED on {failures}/{len(names)} matrices "
              f"({tag} vs serial)")
    else:
        print(f"parity OK: {len(names)} matrices bit-identical "
              f"({tag} vs serial)")
    return failures


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
