"""Two-level parallel scaling model (Fig. 1 reproduction).

PDSLin assigns ``p = P/k`` cores to each of the ``k`` subdomains; the
intra-subdomain solver (SuperLU_DIST in the paper) scales the dominant
per-subdomain stages. Since we execute subdomains serially, the
two-level projection applies an Amdahl-type scaling law

    t(p) = t(1) * (f + (1 - f) / p**alpha)

to each stage's measured single-core cost, with stage-specific serial
fraction ``f`` and efficiency exponent ``alpha`` calibrated to the
published SuperLU_DIST/PDSLin scaling behaviour: subdomain LU and the
sparse triangular solves scale well to tens of cores; the Schur LU and
the preconditioned iterations involve the (smaller, denser) separator
system and global communication, so they scale worse — which is why the
paper's Fig. 1 flattens at high core counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.parallel.machine import SimulatedMachine
from repro.utils import fraction, positive_int

__all__ = ["StageScaling", "TwoLevelModel", "DEFAULT_STAGE_SCALING",
           "record_model_skew"]


def record_model_skew(tracer, stage: str, *, model_s: float,
                      measured_s: float) -> None:
    """Record the real-minus-simulated wall-clock gap of a stage.

    Reconciles the :class:`SimulatedMachine` cost model with measured
    execution: when a real execution backend runs a stage, the gap
    between its wall clock and the simulated makespan (worker-charged
    stage seconds) lands in a ``noise:``-prefixed tracer counter —
    visible in exported metrics for calibration, but excluded from perf
    gating and baseline determinism checks, because it is machine noise
    by construction.
    """
    tracer.count(f"noise:model_skew_{stage}", measured_s - model_s)


@dataclass(frozen=True)
class StageScaling:
    """Amdahl parameters for one stage."""

    serial_fraction: float
    alpha: float
    uses_subdomain_cores: bool  # True: scale by P/k; False: scale by P

    def time(self, t1: float, cores: int) -> float:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        f = self.serial_fraction
        return t1 * (f + (1.0 - f) / cores ** self.alpha)


DEFAULT_STAGE_SCALING: Dict[str, StageScaling] = {
    # subdomain factorization: scales with cores per subdomain
    "LU(D)": StageScaling(serial_fraction=0.02, alpha=0.85,
                          uses_subdomain_cores=True),
    # interface triangular solves + local update products
    "Comp(S)": StageScaling(serial_fraction=0.05, alpha=0.75,
                            uses_subdomain_cores=True),
    # Schur factorization: smaller, denser, latency bound
    "LU(S)": StageScaling(serial_fraction=0.30, alpha=0.50,
                          uses_subdomain_cores=False),
    # preconditioned iterations: global reductions every iteration
    "Solve": StageScaling(serial_fraction=0.40, alpha=0.45,
                          uses_subdomain_cores=False),
}


@dataclass
class TwoLevelModel:
    """Project a one-process-per-subdomain run onto P total cores."""

    k: int
    scaling: Dict[str, StageScaling] = field(
        default_factory=lambda: dict(DEFAULT_STAGE_SCALING))

    def __post_init__(self) -> None:
        self.k = positive_int(self.k, "k")
        for name, s in self.scaling.items():
            fraction(s.serial_fraction, f"serial_fraction[{name}]")

    def cores_per_subdomain(self, total_cores: int) -> int:
        total_cores = positive_int(total_cores, "total_cores")
        return max(1, total_cores // self.k)

    def project(self, machine: SimulatedMachine,
                total_cores: int) -> Dict[str, float]:
        """Per-stage projected times on ``total_cores`` cores.

        Stages without a scaling entry are taken at measured cost
        (assumed serial).
        """
        p_sub = self.cores_per_subdomain(total_cores)
        out: Dict[str, float] = {}
        for stage, t1 in machine.breakdown().items():
            s = self.scaling.get(stage)
            if s is None:
                out[stage] = t1
            else:
                cores = p_sub if s.uses_subdomain_cores else total_cores
                out[stage] = s.time(t1, cores)
        return out

    def total_time(self, machine: SimulatedMachine, total_cores: int) -> float:
        return float(sum(self.project(machine, total_cores).values()))
