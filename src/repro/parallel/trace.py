"""Chrome-trace export of a simulated run.

Serializes a :class:`SimulatedMachine`'s per-process stage times as a
Trace Event Format JSON (load it at ``chrome://tracing`` or in Perfetto)
so the simulated parallel schedule — stage bars per subdomain process,
serial root stages — can be inspected visually, the way one would
inspect an MPI trace of the real PDSLin.

The machine records only stage *totals* per process, so the timeline
lays stages out sequentially in the canonical pipeline order; within a
stage every process starts together (bulk-synchronous), which is exactly
the model the makespan accounting uses. The events use the shared
:class:`repro.obs.TraceEvent` model, so simulated schedules and real
wall-clock traces (:func:`repro.obs.export.export_chrome_trace`) render
identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

from repro.obs.events import TraceEvent, write_chrome_trace
from repro.parallel.machine import SimulatedMachine

__all__ = ["export_chrome_trace", "machine_events", "STAGE_ORDER"]

# canonical pipeline order; unknown stages go to the end alphabetically
STAGE_ORDER = ("Partition", "LU(D)", "Comp(S)", "LU(S)", "Solve")


def _ordered_stages(machine: SimulatedMachine) -> list[str]:
    names = machine.stage_names()
    known = [s for s in STAGE_ORDER if s in names]
    rest = sorted(s for s in names if s not in STAGE_ORDER)
    return known + rest


def machine_events(machine: SimulatedMachine) -> list[TraceEvent]:
    """Lay the machine's stage totals out as shared-model trace events.

    Stages run back to back; within a stage all subdomain processes
    start together (tracks ``proc0..proc{k-1}``) and the root's serial
    share (track ``root``) follows the longest of them.
    """
    events: list[TraceEvent] = []
    t_cursor = 0.0  # microseconds
    for stage in _ordered_stages(machine):
        stage_start = t_cursor
        longest = 0.0
        for ell in range(machine.k):
            dt = machine.processes[ell].timer.get(stage) * 1e6
            if dt <= 0:
                continue
            events.append(TraceEvent(
                name=stage, ts_us=stage_start, dur_us=dt,
                track=f"proc{ell}", args={"process": f"subdomain {ell}"}))
            longest = max(longest, dt)
        root_dt = machine.root.timer.get(stage) * 1e6
        if root_dt > 0:
            events.append(TraceEvent(
                name=stage, ts_us=stage_start + longest, dur_us=root_dt,
                track="root", args={"process": "root"}))
            longest += root_dt
        t_cursor = stage_start + longest
    return events


def export_chrome_trace(machine: SimulatedMachine,
                        path_or_file: Union[str, Path, TextIO]) -> dict:
    """Write the trace JSON; returns the trace dict as well."""
    tracks = ["root"] + [f"proc{ell}" for ell in range(machine.k)]
    return write_chrome_trace(machine_events(machine), path_or_file,
                              process_name="SimulatedMachine",
                              track_order=tracks)
