"""Chrome-trace export of a simulated run.

Serializes a :class:`SimulatedMachine`'s per-process stage times as a
Trace Event Format JSON (load it at ``chrome://tracing`` or in Perfetto)
so the simulated parallel schedule — stage bars per subdomain process,
serial root stages — can be inspected visually, the way one would
inspect an MPI trace of the real PDSLin.

The machine records only stage *totals* per process, so the timeline
lays stages out sequentially in the canonical pipeline order; within a
stage every process starts together (bulk-synchronous), which is exactly
the model the makespan accounting uses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.parallel.machine import SimulatedMachine

__all__ = ["export_chrome_trace", "STAGE_ORDER"]

# canonical pipeline order; unknown stages go to the end alphabetically
STAGE_ORDER = ("Partition", "LU(D)", "Comp(S)", "LU(S)", "Solve")


def _ordered_stages(machine: SimulatedMachine) -> list[str]:
    names = machine.stage_names()
    known = [s for s in STAGE_ORDER if s in names]
    rest = sorted(s for s in names if s not in STAGE_ORDER)
    return known + rest


def export_chrome_trace(machine: SimulatedMachine,
                        path_or_file: Union[str, Path, TextIO]) -> dict:
    """Write the trace JSON; returns the trace dict as well."""
    events = []
    t_cursor = 0.0  # microseconds
    for stage in _ordered_stages(machine):
        stage_start = t_cursor
        longest = 0.0
        for ell in range(machine.k):
            dt = machine.processes[ell].timer.get(stage) * 1e6
            if dt <= 0:
                continue
            events.append({
                "name": stage, "ph": "X", "ts": stage_start, "dur": dt,
                "pid": 0, "tid": ell + 1,
                "args": {"process": f"subdomain {ell}"},
            })
            longest = max(longest, dt)
        root_dt = machine.root.timer.get(stage) * 1e6
        if root_dt > 0:
            events.append({
                "name": stage, "ph": "X", "ts": stage_start + longest,
                "dur": root_dt, "pid": 0, "tid": 0,
                "args": {"process": "root"},
            })
            longest += root_dt
        t_cursor = stage_start + longest
    meta = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": "SimulatedMachine"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "root"}},
    ] + [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": ell + 1,
         "args": {"name": f"proc{ell}"}}
        for ell in range(machine.k)
    ]
    trace = {"traceEvents": meta + events, "displayTimeUnit": "ms"}
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w") as f:
            json.dump(trace, f)
    else:
        json.dump(trace, path_or_file)
    return trace
