"""Pluggable execution backends for the PDSLin pipeline.

The paper's solver is *hierarchically parallel*: the per-subdomain
stages (LU(D), the interface triangular solves and the local Schur
updates of Comp(S)) are embarrassingly parallel across the DBBD
diagonal blocks. :class:`SimulatedMachine` models that parallelism for
the paper's accounting; this module *executes* it. Three backends sit
behind one :class:`Executor` interface:

- :class:`SerialBackend` — runs every task inline (the default; the
  reference semantics every other backend must reproduce bit-for-bit);
- :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``.
  No pickling, shared address space; wins only where the work releases
  the GIL (SuperLU factorization, BLAS-heavy blocked solves on large
  subdomains);
- :class:`ProcessBackend` — ``ProcessPoolExecutor`` with pickled CSR
  block shipping. True multi-core execution; task payloads and results
  cross process boundaries, so task functions must be module-level and
  their arguments picklable.

Determinism contract: ``map`` always returns outcomes in *submission
order* regardless of completion order, so callers can reduce in a fixed
order and obtain bit-identical results on every backend.

Failure contract: a Python exception raised by a task comes back as
``TaskOutcome.error`` (pickled across the process boundary — see
``SolverError.__reduce__``). A worker *process death* (segfault,
``os._exit``, OOM kill) surfaces as a :class:`WorkerCrashError`
outcome, after which the broken pool is disposed so the next ``map``
gets a fresh one. ``KeyboardInterrupt`` during a ``map`` cancels
pending tasks, terminates worker processes and re-raises — no orphans.

Deadlines and stragglers: ``map`` takes an optional per-batch
``deadline_s`` — tasks still outstanding when it expires come back as
``TaskOutcome.timed_out`` with a :class:`TaskDeadlineError`, their
futures cancelled and (on the process backend) their workers killed so
nothing is orphaned — and an optional :class:`SpeculationPolicy` that
duplicates outstanding tasks once they run longer than a quantile of
the completed ones. The first copy to finish wins; ties break toward
the primary submission, deterministically, so backend bit-parity holds.

Selection: ``PDSLin(backend=...)`` takes an :class:`Executor`, a spec
string (``"serial"``, ``"thread"``, ``"process"``, ``"process:4"``) or
``None`` to consult the ``REPRO_BACKEND`` environment variable (worker
count from ``REPRO_WORKERS``; ``REPRO_MP_START`` overrides the
multiprocessing start method). Environment values are validated up
front: a bad value raises a ``ValueError`` naming the variable instead
of failing deep inside pool construction.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import envcfg
from repro.resilience.errors import (
    TaskDeadlineError,
    TransportChecksumError,
    WorkerCrashError,
)

__all__ = [
    "TaskOutcome", "SpeculationPolicy", "Executor", "SerialBackend",
    "ThreadBackend", "ProcessBackend", "resolve_backend", "get_backend",
    "backend_names", "in_worker", "transport_checksum_enabled",
    "ENV_BACKEND", "ENV_WORKERS", "ENV_MP_START", "ENV_IN_WORKER",
    "ENV_TRANSPORT_CHECKSUM",
]

ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"
ENV_MP_START = "REPRO_MP_START"
#: "0" disables the blake2b transport checksum on sealed task results
#: (default on for the process backend). Exists so the chaos drills can
#: demonstrate what *silent* transport corruption does.
ENV_TRANSPORT_CHECKSUM = "REPRO_TRANSPORT_CHECKSUM"
#: Set to "1" in the environment of ProcessBackend workers (and only
#: there): chaos hooks that hard-kill a "worker" must never fire in the
#: parent process, where serial and thread backends run tasks.
ENV_IN_WORKER = "_REPRO_IN_WORKER"


def _mark_worker() -> None:
    """Pool initializer: brand this process as a disposable worker."""
    os.environ[ENV_IN_WORKER] = "1"


def in_worker() -> bool:
    """True inside a ProcessBackend worker process."""
    return os.environ.get(ENV_IN_WORKER) == "1"


def transport_checksum_enabled() -> bool:
    """Whether sealed task results carry a verified blake2b digest
    (default yes). ``REPRO_TRANSPORT_CHECKSUM=0`` disables verification;
    any other value than 0/1 raises a ``ValueError`` naming the
    variable (parsed through :mod:`repro.envcfg`)."""
    return envcfg.get(ENV_TRANSPORT_CHECKSUM)


@dataclass
class TaskOutcome:
    """Result slot for one task of a ``map`` call, in submission order.

    Exactly one of ``value``/``error`` is meaningful: ``error`` is the
    exception the task raised (or a :class:`WorkerCrashError` when the
    worker process died before returning, or a
    :class:`TaskDeadlineError` when the batch deadline expired first —
    then ``timed_out`` is also set). ``wall_s`` is the task's own wall
    time as measured where it ran; ``worker`` the executing process id
    (useful to see how tasks spread over the pool). ``speculated`` marks
    a result delivered by a speculative duplicate rather than the
    primary submission; ``duplicates`` counts how many duplicates were
    launched for this slot. ``transport_retries`` counts resubmissions
    after the result's blake2b transport digest failed to verify — a
    surviving :class:`TransportChecksumError` in ``error`` means the
    retry failed too.
    """

    index: int
    value: Any = None
    error: Optional[BaseException] = None
    wall_s: float = 0.0
    worker: Optional[int] = None
    timed_out: bool = False
    speculated: bool = False
    duplicates: int = 0
    transport_retries: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class SpeculationPolicy:
    """When and how to duplicate straggling tasks.

    Once at least ``min_completed`` tasks of the batch have finished,
    the straggler threshold is ``max(min_threshold_s, factor *
    quantile(completed walls, quantile))``; any task still outstanding
    past it gets up to ``max_duplicates`` speculative copies. The first
    copy to return wins; completed duplicates of an already-settled
    slot are discarded, with the primary preferred on simultaneous
    completion — the accepted value is produced by the same task body
    either way, so determinism of the *result* never depends on the
    race. ``poll_s`` bounds how often the dispatcher wakes to check.
    """

    quantile: float = 0.5
    factor: float = 3.0
    min_completed: int = 2
    max_duplicates: int = 1
    min_threshold_s: float = 0.05
    poll_s: float = 0.02

    def __post_init__(self) -> None:
        if not (0.0 <= self.quantile <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.min_completed < 1:
            raise ValueError("min_completed must be >= 1")
        if self.max_duplicates < 1:
            raise ValueError("max_duplicates must be >= 1")
        if self.min_threshold_s < 0.0 or self.poll_s <= 0.0:
            raise ValueError("min_threshold_s must be >= 0 and "
                             "poll_s > 0")

    def threshold_s(self, completed_walls: Sequence[float]) -> Optional[float]:
        """Straggler threshold given the batch walls seen so far, or
        ``None`` while too few tasks have completed to estimate one."""
        if len(completed_walls) < self.min_completed:
            return None
        walls = sorted(completed_walls)
        idx = min(len(walls) - 1,
                  max(0, int(self.quantile * len(walls))))
        return max(self.min_threshold_s, self.factor * walls[idx])


def _invoke(fn: Callable, payload: Any) -> Tuple[Any, Optional[BaseException],
                                                 float, int]:
    """Run one task, capturing exceptions as values (uniform across
    backends; also avoids raising through the future machinery)."""
    t0 = time.perf_counter()
    try:
        value, error = fn(payload), None
    except Exception as exc:            # noqa: BLE001 - captured on purpose
        value, error = None, exc
    return value, error, time.perf_counter() - t0, os.getpid()


# -- sealed transport -------------------------------------------------------
#
# The process backend ships results as (pickle blob, blake2b digest)
# pairs sealed where the task ran, verified where the result is used:
# a bit flipped in the bytes between the two — pickle buffers, pipes,
# shared memory — no longer deserializes into silently-wrong numbers
# but into a TransportChecksumError, and the task is resubmitted once.

@dataclass
class _SealedValue:
    """A task result as shipped: its pickle and the digest of the bytes
    the worker actually produced."""

    blob: bytes
    digest: str


def _digest(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _seal(value: Any, payload: Any, *, chaos: bool) -> _SealedValue:
    """Seal a result worker-side. With ``chaos``, the transport bit-flip
    seam may swap in a corrupted copy of the payload *after* the digest
    is taken — the model of corruption in flight."""
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    digest = _digest(blob)
    if chaos:
        from repro.resilience import abft
        corrupted = abft.maybe_corrupt_transport(
            value, subdomain=getattr(payload, "ell", None))
        if corrupted is not None:
            blob = pickle.dumps(corrupted,
                                protocol=pickle.HIGHEST_PROTOCOL)
    return _SealedValue(blob=blob, digest=digest)


def _invoke_sealed(fn: Callable, payload: Any):
    """`_invoke`, but successful values ship sealed (chaos seam live)."""
    value, error, wall, pid = _invoke(fn, payload)
    if error is None:
        value = _seal(value, payload, chaos=True)
    return value, error, wall, pid


def _invoke_sealed_clean(fn: Callable, payload: Any):
    """Sealed invoke for transport retries: the chaos seam is bypassed
    (a re-ship of the same result would not hit the same random flip),
    the digest is still verified."""
    value, error, wall, pid = _invoke(fn, payload)
    if error is None:
        value = _seal(value, payload, chaos=False)
    return value, error, wall, pid


def _unseal(value: Any, *, verify: bool,
            backend: str) -> Tuple[Any, Optional[BaseException]]:
    """Open a sealed value: verify the digest (unless disabled) and
    unpickle. Pass non-sealed values through untouched."""
    if not isinstance(value, _SealedValue):
        return value, None
    if verify and _digest(value.blob) != value.digest:
        return None, TransportChecksumError(
            "task result failed its blake2b transport digest: the bytes "
            "that arrived are not the bytes the worker hashed",
            backend=backend)
    try:
        return pickle.loads(value.blob), None
    except Exception as exc:  # corrupt blob that also breaks the pickle
        return None, TransportChecksumError(
            f"sealed task result failed to deserialize: {exc}",
            backend=backend)


def _transport_seam_armed() -> bool:
    """True when the ``REPRO_CHAOS_BITFLIP_TARGET=transport`` seam is
    set (regardless of one-shot state)."""
    from repro.resilience import abft
    seam = abft.bitflip_seam()
    return seam is not None and seam.target == "transport"


class Executor:
    """One ``map`` with ordered results; see the module docstring for
    the determinism and failure contracts."""

    name = "abstract"
    #: True when tasks run in the caller's process and may share state
    #: with it (closures, live SuperLU handles). Parallel callers must
    #: ship self-contained payloads when this is False.
    inline = False

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)

    def map(self, fn: Callable, payloads: Sequence[Any], *,
            deadline_s: float | None = None,
            speculation: SpeculationPolicy | None = None,
            ) -> List[TaskOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _seal_tasks(self) -> bool:
        """Whether this ``map`` should ship sealed results. Inline
        backends have no transport, so they seal only when the
        transport chaos seam is armed (the drills must be able to
        exercise detection on every backend)."""
        return _transport_seam_armed()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(Executor):
    """Inline execution — the reference semantics.

    ``deadline_s`` and ``speculation`` are accepted and ignored: inline
    tasks cannot be preempted or duplicated, and the serial result is
    by definition the reference every mitigated run must match.
    """

    name = "serial"
    inline = True

    def __init__(self, workers: int = 1):
        super().__init__(1)

    def map(self, fn: Callable, payloads: Sequence[Any], *,
            deadline_s: float | None = None,
            speculation: SpeculationPolicy | None = None,
            ) -> List[TaskOutcome]:
        sealed = self._seal_tasks()
        verify = transport_checksum_enabled()
        invoke = _invoke_sealed if sealed else _invoke
        out = []
        for i, p in enumerate(payloads):
            value, error, wall, pid = invoke(fn, p)
            if error is None:
                value, error = _unseal(value, verify=verify,
                                       backend=self.name)
            if isinstance(error, TransportChecksumError):
                value, error, wall, pid = _invoke_sealed_clean(fn, p)
                if error is None:
                    value, error = _unseal(value, verify=verify,
                                           backend=self.name)
                out.append(TaskOutcome(index=i, value=value, error=error,
                                       wall_s=wall, worker=pid,
                                       transport_retries=1))
                continue
            out.append(TaskOutcome(index=i, value=value, error=error,
                                   wall_s=wall, worker=pid))
        return out


class _PooledBackend(Executor):
    """Shared dispatch loop of the thread and process backends.

    Subclasses provide ``_ensure()`` (a live ``concurrent.futures``
    pool), ``_broken_exc`` (exception types meaning "a worker died" —
    empty for threads) and ``_reap()`` (dispose of a pool whose tasks
    were abandoned, killing workers if the backend has any).
    """

    _broken_exc: tuple = ()

    def _ensure(self):
        raise NotImplementedError

    def _reap(self) -> None:
        """Dispose of the current pool after a crash/timeout so the
        next ``map`` starts clean and nothing is orphaned."""

    def map(self, fn: Callable, payloads: Sequence[Any], *,
            deadline_s: float | None = None,
            speculation: SpeculationPolicy | None = None,
            ) -> List[TaskOutcome]:
        pool = self._ensure()
        invoke = _invoke_sealed if self._seal_tasks() else _invoke
        futures: List[Future] = []
        submit_crash = None
        for p in payloads:
            try:
                futures.append(pool.submit(invoke, fn, p))
            except self._broken_exc as exc:
                # a worker died while the fan-out was still being
                # dispatched (the chaos crash seam can fire that fast):
                # settle what got in and book the unsubmitted tail as
                # worker crashes, so callers take the normal failover
                # path instead of seeing a raw BrokenProcessPool
                submit_crash = exc
                break
        if submit_crash is not None:
            out = [self._settle(f, i)[0] for i, f in enumerate(futures)]
            out.extend(TaskOutcome(index=i, error=WorkerCrashError(
                f"worker process died before task {i} was submitted: "
                f"{submit_crash}", backend=self.name))
                for i in range(len(futures), len(payloads)))
            self._reap()
            return self._retry_transport(fn, payloads, out)
        if deadline_s is None and speculation is None:
            out = self._map_ordered(futures)
        else:
            out = self._map_mitigated(pool, invoke, fn, payloads, futures,
                                      deadline_s, speculation)
        return self._retry_transport(fn, payloads, out)

    def _retry_transport(self, fn: Callable, payloads: Sequence[Any],
                         outcomes: List[TaskOutcome]) -> List[TaskOutcome]:
        """Resubmit (once, chaos seam bypassed) every task whose result
        failed its transport digest. A second failure keeps the
        :class:`TransportChecksumError` for the caller to handle."""
        bad = [o for o in outcomes
               if isinstance(o.error, TransportChecksumError)
               and not o.timed_out]
        for o in bad:
            pool = self._ensure()
            f = pool.submit(_invoke_sealed_clean, fn, payloads[o.index])
            retry, died = self._settle(f, o.index,
                                       duplicates=o.duplicates)
            retry.transport_retries = o.transport_retries + 1
            outcomes[o.index] = retry
            if died:
                self._reap()
        return outcomes

    def _settle(self, f: Future, index: int, *, speculated: bool = False,
                duplicates: int = 0) -> Tuple[TaskOutcome, bool]:
        """One future -> one outcome; second element flags pool death.
        Sealed values are digest-verified and unpickled here."""
        try:
            value, error, wall, pid = f.result()
            if error is None:
                value, error = _unseal(
                    value, verify=transport_checksum_enabled(),
                    backend=self.name)
            return TaskOutcome(index=index, value=value, error=error,
                               wall_s=wall, worker=pid,
                               speculated=speculated,
                               duplicates=duplicates), False
        except self._broken_exc as exc:
            return TaskOutcome(index=index, error=WorkerCrashError(
                f"worker process died while running task {index}: {exc}",
                backend=self.name), duplicates=duplicates), True
        except Exception as exc:  # e.g. result unpickling failure
            return TaskOutcome(index=index, error=exc,
                               duplicates=duplicates), False

    def _map_ordered(self, futures: List[Future]) -> List[TaskOutcome]:
        """The plain path: collect in submission order, no mitigation."""
        out: List[TaskOutcome] = []
        broken = False
        try:
            for i, f in enumerate(futures):
                outcome, died = self._settle(f, i)
                out.append(outcome)
                broken = broken or died
        except BaseException:
            # KeyboardInterrupt etc.: cancel what has not started,
            # kill any workers, leave no orphans behind
            for f in futures:
                f.cancel()
            self._reap()
            raise
        if broken:
            self._reap()  # a fresh pool is built on the next map
        return out

    def _map_mitigated(self, pool, invoke: Callable, fn: Callable,
                       payloads: Sequence[Any],
                       futures: List[Future], deadline_s: float | None,
                       speculation: SpeculationPolicy | None,
                       ) -> List[TaskOutcome]:
        """Completion-order loop with a batch deadline and speculative
        duplicates. The deadline is measured from batch submission and
        covers the whole ``map`` (queueing included): everything not
        finished when it expires times out together."""
        t0 = time.monotonic()
        info: Dict[Future, Tuple[int, bool]] = {
            f: (i, False) for i, f in enumerate(futures)}
        pending = set(futures)
        outcomes: List[Optional[TaskOutcome]] = [None] * len(payloads)
        duplicates = [0] * len(payloads)
        walls: List[float] = []
        broken = False
        try:
            while pending and not broken:
                budget = None
                if deadline_s is not None:
                    budget = deadline_s - (time.monotonic() - t0)
                    if budget <= 0:
                        break
                if speculation is not None:
                    budget = speculation.poll_s if budget is None \
                        else min(budget, speculation.poll_s)
                done, _ = wait(pending, timeout=budget,
                               return_when=FIRST_COMPLETED)
                # deterministic tie-break: settle by (index, duplicate)
                # so a primary finishing alongside its duplicate wins
                for f in sorted(done, key=lambda f: info[f]):
                    pending.discard(f)
                    index, is_dup = info[f]
                    if outcomes[index] is not None:
                        continue  # slot already settled: discard loser
                    outcome, died = self._settle(
                        f, index, speculated=is_dup,
                        duplicates=duplicates[index])
                    outcomes[index] = outcome
                    broken = broken or died
                    walls.append(time.monotonic() - t0)
                    for g, (j, _) in info.items():
                        if j == index and g in pending:
                            g.cancel()
                            pending.discard(g)
                            break
                if broken:
                    # the pool is dead: every remaining future fails
                    # with the same broken-pool error immediately
                    for f in list(pending):
                        pending.discard(f)
                        index, is_dup = info[f]
                        if outcomes[index] is None:
                            outcomes[index], _ = self._settle(
                                f, index, speculated=is_dup,
                                duplicates=duplicates[index])
                    break
                if speculation is not None and pending:
                    thr = speculation.threshold_s(walls)
                    if thr is not None and time.monotonic() - t0 > thr:
                        for index in range(len(payloads)):
                            if outcomes[index] is None and \
                                    duplicates[index] < \
                                    speculation.max_duplicates:
                                duplicates[index] += 1
                                dup = pool.submit(invoke, fn,
                                                  payloads[index])
                                info[dup] = (index, True)
                                pending.add(dup)
        except BaseException:
            for f in futures:
                f.cancel()
            self._reap()
            raise
        timed_out = False
        for index in range(len(payloads)):
            if outcomes[index] is None:
                timed_out = True
                outcomes[index] = TaskOutcome(
                    index=index, timed_out=True,
                    duplicates=duplicates[index],
                    error=TaskDeadlineError(
                        f"task {index} still outstanding after the "
                        f"{deadline_s}s batch deadline",
                        deadline_s=deadline_s or 0.0))
        if timed_out:
            for f in pending:
                f.cancel()
        if broken or timed_out:
            # abandoned tasks may still be running: dispose of the pool
            # (killing worker processes) so nothing is orphaned
            self._reap()
        return [o for o in outcomes if o is not None]


class ThreadBackend(_PooledBackend):
    """Thread-pool execution: no pickling, shared address space.

    A timed-out task's *thread* cannot be killed — the future is
    cancelled and the pool replaced, so the stale thread finishes into
    the void; its result is discarded.
    """

    name = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec")
        return self._pool

    def _reap(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def _default_start_method() -> str:
    """``fork`` where available (cheap, inherits the parent's imported
    modules), the platform default (``spawn``) elsewhere. A
    ``REPRO_MP_START`` override is validated against the platform's
    available start methods."""
    override = envcfg.get(ENV_MP_START)
    import multiprocessing as mp
    if override:
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else \
        mp.get_start_method(allow_none=False)


class ProcessBackend(_PooledBackend):
    """Process-pool execution with pickled payload shipping.

    The pool is created lazily on first ``map`` and rebuilt after a
    worker crash or a batch timeout. Task functions must be importable
    module-level callables; payloads and results must pickle.
    """

    name = "process"
    _broken_exc = (BrokenProcessPool,)

    def _seal_tasks(self) -> bool:
        """Process results really cross a transport; seal them whenever
        digest verification is on (the default) — and also when the
        chaos seam is armed with verification off, so the drills can
        show what silent acceptance looks like."""
        return transport_checksum_enabled() or _transport_seam_armed()

    #: Grace given to a worker after SIGTERM before escalating to
    #: SIGKILL (tests shorten it to exercise the escalation quickly).
    _join_grace_s = 5.0

    def __init__(self, workers: int = 2, *, start_method: str | None = None):
        super().__init__(workers)
        self._start_method = start_method or _default_start_method()
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing as mp
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=mp.get_context(self._start_method),
                initializer=_mark_worker)
        return self._pool

    def _reap(self) -> None:
        self._terminate()

    def _terminate(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=self._join_grace_s)
        # a worker that ignores/blocks SIGTERM (wedged in C code, or a
        # chaos drill masking signals) would otherwise survive and hang
        # interpreter exit on the atexit close of shared backends:
        # escalate to SIGKILL and reap again
        for p in procs:
            if p.is_alive():
                p.kill()
                p.join(timeout=self._join_grace_s)

    def close(self) -> None:
        self._terminate()


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

#: Shared instances keyed by (name, workers): repeated solver
#: constructions reuse one warm pool instead of forking per solve.
_shared: Dict[Tuple[str, int], Executor] = {}


def backend_names() -> tuple:
    """Names of the registered execution backends, sorted."""
    return tuple(sorted(_BACKENDS))


def _default_workers() -> int:
    value = envcfg.get(ENV_WORKERS)
    if value is not None:
        return value
    return max(1, min(4, os.cpu_count() or 1))


@atexit.register
def _close_shared() -> None:  # pragma: no cover - interpreter teardown
    for b in list(_shared.values()):
        try:
            b.close()
        except Exception:
            pass
    _shared.clear()


def get_backend(name: str, *, workers: int | None = None,
                fresh: bool = False) -> Executor:
    """Backend by spec string (``"process"`` / ``"process:4"``).

    Shared instances are cached per (name, workers) and closed at
    interpreter exit; pass ``fresh=True`` for a private instance the
    caller owns (and must ``close()``).
    """
    base, _, count = name.partition(":")
    if base not in _BACKENDS:
        raise ValueError(f"unknown backend {base!r}; "
                         f"expected one of {backend_names()}")
    if count:
        try:
            workers = int(count)
        except ValueError:
            raise ValueError(f"bad worker count in backend spec "
                             f"{name!r}: {count!r} is not an integer"
                             ) from None
        if workers < 1:
            raise ValueError(f"bad worker count in backend spec "
                             f"{name!r}: must be >= 1")
    if workers is None:
        workers = 1 if base == "serial" else _default_workers()
    if fresh:
        return _BACKENDS[base](workers)
    key = (base, workers)
    if key not in _shared:
        _shared[key] = _BACKENDS[base](workers)
    return _shared[key]


def resolve_backend(spec: "Executor | str | None") -> Executor:
    """The solver-facing resolution ladder: explicit instance > spec
    string > ``REPRO_BACKEND`` environment variable > serial."""
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        env = envcfg.get_raw(ENV_BACKEND) or ""
        if env:
            try:
                return get_backend(env)
            except ValueError as exc:
                raise ValueError(f"{ENV_BACKEND}: {exc}") from None
        spec = "serial"
    return get_backend(spec)
