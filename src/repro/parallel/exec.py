"""Pluggable execution backends for the PDSLin pipeline.

The paper's solver is *hierarchically parallel*: the per-subdomain
stages (LU(D), the interface triangular solves and the local Schur
updates of Comp(S)) are embarrassingly parallel across the DBBD
diagonal blocks. :class:`SimulatedMachine` models that parallelism for
the paper's accounting; this module *executes* it. Three backends sit
behind one :class:`Executor` interface:

- :class:`SerialBackend` — runs every task inline (the default; the
  reference semantics every other backend must reproduce bit-for-bit);
- :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``.
  No pickling, shared address space; wins only where the work releases
  the GIL (SuperLU factorization, BLAS-heavy blocked solves on large
  subdomains);
- :class:`ProcessBackend` — ``ProcessPoolExecutor`` with pickled CSR
  block shipping. True multi-core execution; task payloads and results
  cross process boundaries, so task functions must be module-level and
  their arguments picklable.

Determinism contract: ``map`` always returns outcomes in *submission
order* regardless of completion order, so callers can reduce in a fixed
order and obtain bit-identical results on every backend.

Failure contract: a Python exception raised by a task comes back as
``TaskOutcome.error`` (pickled across the process boundary — see
``SolverError.__reduce__``). A worker *process death* (segfault,
``os._exit``, OOM kill) surfaces as a :class:`WorkerCrashError`
outcome, after which the broken pool is disposed so the next ``map``
gets a fresh one. ``KeyboardInterrupt`` during a ``map`` cancels
pending tasks, terminates worker processes and re-raises — no orphans.

Selection: ``PDSLin(backend=...)`` takes an :class:`Executor`, a spec
string (``"serial"``, ``"thread"``, ``"process"``, ``"process:4"``) or
``None`` to consult the ``REPRO_BACKEND`` environment variable (worker
count from ``REPRO_WORKERS``; ``REPRO_MP_START`` overrides the
multiprocessing start method).
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.errors import WorkerCrashError

__all__ = [
    "TaskOutcome", "Executor", "SerialBackend", "ThreadBackend",
    "ProcessBackend", "resolve_backend", "get_backend", "backend_names",
    "in_worker",
    "ENV_BACKEND", "ENV_WORKERS", "ENV_MP_START", "ENV_IN_WORKER",
]

ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"
ENV_MP_START = "REPRO_MP_START"
#: Set to "1" in the environment of ProcessBackend workers (and only
#: there): chaos hooks that hard-kill a "worker" must never fire in the
#: parent process, where serial and thread backends run tasks.
ENV_IN_WORKER = "_REPRO_IN_WORKER"


def _mark_worker() -> None:
    """Pool initializer: brand this process as a disposable worker."""
    os.environ[ENV_IN_WORKER] = "1"


def in_worker() -> bool:
    """True inside a ProcessBackend worker process."""
    return os.environ.get(ENV_IN_WORKER) == "1"


@dataclass
class TaskOutcome:
    """Result slot for one task of a ``map`` call, in submission order.

    Exactly one of ``value``/``error`` is meaningful: ``error`` is the
    exception the task raised (or a :class:`WorkerCrashError` when the
    worker process died before returning). ``wall_s`` is the task's own
    wall time as measured where it ran; ``worker`` the executing
    process id (useful to see how tasks spread over the pool).
    """

    index: int
    value: Any = None
    error: Optional[BaseException] = None
    wall_s: float = 0.0
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _invoke(fn: Callable, payload: Any) -> Tuple[Any, Optional[BaseException],
                                                 float, int]:
    """Run one task, capturing exceptions as values (uniform across
    backends; also avoids raising through the future machinery)."""
    t0 = time.perf_counter()
    try:
        value, error = fn(payload), None
    except Exception as exc:            # noqa: BLE001 - captured on purpose
        value, error = None, exc
    return value, error, time.perf_counter() - t0, os.getpid()


class Executor:
    """One ``map`` with ordered results; see the module docstring for
    the determinism and failure contracts."""

    name = "abstract"
    #: True when tasks run in the caller's process and may share state
    #: with it (closures, live SuperLU handles). Parallel callers must
    #: ship self-contained payloads when this is False.
    inline = False

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)

    def map(self, fn: Callable, payloads: Sequence[Any]) -> List[TaskOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(Executor):
    """Inline execution — the reference semantics."""

    name = "serial"
    inline = True

    def __init__(self, workers: int = 1):
        super().__init__(1)

    def map(self, fn: Callable, payloads: Sequence[Any]) -> List[TaskOutcome]:
        out = []
        for i, p in enumerate(payloads):
            value, error, wall, pid = _invoke(fn, p)
            out.append(TaskOutcome(index=i, value=value, error=error,
                                   wall_s=wall, worker=pid))
        return out


class ThreadBackend(Executor):
    """Thread-pool execution: no pickling, shared address space."""

    name = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec")
        return self._pool

    def map(self, fn: Callable, payloads: Sequence[Any]) -> List[TaskOutcome]:
        pool = self._ensure()
        futures = [pool.submit(_invoke, fn, p) for p in payloads]
        try:
            out = []
            for i, f in enumerate(futures):
                value, error, wall, pid = f.result()
                out.append(TaskOutcome(index=i, value=value, error=error,
                                       wall_s=wall, worker=pid))
            return out
        except BaseException:
            for f in futures:
                f.cancel()
            raise

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def _default_start_method() -> str:
    """``fork`` where available (cheap, inherits the parent's imported
    modules), the platform default (``spawn``) elsewhere."""
    override = os.environ.get(ENV_MP_START)
    if override:
        return override
    import multiprocessing as mp
    return "fork" if "fork" in mp.get_all_start_methods() else \
        mp.get_start_method(allow_none=False)


class ProcessBackend(Executor):
    """Process-pool execution with pickled payload shipping.

    The pool is created lazily on first ``map`` and rebuilt after a
    worker crash. Task functions must be importable module-level
    callables; payloads and results must pickle.
    """

    name = "process"

    def __init__(self, workers: int = 2, *, start_method: str | None = None):
        super().__init__(workers)
        self._start_method = start_method or _default_start_method()
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing as mp
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=mp.get_context(self._start_method),
                initializer=_mark_worker)
        return self._pool

    def map(self, fn: Callable, payloads: Sequence[Any]) -> List[TaskOutcome]:
        pool = self._ensure()
        futures: List[Future] = [pool.submit(_invoke, fn, p)
                                 for p in payloads]
        out: List[TaskOutcome] = []
        broken = False
        try:
            for i, f in enumerate(futures):
                try:
                    value, error, wall, pid = f.result()
                    out.append(TaskOutcome(index=i, value=value, error=error,
                                           wall_s=wall, worker=pid))
                except BrokenProcessPool as exc:
                    broken = True
                    out.append(TaskOutcome(index=i, error=WorkerCrashError(
                        f"worker process died while running task {i}: {exc}",
                        backend=self.name)))
                except Exception as exc:  # e.g. result unpickling failure
                    out.append(TaskOutcome(index=i, error=exc))
        except BaseException:
            # KeyboardInterrupt etc.: cancel what has not started,
            # terminate the workers, leave no orphans behind
            for f in futures:
                f.cancel()
            self._terminate()
            raise
        if broken:
            self._terminate()  # a fresh pool is built on the next map
        return out

    def _terminate(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5)

    def close(self) -> None:
        self._terminate()


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

#: Shared instances keyed by (name, workers): repeated solver
#: constructions reuse one warm pool instead of forking per solve.
_shared: Dict[Tuple[str, int], Executor] = {}


def backend_names() -> tuple:
    """Names of the registered execution backends, sorted."""
    return tuple(sorted(_BACKENDS))


def _default_workers() -> int:
    env = os.environ.get(ENV_WORKERS)
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


@atexit.register
def _close_shared() -> None:  # pragma: no cover - interpreter teardown
    for b in list(_shared.values()):
        try:
            b.close()
        except Exception:
            pass
    _shared.clear()


def get_backend(name: str, *, workers: int | None = None,
                fresh: bool = False) -> Executor:
    """Backend by spec string (``"process"`` / ``"process:4"``).

    Shared instances are cached per (name, workers) and closed at
    interpreter exit; pass ``fresh=True`` for a private instance the
    caller owns (and must ``close()``).
    """
    base, _, count = name.partition(":")
    if base not in _BACKENDS:
        raise ValueError(f"unknown backend {base!r}; "
                         f"expected one of {backend_names()}")
    if count:
        workers = int(count)
    if workers is None:
        workers = 1 if base == "serial" else _default_workers()
    if fresh:
        return _BACKENDS[base](workers)
    key = (base, workers)
    if key not in _shared:
        _shared[key] = _BACKENDS[base](workers)
    return _shared[key]


def resolve_backend(spec: "Executor | str | None") -> Executor:
    """The solver-facing resolution ladder: explicit instance > spec
    string > ``REPRO_BACKEND`` environment variable > serial."""
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_BACKEND, "") or "serial"
    return get_backend(spec)
