"""Simulated distributed machine for PDSLin's inter-process accounting.

mpi4py is unavailable in this environment (see DESIGN.md substitutions),
and the paper's partitioning claims concern *inter-process load
balance*: every per-subdomain stage cost is a deterministic function of
the partition, so the parallel run time of a stage is simply the
maximum of the per-subdomain costs. :class:`SimulatedMachine` executes
subdomain work serially, records per-process wall time and flops, and
reports stage makespans and balance ratios — the quantities plotted in
Fig. 1/3 and reported in Table II.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

import numpy as np

from repro.utils import OpCounter, StageTimer, positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.resilience.faults import FaultPlan

__all__ = ["ProcessLedger", "SimulatedMachine", "RECOVER_STAGE"]

#: Stage name all recovery work (retries, failover re-execution,
#: deterministic recovery charges) is accounted under.
RECOVER_STAGE = "Recover"


@dataclass
class ProcessLedger:
    """Per simulated process: stage wall times and flop counts."""

    timer: StageTimer = field(default_factory=StageTimer)
    ops: OpCounter = field(default_factory=OpCounter)


class SimulatedMachine:
    """``k`` subdomain processes plus one logical root process.

    Per-stage parallel time = max over processes that participated;
    serial (root) stages add directly.

    An optional :class:`repro.resilience.FaultPlan` arms fault
    injection: entering a stage the plan targets raises an
    :class:`~repro.resilience.InjectedFault` (charged the entry's wall
    time), and straggler specs inflate the stage's simulated cost on
    successful exit. Recovery actions charge simulated time to the
    :data:`RECOVER_STAGE` stage via :meth:`charge_recovery`.
    """

    def __init__(self, k: int, *, fault_plan: Optional["FaultPlan"] = None):
        self.k = positive_int(k, "k")
        self.processes: List[ProcessLedger] = [ProcessLedger() for _ in range(self.k)]
        self.root = ProcessLedger()
        self.fault_plan = fault_plan

    @contextmanager
    def on_process(self, ell: int, stage: str) -> Iterator[ProcessLedger]:
        """Attribute the enclosed work to process ``ell`` under ``stage``."""
        if not (0 <= ell < self.k):
            raise IndexError(f"process {ell} out of range [0, {self.k})")
        ledger = self.processes[ell]
        with ledger.timer.stage(stage):
            if self.fault_plan is not None:
                self.fault_plan.before(stage, ell)
            yield ledger
        if self.fault_plan is not None:
            delay = self.fault_plan.after(stage, ell)
            if delay > 0.0:
                ledger.timer.add(stage, delay)

    @contextmanager
    def on_root(self, stage: str) -> Iterator[ProcessLedger]:
        with self.root.timer.stage(stage):
            if self.fault_plan is not None:
                self.fault_plan.before(stage, None)
            yield self.root
        if self.fault_plan is not None:
            delay = self.fault_plan.after(stage, None)
            if delay > 0.0:
                self.root.timer.add(stage, delay)

    def charge_recovery(self, ell: int | None = None, *,
                        seconds: float, flops: int = 0) -> None:
        """Charge deterministic recovery cost to process ``ell`` (or the
        root when ``None``) under the :data:`RECOVER_STAGE` stage."""
        ledger = self.root if ell is None else self.processes[ell]
        ledger.timer.add(RECOVER_STAGE, seconds)
        if flops:
            ledger.ops.add(RECOVER_STAGE, flops)

    # -- queries ---------------------------------------------------------

    def process_stage_times(self, stage: str) -> np.ndarray:
        return np.asarray([p.timer.get(stage) for p in self.processes])

    def process_stage_flops(self, stage: str) -> np.ndarray:
        return np.asarray([p.ops.get(stage) for p in self.processes],
                          dtype=np.int64)

    def parallel_stage_time(self, stage: str) -> float:
        """Simulated wall time of a parallel stage: max over processes."""
        t = self.process_stage_times(stage)
        return float(t.max()) if t.size else 0.0

    def serial_stage_time(self, stage: str) -> float:
        return self.root.timer.get(stage)

    def stage_names(self) -> list[str]:
        names: set[str] = set(self.root.timer.totals)
        for p in self.processes:
            names.update(p.timer.totals)
        return sorted(names)

    def breakdown(self) -> Dict[str, float]:
        """Simulated time per stage (parallel stages as makespans)."""
        out: Dict[str, float] = {}
        for s in self.stage_names():
            out[s] = self.parallel_stage_time(s) + self.serial_stage_time(s)
        return out

    def makespan(self) -> float:
        """Total simulated time: stages execute in sequence."""
        return float(sum(self.breakdown().values()))

    def balance_ratio(self, stage: str, *, use_flops: bool = False) -> float:
        """Wmax/Wmin over processes that *participated* in a stage (the
        paper's balance metric). Processes with zero recorded work never
        entered the stage and are excluded — a partially-attended stage
        reports the imbalance among its actual workers, not inf. A
        stage nobody entered has ratio 1."""
        w = (self.process_stage_flops(stage).astype(np.float64)
             if use_flops else self.process_stage_times(stage))
        w = w[w > 0]
        if w.size == 0:
            return 1.0
        return float(w.max() / w.min())

    def report(self) -> str:
        rows = [f"{s:<16} {t:.4f}s" for s, t in sorted(self.breakdown().items())]
        rows.append(f"{'TOTAL':<16} {self.makespan():.4f}s")
        return "\n".join(rows)
