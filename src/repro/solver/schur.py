"""Approximate global Schur complement assembly.

Implements the paper's preconditioner construction:

    T~_l = W~_l G~_l            (thresholded local update matrices)
    S^   = C - sum_l R_F T~_l R_E^T
    S~   = drop_small(S^)

and the exact (implicit) Schur operator used by the iterative solve,

    S v = C v - sum_l F_l D_l^{-1} (E_l v),

which never forms S.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.lu.numeric import LUFactors
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.solver.interfaces import SubdomainInterfaces

__all__ = ["assemble_approximate_schur", "drop_small_entries",
           "implicit_schur_matvec"]


def drop_small_entries(A: sp.spmatrix, rel_tol: float) -> sp.csr_matrix:
    """Drop entries below ``rel_tol * max|A|`` (0 keeps everything).

    Diagonal entries are always kept so the Schur factorization stays
    structurally nonsingular.

    The input is canonicalized (duplicates summed, indices sorted)
    *before* thresholding, so the threshold and the keep mask see the
    summed values — duplicate COO fragments of one entry are dropped or
    kept as a unit, never piecewise.
    """
    A = A.tocoo(copy=True)
    A.sum_duplicates()
    if rel_tol <= 0.0 or A.nnz == 0:
        out = A.tocsr()
        out.sort_indices()
        return out
    thresh = rel_tol * float(np.abs(A.data).max())
    keep = (np.abs(A.data) >= thresh) | (A.row == A.col)
    out = sp.csr_matrix((A.data[keep], (A.row[keep], A.col[keep])),
                        shape=A.shape)
    out.sum_duplicates()
    out.sort_indices()
    return out


def assemble_approximate_schur(
        C: sp.spmatrix,
        updates: Sequence[tuple[SubdomainInterfaces, sp.spmatrix]],
        *, drop_tol: float = 0.0,
                               tracer: Tracer = NULL_TRACER) -> sp.csr_matrix:
    """Form ``S~ = drop(C - sum_l R_F T~_l R_E^T)``.

    ``updates`` pairs each subdomain's interface maps with its local
    update matrix ``T~_l`` of shape (nf_l, ne_l); the maps scatter it
    into separator coordinates. ``tracer`` records a ``schur_assemble``
    span with ``schur_nnz`` / ``schur_dropped_nnz`` counters.
    """
    with tracer.span("schur_assemble", n_updates=len(updates)):
        C = C.tocsr()
        ns = C.shape[0]
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for sub, T in updates:
            T = T.tocoo()
            if T.shape != (sub.f_rows.size, sub.e_cols.size):
                raise ValueError(
                    f"subdomain {sub.ell}: T has shape {T.shape}, expected "
                    f"({sub.f_rows.size}, {sub.e_cols.size})")
            rows.append(sub.f_rows[T.row])
            cols.append(sub.e_cols[T.col])
            vals.append(-T.data)
        if rows:
            scatter = sp.csr_matrix(
                (np.concatenate(vals),
                 (np.concatenate(rows), np.concatenate(cols))), shape=(ns, ns))
            S_hat = (C + scatter).tocsr()
        else:
            S_hat = C.copy()
        S_hat.sum_duplicates()
        S_tilde = drop_small_entries(S_hat, drop_tol)
        tracer.count("schur_nnz", int(S_tilde.nnz))
        tracer.count("schur_dropped_nnz", int(S_hat.nnz - S_tilde.nnz))
    return S_tilde


def implicit_schur_matvec(
        C: sp.spmatrix,
        subs: Sequence[SubdomainInterfaces],
        factors: Sequence[LUFactors],
        perms: Sequence[np.ndarray]) -> Callable[[np.ndarray], np.ndarray]:
    """Matvec closure for the exact Schur operator.

    ``factors[l]`` factorizes ``D_l[perm][:, perm]`` with
    ``perm = perms[l]``; the closure routes each subdomain solve through
    that permutation.
    """
    C = C.tocsr()
    if len(subs) != len(factors) or len(subs) != len(perms):
        raise ValueError("subs, factors and perms must align")
    # pre-permute interface blocks once
    E_perm = [sub.E_hat[perm].tocsr() for sub, perm in zip(subs, perms)]
    F_perm = [sub.F_hat[:, perm].tocsr() for sub, perm in zip(subs, perms)]

    def matvec(v: np.ndarray) -> np.ndarray:
        out = C @ v
        for sub, f, Ep, Fp in zip(subs, factors, E_perm, F_perm):
            ve = v[sub.e_cols]
            if ve.size == 0:
                continue
            rhs = Ep @ ve
            x = f.solve(rhs)
            out[sub.f_rows] -= Fp @ x
        return out

    return matvec
