"""PDSLin-style hybrid linear solver (Schur complement method).

Reproduces the pipeline of Yamazaki/Li/Rouet/Uçar (Section I):

1. **Partition** ``A`` into DBBD form (RHB or the NGD baseline).
2. **LU(D)** — order each subdomain (minimum degree + e-tree
   postorder) and factor it (SuperLU bridge, diagonal-pivoting mode).
3. **Comp(S)** — blocked sparse triangular solves for
   ``G_l = L^{-1} P E^_l`` and ``W_l = F^_l P~ U^{-1}`` with one of the
   Section IV RHS orderings and threshold dropping; multiply
   ``T~_l = W~_l G~_l``; gather the approximate Schur complement
   ``S~ = drop(C - sum R_F T~ R_E^T)``.
4. **LU(S)** — factor ``S~`` (the preconditioner).
5. **Solve** — restarted GMRES on the *exact* implicit Schur operator,
   right-preconditioned with ``S~``'s factors, then back-substitute the
   interior unknowns.

All per-subdomain work runs on the :class:`SimulatedMachine`, which
yields the per-stage makespans and balance ratios the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.core import build_dbbd, rhb_partition
from repro.core.dbbd import DBBDPartition
from repro.core.rhs_reorder import (
    hypergraph_column_order,
    natural_column_order,
    postorder_column_order,
)
from repro.core.weights import WeightScheme
from repro.graphs import nested_dissection_partition
from repro.hypergraph.metrics import CutMetric
from repro.lu import (
    LUFactors,
    PaddingStats,
    SupernodalLower,
    blocked_triangular_solve,
    factorize,
    lu_flop_count,
    partition_columns,
    solution_pattern,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.ordering import elimination_tree, minimum_degree, postorder
from repro.parallel import SimulatedMachine
from repro.solver.gmres import GMRESResult, gmres
from repro.solver.interfaces import SubdomainInterfaces, extract_interfaces
from repro.solver.schur import (
    assemble_approximate_schur,
    implicit_schur_matvec,
)
from repro.sparse import symmetrized
from repro.utils import SeedLike, check_csr, check_square, positive_int

__all__ = ["PDSLinConfig", "SubdomainComputation", "PDSLinResult", "PDSLin"]

RHS_ORDERINGS = ("natural", "postorder", "hypergraph")


@dataclass
class PDSLinConfig:
    """Knobs of the hybrid solver (defaults follow the paper's setup)."""

    k: int = 8
    partitioner: str = "rhb"            # "rhb" | "ngd"
    metric: CutMetric = "soed"
    scheme: WeightScheme = "w1"
    epsilon: float = 0.1
    drop_interface: float = 1e-8        # W~/G~ threshold (relative per column)
    drop_schur: float = 1e-10           # S~ threshold (relative, global)
    block_size: int = 60                # paper's default B
    rhs_ordering: str = "postorder"
    quasi_dense_tau: Optional[float] = 0.4
    krylov: str = "gmres"               # "gmres" | "fgmres" | "bicgstab"
    schur_factorization: str = "lu"     # "lu" | "ilu" (spilu on S~)
    gmres_tol: float = 1e-10
    gmres_restart: int = 100
    gmres_maxiter: int = 1000
    seed: SeedLike = 0
    diag_pivot_thresh: float = 0.0
    partition_trials: int = 2
    trim_separator: bool = False        # post-hoc separator trimming pass
    subdomain_ordering: str = "md"      # "md" | "nd" | "rcm"
    supernode_relax: float = 0.0        # amalgamation threshold (0 = strict)

    def __post_init__(self) -> None:
        self.k = positive_int(self.k, "k")
        if self.partitioner not in ("rhb", "ngd"):
            raise ValueError(f"partitioner must be 'rhb' or 'ngd', got "
                             f"{self.partitioner!r}")
        if self.rhs_ordering not in RHS_ORDERINGS:
            raise ValueError(f"rhs_ordering must be one of {RHS_ORDERINGS}")
        if self.krylov not in ("gmres", "fgmres", "bicgstab"):
            raise ValueError("krylov must be 'gmres', 'fgmres' or "
                             f"'bicgstab', got {self.krylov!r}")
        if self.schur_factorization not in ("lu", "ilu"):
            raise ValueError("schur_factorization must be 'lu' or 'ilu', "
                             f"got {self.schur_factorization!r}")
        if self.subdomain_ordering not in ("md", "nd", "rcm"):
            raise ValueError("subdomain_ordering must be 'md', 'nd' or "
                             f"'rcm', got {self.subdomain_ordering!r}")
        if not (0.0 <= self.supernode_relax < 1.0):
            raise ValueError("supernode_relax must be in [0, 1)")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")


@dataclass
class SubdomainComputation:
    """Everything computed for one subdomain during setup."""

    interfaces: SubdomainInterfaces
    perm: np.ndarray                 # MD + postorder permutation of D
    factors: LUFactors
    G_tilde: sp.csc_matrix
    WT_tilde: sp.csc_matrix
    T_tilde: sp.csr_matrix
    padding_G: PaddingStats
    padding_W: PaddingStats
    lu_flops: int


@dataclass
class PDSLinResult:
    """Solution plus the full accounting of the run."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    schur_size: int
    machine: SimulatedMachine
    gmres: GMRESResult

    def breakdown(self) -> dict[str, float]:
        return self.machine.breakdown()


class PDSLin:
    """Hybrid Schur-complement solver over a simulated parallel machine.

    Typical use::

        solver = PDSLin(A, PDSLinConfig(k=8, partitioner="rhb"))
        solver.setup()
        result = solver.solve(b)

    Pass a :class:`repro.obs.Tracer` to record real wall-clock spans and
    counters for every pipeline stage (partition, per-subdomain
    factorization, interface solves, Schur assembly/factorization,
    Krylov solve); without one, instrumentation is a no-op.
    """

    def __init__(self, A: sp.spmatrix, config: PDSLinConfig | None = None, *,
                 M: sp.spmatrix | None = None,
                 tracer: Tracer | None = None):
        self.A = check_csr(A)
        check_square(self.A, "A")
        self.config = config or PDSLinConfig()
        self.M = M  # optional structural factor for RHB
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.machine = SimulatedMachine(self.config.k)
        self.partition: DBBDPartition | None = None
        self.subdomains: list[SubdomainComputation] = []
        self.S_tilde: sp.csr_matrix | None = None
        self._schur_perm: np.ndarray | None = None
        self._schur_factors: LUFactors | None = None
        self._is_setup = False

    # -- setup ------------------------------------------------------------

    def setup(self) -> "PDSLin":
        cfg = self.config
        with self.machine.on_root("Partition"), \
                self.tracer.span("partition", partitioner=cfg.partitioner,
                                 k=cfg.k):
            if cfg.partitioner == "rhb":
                r = rhb_partition(self.A, cfg.k, M=self.M, metric=cfg.metric,
                                  scheme=cfg.scheme, epsilon=cfg.epsilon,
                                  seed=cfg.seed, n_trials=cfg.partition_trials,
                                  tracer=self.tracer)
                part = r.col_part
            else:
                r = nested_dissection_partition(self.A, cfg.k,
                                                epsilon=cfg.epsilon,
                                                seed=cfg.seed,
                                                n_trials=cfg.partition_trials)
                part = r.part
            if cfg.trim_separator:
                from repro.core.refine import trim_separator
                part = trim_separator(self.A, part, cfg.k)
            self.partition = build_dbbd(self.A, part, cfg.k)
            self.tracer.count("separator_size",
                              int(self.partition.separator_vertices.size))
        self._numeric_setup()
        return self

    def _numeric_setup(self) -> None:
        """Everything after partitioning: subdomain factorizations,
        interface solves, Schur assembly and factorization."""
        self.subdomains = []
        for ell in range(self.config.k):
            self._setup_subdomain(ell)
        self._assemble_and_factor_schur()
        self._is_setup = True

    def update_matrix(self, A_new: sp.spmatrix) -> "PDSLin":
        """Refactorize for a matrix with the *same nonzero pattern*.

        Time-stepping and Newton loops refactor repeatedly on a fixed
        structure; the partition (the expensive combinatorial phase) is
        reused and only the numeric phases rerun. Raises if the pattern
        changed — a new pattern needs a fresh :class:`PDSLin`.
        """
        if self.partition is None:
            raise ValueError("call setup() before update_matrix()")
        A_new = check_csr(A_new)
        check_square(A_new, "A_new")
        old = self.A
        if A_new.shape != old.shape or A_new.nnz != old.nnz or \
                not (np.array_equal(A_new.indptr, old.indptr)
                     and np.array_equal(A_new.indices, old.indices)):
            raise ValueError("update_matrix requires the same sparsity "
                             "pattern; build a new solver instead")
        self.A = A_new
        self.partition = build_dbbd(A_new, self.partition.part,
                                    self.config.k, validate=False)
        self._numeric_setup()
        return self

    def _order_subdomain(self, D: sp.csr_matrix) -> np.ndarray:
        """Fill-reducing ordering followed by e-tree postorder (the
        paper's setting is minimum degree; 'nd'/'rcm' are ablations)."""
        cfg = self.config
        if cfg.subdomain_ordering == "nd":
            from repro.ordering import nested_dissection_ordering
            base = nested_dissection_ordering(D, seed=cfg.seed)
        elif cfg.subdomain_ordering == "rcm":
            from repro.ordering import reverse_cuthill_mckee
            base = reverse_cuthill_mckee(D)
        else:
            base = minimum_degree(D)
        Dm = D[base][:, base].tocsr()
        parent = elimination_tree(symmetrized(Dm))
        po = postorder(parent)
        return base[po]

    def _column_order(self, E_rows_factored: sp.csr_matrix,
                      G_pattern: sp.csr_matrix) -> np.ndarray:
        cfg = self.config
        m = E_rows_factored.shape[1]
        if cfg.rhs_ordering == "natural" or m <= cfg.block_size:
            return natural_column_order(max(m, 1))[:m]
        if cfg.rhs_ordering == "postorder":
            return postorder_column_order(E_rows_factored)
        res = hypergraph_column_order(G_pattern, cfg.block_size,
                                      tau=cfg.quasi_dense_tau, seed=cfg.seed,
                                      tracer=self.tracer)
        return res.order

    def _repack(self, L_like: sp.csc_matrix, *,
                unit_diagonal: bool) -> SupernodalLower:
        """Supernodal repack, optionally amalgamated."""
        relax = self.config.supernode_relax
        snodes = None
        if relax > 0.0:
            from repro.lu import relaxed_supernodes
            snodes = relaxed_supernodes(L_like, relax=relax)
        return SupernodalLower.from_csc(L_like, unit_diagonal=unit_diagonal,
                                        snodes=snodes)

    def _solve_interface(self, snl: SupernodalLower, B_sparse: sp.csr_matrix,
                         L_like: sp.csc_matrix) -> tuple[sp.csc_matrix, PaddingStats]:
        """Blocked triangular solve of one interface block (already in
        factored row positions). The symbolic pattern uses the e-tree
        fill-path model (paper Section IV-A) — a safe superset of the
        exact reach, far cheaper on large interfaces."""
        cfg = self.config
        Gpat = solution_pattern(L_like, B_sparse, method="etree")
        order = self._column_order(B_sparse, Gpat)
        parts = partition_columns(order, cfg.block_size)
        res = blocked_triangular_solve(snl, B_sparse, Gpat, parts,
                                       drop_tol=cfg.drop_interface,
                                       tracer=self.tracer)
        return res.X, res.padding

    def _setup_subdomain(self, ell: int) -> None:
        cfg = self.config
        assert self.partition is not None
        with self.machine.on_process(ell, "LU(D)") as ledger, \
                self.tracer.span("factor_subdomain", l=ell):
            sub = extract_interfaces(self.partition, ell)
            perm = self._order_subdomain(sub.D)
            Dp = sub.D[perm][:, perm].tocsc()
            factors = factorize(Dp, diag_pivot_thresh=cfg.diag_pivot_thresh,
                                keep_handle=True, tracer=self.tracer)
            flops = lu_flop_count(factors)
            ledger.ops.add("LU(D)", flops)
            self.tracer.count("subdomain_dim", int(sub.D.shape[0]))
            self.tracer.count("subdomain_nnz", int(sub.D.nnz))
        with self.machine.on_process(ell, "Comp(S)") as ledger, \
                self.tracer.span("interface_solve", l=ell):
            # G = L^{-1} P E^
            Epp = factors.permute_rows(sub.E_hat[perm].tocsr())
            snl_L = self._repack(factors.L, unit_diagonal=True)
            G_tilde, pad_G = self._solve_interface(snl_L, Epp, factors.L)
            # W^T = U^{-T} (F^ P~)^T ; U^T is lower triangular, non-unit
            Fc = sub.F_hat[:, perm].tocsr()[:, factors.perm_c].tocsr()
            UT = factors.U.T.tocsc()
            snl_U = self._repack(UT, unit_diagonal=False)
            WT_tilde, pad_W = self._solve_interface(snl_U, Fc.T.tocsr(), UT)
            T_tilde = (WT_tilde.T @ G_tilde).tocsr()
            ledger.ops.add("Comp(S)", pad_G.total_block_entries * 2
                           + pad_W.total_block_entries * 2)
        self.subdomains.append(SubdomainComputation(
            interfaces=sub, perm=perm, factors=factors,
            G_tilde=G_tilde, WT_tilde=WT_tilde, T_tilde=T_tilde,
            padding_G=pad_G, padding_W=pad_W, lu_flops=flops))

    def _assemble_and_factor_schur(self) -> None:
        cfg = self.config
        assert self.partition is not None
        C = self.partition.C()
        ns = C.shape[0]
        if ns == 0:
            self.S_tilde = C
            return
        with self.machine.on_root("Comp(S)"):
            updates = [(s.interfaces, s.T_tilde) for s in self.subdomains]
            self.S_tilde = assemble_approximate_schur(
                C, updates, drop_tol=cfg.drop_schur, tracer=self.tracer)
        with self.machine.on_root("LU(S)") as ledger, \
                self.tracer.span("factor_schur",
                                 method=cfg.schur_factorization):
            sp_perm = minimum_degree(self.S_tilde)
            Sp = self.S_tilde[sp_perm][:, sp_perm].tocsc()
            if cfg.schur_factorization == "ilu":
                # incomplete factorization of S~ — an even cheaper (and
                # weaker) preconditioner, one of PDSLin's design options
                import scipy.sparse.linalg as spla
                ilu = spla.spilu(Sp, drop_tol=max(cfg.drop_schur, 1e-8),
                                 fill_factor=10.0)
                self._schur_factors = LUFactors(
                    L=ilu.L.tocsc(), U=ilu.U.tocsc(),
                    perm_r=np.asarray(ilu.perm_r, dtype=np.int64),
                    perm_c=np.asarray(ilu.perm_c, dtype=np.int64),
                    handle=ilu)
                self.tracer.count("lu_fill_nnz",
                                  self._schur_factors.fill_nnz)
                self.tracer.count("lu_flops",
                                  lu_flop_count(self._schur_factors))
            else:
                # the Schur preconditioner needs numerical robustness,
                # not a structure-faithful factor: allow real pivoting
                self._schur_factors = factorize(Sp, diag_pivot_thresh=1.0,
                                                keep_handle=True,
                                                tracer=self.tracer)
            self._schur_perm = sp_perm
            ledger.ops.add("LU(S)", lu_flop_count(self._schur_factors))

    # -- solve ------------------------------------------------------------

    def _precondition(self, v: np.ndarray) -> np.ndarray:
        """Apply ``S~^{-1}`` through the stored factors."""
        assert self._schur_factors is not None and self._schur_perm is not None
        out = np.empty_like(v)
        out[self._schur_perm] = self._schur_factors.solve(v[self._schur_perm])
        return out

    def solve(self, b: np.ndarray) -> PDSLinResult:
        """Solve ``A x = b`` (setup() is run on demand)."""
        if not self._is_setup:
            self.setup()
        with self.tracer.span("solve"):
            return self._solve(b)

    def _solve(self, b: np.ndarray) -> PDSLinResult:
        cfg = self.config
        assert self.partition is not None
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.A.shape[0],):
            raise ValueError(f"b must have shape ({self.A.shape[0]},)")
        p = self.partition
        sep = p.separator_vertices
        x = np.zeros_like(b)

        if sep.size == 0:
            # no separator: decoupled subdomain solves
            with self.machine.on_root("Solve"):
                for s in self.subdomains:
                    v = s.interfaces.vertices
                    fl = b[v]
                    x[v[s.perm]] = s.factors.solve(fl[s.perm])
            g_res = GMRESResult(x=np.empty(0), converged=True, iterations=0)
            res_norm = float(np.linalg.norm(self.A @ x - b)
                             / max(np.linalg.norm(b), 1e-300))
            return PDSLinResult(x=x, converged=True, iterations=0,
                                residual_norm=res_norm, schur_size=0,
                                machine=self.machine, gmres=g_res)

        g = b[sep].copy()
        # g^ = g - sum F_l D_l^{-1} f_l
        d_solutions: list[np.ndarray] = []
        for s in self.subdomains:
            with self.machine.on_process(s.interfaces.ell, "Solve"):
                v = s.interfaces.vertices
                fl = b[v]
                ul = s.factors.solve(fl[s.perm])  # in permuted coords
                d_solutions.append(ul)
                Fp = s.interfaces.F_hat[:, s.perm].tocsr()
                g[s.interfaces.f_rows] -= Fp @ ul

        with self.machine.on_root("Solve"):
            subs = [s.interfaces for s in self.subdomains]
            facs = [s.factors for s in self.subdomains]
            perms = [s.perm for s in self.subdomains]
            matvec = implicit_schur_matvec(p.C(), subs, facs, perms)
            if cfg.krylov == "bicgstab":
                from repro.solver.bicgstab import bicgstab
                g_res = bicgstab(matvec, g, preconditioner=self._precondition,
                                 tol=cfg.gmres_tol, maxiter=cfg.gmres_maxiter,
                                 tracer=self.tracer)
            else:
                g_res = gmres(matvec, g, preconditioner=self._precondition,
                              tol=cfg.gmres_tol, restart=cfg.gmres_restart,
                              maxiter=cfg.gmres_maxiter,
                              flexible=(cfg.krylov == "fgmres"),
                              tracer=self.tracer)
            y = g_res.x
            x[sep] = y

        # back substitution: u_l = D^{-1}(f_l - E_l y)
        for s, ul0 in zip(self.subdomains, d_solutions):
            with self.machine.on_process(s.interfaces.ell, "Solve"):
                v = s.interfaces.vertices
                Ep = s.interfaces.E_hat[s.perm].tocsr()
                rhs_corr = Ep @ y[s.interfaces.e_cols]
                ul = ul0 - s.factors.solve(rhs_corr)
                x[v[s.perm]] = ul

        res_norm = float(np.linalg.norm(self.A @ x - b)
                         / max(np.linalg.norm(b), 1e-300))
        return PDSLinResult(x=x, converged=g_res.converged,
                            iterations=g_res.iterations,
                            residual_norm=res_norm,
                            schur_size=int(sep.size),
                            machine=self.machine, gmres=g_res)

    def solve_multiple(self, B: np.ndarray) -> list[PDSLinResult]:
        """Solve ``A x_j = B[:, j]`` for every column, reusing the setup
        (the factorizations amortize across right-hand sides)."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.A.shape[0]:
            raise ValueError(f"B must be ({self.A.shape[0]}, nrhs)")
        if not self._is_setup:
            self.setup()
        return [self.solve(B[:, j]) for j in range(B.shape[1])]
