"""PDSLin-style hybrid linear solver (Schur complement method).

Reproduces the pipeline of Yamazaki/Li/Rouet/Uçar (Section I):

1. **Partition** ``A`` into DBBD form (RHB or the NGD baseline).
2. **LU(D)** — order each subdomain (minimum degree + e-tree
   postorder) and factor it (SuperLU bridge, diagonal-pivoting mode).
3. **Comp(S)** — blocked sparse triangular solves for
   ``G_l = L^{-1} P E^_l`` and ``W_l = F^_l P~ U^{-1}`` with one of the
   Section IV RHS orderings and threshold dropping; multiply
   ``T~_l = W~_l G~_l``; gather the approximate Schur complement
   ``S~ = drop(C - sum R_F T~ R_E^T)``.
4. **LU(S)** — factor ``S~`` (the preconditioner).
5. **Solve** — restarted GMRES on the *exact* implicit Schur operator,
   right-preconditioned with ``S~``'s factors, then back-substitute the
   interior unknowns.

All per-subdomain work runs on the :class:`SimulatedMachine`, which
yields the per-stage makespans and balance ratios the paper reports.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from repro.core import build_dbbd, rhb_partition
from repro.core.dbbd import DBBDPartition
from repro.core.weights import WeightScheme
from repro.graphs import nested_dissection_partition
from repro.hypergraph.metrics import CutMetric
from repro.lu import (
    LUFactors,
    PaddingStats,
    SymbolicCache,
    attach_handle,
    lu_flop_count,
    pattern_fingerprint,
)
from repro.numerics.condest import condest_from_factors
from repro.numerics.pipeline import (
    SystemTransform,
    prepare_system,
    retarget_system,
)
from repro.numerics.refine import CertifiedAccuracy, refine, refine_block
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.ordering import minimum_degree
from repro.parallel import RECOVER_STAGE, SimulatedMachine
from repro.parallel.costmodel import record_model_skew
from repro.parallel.exec import Executor, SpeculationPolicy, resolve_backend
from repro.resilience import (
    DEGRADING_ACTIONS,
    CheckpointManager,
    CheckpointPolicy,
    FaultPlan,
    InjectedFault,
    KrylovBreakdownError,
    RecoveryReport,
    RefinementStallError,
    RetryPolicy,
    SchurFactorizationError,
    SdcDetectedError,
    TransportChecksumError,
    WorkerCrashError,
    emit_recovery,
    factorize_resilient,
    load_checkpoint,
)
from repro.resilience import abft
from repro.resilience.checkpoint import (
    config_fingerprint,
    matrix_fingerprint,
    pack_sparse,
    subdomain_shard_name,
    unpack_sparse,
)
from repro.solver.gmres import GMRESResult, gmres, gmres_block
from repro.solver.runtime import RuntimeOptions
from repro.solver.interfaces import SubdomainInterfaces, extract_interfaces
from repro.solver.partasks import (
    BlockSolveTask,
    SubdomainComp,
    SubdomainLU,
    SubdomainSetupResult,
    SubdomainTask,
    factors_token,
    order_subdomain,
    run_block_solve,
    pack_subdomain_state,
    replay_subdomain_verification,
    run_subdomain_comp,
    run_subdomain_lu,
    run_subdomain_setup,
    unpack_subdomain_state,
    validate_chaos_env,
)
from repro.solver.schur import (
    assemble_approximate_schur,
    implicit_schur_matvec,
)
from repro.verify.invariants import NULL_VERIFIER, Verifier
from repro.utils import (
    SeedLike,
    check_csr,
    check_finite,
    check_square,
    positive_int,
)

__all__ = ["PDSLinConfig", "RuntimeOptions", "SubdomainComputation",
           "PDSLinResult", "BlockResult", "PDSLin"]

RHS_ORDERINGS = ("natural", "postorder", "hypergraph")

# sentinel distinguishing "keyword not passed" from an explicit None for
# the deprecated per-knob runtime keywords of PDSLin.__init__
_UNSET = object()


@dataclass
class PDSLinConfig:
    """Knobs of the hybrid solver (defaults follow the paper's setup)."""

    k: int = 8
    partitioner: str = "rhb"            # "rhb" | "ngd"
    metric: CutMetric = "soed"
    scheme: WeightScheme = "w1"
    epsilon: float = 0.1
    drop_interface: float = 1e-8        # W~/G~ threshold (relative per column)
    drop_schur: float = 1e-10           # S~ threshold (relative, global)
    block_size: int = 60                # paper's default B
    rhs_ordering: str = "postorder"
    quasi_dense_tau: Optional[float] = 0.4
    krylov: str = "gmres"               # "gmres" | "fgmres" | "bicgstab"
    schur_factorization: str = "lu"     # "lu" | "ilu" (spilu on S~)
    gmres_tol: float = 1e-10
    gmres_restart: int = 100
    gmres_maxiter: int = 1000
    seed: SeedLike = 0
    diag_pivot_thresh: float = 0.0
    partition_trials: int = 2
    trim_separator: bool = False        # post-hoc separator trimming pass
    subdomain_ordering: str = "md"      # "md" | "nd" | "rcm"
    supernode_relax: float = 0.0        # amalgamation threshold (0 = strict)
    # -- numerical robustness layer (repro.numerics) --
    numerics: bool = True               # master switch; False restores the
    #                                     pre-numerics pipeline exactly
    equilibrate: bool = True            # Ruiz row/col scaling before DBBD
    equilibrate_iters: int = 20
    equilibrate_tol: float = 1e-2
    static_pivot_matching: bool = True  # MC64-style max-product row matching
    matching_threshold: float = 1e-3    # engage matching only when some
    #                                     scaled |a_ii| falls below this
    condest: bool = True                # Hager-Higham cond_1 per D_l and S~
    cond_threshold: float = 1e10        # above this, drop tols auto-tighten
    refine_maxiter: int = 4             # post-solve iterative refinement
    refine_tol: float = 1e-14           # target componentwise backward error
    certify_tol: float = 1e-12          # berr needed for certified=True
    # -- silent-data-corruption defense (repro.resilience.abft) --
    abft: str = "detect"                # "off" | "detect" | "detect+recover"
    # -- multi-RHS solve phase (solve_block; excluded from the
    #    checkpoint identity — see checkpoint.SOLVE_PHASE_FIELDS) --
    krylov_seed: bool = True            # seed each Schur solve with the
    #                                     previous column's solution
    block_gmres: bool = False           # solve the Schur block with one
    #                                     block-GMRES run instead of
    #                                     per-column (seeded) GMRES

    def __post_init__(self) -> None:
        self.k = positive_int(self.k, "k")
        if self.partitioner not in ("rhb", "ngd"):
            raise ValueError(f"partitioner must be 'rhb' or 'ngd', got "
                             f"{self.partitioner!r}")
        if self.rhs_ordering not in RHS_ORDERINGS:
            raise ValueError(f"rhs_ordering must be one of {RHS_ORDERINGS}")
        if self.krylov not in ("gmres", "fgmres", "bicgstab"):
            raise ValueError("krylov must be 'gmres', 'fgmres' or "
                             f"'bicgstab', got {self.krylov!r}")
        if self.schur_factorization not in ("lu", "ilu"):
            raise ValueError("schur_factorization must be 'lu' or 'ilu', "
                             f"got {self.schur_factorization!r}")
        if self.subdomain_ordering not in ("md", "nd", "rcm"):
            raise ValueError("subdomain_ordering must be 'md', 'nd' or "
                             f"'rcm', got {self.subdomain_ordering!r}")
        if not (0.0 <= self.supernode_relax < 1.0):
            raise ValueError("supernode_relax must be in [0, 1)")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not self.numerics:
            # one switch turns the whole robustness layer off
            self.equilibrate = False
            self.static_pivot_matching = False
            self.condest = False
            self.refine_maxiter = 0
        self.equilibrate_iters = positive_int(self.equilibrate_iters,
                                              "equilibrate_iters")
        if self.equilibrate_tol <= 0.0:
            raise ValueError("equilibrate_tol must be positive")
        if self.matching_threshold < 0.0:
            raise ValueError("matching_threshold must be >= 0")
        if self.cond_threshold < 1.0:
            raise ValueError("cond_threshold must be >= 1")
        if self.refine_maxiter < 0:
            raise ValueError("refine_maxiter must be >= 0")
        if self.refine_tol <= 0.0 or self.certify_tol <= 0.0:
            raise ValueError("refine_tol and certify_tol must be positive")
        abft.check_abft_mode(self.abft)


@dataclass
class SubdomainComputation:
    """Everything computed for one subdomain during setup.

    ``t_colsum`` is the ABFT column-sum checksum of ``T_tilde`` recorded
    where it was computed; the root re-verifies it before assembling
    ``S~`` (None with ``abft=off``).
    """

    interfaces: SubdomainInterfaces
    perm: np.ndarray                 # MD + postorder permutation of D
    factors: LUFactors
    G_tilde: sp.csc_matrix
    WT_tilde: sp.csc_matrix
    T_tilde: sp.csr_matrix
    padding_G: PaddingStats
    padding_W: PaddingStats
    lu_flops: int
    t_colsum: Optional[np.ndarray] = None
    #: SuperLU handle recipe of ``factors`` (None = static-pivot rung,
    #: no handle anywhere) — what a solve-phase worker needs to
    #: re-attach a bit-identical handle on its side of the pickle.
    handle_thresh: Optional[float] = None


@dataclass
class PDSLinResult:
    """Solution plus the full accounting of the run.

    ``recovery`` carries the degraded-mode report: every retry,
    escalation and fallback the solve needed. A solve that survived
    only through degradation (perturbed pivots, a lost process, a
    rebuilt preconditioner) has ``recovery.degraded`` — and therefore
    ``result.degraded`` — set instead of silently claiming full health.

    ``accuracy`` is the :class:`repro.numerics.CertifiedAccuracy` block
    (componentwise/normwise backward error, condition estimate,
    forward-error bound, refinement steps) when the numerics layer ran;
    ``None`` with ``numerics=False``. ``x`` and ``residual_norm`` are
    always in the *original* (unscaled, unpermuted) system.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    schur_size: int
    machine: SimulatedMachine
    gmres: GMRESResult
    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    accuracy: Optional[CertifiedAccuracy] = None

    @property
    def degraded(self) -> bool:
        """True when the solve succeeded only in degraded mode."""
        return self.recovery.degraded

    @property
    def certified(self) -> bool:
        """True when refinement certified the componentwise backward
        error below ``certify_tol`` (False when numerics is off)."""
        return self.accuracy is not None and self.accuracy.certified

    def breakdown(self) -> dict[str, float]:
        return self.machine.breakdown()


class BlockResult(Sequence):
    """Result of one batched multi-RHS solve.

    Behaves exactly like the ``list[PDSLinResult]`` that
    :meth:`PDSLin.solve_block` historically returned — iteration,
    indexing, ``len()``, equality against a plain list — so existing
    callers keep working unchanged, while exposing the block-level view:

    - ``X`` — the ``(n, nrhs)`` solution block (column ``j`` equals
      ``results[j].x``);
    - ``results`` — the per-column :class:`PDSLinResult` objects;
    - ``accuracy`` — the aggregate certificate: worst-column backward
      errors and refinement depth, ``certified`` only when *every*
      column certified (``None`` when the numerics layer was off);
    - ``converged`` / ``certified`` / ``degraded`` — all-columns
      aggregates;
    - ``residual_norms`` — per-column true relative residuals.
    """

    def __init__(self, X: np.ndarray, results: list[PDSLinResult],
                 accuracy: Optional[CertifiedAccuracy] = None):
        self.X = X
        self.results = list(results)
        self.accuracy = accuracy

    # -- list compatibility ------------------------------------------------

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, BlockResult):
            return self.results == other.results
        if isinstance(other, list):
            return self.results == other
        return NotImplemented

    def __repr__(self) -> str:
        n, nrhs = self.X.shape
        return (f"BlockResult(nrhs={nrhs}, n={n}, "
                f"converged={self.converged}, certified={self.certified})")

    # -- block-level aggregates --------------------------------------------

    @property
    def nrhs(self) -> int:
        return len(self.results)

    @property
    def converged(self) -> bool:
        """True when every column converged."""
        return all(r.converged for r in self.results)

    @property
    def certified(self) -> bool:
        """True when every column's refinement certified its backward
        error (False when numerics is off)."""
        return bool(self.results) and all(r.certified for r in self.results)

    @property
    def degraded(self) -> bool:
        """True when the solve survived only in degraded mode."""
        return any(r.degraded for r in self.results)

    @property
    def residual_norms(self) -> list[float]:
        return [r.residual_norm for r in self.results]

    @staticmethod
    def aggregate_accuracy(
            accs: "list[CertifiedAccuracy] | None",
    ) -> Optional[CertifiedAccuracy]:
        """Fold per-column certificates into one block certificate:
        worst-column (max) backward errors and bounds, deepest
        refinement, certified only if all columns are."""
        if not accs:
            return None
        return CertifiedAccuracy(
            berr=max(a.berr for a in accs),
            nberr=max(a.nberr for a in accs),
            cond_est=max(a.cond_est for a in accs),
            ferr_bound=max(a.ferr_bound for a in accs),
            refine_steps=max(a.refine_steps for a in accs),
            certified=all(a.certified for a in accs),
            certify_tol=accs[0].certify_tol,
            stagnated=any(a.stagnated for a in accs),
            escalations=sum(a.escalations for a in accs),
            berr_history=list(max(accs, key=lambda a: a.berr).berr_history),
        )


@dataclass
class _BlockSolve:
    """Working-system result of one batched hybrid pass: the solution
    block plus the per-column Krylov results (synthesized trivial ones
    on the no-separator direct path)."""

    X: np.ndarray
    gmres: list[GMRESResult]
    schur_size: int


class PDSLin:
    """Hybrid Schur-complement solver over a simulated parallel machine.

    Typical use::

        solver = PDSLin(A, PDSLinConfig(k=8, partitioner="rhb"))
        solver.setup()
        result = solver.solve(b)

    Execution/resilience knobs (everything below that does not change
    the numeric answer) are carried by one
    :class:`~repro.solver.runtime.RuntimeOptions` value::

        rt = RuntimeOptions(tracer=tracer, backend="process:4",
                            task_deadline_s=30.0)
        solver = PDSLin(A, config, runtime=rt)

    The historical per-knob keywords (``tracer=``, ``backend=``, ...)
    still work but emit :class:`DeprecationWarning`; when both are
    given, an explicit keyword overrides the same field of ``runtime``.

    Pass a :class:`repro.obs.Tracer` to record real wall-clock spans and
    counters for every pipeline stage (partition, per-subdomain
    factorization, interface solves, Schur assembly/factorization,
    Krylov solve); without one, instrumentation is a no-op.

    Execution backends: ``backend`` selects where the per-subdomain
    setup work (LU(D), Comp(S)) and the RHB bisection trials actually
    run — ``"serial"`` (default), ``"thread"``, or ``"process"`` /
    ``"process:4"`` (see :mod:`repro.parallel.exec`; ``None`` consults
    ``REPRO_BACKEND``). Every backend reduces in a fixed order and is
    bit-identical to serial; the :class:`SimulatedMachine` accounting is
    fed from worker-measured wall times, and worker tracer spans merge
    into the parent trace on per-process tracks. Single-RHS
    :meth:`solve` stays inline on every backend (its per-subdomain
    triangular solves are millisecond-scale, far below process-shipping
    cost); :meth:`solve_block` amortizes one fan-out per solve stage
    over the whole right-hand-side block, so pooled backends ship each
    subdomain's factors once per stage instead of once per column.

    Resilience: an optional :class:`repro.resilience.FaultPlan` arms
    seeded fault injection on the simulated machine, and the recovery
    ladder — bounded by ``retry_policy`` — retries transient faults
    (charging simulated time to the ``Recover`` stage), fails permanent
    subdomain faults over to the root process, escalates singular
    subdomain LU through full pivoting to static pivot perturbation,
    falls back ILU->LU on Schur factorization breakdown, refreshes the
    Schur preconditioner once on GMRES stagnation, and falls back
    BiCGSTAB->GMRES on breakdown. Everything that happened is on
    ``self.recovery`` (also attached to every result).

    Checkpoint/restart: ``checkpoint=`` (a directory or a
    :class:`repro.resilience.CheckpointManager`) snapshots solver state
    at stage boundaries — the partition, each accepted subdomain, the
    assembled Schur complement — per ``checkpoint_policy`` (default:
    after every subdomain, plus on SIGTERM). ``resume=`` points at such
    a directory: completed work is restored bit-exactly and skipped,
    and the resumed solve is byte-identical to an uninterrupted run.
    Both may name the same directory (kill-and-resume in place).

    Stragglers: ``task_deadline_s`` bounds each parallel setup fan-out;
    work still outstanding at the deadline is cancelled (workers killed,
    never orphaned) and redone on the root, recorded as a degrading
    ``deadline-failover``. ``speculation`` (a
    :class:`repro.parallel.exec.SpeculationPolicy`, or ``True`` for the
    defaults) duplicates straggling tasks instead; first result wins
    with a deterministic tie-break, so bit-parity holds either way.
    """

    def __init__(self, A: sp.spmatrix, config: PDSLinConfig | None = None, *,
                 M: sp.spmatrix | None = None,
                 runtime: RuntimeOptions | None = None,
                 tracer: "Tracer | None" = _UNSET,
                 fault_plan: "FaultPlan | None" = _UNSET,
                 retry_policy: "RetryPolicy | None" = _UNSET,
                 verify: "bool | Verifier" = _UNSET,
                 backend: "Executor | str | None" = _UNSET,
                 checkpoint: "CheckpointManager | str | None" = _UNSET,
                 checkpoint_policy: "CheckpointPolicy | None" = _UNSET,
                 resume: "str | None" = _UNSET,
                 task_deadline_s: "float | None" = _UNSET,
                 speculation: "SpeculationPolicy | bool | None" = _UNSET):
        # -- runtime options: one RuntimeOptions value, with the legacy
        # per-knob keywords still accepted as deprecated shims
        legacy = {
            name: value
            for name, value in (("tracer", tracer),
                                ("fault_plan", fault_plan),
                                ("retry_policy", retry_policy),
                                ("verify", verify),
                                ("backend", backend),
                                ("checkpoint", checkpoint),
                                ("checkpoint_policy", checkpoint_policy),
                                ("resume", resume),
                                ("task_deadline_s", task_deadline_s),
                                ("speculation", speculation))
            if value is not _UNSET
        }
        if legacy:
            names = ", ".join(sorted(legacy))
            warnings.warn(
                f"PDSLin keyword(s) {names} are deprecated; pass "
                f"runtime=RuntimeOptions({names}=...) instead",
                DeprecationWarning, stacklevel=2)
        rt = runtime if runtime is not None else RuntimeOptions()
        if legacy:
            # explicit per-knob keywords win over the same field on a
            # RuntimeOptions passed alongside them
            rt = dataclasses.replace(rt, **legacy)
        self.runtime = rt
        tracer = rt.tracer
        fault_plan = rt.fault_plan
        retry_policy = rt.retry_policy
        verify = rt.verify
        backend = rt.backend
        checkpoint = rt.checkpoint
        checkpoint_policy = rt.checkpoint_policy
        resume = rt.resume
        task_deadline_s = rt.task_deadline_s
        speculation = rt.speculation

        self.A_input = check_csr(A)
        check_square(self.A_input, "A")
        check_finite(self.A_input, "A")
        # the working matrix P R A C (replaced by the numerics pre-pass
        # in setup(); identical to A_input with numerics off)
        self.A = self.A_input
        self.config = config or PDSLinConfig()
        self.M = M  # optional structural factor for RHB
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # verify=True arms the post-stage invariant checks of
        # repro.verify (a custom Verifier may be passed directly);
        # the default NULL_VERIFIER makes every hook a no-op
        if isinstance(verify, Verifier):
            self.verifier = verify
        else:
            self.verifier = Verifier() if verify else NULL_VERIFIER
        self.machine = SimulatedMachine(self.config.k, fault_plan=fault_plan)
        self.backend = resolve_backend(backend)
        # pattern-keyed memo for the symbolic analyses (subdomain
        # ordering, Schur MD permutation): update_matrix() reruns the
        # numeric phases on a fixed pattern, so these are pure replays
        self.analysis_cache = SymbolicCache()
        self.retry_policy = retry_policy or RetryPolicy()
        self.recovery = RecoveryReport(
            preconditioner_mode=self.config.schur_factorization)
        self.partition: DBBDPartition | None = None
        self.subdomains: list[SubdomainComputation] = []
        self.S_tilde: sp.csr_matrix | None = None
        self._s_colsum: np.ndarray | None = None   # ABFT checksum of S~
        self._schur_perm: np.ndarray | None = None
        self._schur_factors: LUFactors | None = None
        self._is_setup = False
        self._prep: SystemTransform | None = None
        # effective drop tolerances: start at the configured values and
        # only tighten (condition-estimate driven)
        self._drop_interface_eff = self.config.drop_interface
        self._drop_schur_eff = self.config.drop_schur
        self._schur_drop_used = self.config.drop_schur
        self.cond_estimates: dict = {"subdomains": {}, "schur": None}
        # -- checkpoint/restart + straggler mitigation
        if task_deadline_s is not None and task_deadline_s <= 0.0:
            raise ValueError("task_deadline_s must be positive")
        self.task_deadline_s = task_deadline_s
        if speculation is True:
            speculation = SpeculationPolicy()
        elif speculation is False:
            speculation = None
        self.speculation: SpeculationPolicy | None = speculation
        if isinstance(checkpoint, CheckpointManager):
            self._ckpt: CheckpointManager | None = checkpoint
            if self._ckpt.tracer is NULL_TRACER:
                self._ckpt.tracer = self.tracer
        elif checkpoint is not None:
            self._ckpt = CheckpointManager(
                checkpoint, policy=checkpoint_policy, tracer=self.tracer)
        else:
            self._ckpt = None
        self._resume_dir = resume
        self._resume = None       # CheckpointState once loaded
        self._restored_subs: dict[int, tuple] = {}
        self._restored_schur: dict | None = None

    # -- resilient execution ----------------------------------------------

    def _record(self, stage: str, action: str, error: object, *,
                detail: str = "", subdomain: int | None = None,
                attempt: int = 1):
        """Record one recovery event on the report + tracer counters."""
        return emit_recovery(self.tracer, self.recovery, stage, action,
                             error, detail=detail, subdomain=subdomain,
                             attempt=attempt)

    def _on_subdomain(self, ell: int, stage: str, body: Callable):
        """Run ``body(ledger)`` on process ``ell``, with the injected-
        fault ladder: transient faults retry in place (recovery time
        charged to the ``Recover`` stage of that process); permanent
        faults — or exhausted retries — fail the work over to the root
        process, marking the solve degraded.

        Only :class:`InjectedFault` is handled here (it is raised at
        stage *entry*, so the body never ran); numerical errors from
        inside the body have their own ladders and propagate.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                with self.machine.on_process(ell, stage) as ledger:
                    return body(ledger)
            except InjectedFault as fault:
                self.machine.charge_recovery(
                    ell, seconds=fault.recovery_cost_s)
                if not fault.permanent and \
                        attempt < self.retry_policy.max_attempts:
                    self._record(stage, "retry", fault, subdomain=ell,
                                 attempt=attempt)
                    continue
                self._record(stage, "failover-root", fault, subdomain=ell,
                             attempt=attempt,
                             detail="re-executing the work on root")
                with self.tracer.span("recover", stage=stage,
                                      action="failover-root", l=ell), \
                        self.machine.on_root(RECOVER_STAGE) as ledger:
                    return body(ledger)

    def _on_root_stage(self, stage: str, body: Callable):
        """Run ``body(ledger)`` on the root process, retrying transient
        injected faults. There is no spare root to fail over to, so a
        permanent root fault (or exhausted retries) propagates."""
        attempt = 0
        while True:
            attempt += 1
            try:
                with self.machine.on_root(stage) as ledger:
                    return body(ledger)
            except InjectedFault as fault:
                self.machine.charge_recovery(
                    None, seconds=fault.recovery_cost_s)
                if fault.permanent or \
                        attempt >= self.retry_policy.max_attempts:
                    raise
                self._record(stage, "retry", fault, attempt=attempt)

    # -- ABFT / silent-data-corruption defense (repro.resilience.abft) ----

    def _abft_on(self) -> bool:
        """True when checksum verification is armed (detect or
        detect+recover)."""
        return abft.abft_detect(self.config.abft)

    def _verify_comp_contributions(self) -> None:
        """Checksum audit of every subdomain's local Schur update
        ``T~`` right before it is consumed by assembly — the detector
        for corruption anywhere between the worker that computed it and
        the root. Recovery recomputes the Comp(S) stage on the root
        from the (separately checksummed) subdomain factors."""
        if not self._abft_on():
            return
        for s in self.subdomains:
            if s.t_colsum is None:
                continue
            ell = s.interfaces.ell
            with self.tracer.span("abft_verify", stage="Comp(S)", l=ell):
                self.tracer.count("sdc_checks")
                audit = abft.verify_matrix_checksum(s.T_tilde, s.t_colsum)
            if audit.ok:
                continue
            err = SdcDetectedError(
                f"T~ checksum violated for subdomain {ell}: {audit.detail}",
                site="comp", rel=audit.rel, stage="Comp(S)", subdomain=ell)
            self.tracer.count("sdc_detected")
            self._record("Comp(S)", "sdc-detected", err, subdomain=ell,
                         detail=audit.detail)
            if not abft.abft_recover(self.config.abft):
                self._record("Comp(S)", "sdc-unrecoverable", err,
                             subdomain=ell,
                             detail="abft=detect: corruption reported but "
                                    "not repaired; S~ may be corrupt")
                continue
            with self.tracer.span("recover", stage="Comp(S)",
                                  action="sdc-recompute", l=ell):
                lu = SubdomainLU(ell=ell, perm=s.perm, factors=s.factors,
                                 flops=s.lu_flops)
                comp = run_subdomain_comp(
                    s.interfaces, self.config, lu,
                    drop_tol=self._drop_interface_eff, tracer=self.tracer)
            s.G_tilde, s.WT_tilde = comp.G_tilde, comp.WT_tilde
            s.T_tilde, s.t_colsum = comp.T_tilde, comp.t_colsum
            self.tracer.count("sdc_recovered")
            self._record("Comp(S)", "sdc-recovered", err, subdomain=ell,
                         detail="Comp(S) recomputed on root from the "
                                "subdomain factors")

    def _seal_schur(self) -> None:
        """Record the column-sum checksum of the assembled ``S~``."""
        if self._abft_on() and self.S_tilde is not None \
                and self.S_tilde.shape[0] > 0:
            self._s_colsum = abft.checksum_matrix(self.S_tilde)
        else:
            self._s_colsum = None

    def _reassemble_schur(self) -> None:
        """Rebuild ``S~`` bit-exactly from the cached per-subdomain
        updates (assembly is deterministic given the same inputs)."""
        updates = [(s.interfaces, s.T_tilde) for s in self.subdomains]
        self.S_tilde = assemble_approximate_schur(
            self.partition.C(), updates, drop_tol=self._schur_drop_used,
            tracer=self.tracer)

    def _audit_schur(self, *, where: str, recover: bool = True) -> None:
        """Verify ``S~`` against its recorded checksum; this is also
        the ``schur`` bit-flip injection seam (injection runs even with
        ``abft=off`` — corruption does not care whether defenses are
        on). Recovery reassembles from the cached updates."""
        if self.S_tilde is None or self.S_tilde.shape[0] == 0:
            return
        abft.maybe_bitflip("schur", (self.S_tilde.data,))
        if self._s_colsum is None:
            return
        with self.tracer.span("abft_verify", stage="LU(S)", where=where):
            self.tracer.count("sdc_checks")
            audit = abft.verify_matrix_checksum(self.S_tilde,
                                                self._s_colsum)
        if audit.ok:
            return
        err = SdcDetectedError(
            f"S~ checksum violated ({where}): {audit.detail}",
            site="schur", rel=audit.rel, stage="LU(S)")
        self.tracer.count("sdc_detected")
        self._record("LU(S)", "sdc-detected", err, detail=audit.detail)
        if not (recover and abft.abft_recover(self.config.abft)):
            self._record("LU(S)", "sdc-unrecoverable", err,
                         detail="abft=detect: corruption reported but not "
                                "repaired; the S~ preconditioner may be "
                                "corrupt")
            return
        with self.tracer.span("recover", stage="LU(S)",
                              action="sdc-reassemble"):
            self._reassemble_schur()
            self._seal_schur()
        self.tracer.count("sdc_recovered")
        self._record("LU(S)", "sdc-recovered", err,
                     detail="S~ reassembled from the cached per-subdomain "
                            "updates")

    def _sweep_factor_audits(self) -> list[tuple[int, str]]:
        """Collect (and reset) the passive solve-audit verdicts that
        accumulated on each subdomain's factor checksums during a solve
        pass. Returns the violated subdomains."""
        bad: list[tuple[int, str]] = []
        for s in self.subdomains:
            cs = s.factors.checksums
            if cs is None or cs.checks == 0:
                continue
            self.tracer.count("sdc_checks", cs.checks)
            if cs.violations:
                bad.append((s.interfaces.ell, cs.last_detail))
            cs.reset_counters()
        return bad

    def _book_transport(self, ells, outcomes) -> None:
        """Book transport-checksum catches from a fan-out: a digest
        mismatch that a clean resubmission repaired is a detected and
        recovered SDC on the wire; one that survived the retry is
        detected here and failed over to the root by the caller."""
        for ell, out in zip(ells, outcomes):
            if out is None or not out.transport_retries:
                continue
            err = TransportChecksumError(
                "result payload failed its transport checksum",
                backend=self.backend.name, stage="Transport",
                subdomain=ell)
            self.tracer.count("sdc_detected")
            self._record("Transport", "sdc-detected", err, subdomain=ell,
                         detail="blake2b digest mismatch on the shipped "
                                "result payload")
            if out.error is None:
                self.tracer.count("sdc_recovered")
                self._record("Transport", "sdc-recovered", err,
                             subdomain=ell,
                             detail="task resubmitted once; clean payload "
                                    "accepted")

    # -- setup ------------------------------------------------------------

    def setup(self) -> "PDSLin":
        cfg = self.config
        self._prepare_numerics()
        self._init_checkpoint()

        def partition_body(ledger):
            with self.tracer.span("partition", partitioner=cfg.partitioner,
                                  k=cfg.k):
                if cfg.partitioner == "rhb":
                    r = rhb_partition(self.A, cfg.k,
                                      M=self._structural_factor(),
                                      metric=cfg.metric,
                                      scheme=cfg.scheme, epsilon=cfg.epsilon,
                                      seed=cfg.seed,
                                      n_trials=cfg.partition_trials,
                                      tracer=self.tracer,
                                      verify=self.verifier,
                                      backend=self.backend)
                    part = r.col_part
                else:
                    r = nested_dissection_partition(
                        self.A, cfg.k, epsilon=cfg.epsilon, seed=cfg.seed,
                        n_trials=cfg.partition_trials, verify=self.verifier)
                    part = r.part
                if cfg.trim_separator:
                    from repro.core.refine import trim_separator
                    part = trim_separator(self.A, part, cfg.k)
                self.partition = build_dbbd(self.A, part, cfg.k)
                self.verifier.after_partition(self.A, self.partition)
                self.tracer.count("separator_size",
                                  int(self.partition.separator_vertices.size))

        if self._resume is not None and self._resume.partition_done:
            # the combinatorial phase is pure state: rebuilding DBBD
            # from the stored part vector reproduces it bit-exactly
            with self.tracer.span("checkpoint_restore", stage="partition"):
                part = np.asarray(
                    self._resume.load_shard("partition")["part"],
                    dtype=np.int64)
                self.partition = build_dbbd(self.A, part, cfg.k,
                                            validate=False)
                self.verifier.after_partition(self.A, self.partition)
                self.tracer.count("checkpoint_partition_restored")
                self.tracer.count("separator_size",
                                  int(self.partition.separator_vertices.size))
        else:
            self._on_root_stage("Partition", partition_body)
        if self._ckpt is not None:
            self._ckpt.register_partition(self.partition.part)
            self._ckpt.arm()
        try:
            self._numeric_setup()
        finally:
            if self._ckpt is not None:
                self._ckpt.disarm()
        return self

    # -- checkpoint/restart (repro.resilience.checkpoint) ------------------

    def _init_checkpoint(self) -> None:
        """Bind the checkpoint writer to this (matrix, config) identity
        and load + integrity-check the resume state, if any. A resume
        directory that does not hold a valid checkpoint for exactly
        this problem raises :class:`CheckpointError` up front."""
        if self._ckpt is None and self._resume_dir is None:
            return
        mfp = matrix_fingerprint(self.A_input)
        cfp = config_fingerprint(self.config)
        if self._resume_dir is not None and self._resume is None:
            with self.tracer.span("checkpoint_restore", stage="load"):
                self._resume = load_checkpoint(
                    self._resume_dir, matrix_fp=mfp, config_fp=cfp,
                    k=self.config.k)
                self._restored_subs = {
                    ell: unpack_subdomain_state(
                        self._resume.load_shard(subdomain_shard_name(ell)))
                    for ell in self._resume.subdomains_done}
                if self._resume.schur_done and \
                        len(self._restored_subs) == self.config.k:
                    z = self._resume.load_shard("schur")
                    self._restored_schur = {
                        "S_tilde": unpack_sparse(z, "S_tilde").tocsr(),
                        "drop_used": float(z["drop_used"]),
                        "drop_eff": float(z["drop_eff"]),
                        "s_colsum": (np.asarray(z["s_colsum"],
                                                dtype=np.float64)
                                     if "s_colsum" in z
                                     and z["s_colsum"].size else None),
                        "mode": str(self._resume.state.get(
                            "preconditioner_mode", "lu")),
                    }
        if self._ckpt is not None:
            self._ckpt.bind(matrix_fp=mfp, config_fp=cfp,
                            k=self.config.k, seed=self.config.seed)

    def _restore_subdomain(self, ell: int,
                           sub: SubdomainInterfaces,
                           ) -> tuple[SubdomainLU, SubdomainComp]:
        """Reconstruct one checkpointed subdomain bit-exactly: re-attach
        the SuperLU handle (the PR-5 cross-process machinery), replay
        the condition-estimate booking (so the drop-tolerance
        tightening sequence matches the uninterrupted run) and the
        verification hooks."""
        lu, comp = self._restored_subs[ell]
        with self.tracer.span("checkpoint_restore", l=ell):
            Dp = None
            if lu.factors.handle is None and lu.handle_thresh is not None:
                Dp = sub.D[lu.perm][:, lu.perm].tocsc()
                attach_handle(lu.factors, Dp,
                              diag_pivot_thresh=lu.handle_thresh)
            if self._abft_on() and lu.factors.checksums is None:
                # checkpoint shards carry bare factors; re-arm the
                # checksums so solve-phase audits cover restored state
                if Dp is None:
                    Dp = sub.D[lu.perm][:, lu.perm].tocsc()
                abft.attach_factor_checksums(lu.factors, Dp)
            self.tracer.count("checkpoint_subdomains_restored")
        self._note_subdomain_cond(ell, lu.cond)
        if comp.drop_tol != self._drop_interface_eff:
            # defensive: under a matching config fingerprint the
            # replayed tolerance sequence always matches the stored
            # one; if it somehow does not, recompute at the serial-
            # semantics tolerance rather than break bit-parity
            self.tracer.count("checkpoint_tol_redo")
            comp = run_subdomain_comp(sub, self.config, lu,
                                      drop_tol=self._drop_interface_eff,
                                      tracer=self.tracer)
        replay_subdomain_verification(
            sub, self.config, lu, comp, verifier=self.verifier,
            separator_size=self.partition.separator_size)
        return lu, comp

    def _register_subdomain_checkpoint(self, ell: int, lu: SubdomainLU,
                                       comp: SubdomainComp) -> None:
        """Queue one accepted subdomain with the checkpoint writer
        (lazy: shards already on disk never re-pack)."""
        if self._ckpt is not None:
            self._ckpt.register_subdomain(
                ell, lambda: pack_subdomain_state(lu, comp))

    def _register_schur_checkpoint(self) -> None:
        if self._ckpt is None or self.S_tilde is None:
            return

        def arrays():
            out = {"drop_used": np.float64(self._schur_drop_used),
                   "drop_eff": np.float64(self._drop_schur_eff),
                   "s_colsum": (np.asarray(self._s_colsum, dtype=np.float64)
                                if self._s_colsum is not None
                                else np.empty(0, dtype=np.float64))}
            pack_sparse(out, "S_tilde", self.S_tilde.tocsr())
            return out

        self._ckpt.register_schur(arrays, state={
            "preconditioner_mode": self.recovery.preconditioner_mode})

    # -- numerics pre-pass (repro.numerics) --------------------------------

    def _prepare_numerics(self) -> None:
        """Build the working system ``A_w = P R A C`` (Ruiz scaling +
        max-product matching) that every downstream stage operates on.
        Runs before partitioning so the DBBD structure is computed on
        the row-permuted matrix. Real preprocessing, traced but not
        charged to the simulated machine (it is outside the paper's
        stage model)."""
        cfg = self.config
        if not (cfg.equilibrate or cfg.static_pivot_matching):
            self._prep = None
            self.A = self.A_input
            return
        self._prep = prepare_system(
            self.A_input, equilibrate=cfg.equilibrate,
            matching=cfg.static_pivot_matching,
            equilibrate_iters=cfg.equilibrate_iters,
            equilibrate_tol=cfg.equilibrate_tol,
            matching_threshold=cfg.matching_threshold, tracer=self.tracer)
        self.A = self._prep.A_work

    def _structural_factor(self) -> sp.spmatrix | None:
        """The RHB structural factor to use. A user-supplied ``M``
        describes the *original* row structure; once matching permutes
        rows it no longer models the working matrix, so RHB falls back
        to its default incidence factor (built from ``self.A``)."""
        if self.M is None or self._prep is None:
            return self.M
        mt = self._prep.matching
        if mt is None or mt.identity:
            return self.M
        return None

    def _to_working_rhs(self, b: np.ndarray) -> np.ndarray:
        """``P R b`` — map a right-hand side into the working system."""
        if self._prep is None:
            return np.asarray(b, dtype=np.float64)
        return self._prep.scale_rhs(b)

    def _from_working_solution(self, y: np.ndarray) -> np.ndarray:
        """``C y`` — map a working-system solution back out."""
        if self._prep is None:
            return np.asarray(y, dtype=np.float64)
        return self._prep.unscale_solution(y)

    def _tighten_drops(self, cond: float) -> None:
        """Condition-driven auto-tightening: scale the interface/Schur
        drop tolerances down by ``cond / cond_threshold`` (capped) so
        ill-conditioned blocks are approximated less aggressively."""
        cfg = self.config
        factor = min(cond / cfg.cond_threshold, 1e6)
        new_i = cfg.drop_interface / factor
        new_s = cfg.drop_schur / factor
        if new_i < self._drop_interface_eff or new_s < self._drop_schur_eff:
            self._drop_interface_eff = min(self._drop_interface_eff, new_i)
            self._drop_schur_eff = min(self._drop_schur_eff, new_s)
            self.tracer.count("cond_tightenings")

    def _numeric_setup(self) -> None:
        """Everything after partitioning: subdomain factorizations,
        interface solves, Schur assembly and factorization."""
        self._drop_interface_eff = self.config.drop_interface
        self._drop_schur_eff = self.config.drop_schur
        self.cond_estimates = {"subdomains": {}, "schur": None}
        self.subdomains = []
        # the transport bit-flip drill needs the sealed map path, which
        # inline backends normally skip; route through the fan-out so
        # the serial drill exercises the same checksum machinery
        seam = abft.bitflip_seam()
        inline = self.backend.inline and not (
            seam is not None and seam.target == "transport")
        if inline:
            for ell in range(self.config.k):
                if ell in self._restored_subs:
                    sub = extract_interfaces(self.partition, ell)
                    lu, comp = self._restore_subdomain(ell, sub)
                    self.subdomains.append(
                        self._pack_subdomain(sub, lu, comp))
                    self._register_subdomain_checkpoint(ell, lu, comp)
                else:
                    self._setup_subdomain(ell)
        else:
            self._setup_subdomains_parallel()
        self._assemble_and_factor_schur()
        # restored state is single-use: update_matrix() invalidates it
        self._restored_subs = {}
        self._restored_schur = None
        self._is_setup = True

    def update_matrix(self, A_new: sp.spmatrix) -> "PDSLin":
        """Refactorize for a matrix with the *same nonzero pattern*.

        Time-stepping and Newton loops refactor repeatedly on a fixed
        structure; the partition (the expensive combinatorial phase) is
        reused and only the numeric phases rerun. Raises if the pattern
        changed — a new pattern needs a fresh :class:`PDSLin`.
        """
        if self.partition is None:
            raise ValueError("call setup() before update_matrix()")
        A_new = check_csr(A_new)
        check_square(A_new, "A_new")
        check_finite(A_new, "A_new")
        old = self.A_input
        if A_new.shape != old.shape or A_new.nnz != old.nnz or \
                not (np.array_equal(A_new.indptr, old.indptr)
                     and np.array_equal(A_new.indices, old.indices)):
            raise ValueError("update_matrix requires the same sparsity "
                             "pattern; build a new solver instead")
        self.A_input = A_new
        if self._prep is not None:
            # same pattern, fresh values: keep the matching permutation
            # (the partition depends on it) but recompute the scalings
            self._prep = retarget_system(
                self._prep, A_new,
                equilibrate_iters=self.config.equilibrate_iters,
                equilibrate_tol=self.config.equilibrate_tol)
            self.A = self._prep.A_work
        else:
            self.A = A_new
        self.partition = build_dbbd(self.A, self.partition.part,
                                    self.config.k, validate=False)
        # fresh numeric values = a fresh checkpoint identity: restored
        # state from the old matrix no longer applies, and the writer
        # re-binds so old shards are never mixed with new ones
        self._resume = None
        self._restored_subs = {}
        self._restored_schur = None
        if self._ckpt is not None:
            self._ckpt.bind(matrix_fp=matrix_fingerprint(self.A_input),
                            config_fp=config_fingerprint(self.config),
                            k=self.config.k, seed=self.config.seed)
            self._ckpt.register_partition(self.partition.part)
            self._ckpt.arm()
        try:
            self._numeric_setup()
        finally:
            if self._ckpt is not None:
                self._ckpt.disarm()
        return self

    def _cached_analysis(self, key: str, compute: Callable):
        """Memoized symbolic analysis with hit/miss tracer counters."""
        hits = self.analysis_cache.hits
        value = self.analysis_cache.get_or_compute(key, compute)
        self.tracer.count("symbolic_cache_hit"
                          if self.analysis_cache.hits > hits
                          else "symbolic_cache_miss")
        return value

    def _cached_order(self, D: sp.csr_matrix) -> np.ndarray:
        """Subdomain fill-reducing ordering (MD/ND/RCM + e-tree
        postorder), memoized on the sparsity pattern."""
        cfg = self.config
        key = pattern_fingerprint(D, "order", cfg.subdomain_ordering,
                                  cfg.seed)
        return self._cached_analysis(
            key, lambda: order_subdomain(D, method=cfg.subdomain_ordering,
                                         seed=cfg.seed))

    def _note_subdomain_cond(self, ell: int, cond: float | None) -> None:
        """Book a subdomain condition estimate and auto-tighten the
        drop tolerances when it crosses the threshold."""
        cfg = self.config
        if not cfg.condest or cond is None:
            return
        self.cond_estimates["subdomains"][ell] = cond
        if np.isfinite(cond) and cond > cfg.cond_threshold:
            self._tighten_drops(cond)

    @staticmethod
    def _pack_subdomain(sub: SubdomainInterfaces, lu: SubdomainLU,
                        comp: SubdomainComp) -> SubdomainComputation:
        return SubdomainComputation(
            interfaces=sub, perm=lu.perm, factors=lu.factors,
            G_tilde=comp.G_tilde, WT_tilde=comp.WT_tilde,
            T_tilde=comp.T_tilde, padding_G=comp.padding_G,
            padding_W=comp.padding_W, lu_flops=lu.flops,
            t_colsum=comp.t_colsum, handle_thresh=lu.handle_thresh)

    def _setup_subdomain(self, ell: int) -> None:
        """Serial setup of one subdomain: the same task bodies the
        parallel backends ship (:mod:`repro.solver.partasks`), run
        inline under the simulated machine's fault ladder."""
        cfg = self.config
        assert self.partition is not None
        sub = extract_interfaces(self.partition, ell)
        perm = self._cached_order(sub.D)
        sep = self.partition.separator_size

        def lu_body(ledger):
            lu = run_subdomain_lu(sub, cfg, ell=ell, separator_size=sep,
                                  perm=perm, report=self.recovery,
                                  tracer=self.tracer,
                                  verifier=self.verifier)
            ledger.ops.add("LU(D)", lu.flops)
            return lu

        lu = self._on_subdomain(ell, "LU(D)", lu_body)
        self._note_subdomain_cond(ell, lu.cond)

        def comp_body(ledger):
            comp = run_subdomain_comp(sub, cfg, lu,
                                      drop_tol=self._drop_interface_eff,
                                      tracer=self.tracer,
                                      verifier=self.verifier)
            ledger.ops.add("Comp(S)", comp.ops)
            return comp

        comp = self._on_subdomain(ell, "Comp(S)", comp_body)
        self.subdomains.append(self._pack_subdomain(sub, lu, comp))
        self._register_subdomain_checkpoint(ell, lu, comp)

    # -- parallel subdomain setup (repro.parallel.exec) --------------------

    def _stage_fate(self, stage: str, ell: int) -> str:
        """Pre-play the injected-fault retry ladder for ``(stage, ell)``
        before shipping the work to a backend. Faults are raised at
        stage *entry* (the body never runs), so the winning rung is
        known at dispatch time; recovery events and simulated charges
        are identical to the serial ladder. Returns ``"run"`` (ship to
        a worker) or ``"failover"`` (execute on the root)."""
        plan = self.machine.fault_plan
        if plan is None:
            return "run"
        attempt = 0
        while True:
            attempt += 1
            try:
                plan.before(stage, ell)
                return "run"
            except InjectedFault as fault:
                self.machine.charge_recovery(
                    ell, seconds=fault.recovery_cost_s)
                if not fault.permanent and \
                        attempt < self.retry_policy.max_attempts:
                    self._record(stage, "retry", fault, subdomain=ell,
                                 attempt=attempt)
                    continue
                self._record(stage, "failover-root", fault, subdomain=ell,
                             attempt=attempt,
                             detail="re-executing the work on root")
                return "failover"

    def _count_speculation(self, outcomes) -> None:
        """Book speculative-duplicate launches/wins from a fan-out."""
        for out in outcomes:
            if out.duplicates:
                self.tracer.count("speculation_launched", out.duplicates)
            if out.speculated:
                self.tracer.count("speculation_wins")

    def _merge_worker_result(self, r: SubdomainSetupResult,
                             offset_s: float) -> None:
        """Fold a worker's recovery events and LU-stage trace back into
        root state (comp-stage artifacts merge only on acceptance)."""
        if r.lu_spans or r.lu_counters:
            self.tracer.merge(r.lu_spans, r.lu_counters, offset_s=offset_s,
                              track=f"proc{r.ell}")
        if r.events or r.perturbed_pivots:
            shipped = RecoveryReport(events=list(r.events),
                                     perturbed_pivots=r.perturbed_pivots)
            shipped.degraded = any(e.action in DEGRADING_ACTIONS
                                   for e in r.events)
            self.recovery.absorb(shipped)

    def _charge_process_stage(self, ell: int, stage: str, wall_s: float,
                              flops: int) -> None:
        """Account worker-measured wall time (plus any straggler delay
        from the fault plan) and flops to the simulated process."""
        led = self.machine.processes[ell]
        led.timer.add(stage, wall_s)
        led.ops.add(stage, flops)
        plan = self.machine.fault_plan
        if plan is not None:
            delay = plan.after(stage, ell)
            if delay > 0.0:
                led.timer.add(stage, delay)

    def _run_lu_on_root(self, sub: SubdomainInterfaces, ell: int,
                        perm: np.ndarray) -> SubdomainLU:
        """Failover rung: LU(D) of one subdomain on the root process."""
        with self.tracer.span("recover", stage="LU(D)",
                              action="failover-root", l=ell), \
                self.machine.on_root(RECOVER_STAGE) as ledger:
            lu = run_subdomain_lu(
                sub, self.config, ell=ell,
                separator_size=self.partition.separator_size, perm=perm,
                report=self.recovery, tracer=self.tracer,
                verifier=self.verifier)
            ledger.ops.add("LU(D)", lu.flops)
        return lu

    def _run_comp_on_root(self, sub: SubdomainInterfaces, lu: SubdomainLU,
                          drop_tol: float) -> SubdomainComp:
        """Failover rung: Comp(S) of one subdomain on the root process."""
        with self.tracer.span("recover", stage="Comp(S)",
                              action="failover-root", l=lu.ell), \
                self.machine.on_root(RECOVER_STAGE) as ledger:
            comp = run_subdomain_comp(sub, self.config, lu,
                                      drop_tol=drop_tol, tracer=self.tracer,
                                      verifier=self.verifier)
            ledger.ops.add("Comp(S)", comp.ops)
        return comp

    def _setup_subdomains_parallel(self) -> None:
        """Fan the per-subdomain setup out over ``self.backend``.

        Bit-parity with serial is preserved by construction: the same
        task bodies run (:mod:`repro.solver.partasks`), the fault ladder
        is pre-played in serial order at dispatch, and the reduction —
        condition-estimate booking, drop-tolerance tightening, Schur
        inputs — happens in ascending subdomain order. The one
        speculative piece is the interface drop tolerance: workers run
        Comp(S) at the tolerance current at dispatch, and any subdomain
        whose serial-semantics tolerance ends up tighter (a later
        condition estimate crossed the threshold) has its Comp(S) redone
        at the correct tolerance in a second round.
        """
        cfg = self.config
        assert self.partition is not None
        validate_chaos_env()
        sep = self.partition.separator_size
        trace = bool(self.tracer.enabled)
        t0 = time.perf_counter()
        offset = self.tracer.now()

        def charged(ell: int) -> float:
            return (self.machine.processes[ell].timer.get("LU(D)")
                    + self.machine.processes[ell].timer.get("Comp(S)"))

        base_charged = [charged(ell) for ell in range(cfg.k)]

        restored = set(self._restored_subs)
        subs, perms = [], []
        for ell in range(cfg.k):
            sub = extract_interfaces(self.partition, ell)
            subs.append(sub)
            perms.append(self._restored_subs[ell][0].perm
                         if ell in restored else self._cached_order(sub.D))

        # pre-play the fault ladder in serial event order (LU(D) then
        # Comp(S), subdomains ascending); restored subdomains never ran
        # in the uninterrupted run's fault window twice, so they are
        # excluded from the ladder as well as the fan-out
        lu_fate, comp_fate = [], []
        for ell in range(cfg.k):
            if ell in restored:
                lu_fate.append("restored")
                comp_fate.append("restored")
                continue
            lu_fate.append(self._stage_fate("LU(D)", ell))
            comp_fate.append(self._stage_fate("Comp(S)", ell))

        tol0 = self._drop_interface_eff
        tasks, task_ell = [], []
        for ell in range(cfg.k):
            if lu_fate[ell] != "run":
                continue
            tasks.append(SubdomainTask(
                ell=ell, interfaces=subs[ell], cfg=cfg, separator_size=sep,
                drop_interface=tol0, perm=perms[ell],
                run_comp=(comp_fate[ell] == "run"), trace=trace))
            task_ell.append(ell)

        with self.tracer.span("subdomain_fanout", backend=self.backend.name,
                              workers=self.backend.workers,
                              tasks=len(tasks)):
            outcomes = self.backend.map(run_subdomain_setup, tasks,
                                        deadline_s=self.task_deadline_s,
                                        speculation=self.speculation)
        by_ell = dict(zip(task_ell, outcomes))
        self._count_speculation(outcomes)
        self._book_transport(task_ell, outcomes)

        lus: dict[int, SubdomainLU] = {}
        comps: dict[int, SubdomainComp] = {}
        worker_comp: dict[int, SubdomainComp | None] = {}
        redo: list[tuple[int, float]] = []
        for ell in range(cfg.k):
            if ell in restored:
                lu, comp = self._restore_subdomain(ell, subs[ell])
                lus[ell], comps[ell] = lu, comp
                continue
            sub, out = subs[ell], by_ell.get(ell)
            # a transport digest mismatch that survived its resubmission
            # means the payload cannot be trusted: same failover as a
            # dead worker (the detection event is already booked)
            crashed = out is not None and \
                isinstance(out.error,
                           (WorkerCrashError, TransportChecksumError))
            timed = out is not None and out.timed_out
            if out is not None and out.error is not None \
                    and not crashed and not timed:
                raise out.error  # real numerical error: propagate as serial
            r = out.value if (out is not None and not crashed
                              and not timed) else None
            # ---- LU(D)
            if r is not None:
                self._merge_worker_result(r, offset)
                lu = r.lu
                self._charge_process_stage(ell, "LU(D)", r.lu_wall_s,
                                           lu.flops)
                if lu.factors.handle is None and \
                        lu.handle_thresh is not None:
                    Dp = sub.D[lu.perm][:, lu.perm].tocsc()
                    attach_handle(lu.factors, Dp,
                                  diag_pivot_thresh=lu.handle_thresh)
                worker_comp.setdefault(ell, None)
            else:
                if crashed:
                    self._record("LU(D)", "failover-root", out.error,
                                 subdomain=ell,
                                 detail=("untrusted result payload"
                                         if isinstance(
                                             out.error,
                                             TransportChecksumError)
                                         else "worker process died")
                                 + "; re-executing the work on root")
                elif timed:
                    self.tracer.count("deadline_timeouts")
                    self._record("LU(D)", "deadline-failover", out.error,
                                 subdomain=ell,
                                 detail="task deadline expired; re-executing "
                                        "the work on root")
                lu = self._run_lu_on_root(sub, ell, perms[ell])
            lus[ell] = lu
            self._note_subdomain_cond(ell, lu.cond)
            # ---- Comp(S): the serial-semantics tolerance for this
            # subdomain is the effective tolerance *now*, after the
            # tightenings of subdomains 0..ell
            tol_ell = self._drop_interface_eff
            if comp_fate[ell] != "run" or timed:
                # a timed-out subdomain stays on the root for Comp(S)
                # too: re-shipping it would hit the same straggler
                comps[ell] = self._run_comp_on_root(sub, lu, tol_ell)
            elif r is not None and r.comp is not None \
                    and r.comp.drop_tol == tol_ell:
                comps[ell] = r.comp
                worker_comp[ell] = r.comp
                if r.comp_spans or r.comp_counters:
                    self.tracer.merge(r.comp_spans, r.comp_counters,
                                      offset_s=offset + r.lu_wall_s,
                                      track=f"proc{ell}")
                self._charge_process_stage(ell, "Comp(S)", r.comp_wall_s,
                                           r.comp.ops)
            else:
                if r is not None and r.comp is not None:
                    self.tracer.count("comp_tol_redo")
                redo.append((ell, tol_ell))

        if redo:
            tasks2 = [SubdomainTask(
                ell=ell, interfaces=subs[ell], cfg=cfg, separator_size=sep,
                drop_interface=tol, perm=perms[ell], lu=lus[ell],
                run_comp=True, trace=trace) for ell, tol in redo]
            with self.tracer.span("subdomain_fanout_redo",
                                  backend=self.backend.name,
                                  tasks=len(tasks2)):
                outcomes2 = self.backend.map(run_subdomain_setup, tasks2,
                                             deadline_s=self.task_deadline_s,
                                             speculation=self.speculation)
            self._count_speculation(outcomes2)
            self._book_transport([ell for ell, _ in redo], outcomes2)
            for (ell, tol), out in zip(redo, outcomes2):
                crashed = isinstance(
                    out.error, (WorkerCrashError, TransportChecksumError))
                if out.error is not None and not crashed and not out.timed_out:
                    raise out.error
                if crashed or out.timed_out:
                    if out.timed_out:
                        self.tracer.count("deadline_timeouts")
                    self._record(
                        "Comp(S)",
                        "deadline-failover" if out.timed_out
                        else "failover-root",
                        out.error, subdomain=ell,
                        detail=("task deadline expired"
                                if out.timed_out
                                else "worker process died")
                        + "; re-executing the work on root")
                    comps[ell] = self._run_comp_on_root(subs[ell], lus[ell],
                                                        tol)
                    continue
                r = out.value
                comps[ell] = r.comp
                worker_comp[ell] = r.comp
                if r.comp_spans or r.comp_counters:
                    self.tracer.merge(r.comp_spans, r.comp_counters,
                                      offset_s=offset, track=f"proc{ell}")
                self._charge_process_stage(ell, "Comp(S)", r.comp_wall_s,
                                           r.comp.ops)

        # invariant hooks are root-owned state: replay them over every
        # reassembled worker result (inline failovers already fired them)
        if self.verifier.enabled:
            for ell in sorted(worker_comp):
                replay_subdomain_verification(
                    subs[ell], cfg, lus[ell], worker_comp[ell],
                    verifier=self.verifier, separator_size=sep)

        for ell in range(cfg.k):
            self.subdomains.append(
                self._pack_subdomain(subs[ell], lus[ell], comps[ell]))
            self._register_subdomain_checkpoint(ell, lus[ell], comps[ell])

        # cost-model reconciliation: simulated makespan of this fan-out
        # vs the real wall clock it took (a noise: counter — excluded
        # from perf gating, visible in exported metrics)
        model_s = max((charged(ell) - base_charged[ell]
                       for ell in range(cfg.k)), default=0.0)
        record_model_skew(self.tracer, "subdomain_setup", model_s=model_s,
                          measured_s=time.perf_counter() - t0)

    def _assemble_and_factor_schur(self) -> None:
        cfg = self.config
        assert self.partition is not None
        C = self.partition.C()
        ns = C.shape[0]
        if ns == 0:
            self.S_tilde = C
            self._s_colsum = None
            self._register_schur_checkpoint()
            return

        def asm_body(ledger):
            self._verify_comp_contributions()
            updates = [(s.interfaces, s.T_tilde) for s in self.subdomains]
            self.S_tilde = assemble_approximate_schur(
                C, updates, drop_tol=self._drop_schur_eff,
                tracer=self.tracer)
            self._schur_drop_used = self._drop_schur_eff
            if self.verifier.enabled:
                # reassemble without dropping to check S~ against S^
                S_hat = assemble_approximate_schur(C, updates, drop_tol=0.0,
                                                   tracer=NULL_TRACER)
                self.verifier.after_schur_assembly(
                    C, S_hat, self.S_tilde, self._drop_schur_eff)

        if self._restored_schur is not None:
            # the assembled S~ (post any cond-driven rebuild of the
            # original run) comes off disk; only LU(S) — cheap next to
            # Comp(S) and deliberately not serialized (SuperLU handles
            # do not round-trip) — is redone, on the *final* matrix, so
            # its factors match the uninterrupted run's bit-for-bit
            rs = self._restored_schur
            with self.tracer.span("checkpoint_restore", stage="schur"):
                self.S_tilde = rs["S_tilde"]
                self._schur_drop_used = rs["drop_used"]
                self._drop_schur_eff = rs["drop_eff"]
                self.tracer.count("checkpoint_schur_restored")
            # recheck integrity against the checksum stored in the
            # shard (sealing fresh when the shard predates ABFT)
            self._s_colsum = rs.get("s_colsum")
            if self._s_colsum is None:
                self._seal_schur()
            self._audit_schur(where="resume")
            base = "ilu" if rs["mode"] == "ilu" else "lu"
            self._on_root_stage("LU(S)",
                                lambda ledger: self._factor_schur(base,
                                                                  ledger))
            self.recovery.preconditioner_mode = rs["mode"]
        else:
            self._on_root_stage("Comp(S)", asm_body)
            self._seal_schur()
            self._audit_schur(where="assembly")
            mode = cfg.schur_factorization
            try:
                self._on_root_stage(
                    "LU(S)",
                    lambda ledger: self._factor_schur(mode, ledger))
                self.recovery.preconditioner_mode = mode
            except SchurFactorizationError as err:
                if mode != "ilu":
                    raise
                # ILU of S~ broke down: fall back to the full LU — a
                # *stronger* preconditioner, so robustness costs memory,
                # not convergence
                self._record("LU(S)", "ilu-to-lu", err,
                             detail="ILU breakdown; falling back to full LU "
                                    "of S~")
                with self.tracer.span("recover", stage="LU(S)",
                                      action="ilu-to-lu"):
                    self._on_root_stage(
                        RECOVER_STAGE,
                        lambda ledger: self._factor_schur("lu", ledger))
                self.recovery.preconditioner_mode = "lu(from-ilu)"
        # proactive (non-degrading) robustness move: a badly conditioned
        # Schur factor makes a dropped S~ a poor preconditioner, so
        # reassemble keeping every entry before GMRES ever runs
        cond_s = self.cond_estimates.get("schur")
        if (cfg.condest and cond_s is not None and np.isfinite(cond_s)
                and cond_s > cfg.cond_threshold
                and self._schur_drop_used > 0.0
                and self.recovery.preconditioner_mode != "ilu"):

            def rebuild_body(ledger):
                updates = [(s.interfaces, s.T_tilde)
                           for s in self.subdomains]
                self.S_tilde = assemble_approximate_schur(
                    C, updates, drop_tol=0.0, tracer=self.tracer)
                self._seal_schur()
                self._factor_schur("lu", ledger)

            self.tracer.count("schur_cond_rebuilds")
            self._on_root_stage("LU(S)", rebuild_body)
            self._schur_drop_used = 0.0
            self._drop_schur_eff = 0.0
        self._register_schur_checkpoint()

    def _factor_schur(self, mode: str, ledger) -> None:
        """Factor ``S~`` as the preconditioner, in ``mode`` ("lu" or
        "ilu"). ILU breakdown raises :class:`SchurFactorizationError`;
        the LU path escalates through the pivoting ladder itself."""
        cfg = self.config
        with self.tracer.span("factor_schur", method=mode):
            sp_perm = self._cached_analysis(
                pattern_fingerprint(self.S_tilde, "schur-md"),
                lambda: minimum_degree(self.S_tilde))
            Sp = self.S_tilde[sp_perm][:, sp_perm].tocsc()
            if mode == "ilu":
                # incomplete factorization of S~ — an even cheaper (and
                # weaker) preconditioner, one of PDSLin's design options
                import scipy.sparse.linalg as spla
                try:
                    ilu = spla.spilu(Sp, drop_tol=max(cfg.drop_schur, 1e-8),
                                     fill_factor=10.0)
                except (RuntimeError, ValueError) as exc:
                    raise SchurFactorizationError(
                        f"ILU of S~ broke down: {exc}",
                        method="ilu") from exc
                factors = LUFactors(
                    L=ilu.L.tocsc(), U=ilu.U.tocsc(),
                    perm_r=np.asarray(ilu.perm_r, dtype=np.int64),
                    perm_c=np.asarray(ilu.perm_c, dtype=np.int64),
                    handle=ilu)
                if not (np.all(np.isfinite(factors.L.data))
                        and np.all(np.isfinite(factors.U.data))):
                    raise SchurFactorizationError(
                        "ILU of S~ produced non-finite factors",
                        method="ilu")
                self.tracer.count("lu_fill_nnz", factors.fill_nnz)
                self.tracer.count("lu_flops", lu_flop_count(factors))
            else:
                # the Schur preconditioner needs numerical robustness,
                # not a structure-faithful factor: allow real pivoting,
                # escalating to static perturbation on breakdown
                factors, _ = factorize_resilient(
                    Sp, diag_pivot_thresh=1.0, stage="LU(S)",
                    report=self.recovery, tracer=self.tracer)
                if cfg.condest:
                    cond = condest_from_factors(Sp, factors)
                    self.cond_estimates["schur"] = cond
                    self.tracer.count("cond_est_schur", cond)
            self._schur_factors = factors
            self._schur_perm = sp_perm
            ledger.ops.add("LU(S)", lu_flop_count(factors))

    def _refresh_schur_preconditioner(self) -> None:
        """Rebuild ``S~`` keeping *every* assembled entry (drop
        tolerance 0) and factor it with full LU — the recovery move
        when GMRES stagnates on a too-aggressively-dropped
        preconditioner. Reuses the cached per-subdomain update matrices
        ``T~``, so no interface solves are repeated."""
        assert self.partition is not None

        def body(ledger):
            updates = [(s.interfaces, s.T_tilde) for s in self.subdomains]
            self.S_tilde = assemble_approximate_schur(
                self.partition.C(), updates, drop_tol=0.0,
                tracer=self.tracer)
            self._seal_schur()
            self._factor_schur("lu", ledger)

        self._on_root_stage(RECOVER_STAGE, body)
        self._schur_drop_used = 0.0
        self.recovery.preconditioner_mode = "lu(refreshed, drop_schur=0)"

    # -- solve ------------------------------------------------------------

    def _precondition(self, v: np.ndarray) -> np.ndarray:
        """Apply ``S~^{-1}`` through the stored factors."""
        assert self._schur_factors is not None and self._schur_perm is not None
        out = np.empty_like(v)
        out[self._schur_perm] = self._schur_factors.solve(v[self._schur_perm])
        return out

    def solve(self, b: np.ndarray) -> PDSLinResult:
        """Solve ``A x = b`` (setup() is run on demand). Rejects
        right-hand sides containing NaN/Inf.

        ``b`` and the returned ``x`` live in the original system; the
        numerics transform (scaling + matching) is applied on the way
        in and undone on the way out. With the numerics layer on, the
        solution is iteratively refined against the *original* ``A``
        and the result carries a :class:`CertifiedAccuracy` block."""
        b = np.asarray(b, dtype=np.float64)
        check_finite(b, "b")
        if not self._is_setup:
            self.setup()
        if b.shape != (self.A_input.shape[0],):
            raise ValueError(f"b must have shape "
                             f"({self.A_input.shape[0]},)")
        with self.tracer.span("solve"):
            res = self._solve(self._to_working_rhs(b))
            res.x = self._from_working_solution(res.x)
            res = self._finalize(b, res)
            self.verifier.after_solve(self.A_input, b, res.x,
                                      res.residual_norm)
            return res

    def _correction_solve(self, r: np.ndarray) -> np.ndarray:
        """Approximate ``A d = r`` in the original system — one full
        hybrid pass through the working system, used as the inner
        solver of iterative refinement."""
        res = self._solve(self._to_working_rhs(r))
        return self._from_working_solution(res.x)

    def _cond_for_bound(self) -> float:
        """The condition estimate entering the forward-error bound: the
        worst finite estimate seen across subdomains and the Schur
        factor (NaN when condest is off)."""
        vals = [c for c in self.cond_estimates["subdomains"].values()
                if np.isfinite(c)]
        cond_s = self.cond_estimates.get("schur")
        if cond_s is not None and np.isfinite(cond_s):
            vals.append(cond_s)
        return float(max(vals)) if vals else float("nan")

    def _on_refine_stall(self) -> bool:
        """Refinement stalled: escalate into the resilience ladder by
        rebuilding the Schur preconditioner with no dropping. Returns
        True when something was actually strengthened (refinement then
        continues); False when there is nothing left to escalate."""
        if self.S_tilde is None or self.S_tilde.shape[0] == 0 \
                or self._schur_drop_used <= 0.0:
            return False
        err = RefinementStallError(
            "iterative refinement stagnated",
            berr=float("nan"))
        self._record("Refine", "precond-refresh", err,
                     detail="refinement stalled; rebuilding S~ "
                            "preconditioner with drop_schur=0")
        with self.tracer.span("recover", stage="Refine",
                              action="precond-refresh"):
            self._refresh_schur_preconditioner()
        return True

    def _finalize(self, b: np.ndarray, res: PDSLinResult) -> PDSLinResult:
        """Post-solve certification in the original system: iterative
        refinement (with stall escalation), the CertifiedAccuracy
        block, and the true residual norm of ``A_input x = b``."""
        cfg = self.config
        if cfg.refine_maxiter > 0 or cfg.condest:
            with self.tracer.span("refine"):
                x, acc = refine(
                    self.A_input, b, res.x, self._correction_solve,
                    tol=cfg.refine_tol, certify_tol=cfg.certify_tol,
                    maxiter=cfg.refine_maxiter,
                    cond_est=self._cond_for_bound(),
                    on_stall=self._on_refine_stall)
                self.tracer.count("refine_steps", acc.refine_steps)
                self.tracer.count("refine_certified", int(acc.certified))
            res.x = x
            res.accuracy = acc
            if acc.stagnated and not acc.certified:
                # escalation exhausted and still uncertified: this is a
                # degraded answer, say so through the recovery report
                self._record(
                    "Refine", "refine-stall",
                    RefinementStallError("refinement stagnated "
                                         "uncertified", berr=acc.berr),
                    detail=f"berr={acc.berr:.2e} after "
                           f"{acc.refine_steps} steps "
                           f"({acc.escalations} escalations)")
            self.recovery.accuracy = acc.to_dict()
        r = b - self.A_input @ res.x
        res.residual_norm = float(np.linalg.norm(r)
                                  / max(np.linalg.norm(b), 1e-300))
        return res

    def _solve_schur_system(self, matvec, g: np.ndarray, *,
                            x0: np.ndarray | None = None):
        """One Krylov attempt on the Schur system, then the recovery
        ladder: BiCGSTAB breakdown falls back to GMRES; GMRES
        stagnation/non-convergence gets one retry with a refreshed
        (no-dropping) Schur preconditioner, warm-started from the
        failed iterate. Retried solves run under fresh ``Solve``
        stages; the preconditioner rebuild is charged to ``Recover``.

        ``x0`` seeds the first attempt (the multi-RHS path passes the
        previous column's solution); recovery retries keep their own
        warm starts."""
        cfg = self.config

        def run_gmres(x0=None):
            def body(ledger):
                return gmres(matvec, g, preconditioner=self._precondition,
                             x0=x0, tol=cfg.gmres_tol,
                             restart=cfg.gmres_restart,
                             maxiter=cfg.gmres_maxiter,
                             flexible=(cfg.krylov == "fgmres"),
                             tracer=self.tracer)
            return self._on_root_stage("Solve", body)

        if cfg.krylov == "bicgstab":
            from repro.solver.bicgstab import bicgstab

            def body(ledger):
                return bicgstab(matvec, g,
                                preconditioner=self._precondition,
                                x0=x0,
                                tol=cfg.gmres_tol,
                                maxiter=cfg.gmres_maxiter,
                                audit_every=25 if self._abft_on() else 0,
                                tracer=self.tracer)
            res = self._on_root_stage("Solve", body)
            if res.converged:
                return res
            err = KrylovBreakdownError(
                "BiCGSTAB breakdown on the Schur system" if res.breakdown
                else "BiCGSTAB failed to converge on the Schur system",
                method="bicgstab", iterations=res.iterations)
            self._record("Solve", "krylov-fallback", err,
                         detail="falling back BiCGSTAB -> GMRES")
            with self.tracer.span("recover", stage="Solve",
                                  action="krylov-fallback"):
                res = run_gmres(x0=res.x)
        else:
            res = run_gmres(x0=x0)

        if not res.converged:
            err = KrylovBreakdownError(
                "GMRES stagnated on the Schur system"
                if getattr(res, "stagnated", False)
                else "GMRES failed to converge on the Schur system",
                method="gmres", iterations=res.iterations)
            self._record("Solve", "precond-refresh", err,
                         detail="rebuilding S~ preconditioner with "
                                "drop_schur=0 and retrying once")
            with self.tracer.span("recover", stage="Solve",
                                  action="precond-refresh"):
                self._refresh_schur_preconditioner()
            res = run_gmres(x0=res.x)
        return self._audit_krylov(matvec, g, res, run_gmres)

    def _krylov_drift(self, matvec, g, res, *,
                      trust_flag: bool = True) -> tuple[bool, str]:
        """One drift audit of a Krylov result: recompute the true
        residual and compare with what the solver claims (plus any
        drift flag the solver raised internally). ``trust_flag=False``
        judges by the final true residual alone — a warm restart from a
        far-off iterate legitimately loses orthogonality mid-run, so
        its advisory in-run flag is not evidence of corruption."""
        cfg = self.config
        with self.tracer.span("abft_verify", stage="Solve"):
            self.tracer.count("sdc_checks")
            true_r = float(np.linalg.norm(g - matvec(res.x)))
            claimed = float(res.final_residual)
            if not np.isfinite(claimed):
                claimed = 0.0
            gnorm = float(np.linalg.norm(g))
            suspected = (trust_flag
                         and bool(getattr(res, "drift_detected", False))) or \
                true_r > 100.0 * max(claimed, cfg.gmres_tol * gnorm)
        return suspected, (f"true residual {true_r:.3e} vs claimed "
                           f"{claimed:.3e}")

    def _audit_krylov(self, matvec, g, res, run_gmres):
        """Krylov drift audit + the ``krylov`` bit-flip injection seam
        (injection runs even with ``abft=off``). A flagged iterate is
        suspected SDC in the Krylov state; recovery discards that state
        and warm-restarts GMRES from the flagged iterate, preserving
        the preconditioner."""
        abft.maybe_bitflip("krylov", (res.x,))
        if not self._abft_on() or res.x.size == 0:
            return res
        suspected, detail = self._krylov_drift(matvec, g, res)
        if not suspected:
            return res
        err = SdcDetectedError(
            f"Krylov residual drift: {detail}", site="krylov",
            stage="Solve")
        self.tracer.count("sdc_detected")
        self._record("Solve", "sdc-detected", err, detail=detail)
        if not abft.abft_recover(self.config.abft):
            self._record("Solve", "sdc-unrecoverable", err,
                         detail="abft=detect: corruption reported but not "
                                "repaired; the returned iterate may be "
                                "corrupt")
            return res
        with self.tracer.span("recover", stage="Solve",
                              action="sdc-krylov-restart"):
            fresh = run_gmres(x0=res.x)
        suspected2, detail2 = self._krylov_drift(matvec, g, fresh,
                                                 trust_flag=False)
        if suspected2 or not fresh.converged:
            self._record("Solve", "sdc-unrecoverable", err,
                         detail="warm restart did not clear the drift: "
                                + detail2)
            return fresh
        self.tracer.count("sdc_recovered")
        self._record("Solve", "sdc-recovered", err,
                     detail="corrupt Krylov state discarded; GMRES "
                            "warm-restarted from the flagged iterate")
        return fresh

    def _solve(self, b: np.ndarray) -> PDSLinResult:
        """One hybrid solve in the working system, wrapped in the
        solve-phase ABFT sweep (see :meth:`_run_with_factor_sweep`)."""
        return self._run_with_factor_sweep(lambda: self._solve_once(b))

    def _run_with_factor_sweep(self, run_once: Callable):
        """Run one solve pass under the solve-phase ABFT sweep: every
        triangular solve through the subdomain factors ran a passive
        checksum audit; violations accumulated on the factors are
        collected here. Recovery refactorizes the flagged subdomains
        from their pristine interface matrices and redoes the solve
        pass once."""
        res = run_once()
        if not self._abft_on():
            return res
        bad = self._sweep_factor_audits()
        if not bad:
            return res
        errs = []
        for ell, detail in bad:
            err = SdcDetectedError(
                f"solve-phase checksum violated for subdomain {ell}: "
                f"{detail}", site="solve", stage="Solve", subdomain=ell)
            errs.append(err)
            self.tracer.count("sdc_detected")
            self._record("Solve", "sdc-detected", err, subdomain=ell,
                         detail=detail)
        if not abft.abft_recover(self.config.abft):
            for (ell, _), err in zip(bad, errs):
                self._record("Solve", "sdc-unrecoverable", err,
                             subdomain=ell,
                             detail="abft=detect: corruption reported but "
                                    "not repaired; the solution may be "
                                    "corrupt")
            return res
        with self.tracer.span("recover", stage="Solve",
                              action="sdc-refactorize"):
            for (ell, _), err in zip(bad, errs):
                s = self.subdomains[ell]
                Dp = s.interfaces.D[s.perm][:, s.perm].tocsc()
                n_events = len(self.recovery.events)
                factors, _ = factorize_resilient(
                    Dp, diag_pivot_thresh=self.config.diag_pivot_thresh,
                    stage="Solve", subdomain=ell, report=self.recovery,
                    tracer=self.tracer)
                # keep the handle recipe current for solve-phase
                # fan-outs against the fresh factors
                s.handle_thresh = self.config.diag_pivot_thresh
                for ev in self.recovery.events[n_events:]:
                    if ev.action == "full-pivot":
                        s.handle_thresh = 1.0
                    elif ev.action == "static-pivot":
                        s.handle_thresh = None
                abft.attach_factor_checksums(factors, Dp)
                s.factors = factors
        res = run_once()
        bad2 = self._sweep_factor_audits()
        if bad2:
            for ell, detail in bad2:
                self._record(
                    "Solve", "sdc-unrecoverable", errs[0], subdomain=ell,
                    detail="checksum still violated after refactorization: "
                           + detail)
            return res
        for (ell, _), err in zip(bad, errs):
            self.tracer.count("sdc_recovered")
            self._record("Solve", "sdc-recovered", err, subdomain=ell,
                         detail="subdomain refactorized from its pristine "
                                "interface matrix; solve pass redone")
        return res

    def _solve_once(self, b: np.ndarray) -> PDSLinResult:
        cfg = self.config
        assert self.partition is not None
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.A.shape[0],):
            raise ValueError(f"b must have shape ({self.A.shape[0]},)")
        p = self.partition
        sep = p.separator_vertices
        x = np.zeros_like(b)

        if sep.size == 0:
            # no separator: decoupled subdomain solves
            with self.machine.on_root("Solve"):
                for s in self.subdomains:
                    v = s.interfaces.vertices
                    fl = b[v]
                    x[v[s.perm]] = s.factors.solve(fl[s.perm])
            g_res = GMRESResult(x=np.empty(0), converged=True, iterations=0)
            res_norm = float(np.linalg.norm(self.A @ x - b)
                             / max(np.linalg.norm(b), 1e-300))
            return PDSLinResult(x=x, converged=True, iterations=0,
                                residual_norm=res_norm, schur_size=0,
                                machine=self.machine, gmres=g_res,
                                recovery=self.recovery)

        g = b[sep].copy()
        # g^ = g - sum F_l D_l^{-1} f_l
        d_solutions: list[np.ndarray] = []

        def forward_body_for(s):
            def body(ledger):
                v = s.interfaces.vertices
                fl = b[v]
                ul = s.factors.solve(fl[s.perm])  # in permuted coords
                Fp = s.interfaces.F_hat[:, s.perm].tocsr()
                return ul, Fp @ ul
            return body

        for s in self.subdomains:
            ul, g_corr = self._on_subdomain(s.interfaces.ell, "Solve",
                                            forward_body_for(s))
            d_solutions.append(ul)
            g[s.interfaces.f_rows] -= g_corr

        with self.machine.on_root("Solve"):
            subs = [s.interfaces for s in self.subdomains]
            facs = [s.factors for s in self.subdomains]
            perms = [s.perm for s in self.subdomains]
            matvec = implicit_schur_matvec(p.C(), subs, facs, perms)
        g_res = self._solve_schur_system(matvec, g)
        self.verifier.after_krylov(matvec, g, g_res)
        y = g_res.x
        x[sep] = y

        # back substitution: u_l = D^{-1}(f_l - E_l y)
        def backward_body_for(s, ul0):
            def body(ledger):
                Ep = s.interfaces.E_hat[s.perm].tocsr()
                rhs_corr = Ep @ y[s.interfaces.e_cols]
                return ul0 - s.factors.solve(rhs_corr)
            return body

        for s, ul0 in zip(self.subdomains, d_solutions):
            ul = self._on_subdomain(s.interfaces.ell, "Solve",
                                    backward_body_for(s, ul0))
            x[s.interfaces.vertices[s.perm]] = ul

        res_norm = float(np.linalg.norm(self.A @ x - b)
                         / max(np.linalg.norm(b), 1e-300))
        return PDSLinResult(x=x, converged=g_res.converged,
                            iterations=g_res.iterations,
                            residual_norm=res_norm,
                            schur_size=int(sep.size),
                            machine=self.machine, gmres=g_res,
                            recovery=self.recovery)

    # -- batched multi-RHS solve ------------------------------------------

    def _block_subdomain_solves(
            self, rhs_blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Batched triangular solves ``D_l^{-1} R_l`` across all
        subdomains — ONE backend fan-out for the whole right-hand-side
        block (the forward and backward substitution passes of
        :meth:`solve_block` both ship through here). Inline backends
        run each subdomain under the usual injected-fault ladder;
        pooled backends ship :class:`BlockSolveTask` units and keep the
        setup fan-out's failover semantics (crash / transport-checksum
        / deadline -> redo on root). SuperLU batched solves are
        columnwise bit-identical to single-column solves, so column
        ``j`` here matches ``solve(B[:, j])`` bit for bit."""
        if self.backend.inline:
            outs = []
            for s, rhs in zip(self.subdomains, rhs_blocks):
                def body(ledger, s=s, rhs=rhs):
                    return s.factors.solve(rhs)
                outs.append(self._on_subdomain(s.interfaces.ell, "Solve",
                                               body))
            return outs

        validate_chaos_env()
        fates = [self._stage_fate("Solve", s.interfaces.ell)
                 for s in self.subdomains]
        tasks, task_ell = [], []
        for s, rhs, fate in zip(self.subdomains, rhs_blocks, fates):
            if fate != "run":
                continue
            Dp = None
            if s.factors.handle is not None and s.handle_thresh is not None:
                # the factors pickle handle-less; ship the permuted
                # interface matrix so the worker can re-attach one
                Dp = s.interfaces.D[s.perm][:, s.perm].tocsc()
            tasks.append(BlockSolveTask(
                ell=s.interfaces.ell, rhs=rhs, factors=s.factors,
                Dp=Dp, handle_thresh=s.handle_thresh,
                token=factors_token(s.factors)))
            task_ell.append(s.interfaces.ell)

        with self.tracer.span("solve_fanout", backend=self.backend.name,
                              workers=self.backend.workers,
                              tasks=len(tasks)):
            outcomes = self.backend.map(run_block_solve, tasks,
                                        deadline_s=self.task_deadline_s,
                                        speculation=self.speculation)
        self._count_speculation(outcomes)
        self._book_transport(task_ell, outcomes)
        by_ell = dict(zip(task_ell, outcomes))

        outs = []
        for s, rhs, fate in zip(self.subdomains, rhs_blocks, fates):
            ell = s.interfaces.ell
            out = by_ell.get(ell)
            crashed = out is not None and \
                isinstance(out.error,
                           (WorkerCrashError, TransportChecksumError))
            timed = out is not None and out.timed_out
            if out is not None and out.error is not None \
                    and not crashed and not timed:
                raise out.error  # real numerical error: propagate as serial
            if fate != "run" or crashed or timed:
                if crashed:
                    self._record("Solve", "failover-root", out.error,
                                 subdomain=ell,
                                 detail=("untrusted result payload"
                                         if isinstance(
                                             out.error,
                                             TransportChecksumError)
                                         else "worker process died")
                                 + "; re-executing the work on root")
                elif timed:
                    self.tracer.count("deadline_timeouts")
                    self._record("Solve", "deadline-failover", out.error,
                                 subdomain=ell,
                                 detail="task deadline expired; "
                                        "re-executing the work on root")
                with self.tracer.span("recover", stage="Solve",
                                      action="failover-root", l=ell), \
                        self.machine.on_root(RECOVER_STAGE):
                    outs.append(s.factors.solve(rhs))
                continue
            r = out.value
            # fold the worker-local solve-audit counters back into the
            # parent's factor checksums, where _sweep_factor_audits
            # collects them (the worker audited a pickled copy)
            cs = s.factors.checksums
            if cs is not None and r.audit_checks:
                cs.checks += r.audit_checks
                cs.violations += r.audit_violations
                if r.audit_worst_rel > cs.worst_rel:
                    cs.worst_rel = r.audit_worst_rel
                if r.audit_violations and r.audit_detail:
                    cs.last_detail = r.audit_detail
            self._charge_process_stage(ell, "Solve", r.wall_s, 0)
            outs.append(r.X)
        return outs

    def _solve_schur_block(self, matvec,
                           G: np.ndarray) -> tuple[list[GMRESResult],
                                                   np.ndarray]:
        """Krylov solves for every column of the Schur system ``S Y =
        G``. Default mode runs the full per-column recovery ladder
        (:meth:`_solve_schur_system`), seeding each column with the
        previous column's solution when ``krylov_seed`` is on — related
        right-hand sides start near the solution manifold and converge
        in fewer iterations, while an unrelated seed costs nothing (the
        initial residual check discards it). ``block_gmres=True``
        solves all columns in one block-Krylov run sharing a search
        space; columns it leaves unconverged fall back to the
        per-column ladder, so every column ends equally certified."""
        cfg = self.config
        p = G.shape[1]
        if cfg.block_gmres and p > 1 and cfg.krylov in ("gmres", "fgmres"):
            def body(ledger):
                return gmres_block(matvec, G,
                                   preconditioner=self._precondition,
                                   tol=cfg.gmres_tol,
                                   restart=cfg.gmres_restart,
                                   maxiter=cfg.gmres_maxiter,
                                   tracer=self.tracer)
            blk = self._on_root_stage("Solve", body)
            results, Y = self._audit_krylov_block(matvec, G, blk)
            for j in range(p):
                if results[j].converged:
                    continue
                # unconverged column: the full per-column ladder
                # (preconditioner refresh + audit), warm-started from
                # the block iterate
                res_j = self._solve_schur_system(matvec, G[:, j],
                                                 x0=results[j].x)
                results[j] = res_j
                Y[:, j] = res_j.x
            return results, Y
        results = []
        Y = np.empty_like(G)
        seed = None
        for j in range(p):
            res_j = self._solve_schur_system(matvec, G[:, j], x0=seed)
            results.append(res_j)
            Y[:, j] = res_j.x
            seed = res_j.x if cfg.krylov_seed else None
        return results, Y

    def _audit_krylov_block(self, matvec, G: np.ndarray, blk):
        """Block-mode counterpart of :meth:`_audit_krylov`: the
        ``krylov`` bit-flip seam lands in the solution block, and ONE
        block matvec audits every column at once instead of one audit
        matvec per column. Suspected columns are warm-restarted
        individually (per-column GMRES, preserving the preconditioner)
        and re-audited by the final true residual alone."""
        cfg = self.config
        p = G.shape[1]
        Y = blk.x
        abft.maybe_bitflip("krylov", (Y,))
        results = [GMRESResult(x=Y[:, j].copy(),
                               converged=bool(blk.converged[j]),
                               iterations=int(blk.iterations),
                               residual_norms=[float(blk.residual_norms[j])],
                               stagnated=bool(blk.stagnated))
                   for j in range(p)]
        if not self._abft_on() or Y.size == 0:
            return results, Y
        with self.tracer.span("abft_verify", stage="Solve"):
            self.tracer.count("sdc_checks")
            true_r = np.linalg.norm(G - matvec(Y), axis=0)
            gnorm = np.linalg.norm(G, axis=0)

        def run_gmres_col(j, x0):
            def body(ledger):
                return gmres(matvec, G[:, j],
                             preconditioner=self._precondition, x0=x0,
                             tol=cfg.gmres_tol,
                             restart=cfg.gmres_restart,
                             maxiter=cfg.gmres_maxiter,
                             flexible=(cfg.krylov == "fgmres"),
                             tracer=self.tracer)
            return self._on_root_stage("Solve", body)

        for j in range(p):
            claimed = float(results[j].final_residual)
            if not np.isfinite(claimed):
                claimed = 0.0
            # block results carry no in-run drift flag; judge by the
            # true residual, as a warm restart re-audit would
            suspected = float(true_r[j]) > 100.0 * max(
                claimed, cfg.gmres_tol * float(gnorm[j]))
            if not suspected:
                continue
            detail = (f"true residual {float(true_r[j]):.3e} vs claimed "
                      f"{claimed:.3e} (column {j})")
            err = SdcDetectedError(
                f"Krylov residual drift: {detail}", site="krylov",
                stage="Solve")
            self.tracer.count("sdc_detected")
            self._record("Solve", "sdc-detected", err, detail=detail)
            if not abft.abft_recover(cfg.abft):
                self._record("Solve", "sdc-unrecoverable", err,
                             detail="abft=detect: corruption reported but "
                                    "not repaired; the returned iterate "
                                    "may be corrupt")
                continue
            with self.tracer.span("recover", stage="Solve",
                                  action="sdc-krylov-restart"):
                fresh = run_gmres_col(j, results[j].x)
            suspected2, detail2 = self._krylov_drift(matvec, G[:, j], fresh,
                                                     trust_flag=False)
            results[j] = fresh
            Y[:, j] = fresh.x
            if suspected2 or not fresh.converged:
                self._record("Solve", "sdc-unrecoverable", err,
                             detail="warm restart did not clear the "
                                    "drift: " + detail2)
                continue
            self.tracer.count("sdc_recovered")
            self._record("Solve", "sdc-recovered", err,
                         detail="corrupt Krylov state discarded; GMRES "
                                "warm-restarted from the flagged iterate")
        return results, Y

    def _solve_block_once(self, B: np.ndarray) -> _BlockSolve:
        """One batched hybrid pass in the working system — the block
        mirror of :meth:`_solve_once`: batched forward substitution
        through the subdomain factors, per-column (or block) Krylov on
        the Schur system, batched back substitution."""
        cfg = self.config
        assert self.partition is not None
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.A.shape[0]:
            raise ValueError(f"B must be ({self.A.shape[0]}, nrhs)")
        p = self.partition
        sep = p.separator_vertices
        nrhs = B.shape[1]
        X = np.zeros_like(B)

        if sep.size == 0:
            # no separator: decoupled batched subdomain solves
            rhs_blocks = [B[s.interfaces.vertices][s.perm]
                          for s in self.subdomains]
            for s, ul in zip(self.subdomains,
                             self._block_subdomain_solves(rhs_blocks)):
                X[s.interfaces.vertices[s.perm]] = ul
            gres = [GMRESResult(x=np.empty(0), converged=True, iterations=0)
                    for _ in range(nrhs)]
            return _BlockSolve(X=X, gmres=gres, schur_size=0)

        G = B[sep].copy()
        # G^ = G - sum F_l D_l^{-1} f_l : one fan-out for all columns
        rhs_blocks = [B[s.interfaces.vertices][s.perm]
                      for s in self.subdomains]
        d_solutions = self._block_subdomain_solves(rhs_blocks)
        with self.machine.on_root("Solve"):
            for s, UL in zip(self.subdomains, d_solutions):
                Fp = s.interfaces.F_hat[:, s.perm].tocsr()
                G[s.interfaces.f_rows] -= Fp @ UL
            subs = [s.interfaces for s in self.subdomains]
            facs = [s.factors for s in self.subdomains]
            perms = [s.perm for s in self.subdomains]
            matvec = implicit_schur_matvec(p.C(), subs, facs, perms)
        results, Y = self._solve_schur_block(matvec, G)
        for j in range(nrhs):
            self.verifier.after_krylov(matvec, G[:, j], results[j])
        X[sep] = Y

        # back substitution: U_l = D^{-1}(F_l - E_l Y), again batched
        with self.machine.on_root("Solve"):
            rhs2 = [s.interfaces.E_hat[s.perm].tocsr()
                    @ Y[s.interfaces.e_cols] for s in self.subdomains]
        corrections = self._block_subdomain_solves(rhs2)
        for s, UL0, DL in zip(self.subdomains, d_solutions, corrections):
            X[s.interfaces.vertices[s.perm]] = UL0 - DL
        return _BlockSolve(X=X, gmres=results, schur_size=int(sep.size))

    def _solve_block(self, B: np.ndarray) -> _BlockSolve:
        """One batched hybrid solve in the working system, under the
        same solve-phase ABFT sweep as :meth:`_solve`."""
        return self._run_with_factor_sweep(
            lambda: self._solve_block_once(B))

    def _correction_solve_block(self, R: np.ndarray) -> np.ndarray:
        """Block counterpart of :meth:`_correction_solve`: approximate
        ``A D = R`` columnwise with one batched hybrid pass — the inner
        solver of blockwise iterative refinement."""
        blk = self._solve_block(self._to_working_rhs(R))
        return self._from_working_solution(blk.X)

    def _finalize_block(self, B: np.ndarray, X: np.ndarray):
        """Post-solve certification for a block — columnwise
        :meth:`_finalize` semantics off a single residual matrix:
        blockwise iterative refinement (one batched correction solve
        per sweep instead of one solve per column), per-column
        CertifiedAccuracy, and the true per-column residual norms of
        ``A_input X = B``."""
        cfg = self.config
        accs: list[CertifiedAccuracy] | None = None
        if cfg.refine_maxiter > 0 or cfg.condest:
            with self.tracer.span("refine_block", nrhs=B.shape[1]):
                X, accs = refine_block(
                    self.A_input, B, X, self._correction_solve_block,
                    tol=cfg.refine_tol, certify_tol=cfg.certify_tol,
                    maxiter=cfg.refine_maxiter,
                    cond_est=self._cond_for_bound(),
                    on_stall=self._on_refine_stall)
                for acc in accs:
                    self.tracer.count("refine_steps", acc.refine_steps)
                    self.tracer.count("refine_certified",
                                      int(acc.certified))
            for j, acc in enumerate(accs):
                if acc.stagnated and not acc.certified:
                    self._record(
                        "Refine", "refine-stall",
                        RefinementStallError("refinement stagnated "
                                             "uncertified", berr=acc.berr),
                        detail=f"berr={acc.berr:.2e} after "
                               f"{acc.refine_steps} steps "
                               f"({acc.escalations} escalations; "
                               f"column {j})")
            if accs:
                # last column wins, matching sequential per-column solves
                self.recovery.accuracy = accs[-1].to_dict()
        R = B - self.A_input @ X
        res_norms = [float(np.linalg.norm(R[:, j])
                           / max(np.linalg.norm(B[:, j]), 1e-300))
                     for j in range(B.shape[1])]
        return X, accs, res_norms

    def solve_block(self, B: np.ndarray) -> BlockResult:
        """Solve ``A X = B`` for a block of right-hand sides in one
        batched pass (setup() is run on demand). Rejects ``B``
        containing NaN/Inf. Returns a :class:`BlockResult` — a drop-in
        sequence of per-column :class:`PDSLinResult` (iteration,
        indexing, ``len()``, list equality all preserved) that also
        exposes the ``(n, nrhs)`` solution block ``.X`` and the
        aggregate accuracy certificate ``.accuracy``.

        Where :meth:`solve` dispatches, substitutes, and refines one
        column at a time, this path amortizes every stage over the
        block: one backend fan-out per substitution pass carrying all
        columns (factors ship once, not once per column), Schur solves
        seeded column-to-column (``krylov_seed``; or one block-GMRES
        run with ``block_gmres=True``), blockwise iterative refinement
        off a single residual matrix, and one vectorized ABFT audit
        ``1^T A X = 1^T B`` per triangular-solve block.

        Parity contract: column ``j`` of the returned solutions is
        bit-identical to ``solve(B[:, j])`` on direct paths (batched
        triangular solves and the numerics transform are columnwise
        bit-exact), and equally certified — same CertifiedAccuracy
        machinery, same tolerances — on seeded-Krylov paths, where the
        warm start changes the iterate trajectory but not the
        convergence contract."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2:
            raise ValueError("B must be a 2-D (n, nrhs) array")
        check_finite(B, "B")
        if not self._is_setup:
            self.setup()
        if B.shape[0] != self.A_input.shape[0]:
            raise ValueError(f"B must be ({self.A_input.shape[0]}, nrhs)")
        nrhs = B.shape[1]
        if nrhs == 0:
            return BlockResult(X=np.empty((self.A_input.shape[0], 0)),
                               results=[])
        t0 = time.perf_counter()
        with self.tracer.span("solve_block", nrhs=nrhs):
            blk = self._solve_block(self._to_working_rhs(B))
            X = self._from_working_solution(blk.X)
            X, accs, res_norms = self._finalize_block(B, X)
            out = []
            for j in range(nrhs):
                res = PDSLinResult(
                    x=X[:, j].copy(), converged=blk.gmres[j].converged,
                    iterations=blk.gmres[j].iterations,
                    residual_norm=res_norms[j],
                    schur_size=blk.schur_size, machine=self.machine,
                    gmres=blk.gmres[j], recovery=self.recovery)
                if accs is not None:
                    res.accuracy = accs[j]
                self.verifier.after_solve(self.A_input, B[:, j], X[:, j],
                                          res_norms[j])
                out.append(res)
        wall = time.perf_counter() - t0
        if wall > 0.0:
            self.tracer.count("noise:rhs_per_s", nrhs / wall)
        return BlockResult(X=X, results=out,
                           accuracy=BlockResult.aggregate_accuracy(accs))

    def solve_multiple(self, B: np.ndarray) -> BlockResult:
        """Solve ``A x_j = B[:, j]`` for every column, reusing the setup
        (the factorizations amortize across right-hand sides). Rejects
        ``B`` containing NaN/Inf.

        Delegates to the batched :meth:`solve_block` path: one fan-out
        per substitution stage carrying all columns instead of one full
        :meth:`solve` per column."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.A.shape[0]:
            raise ValueError(f"B must be ({self.A.shape[0]}, nrhs)")
        check_finite(B, "B")
        return self.solve_block(B)
