"""Hybrid solver layer: GMRES, Schur assembly, and the PDSLin pipeline."""

from repro.solver.bicgstab import BiCGSTABResult, bicgstab
from repro.solver.gmres import GMRESResult, gmres
from repro.solver.interfaces import SubdomainInterfaces, extract_interfaces
from repro.solver.pdslin import (
    BlockResult,
    PDSLin,
    PDSLinConfig,
    PDSLinResult,
    SubdomainComputation,
)
from repro.solver.report import format_report, run_report, save_report
from repro.solver.runtime import RuntimeOptions
from repro.solver.schur import (
    assemble_approximate_schur,
    drop_small_entries,
    implicit_schur_matvec,
)

__all__ = [
    "GMRESResult", "gmres",
    "BiCGSTABResult", "bicgstab",
    "SubdomainInterfaces", "extract_interfaces",
    "assemble_approximate_schur", "drop_small_entries", "implicit_schur_matvec",
    "PDSLinConfig", "PDSLin", "PDSLinResult", "BlockResult",
    "RuntimeOptions", "SubdomainComputation",
    "run_report", "format_report", "save_report",
]
