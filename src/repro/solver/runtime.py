"""Consolidated runtime options for :class:`repro.solver.PDSLin`.

The solver's constructor grew one keyword per subsystem PR — tracer,
backend, fault plan, retry policy, verifier, checkpoint writer/policy,
resume directory, task deadline, speculation — a 12-knob surface that
every embedding (the serving layer, the chaos/parity/restart CLIs, the
top-level :func:`repro.solve`) had to mirror. :class:`RuntimeOptions`
packages them as one value object::

    from repro.solver import PDSLin, RuntimeOptions

    rt = RuntimeOptions(tracer=tracer, backend="process:4",
                        task_deadline_s=30.0, speculation=True)
    solver = PDSLin(A, config, runtime=rt)

The fields split *what* to solve (``PDSLinConfig``: drop tolerances,
partitioner, Krylov method — part of the solver's numeric identity and
of checkpoint/session fingerprints) from *how* to run it
(``RuntimeOptions``: observability, execution backend, resilience
machinery — none of which changes the answer). The old per-knob
keywords still work as thin shims that emit ``DeprecationWarning``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # imported lazily to keep this module dependency-free
    from repro.obs.tracer import Tracer
    from repro.parallel.exec import Executor, SpeculationPolicy
    from repro.resilience import (
        CheckpointManager,
        CheckpointPolicy,
        FaultPlan,
        RetryPolicy,
    )
    from repro.verify.invariants import Verifier

__all__ = ["RuntimeOptions"]


@dataclass
class RuntimeOptions:
    """How a :class:`~repro.solver.PDSLin` run executes — everything
    orthogonal to the numeric configuration.

    - ``tracer`` — a :class:`repro.obs.Tracer` recording spans/counters
      (None = no-op instrumentation).
    - ``backend`` — an :class:`~repro.parallel.exec.Executor`, a spec
      string (``"serial"``/``"thread"``/``"process[:N]"``), or None to
      consult ``REPRO_BACKEND``.
    - ``verify`` — ``True`` (or a custom
      :class:`~repro.verify.invariants.Verifier`) arms the post-stage
      invariant checks.
    - ``fault_plan`` / ``retry_policy`` — seeded fault injection on the
      simulated machine and the retry budget of the recovery ladder.
    - ``checkpoint`` / ``checkpoint_policy`` / ``resume`` — the
      checkpoint writer (directory or
      :class:`~repro.resilience.CheckpointManager`), its cadence, and a
      directory to restore bit-exactly from.
    - ``task_deadline_s`` / ``speculation`` — straggler mitigation of
      parallel fan-outs: a per-batch deadline (timed-out work redone on
      the root) and/or speculative duplicate execution
      (:class:`~repro.parallel.exec.SpeculationPolicy`, or ``True`` for
      the defaults).
    """

    tracer: Optional["Tracer"] = None
    backend: Union["Executor", str, None] = None
    verify: Union[bool, "Verifier"] = False
    fault_plan: Optional["FaultPlan"] = None
    retry_policy: Optional["RetryPolicy"] = None
    checkpoint: Union["CheckpointManager", str, None] = None
    checkpoint_policy: Optional["CheckpointPolicy"] = None
    resume: Optional[str] = None
    task_deadline_s: Optional[float] = None
    speculation: Union["SpeculationPolicy", bool, None] = None

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The consolidated option names, in declaration order (the
        legacy ``PDSLin`` keywords shimmed onto this class)."""
        return tuple(f.name for f in fields(cls))
