"""Per-subdomain setup tasks, shared by every execution backend.

The numeric bodies of the LU(D) and Comp(S) stages live here as
module-level functions so that the serial path and the thread/process
backends of :mod:`repro.parallel.exec` execute *the same code*:
:class:`repro.solver.PDSLin` calls :func:`run_subdomain_lu` /
:func:`run_subdomain_comp` inline on the serial backend, and ships a
:class:`SubdomainTask` to :func:`run_subdomain_setup` (the picklable
worker entry point) on the parallel ones. Same code + fixed-order
reduction in the parent = bit-identical results on every backend.

What crosses the process boundary:

- inbound: the compressed interfaces (CSR blocks), the solver config,
  the symbolic ordering (resolved parent-side so the shared
  :class:`repro.lu.SymbolicCache` keeps working), and the drop
  tolerance to use;
- outbound: the factors (SuperLU handle stripped — the parent
  re-attaches one via :func:`repro.lu.attach_handle` using the recorded
  ``handle_thresh`` recipe), the interface solutions and local Schur
  update, the condition estimate, per-stage wall seconds, and the
  worker-local :class:`Tracer` spans/counters plus
  :class:`RecoveryReport` events for the parent to merge.

``REPRO_CHAOS_CRASH_SUBDOMAIN`` is a chaos hook: a worker asked to set
up that subdomain hard-exits, exercising the crash-failover path end to
end (used by the resilience tests and available for chaos drills).
``REPRO_CHAOS_STRAGGLE_SUBDOMAIN`` is its slow sibling: setup of that
subdomain sleeps ``REPRO_CHAOS_STRAGGLE_S`` seconds (default 0.25)
before running, exercising the deadline/speculation mitigation of
:mod:`repro.parallel.exec` on any backend. The
``REPRO_CHAOS_BITFLIP_*`` seam (:mod:`repro.resilience.abft`) with
``target=lu`` corrupts the factor data of its victim subdomain right
after factorization — silently, so only the ABFT checksum audit
(when ``cfg.abft`` enables it) can catch it before results ship. All
seams are validated up front: a malformed value raises a
``ValueError`` naming the variable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro import envcfg
from repro.core.rhs_reorder import (
    hypergraph_column_order,
    natural_column_order,
    postorder_column_order,
)
from repro.lu import (
    LUFactors,
    PaddingStats,
    SupernodalLower,
    attach_handle,
    blocked_triangular_solve,
    lu_flop_count,
    partition_columns,
    solution_pattern,
)
from repro.numerics.condest import condest_from_factors
from repro.obs.tracer import NULL_TRACER, SpanRecord, Tracer
from repro.ordering import elimination_tree, minimum_degree, postorder
from repro.parallel.exec import in_worker, transport_checksum_enabled
from repro.resilience import RecoveryReport, factorize_resilient
from repro.resilience import abft
from repro.resilience.errors import SdcDetectedError
from repro.resilience.report import emit_recovery
from repro.solver.interfaces import SubdomainInterfaces
from repro.sparse import symmetrized
from repro.verify.invariants import NULL_VERIFIER

__all__ = [
    "SubdomainLU", "SubdomainComp", "SubdomainTask", "SubdomainSetupResult",
    "BlockSolveTask", "BlockSolveResult", "run_block_solve",
    "factors_token",
    "order_subdomain", "run_subdomain_lu", "run_subdomain_comp",
    "run_subdomain_setup", "replay_subdomain_verification",
    "pack_subdomain_state", "unpack_subdomain_state", "validate_chaos_env",
    "ENV_CRASH_SUBDOMAIN", "ENV_STRAGGLE_SUBDOMAIN", "ENV_STRAGGLE_S",
]

#: Chaos hook: when set to an integer ℓ, a worker process entering
#: setup of subdomain ℓ dies with ``os._exit`` (no cleanup, simulating
#: a segfault/OOM kill). Parent-side recovery must absorb it.
ENV_CRASH_SUBDOMAIN = "REPRO_CHAOS_CRASH_SUBDOMAIN"
#: Chaos hook: setup of subdomain ℓ sleeps before doing any work —
#: a deterministic straggler for deadline/speculation drills.
ENV_STRAGGLE_SUBDOMAIN = "REPRO_CHAOS_STRAGGLE_SUBDOMAIN"
#: Straggler sleep in seconds (default 0.25).
ENV_STRAGGLE_S = "REPRO_CHAOS_STRAGGLE_S"


def _env_subdomain(name: str) -> Optional[int]:
    """A chaos env var holding a subdomain index, validated through the
    :mod:`repro.envcfg` registry."""
    return envcfg.get(name)


def _env_straggle_s() -> float:
    return envcfg.get(ENV_STRAGGLE_S)


def validate_chaos_env() -> None:
    """Fail fast on malformed chaos env values — called parent-side
    before work is shipped, so a typo'd variable raises one clear
    ``ValueError`` instead of k opaque task failures."""
    _env_subdomain(ENV_CRASH_SUBDOMAIN)
    _env_subdomain(ENV_STRAGGLE_SUBDOMAIN)
    _env_straggle_s()
    abft.validate_bitflip_env()
    transport_checksum_enabled()


def order_subdomain(D: sp.csr_matrix, *, method: str = "md",
                    seed=0) -> np.ndarray:
    """Fill-reducing ordering followed by e-tree postorder (the paper's
    setting is minimum degree; 'nd'/'rcm' are ablations). A pure
    function of the pattern (+ method/seed), hence cacheable."""
    if method == "nd":
        from repro.ordering import nested_dissection_ordering
        base = nested_dissection_ordering(D, seed=seed)
    elif method == "rcm":
        from repro.ordering import reverse_cuthill_mckee
        base = reverse_cuthill_mckee(D)
    else:
        base = minimum_degree(D)
    Dm = D[base][:, base].tocsr()
    parent = elimination_tree(symmetrized(Dm))
    po = postorder(parent)
    return base[po]


@dataclass
class SubdomainLU:
    """LU(D) output for one subdomain.

    ``handle_thresh`` is the handle recipe: the ``diag_pivot_thresh``
    of the SuperLU rung that produced the factors, or ``None`` when the
    static-pivoting rung (no handle in any backend) ran.
    """

    ell: int
    perm: np.ndarray
    factors: LUFactors
    flops: int
    cond: Optional[float] = None
    handle_thresh: Optional[float] = None


@dataclass
class SubdomainComp:
    """Comp(S) output for one subdomain.

    ``t_colsum`` is the ABFT column-sum checksum of ``T_tilde``
    recorded at creation (None with ``abft=off``); the parent verifies
    it before assembling S̃, catching corruption of the local Schur
    update anywhere between the worker and assembly.
    """

    ell: int
    G_tilde: sp.csc_matrix
    WT_tilde: sp.csc_matrix
    T_tilde: sp.csr_matrix
    padding_G: PaddingStats
    padding_W: PaddingStats
    ops: int
    drop_tol: float
    t_colsum: Optional[np.ndarray] = None


@dataclass
class SubdomainTask:
    """One shipped unit of setup work (always LU-then-Comp order).

    ``lu`` carries a precomputed LU part for comp-only re-runs (the
    speculative drop-tolerance round 2); ``run_comp`` is False when the
    fault plan already failed Comp(S) over to the root.
    """

    ell: int
    interfaces: SubdomainInterfaces
    cfg: object                      # PDSLinConfig (picklable dataclass)
    separator_size: int
    drop_interface: float
    perm: Optional[np.ndarray] = None
    lu: Optional[SubdomainLU] = None
    run_comp: bool = True
    trace: bool = False


@dataclass
class SubdomainSetupResult:
    """Worker return value: results plus the artifacts to merge."""

    ell: int
    lu: Optional[SubdomainLU] = None
    comp: Optional[SubdomainComp] = None
    events: list = field(default_factory=list)     # RecoveryEvent
    perturbed_pivots: int = 0
    lu_wall_s: float = 0.0
    comp_wall_s: float = 0.0
    lu_spans: List[SpanRecord] = field(default_factory=list)
    lu_counters: dict = field(default_factory=dict)
    comp_spans: List[SpanRecord] = field(default_factory=list)
    comp_counters: dict = field(default_factory=dict)


def run_subdomain_lu(sub: SubdomainInterfaces, cfg, *, ell: int,
                     separator_size: int, perm: np.ndarray | None = None,
                     report: RecoveryReport | None = None,
                     tracer: Tracer = NULL_TRACER,
                     verifier=NULL_VERIFIER) -> SubdomainLU:
    """The LU(D) body: order, factor through the pivoting ladder,
    estimate the condition number. Identical on every backend."""
    if report is None:
        report = RecoveryReport()
    with tracer.span("factor_subdomain", l=ell):
        verifier.after_interfaces(sub, separator_size)
        if perm is None:
            perm = order_subdomain(sub.D, method=cfg.subdomain_ordering,
                                   seed=cfg.seed)
        Dp = sub.D[perm][:, perm].tocsc()
        # the pivoting ladder: threshold -> full -> static perturbation
        # (records its own recovery events on `report`)
        n_events = len(report.events)
        factors, _ = factorize_resilient(
            Dp, diag_pivot_thresh=cfg.diag_pivot_thresh,
            stage="LU(D)", subdomain=ell, report=report, tracer=tracer)
        handle_thresh: Optional[float] = cfg.diag_pivot_thresh
        for ev in report.events[n_events:]:
            if ev.action == "full-pivot":
                handle_thresh = 1.0
            elif ev.action == "static-pivot":
                handle_thresh = None   # reference kernel: no handle exists
        verifier.after_subdomain_lu(ell, Dp, factors)
        mode = getattr(cfg, "abft", "off")
        if abft.abft_detect(mode):
            abft.attach_factor_checksums(factors, Dp)
        # chaos seam fires regardless of the abft mode — corruption
        # does not care whether the defenses are on
        abft.maybe_bitflip("lu", (factors.L.data, factors.U.data),
                           subdomain=ell)
        if abft.abft_detect(mode):
            factors, handle_thresh = _audit_subdomain_factors(
                Dp, factors, cfg, mode, ell=ell,
                handle_thresh=handle_thresh, report=report, tracer=tracer)
        flops = lu_flop_count(factors)
        tracer.count("subdomain_dim", int(sub.D.shape[0]))
        tracer.count("subdomain_nnz", int(sub.D.nnz))
        cond = None
        if cfg.condest:
            cond = condest_from_factors(Dp, factors)
            tracer.count("cond_est_subdomain", cond)
    return SubdomainLU(ell=ell, perm=perm, factors=factors, flops=flops,
                       cond=cond, handle_thresh=handle_thresh)


def _audit_subdomain_factors(Dp, factors, cfg, mode, *, ell, handle_thresh,
                             report, tracer):
    """The worker-side ABFT audit of freshly produced factors, run
    before results ship (and on the serial path, before they are
    used). On a checksum violation: record ``sdc-detected``; in
    ``detect+recover`` mode refactorize *this subdomain only* from the
    pristine ``Dp`` and re-verify; otherwise record the corruption as
    ``sdc-unrecoverable`` (degrading) and keep going honestly."""
    with tracer.span("abft_verify", stage="LU(D)", l=ell):
        tracer.count("sdc_checks")
        audit = abft.verify_factors(factors)
        if audit.ok:
            return factors, handle_thresh
        tracer.count("sdc_detected")
        err = SdcDetectedError(
            f"subdomain LU factor checksum violated: {audit.detail}",
            site="lu", rel=audit.rel, stage="LU(D)", subdomain=ell)
        emit_recovery(tracer, report, "LU(D)", "sdc-detected", err,
                      detail=audit.detail, subdomain=ell)
        if not abft.abft_recover(mode):
            emit_recovery(tracer, report, "LU(D)", "sdc-unrecoverable", err,
                          detail="abft=detect: corruption reported but not "
                                 "repaired; factors may be corrupt",
                          subdomain=ell)
            return factors, handle_thresh
        with tracer.span("recover", stage="LU(D)", action="sdc-refactorize"):
            n_events = len(report.events)
            fresh, _ = factorize_resilient(
                Dp, diag_pivot_thresh=cfg.diag_pivot_thresh,
                stage="LU(D)", subdomain=ell, report=report, tracer=tracer)
            new_thresh: Optional[float] = cfg.diag_pivot_thresh
            for ev in report.events[n_events:]:
                if ev.action == "full-pivot":
                    new_thresh = 1.0
                elif ev.action == "static-pivot":
                    new_thresh = None
            abft.attach_factor_checksums(fresh, Dp)
            tracer.count("sdc_checks")
            again = abft.verify_factors(fresh)
        if not again.ok:
            emit_recovery(tracer, report, "LU(D)", "sdc-unrecoverable", err,
                          detail="refactorized subdomain still fails "
                                 "verification", subdomain=ell)
            raise SdcDetectedError(
                f"subdomain {ell} fails factor verification even after "
                f"refactorization: {again.detail}",
                site="lu", rel=again.rel, stage="LU(D)", subdomain=ell)
        tracer.count("sdc_recovered")
        emit_recovery(tracer, report, "LU(D)", "sdc-recovered", err,
                      detail="subdomain refactorized in place from its "
                             "pristine interface matrix", subdomain=ell)
        return fresh, new_thresh


def _column_order(cfg, E_rows_factored: sp.csr_matrix,
                  G_pattern: sp.csr_matrix, tracer: Tracer) -> np.ndarray:
    m = E_rows_factored.shape[1]
    if cfg.rhs_ordering == "natural" or m <= cfg.block_size:
        return natural_column_order(max(m, 1))[:m]
    if cfg.rhs_ordering == "postorder":
        return postorder_column_order(E_rows_factored)
    res = hypergraph_column_order(G_pattern, cfg.block_size,
                                  tau=cfg.quasi_dense_tau, seed=cfg.seed,
                                  tracer=tracer)
    return res.order


def _repack(cfg, L_like: sp.csc_matrix, *,
            unit_diagonal: bool) -> SupernodalLower:
    """Supernodal repack, optionally amalgamated."""
    snodes = None
    if cfg.supernode_relax > 0.0:
        from repro.lu import relaxed_supernodes
        snodes = relaxed_supernodes(L_like, relax=cfg.supernode_relax)
    return SupernodalLower.from_csc(L_like, unit_diagonal=unit_diagonal,
                                    snodes=snodes)


def _solve_interface(cfg, snl: SupernodalLower, B_sparse: sp.csr_matrix,
                     L_like: sp.csc_matrix, drop_tol: float,
                     tracer: Tracer):
    """Blocked triangular solve of one interface block (already in
    factored row positions). The symbolic pattern uses the e-tree
    fill-path model (paper Section IV-A) — a safe superset of the exact
    reach, far cheaper on large interfaces."""
    Gpat = solution_pattern(L_like, B_sparse, method="etree")
    order = _column_order(cfg, B_sparse, Gpat, tracer)
    parts = partition_columns(order, cfg.block_size)
    res = blocked_triangular_solve(snl, B_sparse, Gpat, parts,
                                   drop_tol=drop_tol, tracer=tracer)
    return res.X, res.padding


def run_subdomain_comp(sub: SubdomainInterfaces, cfg, lu: SubdomainLU, *,
                       drop_tol: float, tracer: Tracer = NULL_TRACER,
                       verifier=NULL_VERIFIER) -> SubdomainComp:
    """The Comp(S) body: blocked interface solves G = L^-1 P E^ and
    W^T = U^-T (F^ P~)^T plus the local update T~ = W~^T G~."""
    factors, perm = lu.factors, lu.perm
    with tracer.span("interface_solve", l=lu.ell):
        # G = L^{-1} P E^
        Epp = factors.permute_rows(sub.E_hat[perm].tocsr())
        snl_L = _repack(cfg, factors.L, unit_diagonal=True)
        G_tilde, pad_G = _solve_interface(cfg, snl_L, Epp, factors.L,
                                          drop_tol, tracer)
        verifier.after_interface_solve(factors.L, Epp, G_tilde, drop_tol)
        # W^T = U^{-T} (F^ P~)^T ; U^T is lower triangular, non-unit
        Fc = sub.F_hat[:, perm].tocsr()[:, factors.perm_c].tocsr()
        UT = factors.U.T.tocsc()
        snl_U = _repack(cfg, UT, unit_diagonal=False)
        WT_tilde, pad_W = _solve_interface(cfg, snl_U, Fc.T.tocsr(), UT,
                                           drop_tol, tracer)
        verifier.after_interface_solve(UT, Fc.T.tocsr(), WT_tilde, drop_tol)
        T_tilde = (WT_tilde.T @ G_tilde).tocsr()
        ops = pad_G.total_block_entries * 2 + pad_W.total_block_entries * 2
        t_colsum = None
        if abft.abft_detect(getattr(cfg, "abft", "off")):
            # contribution checksum, verified parent-side before S̃
            # assembly (catches corruption between here and there)
            t_colsum = abft.checksum_matrix(T_tilde)
    return SubdomainComp(ell=lu.ell, G_tilde=G_tilde, WT_tilde=WT_tilde,
                         T_tilde=T_tilde, padding_G=pad_G, padding_W=pad_W,
                         ops=ops, drop_tol=drop_tol, t_colsum=t_colsum)


def run_subdomain_setup(task: SubdomainTask) -> SubdomainSetupResult:
    """Worker entry point: LU (unless precomputed) then Comp, each
    under a local tracer whose spans/counters ship back separately so
    the parent can merge exactly the parts it accepts."""
    crash = _env_subdomain(ENV_CRASH_SUBDOMAIN)
    if crash == task.ell and in_worker():
        os._exit(17)  # simulated hard crash (chaos hook)
    straggle = _env_subdomain(ENV_STRAGGLE_SUBDOMAIN)
    if straggle == task.ell:
        time.sleep(_env_straggle_s())  # simulated straggler (chaos hook)

    out = SubdomainSetupResult(ell=task.ell)
    report = RecoveryReport()
    lu = task.lu
    if lu is None:
        tracer = Tracer() if task.trace else NULL_TRACER
        t0 = time.perf_counter()
        lu = run_subdomain_lu(task.interfaces, task.cfg, ell=task.ell,
                              separator_size=task.separator_size,
                              perm=task.perm, report=report, tracer=tracer)
        out.lu_wall_s = time.perf_counter() - t0
        out.lu = lu
        if task.trace:
            out.lu_spans = list(tracer.spans)
            out.lu_counters = dict(tracer.counters)
    if task.run_comp:
        tracer = Tracer() if task.trace else NULL_TRACER
        t0 = time.perf_counter()
        comp = run_subdomain_comp(task.interfaces, task.cfg, lu,
                                  drop_tol=task.drop_interface,
                                  tracer=tracer)
        out.comp_wall_s = time.perf_counter() - t0
        out.comp = comp
        if task.trace:
            out.comp_spans = list(tracer.spans)
            out.comp_counters = dict(tracer.counters)
    out.events = list(report.events)
    out.perturbed_pivots = report.perturbed_pivots
    return out


# -- batched multi-RHS solve tasks ------------------------------------------
#
# The solve phase of PDSLin.solve_block ships ONE task per subdomain
# carrying the whole (n_l, nrhs) right-hand-side block: pickling, the
# sealed-transport digest, and the worker round trip amortize over the
# block instead of being paid per column. The worker runs the exact
# solve primitive the serial path runs (LUFactors.solve on a 2-D
# block, columnwise bit-identical to per-column solves), so bit-parity
# across backends holds by the same argument as for setup tasks.

@dataclass
class BlockSolveTask:
    """One shipped unit of batched triangular-solve work.

    ``rhs`` is the (n_l, nrhs) block already in factored (permuted)
    row order. ``Dp``/``handle_thresh`` are the SuperLU handle recipe:
    factors pickle handle-less, so the worker re-attaches one via
    :func:`repro.lu.attach_handle` (bit-identical by its pivot
    cross-check contract), memoized process-wide under ``token`` so
    repeated fan-outs against the same factors skip the refactorization.
    ``handle_thresh=None`` means the static-pivot rung produced the
    factors — no handle exists on any backend and the explicit
    triangular-solve path runs everywhere.
    """

    ell: int
    rhs: np.ndarray
    factors: LUFactors
    Dp: Optional[sp.csc_matrix] = None
    handle_thresh: Optional[float] = None
    token: str = ""


@dataclass
class BlockSolveResult:
    """Worker return value: the solution block plus the worker-local
    ABFT solve-audit counters for the parent to fold into the factor
    checksums (shipped explicitly — on the process backend the worker's
    checksum object is a pickled copy the parent never sees)."""

    ell: int
    X: np.ndarray
    wall_s: float = 0.0
    audit_checks: int = 0
    audit_violations: int = 0
    audit_worst_rel: float = 0.0
    audit_detail: str = ""


def factors_token(factors: LUFactors) -> str:
    """Identity of a factor pair for the worker-side handle cache:
    blake2b over the factor values and permutations. Any refactorization
    (SDC recovery, update_matrix) changes the token and misses the
    cache."""
    import hashlib
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(factors.L.data).tobytes())
    h.update(np.ascontiguousarray(factors.U.data).tobytes())
    h.update(np.ascontiguousarray(factors.perm_r).tobytes())
    h.update(np.ascontiguousarray(factors.perm_c).tobytes())
    return h.hexdigest()


#: Worker-process handle cache: token -> SuperLU handle. Bounded FIFO;
#: entries outlive one ``map`` call, so the repeated solve-phase
#: fan-outs of a block solve (forward, backward, refinement sweeps)
#: attach each subdomain's handle once per worker instead of once per
#: fan-out.
_HANDLE_CACHE: dict = {}
_HANDLE_CACHE_MAX = 64


def _cached_handle(task: BlockSolveTask):
    handle = _HANDLE_CACHE.get(task.token)
    if handle is not None:
        return handle
    if task.Dp is None:
        return None
    attach_handle(task.factors, task.Dp,
                  diag_pivot_thresh=task.handle_thresh)
    handle = task.factors.handle
    if len(_HANDLE_CACHE) >= _HANDLE_CACHE_MAX:
        _HANDLE_CACHE.pop(next(iter(_HANDLE_CACHE)))
    _HANDLE_CACHE[task.token] = handle
    return handle


def run_block_solve(task: BlockSolveTask) -> BlockSolveResult:
    """Worker entry point for one subdomain's batched triangular solve
    (both the forward ``D^{-1} f`` and backward ``D^{-1} E y`` passes
    ship through here). Honors the same chaos crash/straggle hooks as
    setup tasks."""
    crash = _env_subdomain(ENV_CRASH_SUBDOMAIN)
    if crash == task.ell and in_worker():
        os._exit(17)  # simulated hard crash (chaos hook)
    straggle = _env_subdomain(ENV_STRAGGLE_SUBDOMAIN)
    if straggle == task.ell:
        time.sleep(_env_straggle_s())  # simulated straggler (chaos hook)

    factors = task.factors
    if factors.handle is None and task.handle_thresh is not None:
        factors.handle = _cached_handle(task)
    # swap in a fresh audit-counter view sharing the checksum arrays:
    # on the thread backend `factors.checksums` IS the parent's object,
    # and the parent folds the shipped counters afterwards — auditing
    # onto the shared object directly would double-count
    orig = factors.checksums
    local = None
    if orig is not None:
        local = abft.FactorChecksums(
            colsum_L=orig.colsum_L, colsum_U=orig.colsum_U,
            colsum_A=orig.colsum_A, abs_colsum_A=orig.abs_colsum_A,
            identity_den=orig.identity_den,
            base_identity_rel=orig.base_identity_rel, armed=orig.armed)
        factors.checksums = local
    t0 = time.perf_counter()
    try:
        X = factors.solve(task.rhs)
    finally:
        factors.checksums = orig
    wall = time.perf_counter() - t0
    out = BlockSolveResult(ell=task.ell, X=X, wall_s=wall)
    if local is not None:
        out.audit_checks = local.checks
        out.audit_violations = local.violations
        out.audit_worst_rel = local.worst_rel
        out.audit_detail = local.last_detail
    return out


def replay_subdomain_verification(sub: SubdomainInterfaces, cfg,
                                  lu: SubdomainLU,
                                  comp: Optional[SubdomainComp], *,
                                  verifier, separator_size: int) -> None:
    """Run the ``verify=`` invariant hooks on a *reassembled* worker
    result. Workers run with a null verifier (hooks are stateful and
    root-owned); the parent replays them here over the shipped-back
    matrices so parallel runs keep exactly the serial guarantees."""
    if not verifier.enabled:
        return
    verifier.after_interfaces(sub, separator_size)
    perm, factors = lu.perm, lu.factors
    Dp = sub.D[perm][:, perm].tocsc()
    verifier.after_subdomain_lu(lu.ell, Dp, factors)
    if comp is not None:
        Epp = factors.permute_rows(sub.E_hat[perm].tocsr())
        verifier.after_interface_solve(factors.L, Epp, comp.G_tilde,
                                       comp.drop_tol)
        Fc = sub.F_hat[:, perm].tocsr()[:, factors.perm_c].tocsr()
        UT = factors.U.T.tocsc()
        verifier.after_interface_solve(UT, Fc.T.tocsr(), comp.WT_tilde,
                                       comp.drop_tol)


# -- checkpoint (de)serialization ------------------------------------------
#
# One completed subdomain -> one flat dict of numpy arrays (an npz
# shard of repro.resilience.checkpoint). Everything round-trips
# bit-exactly: the arrays are stored raw, optional scalars carry an
# explicit presence flag, and the SuperLU handle is (as across process
# boundaries) not stored — the parent re-attaches one deterministically
# via attach_handle using the recorded handle_thresh recipe.

def _pack_padding(out: dict, name: str, pad: PaddingStats) -> None:
    out[f"{name}:totals"] = np.asarray(
        [pad.total_padded, pad.total_block_entries], dtype=np.int64)
    out[f"{name}:per_part_padded"] = np.asarray(pad.per_part_padded,
                                                dtype=np.int64)
    out[f"{name}:per_part_entries"] = np.asarray(pad.per_part_entries,
                                                 dtype=np.int64)


def _unpack_padding(z, name: str) -> PaddingStats:
    totals = z[f"{name}:totals"]
    return PaddingStats(
        total_padded=int(totals[0]), total_block_entries=int(totals[1]),
        per_part_padded=tuple(int(v) for v in
                              z[f"{name}:per_part_padded"]),
        per_part_entries=tuple(int(v) for v in
                               z[f"{name}:per_part_entries"]))


def pack_subdomain_state(lu: SubdomainLU, comp: SubdomainComp) -> dict:
    """Flatten one accepted (LU, Comp) pair into npz-ready arrays."""
    from repro.resilience.checkpoint import pack_sparse
    out: dict = {
        "ell": np.int64(lu.ell),
        "perm": np.asarray(lu.perm, dtype=np.int64),
        "flops": np.int64(lu.flops),
        "has_cond": np.int64(lu.cond is not None),
        "cond": np.float64(lu.cond if lu.cond is not None else 0.0),
        "has_handle_thresh": np.int64(lu.handle_thresh is not None),
        "handle_thresh": np.float64(
            lu.handle_thresh if lu.handle_thresh is not None else 0.0),
        "perm_r": np.asarray(lu.factors.perm_r, dtype=np.int64),
        "perm_c": np.asarray(lu.factors.perm_c, dtype=np.int64),
        "ops": np.int64(comp.ops),
        "drop_tol": np.float64(comp.drop_tol),
        "t_colsum": (np.asarray(comp.t_colsum, dtype=np.float64)
                     if comp.t_colsum is not None
                     else np.empty(0, dtype=np.float64)),
    }
    pack_sparse(out, "L", lu.factors.L)
    pack_sparse(out, "U", lu.factors.U)
    pack_sparse(out, "G_tilde", comp.G_tilde)
    pack_sparse(out, "WT_tilde", comp.WT_tilde)
    pack_sparse(out, "T_tilde", comp.T_tilde)
    _pack_padding(out, "padding_G", comp.padding_G)
    _pack_padding(out, "padding_W", comp.padding_W)
    return out


def unpack_subdomain_state(z) -> tuple[SubdomainLU, SubdomainComp]:
    """Rebuild the (LU, Comp) pair from a shard written by
    :func:`pack_subdomain_state`. The factors come back without a
    SuperLU handle (``handle_thresh`` says how to re-attach one)."""
    from repro.resilience.checkpoint import unpack_sparse
    ell = int(z["ell"])
    factors = LUFactors(
        L=unpack_sparse(z, "L").tocsc(),
        U=unpack_sparse(z, "U").tocsc(),
        perm_r=np.asarray(z["perm_r"], dtype=np.int64),
        perm_c=np.asarray(z["perm_c"], dtype=np.int64),
        handle=None)
    lu = SubdomainLU(
        ell=ell, perm=np.asarray(z["perm"], dtype=np.int64),
        factors=factors, flops=int(z["flops"]),
        cond=float(z["cond"]) if int(z["has_cond"]) else None,
        handle_thresh=(float(z["handle_thresh"])
                       if int(z["has_handle_thresh"]) else None))
    comp = SubdomainComp(
        ell=ell,
        G_tilde=unpack_sparse(z, "G_tilde").tocsc(),
        WT_tilde=unpack_sparse(z, "WT_tilde").tocsc(),
        T_tilde=unpack_sparse(z, "T_tilde").tocsr(),
        padding_G=_unpack_padding(z, "padding_G"),
        padding_W=_unpack_padding(z, "padding_W"),
        ops=int(z["ops"]), drop_tol=float(z["drop_tol"]),
        t_colsum=(np.asarray(z["t_colsum"], dtype=np.float64)
                  if "t_colsum" in z and z["t_colsum"].size else None))
    return lu, comp
