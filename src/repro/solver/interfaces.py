"""Subdomain/interface extraction for the Schur-complement pipeline.

From a DBBD partition, each subdomain's local system (paper Section I)

    A_l = [ D_l  E^_l ]
          [ F^_l  0   ]

uses the *compressed* interfaces: ``E^_l`` keeps only nonzero columns
of ``E_l`` and ``F^_l`` only nonzero rows of ``F_l``. The index maps
``e_cols``/``f_rows`` play the role of the interpolation matrices
``R_E``/``R_F`` (never formed explicitly — assembly scatters through
the maps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.dbbd import DBBDPartition
from repro.sparse.patterns import col_nnz, row_nnz

__all__ = ["SubdomainInterfaces", "extract_interfaces"]


@dataclass
class SubdomainInterfaces:
    """Compressed local system of one subdomain.

    Attributes
    ----------
    vertices:
        Original vertex ids of the subdomain (rows/cols of D).
    D:
        (n_l, n_l) interior block.
    E_hat / F_hat:
        Compressed interfaces, (n_l, ne) and (nf, n_l).
    e_cols / f_rows:
        Separator-local indices (0..n_S) of E_hat's columns / F_hat's
        rows — the implicit R_E / R_F maps.
    """

    ell: int
    vertices: np.ndarray
    D: sp.csr_matrix
    E_hat: sp.csr_matrix
    F_hat: sp.csr_matrix
    e_cols: np.ndarray
    f_rows: np.ndarray

    @property
    def dim(self) -> int:
        return self.D.shape[0]

    @property
    def n_interface_cols(self) -> int:
        return int(self.e_cols.size)

    @property
    def n_interface_rows(self) -> int:
        return int(self.f_rows.size)


def extract_interfaces(p: DBBDPartition, ell: int) -> SubdomainInterfaces:
    """Extract the compressed local system of subdomain ``ell``."""
    v = p.subdomain_vertices(ell)
    E = p.E(ell)
    F = p.F(ell)
    e_cols = np.flatnonzero(col_nnz(E))
    f_rows = np.flatnonzero(row_nnz(F))
    return SubdomainInterfaces(
        ell=ell,
        vertices=v,
        D=p.D(ell),
        E_hat=E[:, e_cols].tocsr(),
        F_hat=F[f_rows].tocsr(),
        e_cols=e_cols,
        f_rows=f_rows,
    )
