"""Structured run reports.

Collects everything a reproduction log needs about one PDSLin run —
configuration, partition quality, per-stage times and balance, padding
statistics, Krylov convergence — into one JSON-able dict, plus a
human-readable rendering. The experiment harness and EXPERIMENTS.md
generation build on this.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

from repro.obs.export import stage_metrics
from repro.solver.pdslin import PDSLin, PDSLinResult

__all__ = ["run_report", "block_report", "format_report", "save_report"]


def _jsonable(v: Any) -> Any:
    if isinstance(v, (np.integer,)):
        return int(v)
    if isinstance(v, (np.floating,)):
        return float(v)
    if isinstance(v, np.ndarray):
        return v.tolist()
    return v


def run_report(solver: PDSLin, result: PDSLinResult) -> dict:
    """Summarize a completed solve as a plain dict (JSON-serializable)."""
    if solver.partition is None:
        raise ValueError("solver has not been set up")
    cfg = {k: _jsonable(v)
           for k, v in dataclasses.asdict(solver.config).items()}
    q = solver.partition.quality()
    stages = {s: round(t, 6) for s, t in solver.machine.breakdown().items()}
    balance = {
        s: round(solver.machine.balance_ratio(s), 4)
        for s in ("LU(D)", "Comp(S)")
        if np.any(solver.machine.process_stage_times(s) > 0)
    }
    padding = [
        {
            "subdomain": s.interfaces.ell,
            "dim": s.interfaces.dim,
            "interface_cols": s.interfaces.n_interface_cols,
            "lu_flops": int(s.lu_flops),
            "padded_fraction_G": round(s.padding_G.fraction, 4),
            "padded_fraction_W": round(s.padding_W.fraction, 4),
        }
        for s in solver.subdomains
    ]
    obs = None
    if solver.tracer.enabled and solver.tracer.spans:
        obs = stage_metrics(solver.tracer)
    return {
        "config": cfg,
        "n": int(solver.A_input.shape[0]),
        "nnz": int(solver.A_input.nnz),
        "obs": obs,
        "numerics": solver._prep.to_dict() if solver._prep is not None
        else None,
        "partition": {
            "separator_size": int(q.separator_size),
            "dim_ratio": round(q.dim_ratio, 4),
            "nnz_D_ratio": round(q.nnz_D_ratio, 4),
            "ncol_E_ratio": round(q.ncol_E_ratio, 4),
            "nnz_E_ratio": round(q.nnz_E_ratio, 4),
        },
        "stages": stages,
        "balance": balance,
        "subdomains": padding,
        "solve": {
            "converged": bool(result.converged),
            "iterations": int(result.iterations),
            "residual_norm": float(result.residual_norm),
            "schur_size": int(result.schur_size),
            "certified": bool(result.certified),
            "accuracy": result.accuracy.to_dict()
            if result.accuracy is not None else None,
        },
    }


def block_report(solver: PDSLin, results: list[PDSLinResult]) -> dict:
    """Summarize a completed :meth:`PDSLin.solve_block` run: the usual
    :func:`run_report` (off the last column, whose accuracy block is
    the one the recovery report carries) plus per-column convergence
    and the block throughput counter (``noise:rhs_per_s``, present
    when a tracer ran)."""
    if not results:
        raise ValueError("block_report needs at least one column result")
    rep = run_report(solver, results[-1])
    rhs_per_s = None
    if solver.tracer.enabled:
        v = solver.tracer.counters.get("noise:rhs_per_s")
        if v is not None:
            rhs_per_s = float(v)
    rep["solve_block"] = {
        "nrhs": len(results),
        "all_converged": bool(all(r.converged for r in results)),
        "all_certified": bool(all(r.certified for r in results)),
        "iterations": [int(r.iterations) for r in results],
        "residual_norms": [float(r.residual_norm) for r in results],
        "worst_residual": float(max(r.residual_norm for r in results)),
        "rhs_per_s": rhs_per_s,
    }
    return rep


def format_report(report: dict) -> str:
    """Readable multi-line rendering of :func:`run_report`'s output."""
    lines = [
        f"system: n={report['n']}, nnz={report['nnz']}",
        f"partitioner: {report['config']['partitioner']} "
        f"(metric={report['config']['metric']}, "
        f"scheme={report['config']['scheme']}, k={report['config']['k']})",
        f"separator: {report['partition']['separator_size']}  "
        f"balance dim/nnzD/colE/nnzE: "
        f"{report['partition']['dim_ratio']}/"
        f"{report['partition']['nnz_D_ratio']}/"
        f"{report['partition']['ncol_E_ratio']}/"
        f"{report['partition']['nnz_E_ratio']}",
        "stages: " + "  ".join(f"{s}={t:.4f}s"
                               for s, t in sorted(report["stages"].items())),
        f"solve: iters={report['solve']['iterations']} "
        f"residual={report['solve']['residual_norm']:.2e} "
        f"converged={report['solve']['converged']}",
    ]
    acc = report["solve"].get("accuracy")
    if acc:
        tag = "CERTIFIED" if acc["certified"] else "UNCERTIFIED"
        lines.append(f"accuracy: {tag} berr={acc['berr']:.2e} "
                     f"nberr={acc['nberr']:.2e} "
                     f"cond~{acc['cond_est']:.2e} "
                     f"refine_steps={acc['refine_steps']}")
    blk = report.get("solve_block")
    if blk:
        tput = (f" {blk['rhs_per_s']:.1f} RHS/s"
                if blk.get("rhs_per_s") else "")
        lines.append(
            f"block: nrhs={blk['nrhs']} "
            f"worst_residual={blk['worst_residual']:.2e} "
            f"all_converged={blk['all_converged']}"
            + tput)
    obs = report.get("obs")
    if obs:
        lines.append("traced stages (wall): " + "  ".join(
            f"{name}={st['wall_s']:.4f}s"
            for name, st in sorted(obs["stages"].items(),
                                   key=lambda kv: -kv[1]["wall_s"])[:6]))
    return "\n".join(lines)


def save_report(report: dict, path) -> None:
    """Write the report as JSON."""
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
