"""BiCGSTAB with right preconditioning.

PDSLin lets the user pick the Krylov method for the Schur system; the
paper's experiments use (F)GMRES, but BiCGSTAB is the standard
short-recurrence alternative for unsymmetric systems and is provided for
the solver-choice ablation. Implementation follows van der Vorst (1992)
with the usual rho/omega breakdown guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils import check_finite

__all__ = ["BiCGSTABResult", "bicgstab"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class BiCGSTABResult:
    """Solution plus convergence history (one entry per half-step).

    ``restarts`` counts rho-breakdown restarts of the recurrence (fresh
    shadow residual); ``breakdown`` is set when the iteration had to
    stop making progress entirely.

    ``drift_checks``/``drift_detected`` are the ABFT audit enabled by
    ``audit_every``: the recursive residual of the short recurrence is
    periodically compared against a recomputed true residual
    ``||b - A x||``. A large gap means silent data corruption (or a
    derailed recurrence); the iteration stops immediately rather than
    "converge" on a residual that no longer describes the iterate.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    breakdown: bool = False
    restarts: int = 0
    drift_checks: int = 0
    drift_detected: bool = False

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def bicgstab(matvec: Operator, b: np.ndarray, *,
             preconditioner: Optional[Operator] = None,
             x0: Optional[np.ndarray] = None,
             tol: float = 1e-10,
             maxiter: int = 1000,
             audit_every: int = 0,
             tracer: Tracer = NULL_TRACER) -> BiCGSTABResult:
    """Solve ``A x = b``; right preconditioning, true-residual test.

    ``audit_every > 0`` enables the ABFT drift audit: every that many
    iterations the true residual is recomputed (one extra matvec) and
    compared with the recursive one; on a gap > 100x the iteration
    stops with ``drift_detected`` set.

    ``tracer`` records one ``bicgstab`` span with iteration counters.

    Rejects ``b``/``x0`` containing NaN/Inf (a NaN norm silently passes
    every convergence test); ``b = 0`` returns ``x = 0``, converged.
    """
    check_finite(np.asarray(b, dtype=np.float64), "b")
    if x0 is not None:
        check_finite(np.asarray(x0, dtype=np.float64), "x0")
    with tracer.span("bicgstab"):
        res = _bicgstab(matvec, b, preconditioner=preconditioner, x0=x0,
                        tol=tol, maxiter=maxiter, audit_every=audit_every)
        tracer.count("bicgstab_iterations", res.iterations)
        tracer.count("bicgstab_converged", int(res.converged))
        tracer.count("bicgstab_restarts", res.restarts)
        tracer.count("bicgstab_breakdown", int(res.breakdown))
        tracer.count("bicgstab_drift_checks", res.drift_checks)
        tracer.count("bicgstab_drift_detected", int(res.drift_detected))
    return res


def _bicgstab(matvec: Operator, b: np.ndarray, *,
              preconditioner: Optional[Operator] = None,
              x0: Optional[np.ndarray] = None,
              tol: float = 1e-10,
              maxiter: int = 1000,
              audit_every: int = 0) -> BiCGSTABResult:
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    M = preconditioner if preconditioner is not None else (lambda v: v)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return BiCGSTABResult(x=np.zeros(n), converged=True, iterations=0,
                              residual_norms=[0.0])
    r = b - matvec(x)
    history = [float(np.linalg.norm(r))]
    if history[0] <= tol * bnorm:
        return BiCGSTABResult(x=x, converged=True, iterations=0,
                              residual_norms=history)
    r_hat = r.copy()
    rho_old = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    eps = np.finfo(np.float64).eps

    restarts = 0
    drift_checks = 0
    for it in range(1, maxiter + 1):
        rho = float(r_hat @ r)
        rnorm_now = float(np.linalg.norm(r))
        if abs(rho) < 1e-8 * rnorm_now * float(np.linalg.norm(r_hat)):
            # rho breakdown (r nearly orthogonal to the shadow residual):
            # restart the recurrence with a fresh shadow vector
            if rnorm_now <= tol * bnorm:
                return BiCGSTABResult(x=x, converged=True, iterations=it - 1,
                                      residual_norms=history,
                                      restarts=restarts,
                                      drift_checks=drift_checks)
            restarts += 1
            if restarts > 5:
                return BiCGSTABResult(x=x, converged=False,
                                      iterations=it - 1,
                                      residual_norms=history, breakdown=True,
                                      restarts=restarts,
                                      drift_checks=drift_checks)
            r_hat = r.copy()
            rho_old = alpha = omega = 1.0
            v[:] = 0.0
            p[:] = 0.0
            rho = float(r_hat @ r)
        beta = (rho / rho_old) * (alpha / omega)
        p = r + beta * (p - omega * v)
        phat = M(p)
        v = np.asarray(matvec(phat), dtype=np.float64)
        denom = float(r_hat @ v)
        if abs(denom) < eps * max(float(np.linalg.norm(v))
                                  * float(np.linalg.norm(r_hat)), eps):
            done = float(np.linalg.norm(r)) <= tol * bnorm
            return BiCGSTABResult(x=x, converged=done, iterations=it - 1,
                                  residual_norms=history, breakdown=not done,
                                  restarts=restarts,
                                  drift_checks=drift_checks)
        alpha = rho / denom
        s = r - alpha * v
        x = x + alpha * np.asarray(phat, dtype=np.float64)
        snorm = float(np.linalg.norm(s))
        history.append(snorm)
        if snorm <= tol * bnorm:
            return BiCGSTABResult(x=x, converged=True, iterations=it,
                                  residual_norms=history, restarts=restarts,
                                  drift_checks=drift_checks)
        shat = M(s)
        t = np.asarray(matvec(shat), dtype=np.float64)
        tt = float(t @ t)
        if np.sqrt(tt) <= eps * max(snorm, eps):
            # t vanished relative to s: the stabilization step cannot
            # make progress
            done = snorm <= tol * bnorm
            return BiCGSTABResult(x=x, converged=done, iterations=it,
                                  residual_norms=history, breakdown=not done,
                                  restarts=restarts,
                                  drift_checks=drift_checks)
        omega = float(t @ s) / tt
        x = x + omega * np.asarray(shat, dtype=np.float64)
        r = s - omega * t
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if audit_every > 0 and it % audit_every == 0:
            # ABFT drift audit: recompute the true residual and compare
            # with the recursive one before trusting it for convergence.
            drift_checks += 1
            rtrue = float(np.linalg.norm(b - matvec(x)))
            if rtrue > 100.0 * max(rnorm, tol * bnorm):
                return BiCGSTABResult(x=x, converged=False, iterations=it,
                                      residual_norms=history + [rtrue],
                                      restarts=restarts,
                                      drift_checks=drift_checks,
                                      drift_detected=True)
        if rnorm <= tol * bnorm:
            return BiCGSTABResult(x=x, converged=True, iterations=it,
                                  residual_norms=history, restarts=restarts,
                                  drift_checks=drift_checks)
        if abs(omega) < eps:
            return BiCGSTABResult(x=x, converged=False, iterations=it,
                                  residual_norms=history, breakdown=True,
                                  restarts=restarts,
                                  drift_checks=drift_checks)
        rho_old = rho
    return BiCGSTABResult(x=x, converged=False, iterations=maxiter,
                          residual_norms=history, restarts=restarts,
                          drift_checks=drift_checks)
