"""Restarted GMRES with right preconditioning.

Own implementation (Saad-Schultz with modified Gram-Schmidt Arnoldi and
Givens rotations) so the Schur solve does not depend on scipy's solver
behaviour and iteration counts are fully deterministic and inspectable —
the paper reports #iterations per configuration (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils import check_finite

__all__ = ["GMRESResult", "gmres", "BlockGMRESResult", "gmres_block"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class GMRESResult:
    """Solution plus convergence history.

    ``stagnated`` is set on non-convergence when the final restart
    cycle reduced the residual by less than 10% — the signal the
    recovery ladder uses to refresh the preconditioner rather than
    simply run more iterations.

    ``drift_checks``/``drift_detected`` are the ABFT audit: at every
    restart boundary the true residual ``||b - A x||`` is recomputed
    anyway, so we compare it against the recursive Givens estimate for
    free. A large gap means the Krylov state no longer describes the
    iterate — the signature of silent data corruption (or severe loss
    of orthogonality), and the solver-level recovery ladder treats it
    as suspected SDC.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    stagnated: bool = False
    drift_checks: int = 0
    drift_detected: bool = False

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def gmres(matvec: Operator, b: np.ndarray, *,
          preconditioner: Optional[Operator] = None,
          x0: Optional[np.ndarray] = None,
          tol: float = 1e-10,
          restart: int = 50,
          maxiter: int = 500,
          flexible: bool = False,
          tracer: Tracer = NULL_TRACER) -> GMRESResult:
    """Solve ``A x = b`` given ``matvec(v) = A v``.

    Right preconditioning: iterates on ``A M^{-1} u = b`` with
    ``x = M^{-1} u``, so the printed residuals are true residuals of the
    original system. Convergence: ``||b - A x|| <= tol * ||b||``.

    ``flexible=True`` gives FGMRES (Saad 1993): the preconditioned
    vectors ``z_j = M_j(v_j)`` are stored explicitly so the
    preconditioner may change between iterations — PDSLin uses this mode
    when the Schur preconditioner itself involves inner iterations.

    ``tracer`` records one ``gmres`` span with a ``gmres_iterations``
    counter (and ``gmres_converged`` 0/1).

    Rejects ``b``/``x0`` containing NaN/Inf (a NaN norm silently passes
    every convergence test); ``b = 0`` returns ``x = 0``, converged.
    """
    check_finite(np.asarray(b, dtype=np.float64), "b")
    if x0 is not None:
        check_finite(np.asarray(x0, dtype=np.float64), "x0")
    with tracer.span("gmres", flexible=flexible, restart=restart):
        res = _gmres(matvec, b, preconditioner=preconditioner, x0=x0,
                     tol=tol, restart=restart, maxiter=maxiter,
                     flexible=flexible)
        tracer.count("gmres_iterations", res.iterations)
        tracer.count("gmres_converged", int(res.converged))
        tracer.count("gmres_drift_checks", res.drift_checks)
        tracer.count("gmres_drift_detected", int(res.drift_detected))
    return res


def _gmres(matvec: Operator, b: np.ndarray, *,
           preconditioner: Optional[Operator] = None,
           x0: Optional[np.ndarray] = None,
           tol: float = 1e-10,
           restart: int = 50,
           maxiter: int = 500,
           flexible: bool = False) -> GMRESResult:
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    if restart <= 0 or maxiter <= 0:
        raise ValueError("restart and maxiter must be positive")
    M = preconditioner if preconditioner is not None else (lambda v: v)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return GMRESResult(x=np.zeros(n), converged=True, iterations=0,
                           residual_norms=[0.0])
    history: list[float] = []
    total_iters = 0
    last_cycle_reduction = 1.0
    drift_checks = 0
    drift_detected = False

    while total_iters < maxiter:
        r = b - matvec(x)
        beta = np.linalg.norm(r)
        history.append(float(beta))
        if beta <= tol * bnorm:
            return GMRESResult(x=x, converged=True, iterations=total_iters,
                               residual_norms=history,
                               drift_checks=drift_checks,
                               drift_detected=drift_detected)
        m = min(restart, maxiter - total_iters)
        V = np.zeros((n, m + 1))
        Z = np.zeros((n, m)) if flexible else None
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        V[:, 0] = r / beta
        g[0] = beta
        j_done = 0
        breakdown = False
        for j in range(m):
            # copy: a matvec/preconditioner may return its input array,
            # and the MGS loop below mutates w in place
            z = np.asarray(M(V[:, j]), dtype=np.float64)
            if Z is not None:
                Z[:, j] = z
            w = np.array(matvec(z), dtype=np.float64, copy=True)
            # modified Gram-Schmidt
            for i in range(j + 1):
                H[i, j] = V[:, i] @ w
                w -= H[i, j] * V[:, i]
            H[j + 1, j] = np.linalg.norm(w)
            if H[j + 1, j] > 1e-300:
                V[:, j + 1] = w / H[j + 1, j]
            else:
                # Arnoldi breakdown: the Krylov space is invariant
                # (happy breakdown) or the operator annihilated the new
                # direction; there is no vector to continue with, so
                # solve the small system as it stands and leave the
                # cycle
                breakdown = True
            # apply existing Givens rotations to the new column
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            # new rotation to annihilate H[j+1, j]
            denom = np.hypot(H[j, j], H[j + 1, j])
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, H[j + 1, j] / denom
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_iters += 1
            if breakdown:
                if denom > 0.0:
                    j_done = j + 1
                    history.append(float(abs(g[j + 1])))
                # denom == 0: the new column is identically null — keep
                # j_done at j so the small system stays nonsingular
                break
            j_done = j + 1
            history.append(float(abs(g[j + 1])))
            if abs(g[j + 1]) <= tol * bnorm:
                break
        # solve the small triangular system and update x
        if j_done > 0:
            y = np.linalg.solve(np.triu(H[:j_done, :j_done]), g[:j_done])
            if Z is not None:
                x = x + Z[:, :j_done] @ y
            else:
                x = x + M(V[:, :j_done] @ y)
        r = b - matvec(x)
        rnorm = float(np.linalg.norm(r))
        # ABFT drift audit: the recursive estimate |g[j_done]| claims
        # what the residual should be; the freshly recomputed rnorm is
        # what it actually is. A two-orders-of-magnitude gap cannot come
        # from rounding in a sane cycle.
        estimate = float(abs(g[j_done])) if j_done > 0 else float(beta)
        drift_checks += 1
        if rnorm > 100.0 * max(estimate, tol * bnorm):
            drift_detected = True
        if rnorm <= tol * bnorm:
            return GMRESResult(x=x, converged=True, iterations=total_iters,
                               residual_norms=history + [rnorm],
                               drift_checks=drift_checks,
                               drift_detected=drift_detected)
        if breakdown and rnorm >= beta * (1.0 - 1e-12):
            # breakdown without progress: the residual lies in a
            # direction the operator cannot reach, so restarting from
            # the same r would break down identically forever
            return GMRESResult(x=x, converged=False, iterations=total_iters,
                               residual_norms=history + [rnorm],
                               stagnated=True,
                               drift_checks=drift_checks,
                               drift_detected=drift_detected)
        last_cycle_reduction = rnorm / beta if beta > 0 else 1.0
    return GMRESResult(x=x, converged=False, iterations=total_iters,
                       residual_norms=history,
                       stagnated=bool(last_cycle_reduction > 0.9),
                       drift_checks=drift_checks,
                       drift_detected=drift_detected)


@dataclass
class BlockGMRESResult:
    """Per-column convergence state of one block solve.

    ``iterations`` counts *block* iterations — each advances every
    column by one Krylov direction at the cost of one block matvec.
    ``residual_norms`` are the final true residuals ``||b_j - A x_j||``
    per column.
    """

    x: np.ndarray
    converged: np.ndarray
    iterations: int
    residual_norms: np.ndarray
    stagnated: bool = False

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())


def gmres_block(matvec: Operator, B: np.ndarray, *,
                preconditioner: Optional[Operator] = None,
                X0: Optional[np.ndarray] = None,
                tol: float = 1e-10,
                restart: int = 50,
                maxiter: int = 500,
                tracer: Tracer = NULL_TRACER) -> BlockGMRESResult:
    """Restarted block GMRES on ``A X = B`` for an ``(n, p)`` block.

    ``matvec`` and ``preconditioner`` must accept ``(n, p)`` blocks
    (columnwise application). Right preconditioning, block Arnoldi with
    block modified Gram-Schmidt and thin-QR normalization, and a
    least-squares solve of the banded block Hessenberg per cycle.
    Convergence is per column against ``tol * ||b_j||``, verified with
    true residuals at every restart boundary; columns the block space
    cannot close are reported unconverged for the caller's per-column
    fallback ladder.
    """
    B = np.asarray(B, dtype=np.float64)
    check_finite(B, "B")
    if X0 is not None:
        check_finite(np.asarray(X0, dtype=np.float64), "X0")
    with tracer.span("gmres_block", restart=restart, nrhs=B.shape[1]):
        res = _gmres_block(matvec, B, preconditioner=preconditioner,
                           X0=X0, tol=tol, restart=restart,
                           maxiter=maxiter)
        tracer.count("gmres_block_iterations", res.iterations)
        tracer.count("gmres_block_converged_cols",
                     int(res.converged.sum()))
    return res


def _gmres_block(matvec: Operator, B: np.ndarray, *,
                 preconditioner: Optional[Operator] = None,
                 X0: Optional[np.ndarray] = None,
                 tol: float = 1e-10,
                 restart: int = 50,
                 maxiter: int = 500) -> BlockGMRESResult:
    n, p = B.shape
    if restart <= 0 or maxiter <= 0:
        raise ValueError("restart and maxiter must be positive")
    M = preconditioner if preconditioner is not None else (lambda v: v)
    X = np.zeros((n, p)) if X0 is None \
        else np.asarray(X0, dtype=np.float64).copy()
    bnorms = np.linalg.norm(B, axis=0)
    targets = tol * bnorms
    if p == 0 or not bnorms.any():
        return BlockGMRESResult(x=np.zeros((n, p)),
                                converged=np.ones(p, dtype=bool),
                                iterations=0,
                                residual_norms=np.zeros(p))
    total_iters = 0
    last_cycle_reduction = 1.0
    rnorms = np.full(p, np.inf)
    converged = np.zeros(p, dtype=bool)
    while total_iters < maxiter:
        R = B - matvec(X)
        rnorms = np.linalg.norm(R, axis=0)
        converged = rnorms <= targets
        if converged.all():
            return BlockGMRESResult(x=X, converged=converged,
                                    iterations=total_iters,
                                    residual_norms=rnorms)
        m = min(restart, maxiter - total_iters)
        V = np.zeros((n, (m + 1) * p))
        Hbar = np.zeros(((m + 1) * p, m * p))
        G = np.zeros(((m + 1) * p, p))
        Q0, S = np.linalg.qr(R)
        V[:, :p] = Q0
        G[:p] = S
        j_done = 0
        breakdown = False
        for j in range(m):
            Z = np.asarray(M(V[:, j * p:(j + 1) * p]), dtype=np.float64)
            W = np.array(matvec(Z), dtype=np.float64, copy=True)
            for i in range(j + 1):
                Vi = V[:, i * p:(i + 1) * p]
                Hij = Vi.T @ W
                Hbar[i * p:(i + 1) * p, j * p:(j + 1) * p] = Hij
                W = W - Vi @ Hij
            Qj, Rj = np.linalg.qr(W)
            Hbar[(j + 1) * p:(j + 2) * p, j * p:(j + 1) * p] = Rj
            total_iters += 1
            j_done = j + 1
            if float(np.linalg.norm(Rj)) <= 1e-300:
                # the block Krylov space is invariant (happy breakdown
                # for every column the space can reach)
                breakdown = True
                break
            V[:, (j + 1) * p:(j + 2) * p] = Qj
            rows = (j + 2) * p
            cols = (j + 1) * p
            Y, *_ = np.linalg.lstsq(Hbar[:rows, :cols], G[:rows],
                                    rcond=None)
            est = np.linalg.norm(G[:rows] - Hbar[:rows, :cols] @ Y,
                                 axis=0)
            if np.all(est <= targets):
                break
        k = j_done * p
        if k > 0:
            Y, *_ = np.linalg.lstsq(Hbar[:k + p, :k], G[:k + p],
                                    rcond=None)
            X = X + np.asarray(M(V[:, :k] @ Y), dtype=np.float64)
        Rnew = B - matvec(X)
        rn = np.linalg.norm(Rnew, axis=0)
        converged = rn <= targets
        if converged.all():
            return BlockGMRESResult(x=X, converged=converged,
                                    iterations=total_iters,
                                    residual_norms=rn)
        worst_before = float(rnorms[~converged].max(initial=0.0))
        worst_after = float(rn[~converged].max(initial=0.0))
        last_cycle_reduction = (worst_after / worst_before
                                if worst_before > 0 else 1.0)
        if breakdown and worst_after >= worst_before * (1.0 - 1e-12):
            # breakdown without progress on the open columns: further
            # restarts from the same residual block change nothing
            return BlockGMRESResult(x=X, converged=converged,
                                    iterations=total_iters,
                                    residual_norms=rn,
                                    stagnated=True)
        rnorms = rn
    return BlockGMRESResult(x=X, converged=converged,
                            iterations=total_iters,
                            residual_norms=rnorms,
                            stagnated=bool(last_cycle_reduction > 0.9))
