"""Table II reproduction: per-matrix partitioning statistics of the
eight interior subdomains, NGD vs RHB (single-constraint w1, soed).

Columns follow the paper: preconditioner + iteration time, #GMRES
iterations, separator size n_S, and min/max over subdomains of n_D,
nnz_D, nnzcol_E, nnz_E.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import render_table
from repro.matrices import generate
from repro.solver import PDSLin, PDSLinConfig
from repro.utils import SeedLike

__all__ = ["Table2Row", "run_table2", "format_table2"]

DEFAULT_MATRICES = ("dds.quad", "dds.linear", "matrix211",
                    "ASIC_680ks", "G3_circuit")


@dataclass
class Table2Row:
    matrix: str
    alg: str
    time_precond: float
    time_iter: float
    iterations: int
    n_s: int
    n_d_min: int
    n_d_max: int
    nnz_d_min: int
    nnz_d_max: int
    nnzcol_e_min: int
    nnzcol_e_max: int
    nnz_e_min: int
    nnz_e_max: int

    @property
    def speedup_base(self) -> float:
        return self.time_precond + self.time_iter


def _run_one(matrix: str, scale: str, partitioner: str, k: int,
             seed: SeedLike) -> Table2Row:
    gm = generate(matrix, scale)
    # moderate dropping so the preconditioner is genuinely approximate
    # and GMRES has to iterate, as in the paper's Table II; the highly
    # indefinite cavity family needs tighter thresholds to converge at
    # all (the paper makes the same point about indefinite systems)
    gm_probe = generate(matrix, "tiny")
    indefinite = gm_probe.source == "cavity"
    if indefinite:
        # larger indefinite systems need progressively tighter dropping
        drop_i, drop_s = (1e-5, 1e-8) if scale == "medium" else (2e-4, 1e-6)
    else:
        drop_i, drop_s = 2e-3, 1e-4
    cfg = PDSLinConfig(k=k, partitioner=partitioner, metric="soed",
                       scheme="w1", seed=seed, gmres_tol=1e-8,
                       drop_interface=drop_i, drop_schur=drop_s,
                       rhs_ordering="postorder")
    solver = PDSLin(gm.A, cfg, M=gm.M)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(gm.A.shape[0])
    res = solver.solve(b)
    br = solver.machine.breakdown()
    stats = solver.partition.all_stats() if solver.partition else []
    get = lambda f: [getattr(s, f) for s in stats]
    precond = sum(v for s, v in br.items()
                  if s in ("LU(D)", "Comp(S)", "LU(S)"))
    return Table2Row(
        matrix=matrix,
        alg="NGD" if partitioner == "ngd" else "RHB",
        time_precond=precond,
        time_iter=br.get("Solve", 0.0),
        iterations=res.iterations,
        n_s=res.schur_size,
        n_d_min=min(get("dim")), n_d_max=max(get("dim")),
        nnz_d_min=min(get("nnz_D")), nnz_d_max=max(get("nnz_D")),
        nnzcol_e_min=min(get("ncol_E")), nnzcol_e_max=max(get("ncol_E")),
        nnz_e_min=min(get("nnz_E")), nnz_e_max=max(get("nnz_E")),
    )


def run_table2(matrices=DEFAULT_MATRICES, scale: str = "small", *,
               k: int = 8, seed: SeedLike = 0) -> list[Table2Row]:
    """Run NGD and RHB rows for every requested matrix (Table II)."""
    rows: list[Table2Row] = []
    for m in matrices:
        rows.append(_run_one(m, scale, "ngd", k, seed))
        rows.append(_run_one(m, scale, "rhb", k, seed))
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render Table-II rows as fixed-width text."""
    out = []
    for r in rows:
        out.append([r.matrix, r.alg,
                    f"{r.time_precond:.2f}+{r.time_iter:.2f}",
                    r.iterations, r.n_s,
                    f"{r.n_d_min}/{r.n_d_max}",
                    f"{r.nnz_d_min}/{r.nnz_d_max}",
                    f"{r.nnzcol_e_min}/{r.nnzcol_e_max}",
                    f"{r.nnz_e_min}/{r.nnz_e_max}"])
    return render_table(
        ["matrix", "alg", "time(s)", "#iter", "n_S", "n_D min/max",
         "nnz_D min/max", "nnzcol_E min/max", "nnz_E min/max"],
        out, title="Table II — partitioning statistics (NGD vs RHB-soed/w1)")
