"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.experiments table1 --scale small
    python -m repro.experiments fig3 --scale small --k 8 --constraint single
    python -m repro.experiments fig4 --matrix matrix211
    python -m repro.experiments all --scale tiny

Output is printed and (with --out) archived to a directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import (
    format_ablation,
    format_fig1,
    format_fig3,
    format_fig4,
    format_fig5,
    format_quasidense,
    format_table1,
    format_table2,
    format_table3,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fm_ablation,
    run_quasidense,
    run_table1,
    run_table2,
    run_table3,
    run_weight_ablation,
)

EXPERIMENTS = ("table1", "fig1", "fig3", "table2", "table3", "fig4",
               "fig5", "quasidense", "ablation", "scaling")


def _run(name: str, args: argparse.Namespace) -> str:
    if name == "table1":
        return format_table1(run_table1(args.scale, check_definiteness=True))
    if name == "fig1":
        return format_fig1(run_fig1("tdr455k", args.scale, k=args.k,
                                    seed=args.seed))
    if name == "fig3":
        return format_fig3(
            run_fig3(args.matrix, args.scale, k=args.k,
                     constraint=args.constraint, seed=args.seed),
            title=f"Fig. 3 — {args.matrix}, k={args.k}, {args.constraint}")
    if name == "table2":
        return format_table2(run_table2(scale=args.scale, k=args.k,
                                        seed=args.seed))
    if name == "table3":
        return format_table3(run_table3(scale=args.scale, k=args.k,
                                        seed=args.seed))
    if name == "fig4":
        return format_fig4(run_fig4(args.matrix, args.scale, k=args.k,
                                    seed=args.seed),
                           title=f"Fig. 4 — {args.matrix}")
    if name == "fig5":
        return format_fig5(run_fig5(args.matrix, args.scale, k=args.k,
                                    seed=args.seed),
                           title=f"Fig. 5 — {args.matrix}")
    if name == "quasidense":
        return format_quasidense(run_quasidense(args.matrix, args.scale,
                                                k=args.k, seed=args.seed))
    if name == "scaling":
        from repro.experiments import run_twolevel_vs_onelevel, format_scaling
        return format_scaling(run_twolevel_vs_onelevel(
            args.matrix, args.scale, k_two_level=args.k, seed=args.seed))
    if name == "ablation":
        parts = [
            format_ablation(run_weight_ablation(args.matrix, args.scale,
                                                k=args.k, seed=args.seed),
                            title="weight schemes"),
            format_ablation(run_fm_ablation(args.matrix, args.scale,
                                            k=args.k, seed=args.seed),
                            title="FM passes"),
        ]
        return "\n\n".join(parts)
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    ap.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    ap.add_argument("--scale", default="small",
                    choices=("tiny", "small", "medium"))
    ap.add_argument("--matrix", default="tdr190k")
    ap.add_argument("--k", type=int, default=8)
    ap.add_argument("--constraint", default="single",
                    choices=("single", "multi"))
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", type=Path, default=None,
                    help="directory to archive the text outputs")
    args = ap.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        text = _run(name, args)
        print(text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
