"""Fig. 1 reproduction: PDSLin stage breakdown (LU(D), Comp(S), LU(S),
Solve) as a function of the total core count, RHB-soed vs NGD
(PT-Scotch), k = 8 subdomains.

Per-subdomain stages are measured on the simulated machine in the
one-process-per-subdomain configuration and projected to P cores with
the two-level Amdahl model of :mod:`repro.parallel.costmodel` — the
well-scaling subdomain stages shrink with P/k while the separator
stages (LU(S), Solve) flatten, reproducing the paper's shape where RHB
mainly reduces Comp(S) without growing LU(D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import render_table
from repro.matrices import generate
from repro.parallel import TwoLevelModel
from repro.solver import PDSLin, PDSLinConfig
from repro.utils import SeedLike

__all__ = ["Fig1Point", "run_fig1", "format_fig1"]

DEFAULT_CORES = (8, 32, 128, 512, 1024)
STAGES = ("LU(D)", "Comp(S)", "LU(S)", "Solve")


@dataclass
class Fig1Point:
    """One bar of Fig. 1: a partitioner at a core count."""

    partitioner: str
    cores: int
    stage_times: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.stage_times.values())


def run_fig1(matrix: str = "tdr455k", scale: str = "small", *,
             k: int = 8, cores=DEFAULT_CORES,
             seed: SeedLike = 0) -> list[Fig1Point]:
    """Measure one-level runs of both partitioners and project the
    stage breakdown onto each core count (Fig. 1 series)."""
    gm = generate(matrix, scale)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(gm.A.shape[0])
    points: list[Fig1Point] = []
    for partitioner in ("rhb", "ngd"):
        cfg = PDSLinConfig(k=k, partitioner=partitioner, metric="soed",
                           scheme="w1", seed=seed, gmres_tol=1e-8,
                           rhs_ordering="postorder")
        solver = PDSLin(gm.A, cfg, M=gm.M)
        solver.solve(b)
        model = TwoLevelModel(k=k)
        label = "RHB,soed" if partitioner == "rhb" else "PT-Scotch"
        for P in cores:
            proj = model.project(solver.machine, P)
            stage_times = {s: proj.get(s, 0.0) for s in STAGES}
            points.append(Fig1Point(partitioner=label, cores=P,
                                    stage_times=stage_times))
    return points


def format_fig1(points: list[Fig1Point]) -> str:
    """Render the Fig. 1 series as fixed-width text."""
    rows = []
    for p in points:
        rows.append([p.cores, p.partitioner] +
                    [p.stage_times[s] for s in STAGES] + [p.total])
    return render_table(
        ["cores", "partitioner", *STAGES, "total"], rows,
        title="Fig. 1 — PDSLin stage breakdown vs core count (two-level "
              "projection, k=8)")
