"""Fig. 5 reproduction: blocked sparse triangular solution time (and
flops) vs block size B for the three RHS orderings.

The solver is the supernodal blocked kernel of
:mod:`repro.lu.triangular`; padding shows up directly as extra dense
work, so the ordering that minimizes padded zeros also minimizes time —
the crossover behaviour of the paper (hypergraph wins at large B and on
dense interfaces) emerges from the same mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    SubdomainTriangular,
    prepare_triangular_study,
    render_table,
)
from repro.experiments.fig4 import (
    DEFAULT_BLOCK_SIZES,
    ORDERINGS,
    ordering_parts,
)
from repro.lu import blocked_triangular_solve
from repro.matrices import generate
from repro.utils import SeedLike

__all__ = ["Fig5Point", "run_fig5", "format_fig5"]


@dataclass
class Fig5Point:
    """One (ordering, B) point: solve time and flops across subdomains."""

    ordering: str
    block_size: int
    time_min: float
    time_avg: float
    time_max: float
    flops_avg: float


def run_fig5(matrix: str = "tdr190k", scale: str = "small", *,
             k: int = 8, block_sizes=DEFAULT_BLOCK_SIZES,
             orderings=ORDERINGS, tau: float | None = 0.4,
             seed: SeedLike = 0,
             subs: list[SubdomainTriangular] | None = None) -> list[Fig5Point]:
    """One panel of Fig. 5 (numeric solve per subdomain, per ordering,
    per block size)."""
    if subs is None:
        gm = generate(matrix, scale)
        subs = prepare_triangular_study(gm, k=k, seed=seed)
    points: list[Fig5Point] = []
    for ordering in orderings:
        for B in block_sizes:
            times, flops = [], []
            for s in subs:
                if s.E_factored.shape[1] == 0:
                    continue
                parts = ordering_parts(s, ordering, B, tau=tau, seed=seed)
                res = blocked_triangular_solve(s.snl, s.E_factored,
                                               s.G_pattern, parts)
                times.append(res.seconds)
                flops.append(res.flops)
            if not times:
                continue
            t = np.asarray(times)
            points.append(Fig5Point(ordering=ordering, block_size=B,
                                    time_min=float(t.min()),
                                    time_avg=float(t.mean()),
                                    time_max=float(t.max()),
                                    flops_avg=float(np.mean(flops))))
    return points


def format_fig5(points: list[Fig5Point], *, title: str = "Fig. 5") -> str:
    """Render one Fig. 5 panel as fixed-width text."""
    rows = [[p.ordering, p.block_size, p.time_min, p.time_avg, p.time_max,
             p.flops_avg] for p in points]
    return render_table(
        ["ordering", "B", "t min (s)", "t avg (s)", "t max (s)", "flops avg"],
        rows, title=title + " — blocked triangular solve per subdomain")
