"""Experiment harness — one module per table/figure of the paper.

See DESIGN.md for the per-experiment index. Each ``run_*`` returns
structured rows/points; each ``format_*`` renders them as the plain-text
analogue of the paper's table or plot series.
"""

from repro.experiments.ablation import (
    AblationRow,
    format_ablation,
    run_fm_ablation,
    run_weight_ablation,
)
from repro.experiments.common import (
    PartitionRun,
    SubdomainTriangular,
    prepare_triangular_study,
    render_table,
    run_partitioner,
)
from repro.experiments.fig1 import Fig1Point, format_fig1, run_fig1
from repro.experiments.fig3 import Fig3Row, format_fig3, run_fig3
from repro.experiments.fig4 import (
    Fig4Point,
    format_fig4,
    ordering_parts,
    run_fig4,
)
from repro.experiments.fig5 import Fig5Point, format_fig5, run_fig5
from repro.experiments.quasidense import (
    QuasiDensePoint,
    format_quasidense,
    run_quasidense,
)
from repro.experiments.scaling import (
    ScalingPoint,
    format_scaling,
    run_twolevel_vs_onelevel,
)
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import Table2Row, format_table2, run_table2
from repro.experiments.table3 import Table3Row, format_table3, run_table3

__all__ = [
    "PartitionRun", "run_partitioner", "SubdomainTriangular",
    "prepare_triangular_study", "render_table",
    "run_table1", "format_table1",
    "Fig1Point", "run_fig1", "format_fig1",
    "Fig3Row", "run_fig3", "format_fig3",
    "Table2Row", "run_table2", "format_table2",
    "Table3Row", "run_table3", "format_table3",
    "Fig4Point", "run_fig4", "format_fig4", "ordering_parts",
    "Fig5Point", "run_fig5", "format_fig5",
    "QuasiDensePoint", "run_quasidense", "format_quasidense",
    "AblationRow", "run_weight_ablation", "run_fm_ablation", "format_ablation",
    "ScalingPoint", "run_twolevel_vs_onelevel", "format_scaling",
]
