"""Shared experiment plumbing: partition runners, triangular-solve
study setup, and plain-text table rendering used by every bench."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core import build_dbbd, rhb_partition
from repro.core.dbbd import DBBDPartition, PartitionQuality
from repro.graphs import nested_dissection_partition
from repro.lu import SupernodalLower, factorize, solution_pattern
from repro.matrices import GeneratedMatrix
from repro.ordering import elimination_tree, minimum_degree, postorder
from repro.solver.interfaces import SubdomainInterfaces, extract_interfaces
from repro.sparse import symmetrized
from repro.utils import SeedLike

__all__ = [
    "PartitionRun", "run_partitioner",
    "SubdomainTriangular", "prepare_triangular_study",
    "render_table",
]


@dataclass
class PartitionRun:
    """One partitioner invocation and its quality metrics."""

    label: str
    partition: DBBDPartition
    quality: PartitionQuality
    seconds: float


def run_partitioner(gm: GeneratedMatrix, k: int, *, method: str,
                    metric: str = "soed", scheme: str = "w1",
                    epsilon: float = 0.1, seed: SeedLike = 0,
                    n_trials: int = 2) -> PartitionRun:
    """Run RHB or NGD on a generated matrix and score the partition."""
    t0 = time.perf_counter()
    if method == "rhb":
        r = rhb_partition(gm.A, k, M=gm.M, metric=metric, scheme=scheme,
                          epsilon=epsilon, seed=seed, n_trials=n_trials)
        part = r.col_part
        label = f"RHB-{metric}/{scheme}"
    elif method == "ngd":
        r = nested_dissection_partition(gm.A, k, epsilon=min(epsilon, 0.2),
                                        seed=seed, n_trials=n_trials)
        part = r.part
        label = "NGD"
    else:
        raise ValueError(f"method must be 'rhb' or 'ngd', got {method!r}")
    seconds = time.perf_counter() - t0
    dbbd = build_dbbd(gm.A, part, k)
    return PartitionRun(label=label, partition=dbbd,
                        quality=dbbd.quality(), seconds=seconds)


@dataclass
class SubdomainTriangular:
    """Factored subdomain ready for RHS-reordering studies (Fig. 4/5)."""

    interfaces: SubdomainInterfaces
    perm: np.ndarray
    L: sp.csc_matrix
    snl: SupernodalLower
    E_factored: sp.csr_matrix        # E^ rows in factored positions
    G_pattern: sp.csr_matrix         # str(L^{-1} P E^)


def prepare_triangular_study(gm: GeneratedMatrix, *, k: int = 8,
                             seed: SeedLike = 0,
                             diag_pivot_thresh: float = 0.0,
                             pattern_method: str = "etree"
                             ) -> list[SubdomainTriangular]:
    """Paper Section V-B setup: NGD with k subdomains, minimum-degree +
    e-tree postorder per subdomain, factor, and symbolic G per
    subdomain.

    ``pattern_method`` selects how G is predicted: "etree" (the paper's
    fill-path model, fast) or "reach" (exact DAG reachability)."""
    r = nested_dissection_partition(gm.A, k, seed=seed)
    dbbd = build_dbbd(gm.A, r.part, k)
    out: list[SubdomainTriangular] = []
    for ell in range(k):
        sub = extract_interfaces(dbbd, ell)
        md = minimum_degree(sub.D)
        Dm = sub.D[md][:, md].tocsr()
        po = postorder(elimination_tree(symmetrized(Dm)))
        perm = md[po]
        Dp = sub.D[perm][:, perm].tocsc()
        f = factorize(Dp, diag_pivot_thresh=diag_pivot_thresh)
        Ep = f.permute_rows(sub.E_hat[perm].tocsr())
        Gpat = solution_pattern(f.L, Ep, method=pattern_method)
        snl = SupernodalLower.from_csc(f.L, unit_diagonal=True)
        out.append(SubdomainTriangular(interfaces=sub, perm=perm, L=f.L,
                                       snl=snl, E_factored=Ep,
                                       G_pattern=Gpat))
    return out


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str = "") -> str:
    """Fixed-width plain-text table (benches print these)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v != v:  # nan
            return "-"
        if abs(v) >= 1000 or (abs(v) < 1e-3 and v != 0):
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)
